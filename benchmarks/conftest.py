"""Shared benchmark plumbing.

Every benchmark builds one paper table/figure through the process-wide
memoized :class:`~repro.harness.runner.Runner`, so simulations shared by
several figures run once.  Each bench prints its table and also writes it to
``results/<name>.txt`` so the regenerated evaluation survives the run.

Run with ``pytest benchmarks/ --benchmark-only``; set ``REPRO_BENCH_FULL=1``
for the paper's full PageRank iteration count.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.report import render_table

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Render, print, and persist one experiment table."""

    def _emit(name: str, table: tuple) -> list[list[object]]:
        title, headers, rows = table
        text = render_table(headers, rows, title=title)
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        return rows

    return _emit

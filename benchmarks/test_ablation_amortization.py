"""Extension: preprocessing amortization across applications (§VI-G).

"A preprocessed hypergraph can be used for any hypergraph algorithm so that
preprocessing overheads incurred can be amortized by multiple executions of
a variety of hypergraph algorithms."  This bench quantifies that claim: the
OAG build is paid once, then every additional application ChGraph runs
widens its total-time lead over Hygra.
"""

from repro.harness.experiments import _preprocess_costs
from repro.harness.runner import PAPER_APPS, get_runner


def _measure():
    runner = get_runner()
    dataset = "WEB"
    hygra_pre, oag_pre, _ = _preprocess_costs(runner, dataset)
    rows = []
    hygra_total = hygra_pre
    chg_total = hygra_pre + oag_pre
    for count, app in enumerate(PAPER_APPS, start=1):
        hygra_total += runner.run("Hygra", app, dataset).cycles
        chg_total += runner.run("ChGraph", app, dataset).cycles
        rows.append([count, app, hygra_total / chg_total])
    return (
        "Extension: ChGraph total-time speedup as apps amortize the OAG build (WEB)",
        ["#Apps run", "Latest app", "Cumulative speedup"],
        rows,
    )


def test_ablation_amortization(benchmark, emit):
    rows = emit(
        "ablation_amortization",
        benchmark.pedantic(_measure, rounds=1, iterations=1),
    )
    speedups = [row[2] for row in rows]
    # The cumulative speedup never falls below break-even and the final
    # (6-app) figure beats the single-app one: amortization works.
    assert speedups[-1] > 1.0
    assert speedups[-1] >= speedups[0]

"""Ablation: reusing dense-algorithm chains across iterations (§VI-B).

The paper notes that for all-active algorithms (PR) "the per-iteration
chain will be the same without any changes", so chains need generating only
once.  This ablation quantifies that optimization by disabling the cache in
both chain-driven engines.
"""

from repro.engine import ChGraphEngine, SoftwareGlaEngine
from repro.harness.runner import get_runner
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem


def _measure():
    runner = get_runner()
    hypergraph = runner.dataset("WEB")
    config = scaled_config()
    resources = runner.resources(hypergraph, config)
    rows = []
    for label, engine in (
        ("GLA (regenerate)", SoftwareGlaEngine(resources)),
        ("GLA (cache)", SoftwareGlaEngine(resources, cache_dense_chains=True)),
        ("ChGraph (regenerate)", ChGraphEngine(resources, cache_dense_chains=False)),
        ("ChGraph (cache)", ChGraphEngine(resources)),
    ):
        run = engine.run(
            runner.algorithm("PR"), hypergraph, SimulatedSystem(config)
        )
        rows.append([label, run.cycles, run.chain_stats.get("generations", 0)])
    return (
        "Ablation: dense-chain caching, PR on WEB",
        ["Configuration", "Cycles", "Generations"],
        rows,
    )


def test_ablation_chain_cache(benchmark, emit):
    rows = emit(
        "ablation_chain_cache",
        benchmark.pedantic(_measure, rounds=1, iterations=1),
    )
    by_label = {row[0]: row for row in rows}
    # Caching must help the software engine (its generation is expensive)...
    assert by_label["GLA (cache)"][1] < by_label["GLA (regenerate)"][1]
    # ... and the cached engines generate exactly once per phase kind.
    assert by_label["GLA (cache)"][2] == 2
    assert by_label["GLA (regenerate)"][2] > 2
    # The hardware engine cares far less: regeneration is nearly free, which
    # is the paper's argument for why HCG suppresses the GLA overhead.
    hw_penalty = (
        by_label["ChGraph (regenerate)"][1] / by_label["ChGraph (cache)"][1]
    )
    sw_penalty = (
        by_label["GLA (regenerate)"][1] / by_label["GLA (cache)"][1]
    )
    assert hw_penalty < sw_penalty

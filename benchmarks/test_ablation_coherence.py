"""Extension: coherence traffic under each scheduler (Table I's MESI).

With MESI tracking enabled, every cross-core write-share costs an
invalidation and every read of a remotely-modified line a downgrade.  Both
schedulers write destination values from all cores (dst arrays are not
chunk-partitioned), so coherence traffic exists either way; the bench
records how much, and verifies the tracking itself never perturbs the
simulation.
"""

from repro.engine import ChGraphEngine, HygraEngine
from repro.harness.runner import get_runner
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem


def _measure():
    runner = get_runner()
    config = scaled_config().replace(track_coherence=True)
    rows = []
    for dataset in ("OK", "WEB"):
        hypergraph = runner.dataset(dataset)
        resources = runner.resources(hypergraph, config)
        for name, engine in (
            ("Hygra", HygraEngine()),
            ("ChGraph", ChGraphEngine(resources)),
        ):
            system = SimulatedSystem(config)
            engine.run(runner.algorithm("PR"), hypergraph, system)
            directory = system.hierarchy.coherence
            directory.check_invariants()
            rows.append([
                dataset,
                name,
                directory.stats.invalidations,
                directory.stats.downgrades,
                directory.stats.read_misses_served_remote,
            ])
    return (
        "Extension: MESI coherence traffic, PR",
        ["Dataset", "System", "Invalidations", "Downgrades", "Remote reads"],
        rows,
    )


def test_ablation_coherence(benchmark, emit):
    rows = emit(
        "ablation_coherence",
        benchmark.pedantic(_measure, rounds=1, iterations=1),
    )
    for row in rows:
        assert row[2] > 0  # write sharing exists under any scheduler

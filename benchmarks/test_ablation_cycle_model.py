"""Extension: cross-validating the closed-form engine timing (§VI-A).

The execution engines price ChGraph's engine with closed-form recurrences
(beats + overlapped latency, `max(core, engine)` at the barrier).  The
cycle-level model in `repro.chgraph.cycle_model` prices the same work as an
exact in-order pipeline recurrence with FIFO backpressure and finite MSHRs.
This bench runs both over every chunk of a PR vertex-computation phase and
checks they agree within a modest factor — the closed form is a sound
summary, not an accident of constants.
"""

import numpy as np

from repro.chgraph.cycle_model import record_hcg_microops, simulate_phase
from repro.harness.runner import get_runner
from repro.hypergraph.partition import contiguous_chunks
from repro.sim.config import scaled_config


def _measure():
    runner = get_runner()
    config = scaled_config()
    hypergraph = runner.dataset("WEB")
    resources = runner.resources(hypergraph, config)
    chunks = contiguous_chunks(hypergraph.num_hyperedges, config.num_cores)

    # Representative latencies: engine accesses mostly hit the L2, with the
    # occasional L3/DRAM round trip folded into the mean.
    hcg_lat = float(config.l2_latency + 4)
    cp_lat = float(config.l2_latency + 18)

    rows = []
    for chunk, oag in list(zip(chunks, resources.hyperedge_oags))[:4]:
        ops = record_hcg_microops(
            np.ones(len(chunk), dtype=bool), oag, dense=True
        )
        cycle = simulate_phase(
            ops, hypergraph, "hyperedge", config,
            hcg_latency=lambda: hcg_lat, cp_latency=lambda: cp_lat,
        )
        # The engines' closed form for the same chunk.
        tuples = cycle.tuples
        selects = sum(1 for op in ops if op.kind == "select")
        hcg_mem = sum(op.memory_accesses for op in ops)
        closed_engine = (
            len(ops) * config.hw_stage_cycles + hcg_mem * hcg_lat
            + tuples * config.hw_stage_cycles
            + tuples * 2 * cp_lat / config.engine_mlp
        )
        closed_core = tuples * (config.apply_cycles + config.fifo_pop_cycles)
        closed_total = max(closed_engine, closed_core)
        rows.append([
            f"chunk {chunk.core}",
            selects,
            tuples,
            cycle.total_cycles,
            closed_total,
            cycle.total_cycles / closed_total,
        ])
    return (
        "Extension: cycle model vs closed-form engine timing (PR/WEB chunks)",
        ["Chunk", "Elements", "Tuples", "Cycle model", "Closed form", "Ratio"],
        rows,
    )


def test_ablation_cycle_model(benchmark, emit):
    rows = emit(
        "ablation_cycle_model",
        benchmark.pedantic(_measure, rounds=1, iterations=1),
    )
    ratios = [row[5] for row in rows]
    # The two models must agree to within 2x in both directions — the
    # closed form's job is the right order of magnitude and the right
    # bottleneck, which the assertions in the engine benches then exploit.
    assert all(0.5 <= ratio <= 2.0 for ratio in ratios)

"""Extension: energy comparison (the paper's McPAT/DDR methodology, §VI-A).

The paper derives chip and memory energy with McPAT and Micron datasheets
but reports no per-system energy figure; this extension completes that
analysis with the repo's energy model.  Expected shape: ChGraph's DRAM
energy shrinks with its access reduction, and total energy follows, because
DRAM dominates a memory-bound workload's energy.
"""

from repro.engine import ChGraphEngine, HygraEngine
from repro.harness.runner import get_runner
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem


def _measure():
    runner = get_runner()
    config = scaled_config()
    rows = []
    for dataset in ("OK", "WEB"):
        hypergraph = runner.dataset(dataset)
        resources = runner.resources(hypergraph, config)
        systems = {}
        for name, engine in (
            ("Hygra", HygraEngine()),
            ("ChGraph", ChGraphEngine(resources)),
        ):
            system = SimulatedSystem(config)
            engine.run(runner.algorithm("PR"), hypergraph, system)
            systems[name] = system
        for name, system in systems.items():
            report = system.energy()
            rows.append([
                dataset,
                name,
                report.dram_total_nj,
                report.total_nj,
                report.memory_fraction,
            ])
    return (
        "Extension: energy, PR (nJ)",
        ["Dataset", "System", "DRAM nJ", "Total nJ", "DRAM fraction"],
        rows,
    )


def test_ablation_energy(benchmark, emit):
    rows = emit(
        "ablation_energy", benchmark.pedantic(_measure, rounds=1, iterations=1)
    )
    by_key = {(row[0], row[1]): row for row in rows}
    for dataset in ("OK", "WEB"):
        hygra = by_key[(dataset, "Hygra")]
        chgraph = by_key[(dataset, "ChGraph")]
        assert chgraph[2] < hygra[2], "DRAM energy must shrink"
        assert chgraph[3] < hygra[3], "total energy must shrink"
        assert 0.0 < chgraph[4] <= 1.0

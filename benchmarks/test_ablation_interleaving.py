"""Extension: chunk-serial vs round-robin core interleaving.

DESIGN.md documents that the simulator runs cores' chunks serially through
the shared hierarchy; real cores interleave.  This bench bounds the error:
both extremes (fully serial, perfectly fair round-robin) run the same PR
workload, and their DRAM counts must agree within a modest margin for the
serial simplification to be sound.
"""

from repro.engine import HygraEngine
from repro.engine.interleaved import InterleavedHygraEngine
from repro.harness.runner import get_runner
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem

import numpy as np


def _measure():
    runner = get_runner()
    config = scaled_config()
    rows = []
    for dataset in ("OK", "WEB"):
        hypergraph = runner.dataset(dataset)
        serial = HygraEngine().run(
            runner.algorithm("PR"), hypergraph, SimulatedSystem(config)
        )
        interleaved = InterleavedHygraEngine().run(
            runner.algorithm("PR"), hypergraph, SimulatedSystem(config)
        )
        assert np.allclose(serial.result, interleaved.result)
        rows.append([
            dataset,
            serial.dram_accesses,
            interleaved.dram_accesses,
            interleaved.dram_accesses / serial.dram_accesses,
        ])
    return (
        "Extension: core-interleaving sensitivity (Hygra PR DRAM accesses)",
        ["Dataset", "Chunk-serial", "Round-robin", "Ratio"],
        rows,
    )


def test_ablation_interleaving(benchmark, emit):
    rows = emit(
        "ablation_interleaving",
        benchmark.pedantic(_measure, rounds=1, iterations=1),
    )
    for row in rows:
        # The simplification is sound if the two extremes agree within ~30%.
        assert 0.7 <= row[3] <= 1.3

"""Extension: overlap-aware partitioning vs default contiguous chunking.

§IV-B leaves the partitioner pluggable; since chunks are contiguous id
ranges, renumbering elements along global chains aligns overlap clusters
with chunk boundaries, densifying per-chunk OAGs (see
`repro.hypergraph.community_partition`).  The bench measures what that buys
ChGraph end to end.
"""

from repro.engine import ChGraphEngine, GlaResources, HygraEngine
from repro.harness.runner import get_runner
from repro.hypergraph.community_partition import overlap_aware_renumber
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem


def _measure():
    runner = get_runner()
    config = scaled_config()
    hypergraph = runner.dataset("WEB")
    partitioned = overlap_aware_renumber(hypergraph, side="both").hypergraph

    rows = []
    baseline_cycles = None
    for label, graph in (("contiguous ids", hypergraph), ("chain-renumbered", partitioned)):
        resources = GlaResources.build(graph, config.num_cores)
        hygra = HygraEngine().run(
            runner.algorithm("PR"), graph, SimulatedSystem(config)
        )
        chgraph = ChGraphEngine(resources).run(
            runner.algorithm("PR"), graph, SimulatedSystem(config)
        )
        if baseline_cycles is None:
            baseline_cycles = chgraph.cycles
        rows.append([
            label,
            chgraph.cycles,
            chgraph.speedup_over(hygra),
            chgraph.dram_reduction_over(hygra),
            baseline_cycles / chgraph.cycles,
        ])
    return (
        "Extension: partitioning ablation, PR on WEB",
        ["Partitioning", "ChGraph cycles", "vs Hygra", "DRAM red.", "vs default"],
        rows,
    )


def test_ablation_partitioning(benchmark, emit):
    rows = emit(
        "ablation_partitioning",
        benchmark.pedantic(_measure, rounds=1, iterations=1),
    )
    default, renumbered = rows
    # Renumbering must not hurt ChGraph materially, and typically helps.
    assert renumbered[4] > 0.9
    # ChGraph keeps beating Hygra under either partitioning.
    assert default[2] > 1.0 and renumbered[2] > 1.0

"""Extension: push vs pull traversal direction (Ligra's edgeMap choice).

Hygra inherits Ligra's direction optimization; the paper's model is the
push side.  This ablation maps the trade-off on our workloads: pull
competes for dense algorithms (PR) and collapses for sparse ones (BFS) —
and chain scheduling's win over index order is a *push-side* property, so
ChGraph is compared against the better of the two directions per workload.
"""

from repro.engine import ChGraphEngine, HygraEngine
from repro.engine.pull import PullHygraEngine
from repro.harness.runner import get_runner
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem


def _measure():
    runner = get_runner()
    config = scaled_config()
    hypergraph = runner.dataset("WEB")
    resources = runner.resources(hypergraph, config)
    rows = []
    for app in ("PR", "BFS", "CC"):
        push = runner.run("Hygra", app, "WEB")
        pull = PullHygraEngine().run(
            runner.algorithm(app), hypergraph, SimulatedSystem(config)
        )
        chgraph = runner.run("ChGraph", app, "WEB")
        best = min(push.cycles, pull.cycles)
        rows.append([
            app,
            push.cycles,
            pull.cycles,
            pull.cycles / push.cycles,
            best / chgraph.cycles,
        ])
    return (
        "Extension: push vs pull on WEB (ChGraph vs the better direction)",
        ["App", "Push cycles", "Pull cycles", "Pull/Push", "ChGraph speedup"],
        rows,
    )


def test_ablation_pull(benchmark, emit):
    rows = emit(
        "ablation_pull", benchmark.pedantic(_measure, rounds=1, iterations=1)
    )
    by_app = {row[0]: row for row in rows}
    # Sparse BFS must prefer push; the dense PR gap must be much smaller.
    assert by_app["BFS"][3] > 1.2
    assert by_app["PR"][3] < by_app["BFS"][3]
    # ChGraph still beats whichever direction wins.
    assert all(row[4] > 1.0 for row in rows)

"""Ablation: the W_min space/locality trade-off (§IV-A).

"users can set a threshold W_min to prevent creating the edges whose
weights are less than W_min ... a good tradeoff between space overhead of
OAG and representation ability of overlapping semantics."  This bench maps
the whole trade: OAG storage shrinks monotonically with W_min while the
Figure 18 sweep (run separately) shows where locality starts to suffer.
"""

from repro.engine import GlaResources
from repro.harness.runner import get_runner
from repro.sim.config import scaled_config


def _measure():
    runner = get_runner()
    hypergraph = runner.dataset("WEB")
    config = scaled_config()
    baseline_bytes = hypergraph.size_bytes()
    rows = []
    for w_min in (1, 3, 9, 17, 33):
        resources = GlaResources.build(
            hypergraph, config.num_cores, w_min=w_min
        )
        oag_bytes = resources.storage_bytes()
        edges = sum(o.num_edges for o in resources.hyperedge_oags)
        rows.append([
            w_min,
            edges,
            oag_bytes,
            100.0 * oag_bytes / baseline_bytes,
        ])
    return (
        "Ablation: OAG storage vs W_min on WEB",
        ["W_min", "H-OAG edges", "OAG bytes", "Overhead (%)"],
        rows,
    )


def test_ablation_wmin_storage(benchmark, emit):
    rows = emit(
        "ablation_wmin_storage",
        benchmark.pedantic(_measure, rounds=1, iterations=1),
    )
    edges = [row[1] for row in rows]
    storage = [row[2] for row in rows]
    # Pruning is monotone in both edge count and bytes.
    assert edges == sorted(edges, reverse=True)
    assert storage == sorted(storage, reverse=True)
    # The default threshold (3) must already cut storage vs keeping all.
    assert storage[1] < storage[0]

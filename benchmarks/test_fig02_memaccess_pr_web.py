"""Figure 2: GLA reduces main-memory accesses over Hygra (PR on WEB)."""

from repro.harness.experiments import fig02_memory_accesses
from repro.harness.runner import get_runner


def test_fig02_memaccess_pr_web(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig02",
        benchmark.pedantic(
            fig02_memory_accesses, args=(runner,), rounds=1, iterations=1
        ),
    )
    by_system = {row[0]: row for row in rows}
    # Paper: GLA cuts DRAM accesses 4.09x on WEB; the scaled shape check is
    # that both chain-driven systems fetch meaningfully fewer lines.
    assert by_system["GLA"][2] > 1.2
    assert by_system["ChGraph"][2] > 1.2

"""Figure 3: software GLA is slower than Hygra; ChGraph reverses it."""

from repro.harness.experiments import fig03_performance
from repro.harness.runner import get_runner


def test_fig03_gla_vs_chgraph(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig03",
        benchmark.pedantic(fig03_performance, args=(runner,), rounds=1, iterations=1),
    )
    by_system = {row[0]: row for row in rows}
    # Paper: GLA runs 1.14x slower (speedup < 1) and ChGraph 4.39x faster.
    assert by_system["GLA"][2] < 1.0
    assert by_system["ChGraph"][2] > 2.0

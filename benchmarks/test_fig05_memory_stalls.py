"""Figure 5: hypergraph processing under Hygra is memory bound."""

from repro.harness.experiments import fig05_memory_stalls
from repro.harness.runner import get_runner


def test_fig05_memory_stalls(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig05",
        benchmark.pedantic(
            fig05_memory_stalls, args=(runner,), rounds=1, iterations=1
        ),
    )
    # Paper: off-chip accesses take 51% of time on average, up to 84% for
    # PR on WEB.  Check: every cell is a substantial fraction, and the mean
    # across the table exceeds 40%.
    cells = [value for row in rows for value in row[1:]]
    assert all(0.1 <= value <= 1.0 for value in cells)
    assert sum(cells) / len(cells) > 0.4
    pr_row = next(row for row in rows if row[0] == "PR")
    web_stall = pr_row[1 + list(("FS", "OK", "LJ", "WEB", "OG")).index("WEB")]
    assert web_stall > 0.5

"""Figure 7: ChGraph outperforms the HATS-V variant."""

from repro.harness.experiments import fig07_hats_v
from repro.harness.runner import get_runner


def test_fig07_hats_v(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig07",
        benchmark.pedantic(fig07_hats_v, args=(runner,), rounds=1, iterations=1),
    )
    # Paper: HATS-V is inferior to ChGraph by 2.56x-3.01x.  Scaled shape:
    # ChGraph wins on every (app, dataset) pair.
    assert all(row[2] > 1.0 for row in rows)

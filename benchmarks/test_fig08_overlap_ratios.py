"""Figure 8: the overlapped feature of the hypergraphs."""

from repro.harness.experiments import fig08_overlap
from repro.harness.runner import get_runner


def test_fig08_overlap_ratios(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig08",
        benchmark.pedantic(fig08_overlap, args=(runner,), rounds=1, iterations=1),
    )
    # Paper: 55-96% of vertices shared by two hyperedges; the heavy-overlap
    # datasets (OG/LJ/OK) dominate the high-threshold tail over FS/WEB.
    vertex_rows = {row[1]: row[2:] for row in rows if row[0] == "vertex"}
    for dataset, curve in vertex_rows.items():
        assert curve[0] > 0.5, f"{dataset}: too little sharing"
        assert list(curve) == sorted(curve, reverse=True)
    heavy = min(vertex_rows[d][-1] for d in ("OK", "LJ", "OG"))
    light = max(vertex_rows[d][-1] for d in ("FS", "WEB"))
    assert heavy >= light

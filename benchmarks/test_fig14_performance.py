"""Figure 14: the headline evaluation — all six apps, five datasets.

Paper shapes: software GLA is 1.13x-1.62x *slower* than Hygra (speedup < 1)
with PR the mildest; ChGraph is 3.39x-4.73x faster (4.12x average).
"""

import statistics

from repro.harness.experiments import fig14_performance
from repro.harness.runner import get_runner


def test_fig14_performance(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig14",
        benchmark.pedantic(fig14_performance, args=(runner,), rounds=1, iterations=1),
    )
    assert len(rows) == 30  # 6 apps x 5 datasets

    gla = [row[2] for row in rows]
    chgraph = [row[3] for row in rows]
    reductions = [row[4] for row in rows]

    # Software GLA loses to Hygra on average (the paper's Figure 3/14 story).
    assert statistics.mean(gla) < 1.0
    # ChGraph wins everywhere, by a sizable mean factor.
    assert all(speedup > 1.0 for speedup in chgraph)
    assert statistics.mean(chgraph) > 2.0
    # And it fetches fewer DRAM lines on average.
    assert statistics.mean(reductions) > 1.0

    # PR shows the smallest GLA slowdown (its chains are generated once).
    by_app = {}
    for row in rows:
        by_app.setdefault(row[0], []).append(row[2])
    pr_mean = statistics.mean(by_app["PR"])
    others = [s for app, values in by_app.items() if app != "PR" for s in values]
    assert pr_mean >= statistics.mean(others)

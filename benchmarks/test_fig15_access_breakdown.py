"""Figure 15: DRAM access breakdown by array group."""

from repro.harness.experiments import fig15_breakdown
from repro.harness.runner import get_runner


def test_fig15_access_breakdown(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig15",
        benchmark.pedantic(fig15_breakdown, args=(runner,), rounds=1, iterations=1),
    )
    hygra_rows = [row for row in rows if row[2] == "H"]
    chgraph_rows = [row for row in rows if row[2] == "C"]

    # Paper: value arrays dominate Hygra's misses (> 90% of accesses).
    value_share = sum(row[6] for row in hygra_rows) / sum(
        row[3] for row in hygra_rows
    )
    assert value_share > 0.6

    # Hygra never touches OAG arrays; ChGraph pays a small OAG tax
    # (paper: 6.86%-12.08% of its total).
    assert all(row[7] == 0 for row in hygra_rows)
    chg_total = sum(row[3] for row in chgraph_rows)
    oag_share = sum(row[7] for row in chgraph_rows) / chg_total
    assert 0.0 < oag_share < 0.2

    # ChGraph reduces value-array misses but slightly increases incident
    # misses (the paper's stated trade).
    hygra_value = sum(row[6] for row in hygra_rows)
    chg_value = sum(row[6] for row in chgraph_rows)
    assert chg_value < hygra_value
    hygra_incident = sum(row[5] for row in hygra_rows)
    chg_incident = sum(row[5] for row in chgraph_rows)
    assert chg_incident >= hygra_incident

"""Figure 16: benefit breakdown of the HCG and the CP."""

import statistics

from repro.harness.experiments import fig16_hw_breakdown
from repro.harness.runner import get_runner


def test_fig16_hw_breakdown(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig16",
        benchmark.pedantic(fig16_hw_breakdown, args=(runner,), rounds=1, iterations=1),
    )
    # Paper: HCG contributes most of the benefit (4.42x over software GLA on
    # average, 92% of the total); CP adds a further 1.37x.
    hcg_gain = [row[1] for row in rows]
    cp_gain = [row[2] for row in rows]
    total = [row[3] for row in rows]
    assert statistics.mean(hcg_gain) > 1.0
    assert statistics.mean(cp_gain) > 1.0
    assert all(t >= h * 0.95 for t, h in zip(total, hcg_gain))
    # Deviation note (EXPERIMENTS.md): the paper attributes ~92% of the
    # benefit to the HCG; our scaled model's cache-resident OAG shrinks the
    # software generation cost it removes, so the CP's latency hiding
    # carries a larger share here.  Both must contribute materially.
    assert statistics.mean(total) > 2.0

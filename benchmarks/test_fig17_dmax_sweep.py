"""Figure 17: sensitivity to the maximum exploration depth D_max."""

from repro.harness.experiments import fig17_dmax_sweep
from repro.harness.runner import get_runner


def test_fig17_dmax_sweep(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig17",
        benchmark.pedantic(fig17_dmax_sweep, args=(runner,), rounds=1, iterations=1),
    )
    speedups = {row[0]: row[2] for row in rows}
    # Paper: performance improves up to D_max = 16, then flattens/declines.
    assert speedups[16] >= speedups[2]
    assert speedups[16] >= 0.95 * max(speedups.values())

"""Figure 18: sensitivity to the OAG pruning threshold W_min."""

from repro.harness.experiments import fig18_wmin_sweep
from repro.harness.runner import get_runner


def test_fig18_wmin_sweep(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig18",
        benchmark.pedantic(fig18_wmin_sweep, args=(runner,), rounds=1, iterations=1),
    )
    performance = {row[0]: row[2] for row in rows}
    # Paper shape (axis shifted with the weight scale, see experiments.py):
    # small thresholds are near-equivalent; pruning past the typical
    # overlap weight degrades performance as crucial edges vanish.
    assert performance[1] == 1.0
    assert performance[3] > 0.8  # small drop for small thresholds
    assert performance[65] < max(performance.values())
    assert performance[65] <= performance[3]

"""Figure 19: sensitivity to the LLC size (paper 8-32 MB, scaled 2-8 KB)."""

from repro.harness.experiments import fig19_llc_sweep
from repro.harness.runner import get_runner


def test_fig19_llc_sweep(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig19",
        benchmark.pedantic(fig19_llc_sweep, args=(runner,), rounds=1, iterations=1),
    )
    speedups = [row[2] for row in rows]
    # Paper: growing the LLC 4x improves ChGraph by ~1.30x — a mild effect
    # because chain scheduling already keeps the hot set near the core.
    assert speedups[-1] >= 1.0
    assert speedups[-1] < 3.0

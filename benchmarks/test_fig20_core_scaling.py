"""Figure 20: scaling with the number of cores."""

from repro.harness.experiments import fig20_core_scaling
from repro.harness.runner import get_runner


def test_fig20_core_scaling(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig20",
        benchmark.pedantic(fig20_core_scaling, args=(runner,), rounds=1, iterations=1),
    )
    chgraph_cycles = [row[2] for row in rows]
    # More cores -> faster, with diminishing returns (paper's growth-rate
    # observation): the 8->16 gain is smaller than the 4->8 gain.
    assert chgraph_cycles[0] > chgraph_cycles[1] > chgraph_cycles[2]
    gain_4_8 = chgraph_cycles[0] / chgraph_cycles[1]
    gain_8_16 = chgraph_cycles[1] / chgraph_cycles[2]
    assert gain_4_8 >= gain_8_16 * 0.9
    # ChGraph keeps beating Hygra at every core count.
    assert all(row[3] > 1.0 for row in rows)

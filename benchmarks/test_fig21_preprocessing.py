"""Figure 21: ChGraph's extra preprocessing time and storage."""

from repro.harness.experiments import fig21_preprocessing
from repro.harness.runner import get_runner


def test_fig21_preprocessing(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig21",
        benchmark.pedantic(fig21_preprocessing, args=(runner,), rounds=1, iterations=1),
    )
    # Paper: +13.6%-46% preprocessing time and +13.9%-20.4% storage.  The
    # shape check: both overheads exist, are bounded, and storage stays a
    # modest fraction of the dataset.
    for _, extra_time, extra_storage in rows:
        assert extra_time > 0
        assert 0 < extra_storage < 100

"""Figure 22: total running time including preprocessing."""

import statistics

from repro.harness.experiments import fig22_total_time
from repro.harness.runner import get_runner


def test_fig22_total_time(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig22",
        benchmark.pedantic(fig22_total_time, args=(runner,), rounds=1, iterations=1),
    )
    speedups = [row[2] for row in rows]
    # Paper: ChGraph still runs 2.20x-3.89x faster with preprocessing
    # included.  Shape: it keeps winning on average even after paying for
    # the OAG build.
    assert statistics.mean(speedups) > 1.0

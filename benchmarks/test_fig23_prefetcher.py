"""Figure 23: ChGraph vs an event-driven hardware prefetcher."""

import statistics

from repro.harness.experiments import fig23_prefetcher
from repro.harness.runner import get_runner


def test_fig23_prefetcher(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig23",
        benchmark.pedantic(fig23_prefetcher, args=(runner,), rounds=1, iterations=1),
    )
    prefetcher_gain = [row[2] for row in rows]
    chgraph_over_prefetcher = [row[3] for row in rows]
    # The prefetcher does help over Hygra (it hides latency) ...
    assert statistics.mean(prefetcher_gain) > 1.0
    # ... but ChGraph still beats it (paper: 1.56x-2.88x) because it changes
    # the order instead of just hiding latency.
    assert statistics.mean(chgraph_over_prefetcher) > 1.0

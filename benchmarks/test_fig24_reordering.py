"""Figure 24: spatial reordering does not displace chain scheduling."""

from repro.harness.experiments import fig24_reordering
from repro.harness.runner import get_runner


def test_fig24_reordering(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig24",
        benchmark.pedantic(fig24_reordering, args=(runner,), rounds=1, iterations=1),
    )
    speedups = {row[0]: row[2] for row in rows}
    # Paper: reordering's overhead offsets its benefit; ChGraph wins with or
    # without it.
    assert speedups["ChGraph"] > speedups["Hygra+Reorder"]
    assert speedups["ChGraph"] > 1.0
    assert speedups["Hygra+Reorder"] < speedups["ChGraph+Reorder"] * 2

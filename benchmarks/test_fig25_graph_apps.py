"""Figure 25: generality — ordinary graph applications (§VI-I)."""

import statistics

from repro.harness.experiments import fig25_graph_apps
from repro.harness.runner import get_runner


def test_fig25_graph_apps(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "fig25",
        benchmark.pedantic(fig25_graph_apps, args=(runner,), rounds=1, iterations=1),
    )
    vs_ligra = [row[2] for row in rows]
    vs_hats = [row[3] for row in rows]
    # Paper: ChGraph offers 2.13x over Ligra on average and performs
    # comparably to HATS on ordinary graphs (the OAG degenerates to the
    # input graph).
    assert statistics.mean(vs_ligra) > 1.0
    assert all(0.3 < ratio < 5.0 for ratio in vs_hats)

"""The abstract's headline claims, condensed into one table."""

from repro.harness.experiments import headline_summary
from repro.harness.runner import get_runner


def test_headline_summary(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "summary",
        benchmark.pedantic(headline_summary, args=(runner,), rounds=1, iterations=1),
    )
    for app, s_min, s_max, r_min, r_max, gla_mean in rows:
        assert s_min > 1.0, f"{app}: ChGraph must beat Hygra everywhere"
        assert r_min > 1.0, f"{app}: DRAM accesses must shrink everywhere"
        assert gla_mean < 1.0, f"{app}: software GLA must lose on average"

"""Sharded parallel executor vs serial on a cold multi-figure run matrix.

Guards the tentpole claim of the parallel-executor PR: with four jobs on a
machine with at least four usable CPUs, a cold run of the fig02+fig05
matrix (22 runs across six resource groups) is at least 1.5× faster than
the same matrix executed serially, and the figure tables assembled from
the two stores are byte-identical.  Skipped on smaller machines, where
process-level parallelism cannot pay for itself.
"""

from __future__ import annotations

import os

import pytest

from repro.benchmark.measure import timed
from repro.harness import experiments as registry
from repro.harness.parallel import execute_runs, plan_shards
from repro.harness.report import render_table
from repro.harness.runner import Runner

MIN_SPEEDUP = 1.5
JOBS = 4
FIGURES = ("fig02", "fig05")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _render(runner: Runner, figure: str) -> str:
    title, headers, rows = getattr(registry, {
        "fig02": "fig02_memory_accesses",
        "fig05": "fig05_memory_stalls",
    }[figure])(runner)
    return render_table(headers, rows, title=title)


@pytest.mark.skipif(
    _usable_cpus() < JOBS,
    reason=f"needs ≥{JOBS} CPUs for a meaningful parallel-speedup gate",
)
def test_parallel_cold_run_speedup(benchmark, emit, tmp_path):
    specs = registry.run_matrix(FIGURES)
    assert len(specs) == 22
    assert len(plan_shards(specs, JOBS)) == JOBS  # enough groups to fan out

    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"

    def measure():
        serial_report, serial_s = timed(
            lambda: execute_runs(specs, cache_dir=serial_dir, jobs=1)
        )
        assert serial_report.ok and not serial_report.parallel

        parallel_report, parallel_s = timed(
            lambda: execute_runs(
                specs, cache_dir=parallel_dir, jobs=JOBS, timeout=600
            )
        )
        assert parallel_report.ok and parallel_report.parallel

        # Byte-identical tables from the two stores' warm hits.
        serial_runner = Runner(cache_dir=serial_dir)
        parallel_runner = Runner(cache_dir=parallel_dir)
        for figure in FIGURES:
            assert _render(serial_runner, figure) == _render(
                parallel_runner, figure
            )

        rows = [
            ["runs", len(specs)],
            ["shards (parallel)", len(parallel_report.shards)],
            ["serial cold run (s)", round(serial_s, 2)],
            [f"parallel cold run, {JOBS} jobs (s)", round(parallel_s, 2)],
            ["speedup", round(serial_s / parallel_s, 2)],
        ]
        title = (
            f"Parallel sharded executor — cold {'+'.join(FIGURES)} matrix, "
            f"{JOBS} jobs"
        )
        return title, ["quantity", "value"], rows

    rows = emit(
        "parallel_speedup",
        benchmark.pedantic(measure, rounds=1, iterations=1),
    )
    speedup = rows[4][1]
    assert speedup >= MIN_SPEEDUP, (
        f"parallel cold run only {speedup}x faster than serial "
        f"(need ≥{MIN_SPEEDUP}x with {JOBS} jobs)"
    )

"""Scalar vs. vectorized preprocessing speedup on a ≥2k-hyperedge input.

Guards the tentpole claim of the fast-path PR: the vectorized OAG builder
is at least 5× faster than the scalar reference on a generator-produced
hypergraph with at least 2k hyperedges, while producing a bit-identical
CSR.  Chain generation timings ride along for context (its fast path is
parity-tested in ``tests/core/test_fast_parity.py``).
"""

from __future__ import annotations

import numpy as np

from repro.benchmark.measure import timed
from repro.core.chain import ChainGenerator
from repro.core.oag import build_oag
from repro.hypergraph.generators import paper_dataset

MIN_SPEEDUP = 5.0


def test_preprocessing_speedup(benchmark, emit):
    hypergraph = paper_dataset("OK")
    assert hypergraph.num_hyperedges >= 2000

    def measure():
        scalar_oag, scalar_s = timed(
            lambda: build_oag(hypergraph, "hyperedge", fast=False)
        )
        fast_oag, fast_s = timed(
            lambda: build_oag(hypergraph, "hyperedge", fast=True)
        )
        assert np.array_equal(scalar_oag.csr.offsets, fast_oag.csr.offsets)
        assert np.array_equal(scalar_oag.csr.indices, fast_oag.csr.indices)
        assert np.array_equal(scalar_oag.csr.weights, fast_oag.csr.weights)
        assert scalar_oag.build_operations == fast_oag.build_operations

        active = np.ones(fast_oag.num_nodes, dtype=bool)
        scalar_chains, chain_scalar_s = timed(
            lambda: ChainGenerator(fast=False).generate(active, fast_oag)
        )
        fast_chains, chain_fast_s = timed(
            lambda: ChainGenerator(fast=True).generate(active, fast_oag)
        )
        assert scalar_chains.chains == fast_chains.chains

        rows = [
            [
                "OAG build (H-OAG)",
                round(scalar_s * 1e3, 1),
                round(fast_s * 1e3, 1),
                round(scalar_s / fast_s, 1),
            ],
            [
                "Chain generation (all active)",
                round(chain_scalar_s * 1e3, 1),
                round(chain_fast_s * 1e3, 1),
                round(chain_scalar_s / chain_fast_s, 1),
            ],
        ]
        title = (
            f"Preprocessing fast-path speedup — {hypergraph.name} "
            f"({hypergraph.num_hyperedges} hyperedges)"
        )
        headers = ["kernel", "scalar (ms)", "fast (ms)", "speedup"]
        return title, headers, rows

    rows = emit(
        "preprocessing_speedup",
        benchmark.pedantic(measure, rounds=1, iterations=1),
    )
    oag_speedup = rows[0][3]
    assert oag_speedup >= MIN_SPEEDUP, (
        f"vectorized OAG build only {oag_speedup}x faster (need ≥{MIN_SPEEDUP}x)"
    )

"""Warm artifact-store loads vs cold GlaResources builds on OK.

Guards the tentpole claim of the store PR: ``GlaResources.build_or_load``
against a prewarmed store is at least 5× faster than a cold build on the
OK dataset, the loaded artifact is bit-identical to a freshly built one,
and a corrupted on-disk entry degrades to a rebuild rather than a crash.
"""

from __future__ import annotations

import numpy as np

from repro.benchmark.measure import timed
from repro.engine import GlaResources
from repro.hypergraph.generators import paper_dataset
from repro.store import ArtifactStore, hypergraph_content_hash, resources_key

MIN_SPEEDUP = 5.0
NUM_CORES = 16


def test_store_warm_speedup(benchmark, emit, tmp_path):
    hypergraph = paper_dataset("OK")
    store = ArtifactStore(tmp_path)

    def measure():
        cold, cold_s = timed(
            lambda: GlaResources.build_or_load(hypergraph, NUM_CORES, store=store)
        )
        assert store.stats.writes == 1  # cold pass populated the store
        warm, warm_s = timed(
            lambda: GlaResources.build_or_load(hypergraph, NUM_CORES, store=store)
        )
        assert store.stats.hits == 1

        # Parity: the loaded artifact is bit-identical to the built one.
        for a, b in zip(
            (*cold.vertex_oags, *cold.hyperedge_oags),
            (*warm.vertex_oags, *warm.hyperedge_oags),
            strict=True,
        ):
            assert np.array_equal(a.csr.offsets, b.csr.offsets)
            assert np.array_equal(a.csr.indices, b.csr.indices)
            assert np.array_equal(a.csr.weights, b.csr.weights)
        assert cold.build_operations == warm.build_operations
        assert cold.storage_bytes() == warm.storage_bytes()

        # Corruption: truncate the payload; next load rebuilds, no crash.
        key = resources_key(
            hypergraph_content_hash(hypergraph), NUM_CORES, cold.w_min, cold.d_max
        )
        path = store._payload_path("resources", key)
        path.write_bytes(path.read_bytes()[:64])
        rebuilt, rebuild_s = timed(
            lambda: GlaResources.build_or_load(hypergraph, NUM_CORES, store=store)
        )
        assert store.stats.corruptions == 1
        assert rebuilt.storage_bytes() == cold.storage_bytes()

        rows = [
            ["cold build_or_load (miss)", round(cold_s * 1e3, 1)],
            ["warm build_or_load (hit)", round(warm_s * 1e3, 1)],
            ["corrupted entry (rebuild)", round(rebuild_s * 1e3, 1)],
            ["warm speedup", round(cold_s / warm_s, 1)],
        ]
        title = (
            f"Artifact-store warm speedup — {hypergraph.name} "
            f"({hypergraph.num_hyperedges} hyperedges, {NUM_CORES} cores)"
        )
        return title, ["quantity", "value (ms / ×)"], rows

    rows = emit(
        "store_warm_speedup",
        benchmark.pedantic(measure, rounds=1, iterations=1),
    )
    speedup = rows[3][1]
    assert speedup >= MIN_SPEEDUP, (
        f"warm load only {speedup}x faster than cold build (need ≥{MIN_SPEEDUP}x)"
    )

"""Table I: the simulated system configuration."""

from repro.harness.experiments import table1_rows


def test_table1_config(benchmark, emit):
    rows = emit("table1", benchmark.pedantic(table1_rows, rounds=1, iterations=1))
    structures = [row[0] for row in rows]
    assert structures == [
        "Cores", "L1 caches", "L2 cache", "L3 cache", "NoC", "Coherence",
        "Main memory",
    ]
    assert "16 cores" in rows[0][1]
    assert "32MB shared" in rows[3][1]

"""Table II: the five hypergraph datasets (scaled stand-ins)."""

from repro.harness.experiments import table2_rows
from repro.harness.runner import get_runner


def test_table2_datasets(benchmark, emit):
    runner = get_runner()
    rows = emit(
        "table2",
        benchmark.pedantic(table2_rows, args=(runner,), rounds=1, iterations=1),
    )
    names = [row[0] for row in rows]
    assert names == ["FS", "OK", "LJ", "WEB", "OG"]
    # Table II orderings preserved: FS and WEB are the |V| > |H| datasets,
    # OG has the densest incidence structure per hyperedge.
    by_name = {row[0]: row for row in rows}
    for key in ("FS", "WEB"):
        assert by_name[key][1] > by_name[key][2]
    for key in ("OK", "LJ", "OG"):
        assert by_name[key][2] > by_name[key][1]
    degrees = {name: row[3] / row[2] for name, row in by_name.items()}
    assert max(degrees, key=degrees.get) == "OG"

"""Section VI-E: area, power, and buffer storage of one ChGraph engine."""

from repro.harness.experiments import vi_e_area_power


def test_vi_e_area_power(benchmark, emit):
    rows = emit(
        "vi_e", benchmark.pedantic(vi_e_area_power, rounds=1, iterations=1)
    )
    values = {row[0]: row[1] for row in rows}
    assert values["Stack storage"] == "1216 B"
    assert values["Chain FIFO storage"] == "128 B"
    assert values["Bipartite-edge FIFO storage"] == "768 B"
    assert values["Config registers"] == "84 B"
    # Paper: 0.094 mm2, 0.26% of a core; 61 mW, 0.19% of TDP.
    assert values["Total area"].startswith("0.09")
    assert values["Area vs core"] == "0.26%"
    assert values["Total power"] in ("61 mW", "62 mW", "60 mW")
    assert values["Power vs core TDP"] == "0.19%"

#!/usr/bin/env python3
"""The paper's motivating example: scholarly impact in a collaboration network.

The introduction motivates hypergraphs with an author-collaboration network:
authors are vertices, co-authored papers are hyperedges, and a
PageRank-style analysis measures scholarly impact.  An ordinary graph loses
the per-paper grouping (every co-author pair looks alike); the hypergraph
keeps it, so prolific authors of *small, strong* collaborations are scored
differently from names buried on huge author lists.

This example builds a synthetic collaboration network, ranks authors with
hypergraph PageRank, then contrasts against the clique-expanded ordinary
graph to show the semantic difference the paper describes.

Run:  python examples/author_collaboration.py
"""

from __future__ import annotations

import random

import numpy as np

from repro import HygraEngine, PageRank
from repro.harness.report import render_table
from repro.hypergraph.generators import two_uniform_graph
from repro.hypergraph.hypergraph import Hypergraph

NUM_AUTHORS = 400
NUM_PAPERS = 600


def build_collaboration_network(seed: int = 17) -> Hypergraph:
    """Research groups write small papers; consortia write huge ones."""
    rng = random.Random(seed)
    groups = [rng.sample(range(NUM_AUTHORS), 12) for _ in range(40)]
    papers = []
    for _ in range(NUM_PAPERS - 12):
        group = rng.choice(groups)
        papers.append(rng.sample(group, rng.randint(2, 4)))
    # A handful of 40-author consortium papers.
    for _ in range(12):
        papers.append(rng.sample(range(NUM_AUTHORS), 40))
    return Hypergraph.from_hyperedge_lists(
        papers, num_vertices=NUM_AUTHORS, name="collab"
    )


def main() -> None:
    hypergraph = build_collaboration_network()
    print(f"collaboration network: {hypergraph}\n")

    # Hypergraph ranking: each paper's influence is split among its authors.
    hyper_run = HygraEngine().run(PageRank(iterations=10), hypergraph)
    hyper_rank = hyper_run.result

    # Ordinary-graph ranking on the clique expansion: per-paper structure is
    # lost, so consortium papers flood the graph with pairwise edges.
    clique_edges = hypergraph.clique_expansion()
    graph = two_uniform_graph(
        clique_edges, num_vertices=NUM_AUTHORS, name="collab-clique"
    )
    graph_run = HygraEngine().run(PageRank(iterations=10), graph)
    graph_rank = graph_run.result

    top_hyper = np.argsort(hyper_rank)[::-1][:8]
    rows = []
    for author in top_hyper:
        rows.append([
            f"author {int(author)}",
            hypergraph.vertex_degree(int(author)),
            hyper_rank[author],
            graph_rank[author],
            int(np.sum(graph_rank > graph_rank[author])) + 1,
        ])
    print(
        render_table(
            ["Author", "#Papers", "Hypergraph PR", "Clique PR", "Clique pos"],
            rows,
            title="Top authors by hypergraph PageRank",
        )
    )

    hyper_order = np.argsort(np.argsort(hyper_rank))
    clique_order = np.argsort(np.argsort(graph_rank))
    disagreement = float(np.mean(np.abs(hyper_order - clique_order))) / NUM_AUTHORS
    print(
        f"\nmean rank displacement between the two models: "
        f"{disagreement:.1%} of the field"
    )
    print(
        "the clique expansion inflates consortium co-authors; the hypergraph "
        "keeps per-paper semantics (the paper's Figure 1 argument)"
    )


if __name__ == "__main__":
    main()

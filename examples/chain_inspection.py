#!/usr/bin/env python3
"""Inspect the chain machinery on the paper's own running example.

Recreates Figures 1, 4 and 11 programmatically: the example hypergraph, its
bipartite CSR storage, the hyperedge OAG with weights, the generated chain
<h0, h2, h1, h3>, and the cache-behaviour contrast of Figures 6 vs 9 (index
order needs 12 value loads, chain order needs 8 on a 4-entry cache).

Run:  python examples/chain_inspection.py
"""

from __future__ import annotations

import numpy as np

from repro.core.chain import ChainGenerator
from repro.core.oag import build_oag
from repro.core.tuples import TupleLoader
from repro.hypergraph.hypergraph import Hypergraph


def figure1_hypergraph() -> Hypergraph:
    return Hypergraph.from_hyperedge_lists(
        [[0, 4, 6], [1, 2, 3, 5], [0, 2, 4], [1, 3, 6]],
        num_vertices=7,
        name="figure1",
    )


def simulate_small_cache(order: list[int], hypergraph: Hypergraph, size: int = 4):
    """The paper's illustration: a fully-associative 4-entry vertex cache."""
    cache: list[int] = []
    loads = 0
    for h in order:
        for v in map(int, hypergraph.incident_vertices(h)):
            if v in cache:
                cache.remove(v)
            else:
                loads += 1
                if len(cache) >= size:
                    cache.pop(0)
            cache.append(v)
    return loads


def main() -> None:
    hypergraph = figure1_hypergraph()
    print("Figure 1(a): the example hypergraph")
    for h in range(hypergraph.num_hyperedges):
        members = ", ".join(f"v{int(v)}" for v in hypergraph.incident_vertices(h))
        print(f"  h{h} = {{{members}}}")

    print("\nFigure 4(c): CSR bipartite storage (hyperedge side)")
    print(f"  hyperedge_offset = {list(hypergraph.hyperedges.offsets)}")
    print(f"  incident_vertex  = {list(hypergraph.hyperedges.indices)}")

    oag = build_oag(hypergraph, "hyperedge", w_min=1)
    print("\nFigure 11(b): the hyperedge OAG (weight-descending rows)")
    for node in range(oag.num_nodes):
        pairs = ", ".join(
            f"h{int(n)}(w={int(w)})"
            for n, w in zip(oag.neighbors(node), oag.weights(node))
        )
        print(f"  h{node}: {pairs or '-'}")

    chains = ChainGenerator().generate(np.ones(4, dtype=bool), oag)
    chain = chains.chains[0]
    print("\nFigure 1(b): the generated hyperedge chain")
    print("  <" + ", ".join(f"h{h}" for h in chain) + ">")
    assert chain == [0, 2, 1, 3], "the paper's chain"

    index_loads = simulate_small_cache([0, 1, 2, 3], hypergraph)
    chain_loads = simulate_small_cache(chain, hypergraph)
    print("\nFigures 6 vs 9: vertex_value loads with a 4-entry cache")
    print(f"  index order <h0,h1,h2,h3>: {index_loads} off-chip loads")
    print(f"  chain order <h0,h2,h1,h3>: {chain_loads} off-chip loads")
    assert (index_loads, chain_loads) == (12, 8), "the paper's counts"

    print("\nChain-guided loading (§IV-B): tuples for the chain")
    loader = TupleLoader(hypergraph, "hyperedge")
    for entry in loader.chain_tuples(iter(chain)):
        if entry.src < 0:
            print("  {-1, -1, -1, -1}  <- end-of-chains sentinel")
        else:
            marker = "loads src+dst" if entry.fresh_src else "dst only   "
            print(f"  {{h{entry.src}, v{entry.dst}, ...}}  ({marker})")


if __name__ == "__main__":
    main()

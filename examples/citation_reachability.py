#!/usr/bin/env python3
"""Directed hypergraphs: influence reachability in a citation network.

A paper cites several earlier papers: that is one *directed hyperedge* whose
sources are the cited papers and whose destination is the citing paper
(knowledge flows from the cited to the citer).  Forward reachability from a
seminal paper finds everything it (transitively) influenced; backward
reachability finds its intellectual ancestry — two different questions an
undirected model cannot separate.

Run:  python examples/citation_reachability.py
"""

from __future__ import annotations

import random

import numpy as np

from repro.algorithms.bfs import Bfs
from repro.engine.hygra import HygraEngine
from repro.harness.report import render_table
from repro.hypergraph.directed import DirectedHypergraph
from repro.hypergraph.validate import audit

NUM_PAPERS = 600


def build_citation_network(seed: int = 29) -> DirectedHypergraph:
    """Papers arrive in id order; each cites 1-5 earlier papers."""
    rng = random.Random(seed)
    hyperedges = []
    for paper in range(5, NUM_PAPERS):
        horizon = max(0, paper - 120)  # citations favour recent work
        pool = range(horizon, paper)
        cited = rng.sample(list(pool), k=min(rng.randint(1, 5), paper - horizon))
        hyperedges.append((cited, [paper]))
    return DirectedHypergraph.from_lists(
        hyperedges, num_vertices=NUM_PAPERS, name="citations"
    )


def reachable_count(distances: np.ndarray) -> int:
    return int(np.count_nonzero(np.isfinite(distances))) - 1  # minus the seed


def main() -> None:
    network = build_citation_network()
    print(f"citation network: {network}")

    undirected = network.as_undirected()
    report = audit(undirected)
    print(
        f"audit: mean refs/paper {report.mean_hyperedge_degree:.1f}, "
        f"warnings: {list(report.warnings) or 'none'}\n"
    )

    engine = HygraEngine()
    rows = []
    for seed_paper in (0, 3, 150, 300):
        influence = engine.run(Bfs(source=seed_paper), network.forward())
        ancestry = engine.run(Bfs(source=seed_paper), network.backward())
        both = engine.run(Bfs(source=seed_paper), undirected)
        rows.append([
            f"paper {seed_paper}",
            reachable_count(influence.result),
            reachable_count(ancestry.result),
            reachable_count(both.result),
        ])
    print(
        render_table(
            ["Seed", "Influenced (fwd)", "Ancestry (bwd)", "Undirected"],
            rows,
            title="Reachability from selected papers",
        )
    )

    # Early papers influence many and descend from few; late papers reverse.
    early, late = rows[0], rows[-1]
    print(
        f"\npaper 0 influences {early[1]} papers but has {early[2]} ancestors; "
        f"paper 300 influences {late[1]} and has {late[2]} — direction matters, "
        "and the undirected projection conflates the two."
    )


if __name__ == "__main__":
    main()

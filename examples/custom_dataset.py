#!/usr/bin/env python3
"""Bring your own hypergraph: load, audit, preprocess, simulate.

The onboarding path for real data: write/read any of the supported formats
(hyperedge list, KONECT bipartite pairs, MatrixMarket, JSON), run the
structural audit, build the GLA preprocessing artifacts, and compare
schedulers — everything a user does before trusting a result.

Run:  python examples/custom_dataset.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ChGraphEngine, ConnectedComponents, GlaResources, HygraEngine
from repro.harness.report import render_table
from repro.hypergraph.generators import AffiliationConfig, generate_affiliation_hypergraph
from repro.hypergraph.io import (
    load_hyperedge_list,
    load_matrix_market,
    save_hyperedge_list,
    save_matrix_market,
)
from repro.hypergraph.validate import audit
from repro.sim import SimulatedSystem, scaled_config


def main() -> None:
    # Stand-in for "your data": in practice this is a file you downloaded.
    original = generate_affiliation_hypergraph(
        AffiliationConfig(
            num_vertices=900,
            num_hyperedges=900,
            mean_hyperedge_degree=30.0,
            min_hyperedge_degree=12,
            num_communities=14,
            overlap_bias=0.97,
            seed=51,
        ),
        name="mydata",
    )

    with tempfile.TemporaryDirectory() as tmp:
        # 1. Round-trip through two interchange formats.
        hgr = Path(tmp) / "mydata.hgr"
        mtx = Path(tmp) / "mydata.mtx"
        save_hyperedge_list(original, hgr)
        save_matrix_market(original, mtx)
        from_hgr = load_hyperedge_list(hgr, num_vertices=original.num_vertices)
        from_mtx = load_matrix_market(mtx)
        assert from_hgr.hyperedges == from_mtx.hyperedges
        hypergraph = from_mtx
        print(f"loaded {hypergraph} from {mtx.name}")

    # 2. Audit before spending simulation time.
    report = audit(hypergraph)
    print(
        f"audit: deg(h) mean {report.mean_hyperedge_degree:.1f} "
        f"(max {report.max_hyperedge_degree}), deg(v) mean "
        f"{report.mean_vertex_degree:.1f}, sharable "
        f"{report.sharable_vertex_ratio:.0%}"
    )
    if report.warnings:
        print("warnings:", *report.warnings, sep="\n  - ")
    else:
        print("audit clean: good overlap structure for chain scheduling")

    # 3. Preprocess (the OAG build Figure 21 prices) and simulate.
    config = scaled_config(num_cores=8, llc_kb=2)
    resources = GlaResources.build(hypergraph, config.num_cores)
    print(
        f"\nOAG build: {resources.build_seconds:.2f}s, "
        f"+{resources.storage_bytes() / 1024:.0f} KiB "
        f"(+{100 * resources.storage_bytes() / hypergraph.size_bytes():.0f}% "
        "over the bipartite CSR)"
    )

    rows = []
    baseline = None
    for engine in (HygraEngine(), ChGraphEngine(resources)):
        run = engine.run(ConnectedComponents(), hypergraph, SimulatedSystem(config))
        if baseline is None:
            baseline = run
        rows.append([
            run.engine, run.iterations, run.cycles, run.dram_accesses,
            run.speedup_over(baseline),
        ])
    print(
        render_table(
            ["Engine", "Iters", "Cycles", "DRAM", "Speedup"],
            rows,
            title="Connected components on your data",
        )
    )


if __name__ == "__main__":
    main()

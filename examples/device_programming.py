#!/usr/bin/env python3
"""Program the ChGraph device through its ISA-level interface (§V-A).

Demonstrates the two instructions the paper adds — ``CH_CONFIGURE`` and
``CH_FETCH_BIPARTITE_EDGE`` — by writing the hypergraph processing loop the
way the general-purpose core would: configure the per-core engine for a
phase, then pop prefetched tuples until the ``{-1,-1,-1,-1}`` sentinel, and
run only the Apply computation on the core.

Run:  python examples/device_programming.py
"""

from __future__ import annotations

import numpy as np

from repro.chgraph.engine import ChGraphConfigRegisters, ChGraphDevice
from repro.core.oag import build_chunk_oags
from repro.hypergraph.generators import AffiliationConfig, generate_affiliation_hypergraph
from repro.hypergraph.partition import contiguous_chunks
from repro.sim.config import scaled_config


def main() -> None:
    hypergraph = generate_affiliation_hypergraph(
        AffiliationConfig(
            num_vertices=96,
            num_hyperedges=64,
            mean_hyperedge_degree=8.0,
            num_communities=6,
            overlap_bias=0.9,
            seed=1,
        ),
        name="demo",
    )
    num_cores = 4
    config = scaled_config(num_cores=num_cores)
    chunks = contiguous_chunks(hypergraph.num_hyperedges, num_cores)
    oags = build_chunk_oags(hypergraph, "hyperedge", chunks, w_min=1)

    # One PageRank-style vertex-computation phase, device-driven:
    # the cores only pop tuples and apply VF.
    vertex_value = np.full(hypergraph.num_vertices, 1.0 / hypergraph.num_vertices)
    hyperedge_value = np.random.default_rng(0).random(hypergraph.num_hyperedges)
    new_vertex_value = np.zeros_like(vertex_value)
    alpha = 0.85

    total_tuples = 0
    for chunk, oag in zip(chunks, oags):
        device = ChGraphDevice(config)
        # ChGraph_Configure(): phase label 0 = vertex computation, the chunk
        # range, the activity bitmap, and the chunk's OAG (Figure 13).
        device.ch_configure(
            ChGraphConfigRegisters(
                phase_label=0,
                hypergraph=hypergraph,
                bitmap=np.ones(len(chunk), dtype=bool),
                chunk_first=chunk.first,
                chunk_last=chunk.last,
                oag=oag,
            )
        )
        # The core's loop: ChGraph_fetch_bipartite_edge() until the sentinel.
        while True:
            entry = device.ch_fetch_bipartite_edge()
            if entry.src < 0:
                break
            h, v = entry.src, entry.dst
            share = hyperedge_value[h] / hypergraph.hyperedge_degree(h)
            addend = (1 - alpha) / (
                hypergraph.num_vertices * hypergraph.vertex_degree(v)
            )
            new_vertex_value[v] += addend + alpha * share
            total_tuples += 1
        print(
            f"core {chunk.core}: chunk [{chunk.first}, {chunk.last}) drained, "
            f"chain FIFO peak occupancy {device.chain_fifo.max_occupancy}, "
            f"tuple FIFO peak occupancy {device.tuple_fifo.max_occupancy}"
        )

    assert total_tuples == hypergraph.num_bipartite_edges
    print(f"\nprocessed {total_tuples} bipartite-edge tuples across {num_cores} cores")
    print(f"sum of updated vertex values: {new_vertex_value.sum():.4f}")


if __name__ == "__main__":
    main()

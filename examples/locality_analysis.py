#!/usr/bin/env python3
"""Why chain scheduling works: reuse distances and chain quality.

Measures, without running the cycle simulator, the two quantities behind
the paper's Figures 6/9 story on a real-sized dataset:

1. the reuse-distance profile of the ``vertex_value`` access stream under
   index order vs chain order (shorter distances = more cache hits at any
   capacity), and
2. chain quality: how much of the OAG's overlap weight the generated chains
   place on adjacent pairs, per chunk.

Run:  python examples/locality_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.core.chain import ChainGenerator
from repro.core.metrics import chain_quality, schedule_affinity
from repro.core.oag import build_chunk_oags
from repro.harness.report import render_table
from repro.hypergraph.generators import paper_dataset
from repro.hypergraph.partition import contiguous_chunks
from repro.sim.reuse import dst_value_stream, profile_stream

NUM_CORES = 16


def main() -> None:
    hypergraph = paper_dataset("OK")
    print(f"dataset: {hypergraph}\n")

    chunks = contiguous_chunks(hypergraph.num_hyperedges, NUM_CORES)
    oags = build_chunk_oags(hypergraph, "hyperedge", chunks)
    generator = ChainGenerator()

    index_order: list[int] = []
    chain_order: list[int] = []
    qualities = []
    for chunk, oag in zip(chunks, oags):
        index_order.extend(chunk.ids())
        chains = generator.generate(np.ones(len(chunk), dtype=bool), oag)
        chain_order.extend(chains.order())
        qualities.append(chain_quality(chains, oag))

    # 1. Reuse distances of the vertex_value stream (Figures 6 vs 9).
    index_profile = profile_stream(dst_value_stream(hypergraph, index_order))
    chain_profile = profile_stream(dst_value_stream(hypergraph, chain_order))
    rows = []
    for capacity in (16, 64, 256, 1024):
        rows.append([
            f"{capacity} lines",
            index_profile.hit_rate(capacity),
            chain_profile.hit_rate(capacity),
        ])
    print(
        render_table(
            ["LRU capacity", "Index-order hit rate", "Chain-order hit rate"],
            rows,
            title="vertex_value hit rate vs cache capacity (vertex computation)",
        )
    )
    print(
        f"\nmean reuse distance: index={index_profile.mean_distance():.0f} "
        f"lines, chain={chain_profile.mean_distance():.0f} lines"
    )

    # 2. Chain quality per chunk.
    capture = np.mean([q.capture_ratio for q in qualities])
    singleton = np.mean([q.singleton_fraction for q in qualities])
    mean_len = np.mean([q.mean_length for q in qualities])
    print(
        f"chains: capture {capture:.0%} of OAG overlap weight, "
        f"mean length {mean_len:.1f}, {singleton:.0%} singletons"
    )

    # 3. Schedule affinity on the raw hypergraph (works for any scheduler).
    sample = slice(0, 2000)
    print(
        f"schedule affinity (shared vertices between consecutive hyperedges): "
        f"index={schedule_affinity(hypergraph, index_order[sample]):.2f}, "
        f"chain={schedule_affinity(hypergraph, chain_order[sample]):.2f}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Caching & prewarming: pay OAG preprocessing once, reuse it forever.

The paper amortizes preprocessing across algorithms (Fig 21/22); the
artifact store amortizes it across *processes*.  This example prewarms
GlaResources for several (dataset, cores) combinations in parallel worker
processes, then times a cold build against a warm content-addressed load
and shows the store bookkeeping.

Run:  python examples/prewarm_cache.py
"""

from __future__ import annotations

import tempfile
import time

from repro import GlaResources
from repro.harness.report import render_table
from repro.harness.runner import Runner
from repro.hypergraph.generators import paper_dataset
from repro.sim import scaled_config
from repro.store import ArtifactStore, prewarm, prewarm_jobs


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        # 1. Prewarm the store: every (dataset, cores) combo is built in a
        #    separate worker process and written atomically into one
        #    directory.  Equivalent CLI:
        #      python -m repro prewarm --cache-dir ... --datasets WEB,OK --cores 8,16
        jobs = prewarm_jobs(["WEB", "OK"], [8, 16])
        reports = prewarm(cache_dir, jobs, workers=4)
        rows = [
            [r.job.dataset, r.job.num_cores,
             "built" if r.built else "cached",
             round(r.seconds * 1e3, 1), round(r.payload_bytes / 1024, 1)]
            for r in reports
        ]
        print(render_table(
            ["Dataset", "Cores", "Status", "ms", "KB"], rows,
            title=f"Prewarmed {len(reports)} artifacts",
        ))

        # 2. Cold build vs warm load: same artifact, bit-identical payloads.
        hypergraph = paper_dataset("OK")
        store = ArtifactStore(cache_dir)
        start = time.perf_counter()
        built = GlaResources.build(hypergraph, 16)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        loaded = GlaResources.build_or_load(hypergraph, 16, store=store)
        warm_s = time.perf_counter() - start
        assert loaded.storage_bytes() == built.storage_bytes()
        print(
            f"\ncold build: {cold_s * 1e3:.1f} ms   "
            f"warm load: {warm_s * 1e3:.1f} ms   "
            f"({cold_s / warm_s:.0f}x faster)\n"
        )

        # 3. The Runner picks the store up via cache_dir= (or
        #    $REPRO_CACHE_DIR) and persists simulation results too: a second
        #    process running the same workload skips the simulation.
        runner = Runner(pr_iterations=2, cache_dir=cache_dir)
        config = scaled_config(num_cores=16)
        runner.run("ChGraph", "PR", "OK", config)
        print(f"after one simulated run — store: {runner.store.stats}")

        fresh = Runner(pr_iterations=2, cache_dir=cache_dir)  # "new process"
        fresh.run("ChGraph", "PR", "OK", config)
        print(f"same run, fresh runner    — store: {fresh.store.stats}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: run PageRank under Hygra, software GLA, and ChGraph.

Reproduces the paper's headline comparison in miniature: build a Web-trackers
style hypergraph, run hypergraph PageRank on the simulated 16-core system
under each scheduler, and report speedups and DRAM-access reductions.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ChGraphEngine, GlaResources, HygraEngine, PageRank, SoftwareGlaEngine
from repro.harness.report import render_table
from repro.hypergraph.generators import paper_dataset
from repro.sim import SimulatedSystem, scaled_config


def main() -> None:
    # 1. A hypergraph.  `paper_dataset` builds the scaled Table II stand-ins;
    #    any Hypergraph built via Hypergraph.from_hyperedge_lists works too.
    hypergraph = paper_dataset("WEB")
    print(f"dataset: {hypergraph}\n")

    # 2. The simulated system (Table I, scaled) and the GLA preprocessing
    #    artifacts (per-chunk overlap-aware abstraction graphs).
    config = scaled_config()
    resources = GlaResources.build(hypergraph, config.num_cores)
    print(
        f"preprocessing: built {len(resources.vertex_oags)} V-OAGs and "
        f"{len(resources.hyperedge_oags)} H-OAGs "
        f"(+{resources.storage_bytes() / 1024:.0f} KiB) in "
        f"{resources.build_seconds:.2f}s\n"
    )

    # 3. Run the same algorithm under each scheduler.
    runs = {}
    for engine in (
        HygraEngine(),
        SoftwareGlaEngine(resources),
        ChGraphEngine(resources),
    ):
        runs[engine.name] = engine.run(
            PageRank(iterations=3), hypergraph, SimulatedSystem(config)
        )

    hygra = runs["Hygra"]
    rows = [
        [
            name,
            run.cycles,
            run.dram_accesses,
            run.speedup_over(hygra),
            run.dram_reduction_over(hygra),
        ]
        for name, run in runs.items()
    ]
    print(
        render_table(
            ["System", "Cycles", "DRAM accesses", "Speedup", "DRAM reduction"],
            rows,
            title="PageRank on WEB (3 iterations, simulated 16-core system)",
        )
    )

    # 4. Results are identical across schedulers — reordering a synchronous
    #    phase cannot change the answer (the paper's correctness argument).
    import numpy as np

    assert np.allclose(runs["GLA"].result, hygra.result)
    assert np.allclose(runs["ChGraph"].result, hygra.result)
    print("\nall three schedulers computed identical PageRank vectors")


if __name__ == "__main__":
    main()

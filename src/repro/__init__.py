"""ChGraph reproduction: hardware-accelerated hypergraph processing with
chain-driven scheduling (Wang et al., HPCA 2022).

Quick start::

    from repro import Hypergraph, PageRank, HygraEngine, ChGraphEngine
    from repro.hypergraph.generators import paper_dataset
    from repro.sim import SimulatedSystem, scaled_config

    hg = paper_dataset("WEB")
    hygra = HygraEngine().run(PageRank(), hg, SimulatedSystem(scaled_config()))
    chg = ChGraphEngine().run(PageRank(), hg, SimulatedSystem(scaled_config()))
    print(chg.speedup_over(hygra), chg.dram_reduction_over(hygra))
"""

from repro.algorithms import (
    Adsorption,
    BetweennessCentrality,
    Bfs,
    ConnectedComponents,
    KCore,
    MaximalIndependentSet,
    PageRank,
    Sssp,
)
from repro.engine import (
    ChGraphEngine,
    GlaResources,
    HygraEngine,
    RunResult,
    SoftwareGlaEngine,
)
from repro.hypergraph import Csr, Frontier, Hypergraph
from repro.store import ArtifactStore

#: Source-tree fallback; must match ``[project] version`` in pyproject.toml
#: (``tests/test_public_api.py`` pins the two together).
_FALLBACK_VERSION = "1.2.0"


def _detect_version() -> str:
    """The installed distribution version, else the source-tree fallback.

    Package metadata is the single source of truth for deployments (wheels,
    editable installs); running straight off ``PYTHONPATH=src`` has no
    metadata, so the literal above stands in.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        return _FALLBACK_VERSION


__version__ = _detect_version()

__all__ = [
    "Adsorption",
    "ArtifactStore",
    "BetweennessCentrality",
    "Bfs",
    "ChGraphEngine",
    "ConnectedComponents",
    "Csr",
    "Frontier",
    "GlaResources",
    "Hypergraph",
    "HygraEngine",
    "KCore",
    "MaximalIndependentSet",
    "PageRank",
    "RunResult",
    "SoftwareGlaEngine",
    "Sssp",
]

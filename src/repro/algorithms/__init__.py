"""Hypergraph applications (the paper's six) plus ordinary-graph apps."""

from repro.algorithms.base import (
    PHASE_HYPEREDGE,
    PHASE_VERTEX,
    AlgorithmState,
    HypergraphAlgorithm,
)
from repro.algorithms.bc import BetweennessCentrality
from repro.algorithms.bfs import Bfs
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.graph import Adsorption, Sssp
from repro.algorithms.kcore import KCore
from repro.algorithms.mis import MaximalIndependentSet
from repro.algorithms.pagerank import PageRank

__all__ = [
    "PHASE_HYPEREDGE",
    "PHASE_VERTEX",
    "AlgorithmState",
    "HypergraphAlgorithm",
    "Adsorption",
    "BetweennessCentrality",
    "Bfs",
    "ConnectedComponents",
    "KCore",
    "MaximalIndependentSet",
    "PageRank",
    "Sssp",
]


def paper_suite(pr_iterations: int = 10) -> list[HypergraphAlgorithm]:
    """The six applications of the paper's evaluation, in its order."""
    return [
        Bfs(),
        PageRank(iterations=pr_iterations),
        MaximalIndependentSet(),
        BetweennessCentrality(),
        ConnectedComponents(),
        KCore(),
    ]

"""The algorithm abstraction shared by every execution engine.

Algorithm 1 structures a hypergraph application as two update functions: HF
(an active *vertex* updates an incident *hyperedge*) and VF (an active
*hyperedge* updates an incident *vertex*), driven by alternating frontier
phases.  Engines differ only in the *order* they visit active elements and
in the hardware costs they charge — the semantics live here.

Update functions must be commutative over the edges of one phase (sums,
mins, logical-or): the paper's correctness argument for chain scheduling is
exactly that reordering a synchronous phase cannot change its outcome, and
the test suite verifies every algorithm produces equal results under index
order and chain order.
"""

from __future__ import annotations

import abc
import dataclasses
import functools
from typing import Any, Callable

import numpy as np

from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["AlgorithmState", "HypergraphAlgorithm", "PHASE_HYPEREDGE", "PHASE_VERTEX"]

#: Hyperedge computation: active vertices push HF into hyperedges.
PHASE_HYPEREDGE = "hyperedge"
#: Vertex computation: active hyperedges push VF into vertices.
PHASE_VERTEX = "vertex"


@dataclasses.dataclass
class AlgorithmState:
    """Mutable per-run state: the two value arrays plus the frontiers."""

    vertex_values: np.ndarray
    hyperedge_values: np.ndarray
    frontier_v: Frontier
    frontier_e: Frontier
    extras: dict[str, Any] = dataclasses.field(default_factory=dict)


class HypergraphAlgorithm(abc.ABC):
    """A hypergraph application expressed as HF/VF plus lifecycle hooks."""

    #: Short name used in reports ("BFS", "PR", ...).
    name: str = "base"
    #: Hard iteration cap; ``None`` means run to frontier exhaustion.
    max_iterations: int | None = None
    #: Dense algorithms (PR) keep everything active every iteration, so
    #: engines skip activity-bitmap traffic for them (§VI-C: "there is no
    #: need to access the bitmap" for PageRank).
    dense_frontier: bool = False
    #: Whether the update functions read the destination element's degree
    #: (PR's VF does); engines charge the extra offset-array reads.
    reads_dst_degree: bool = False
    #: Relative compute weight of one HF/VF application, scaling the
    #: engine's per-tuple Apply cost: BC's floating-point sigma/delta math
    #: outweighs BFS's compare-and-set.
    apply_cost_factor: float = 1.0

    @abc.abstractmethod
    def init_state(self, hypergraph: Hypergraph) -> AlgorithmState:
        """Initialise values and the seed vertex frontier (Lines 1-3)."""

    @abc.abstractmethod
    def apply_hf(
        self, state: AlgorithmState, hypergraph: Hypergraph, v: int, h: int
    ) -> bool:
        """Apply vertex ``v``'s influence on hyperedge ``h``.

        Returns True when ``h`` should join the hyperedge frontier.
        """

    @abc.abstractmethod
    def apply_vf(
        self, state: AlgorithmState, hypergraph: Hypergraph, h: int, v: int
    ) -> bool:
        """Apply hyperedge ``h``'s influence on vertex ``v``.

        Returns True when ``v`` should join the vertex frontier.
        """

    def phase_apply(
        self, state: AlgorithmState, hypergraph: Hypergraph, phase: str
    ) -> Callable[[int, int], bool]:
        """A per-phase bound form of the phase's update function.

        Engines call this once per phase (never per chunk) and then invoke
        the returned ``apply(src, dst) -> bool`` once per bipartite edge —
        the hot call of every inner loop.  The default binds ``state`` and
        ``hypergraph`` into :meth:`apply_hf`/:meth:`apply_vf` unchanged;
        algorithms may override it to return a closure over cheaper private
        state (plain-list mirrors of the numpy value arrays), provided they
        reconcile that state in :meth:`end_phase` so the update arithmetic
        stays bit-identical to the per-call methods.
        """
        fn = self.apply_hf if phase == PHASE_HYPEREDGE else self.apply_vf
        return functools.partial(fn, state, hypergraph)

    # -- lifecycle hooks (default no-ops) -----------------------------------

    def begin_iteration(
        self, state: AlgorithmState, hypergraph: Hypergraph, iteration: int
    ) -> None:
        """Called before each iteration's hyperedge phase."""

    def begin_phase(
        self, state: AlgorithmState, hypergraph: Hypergraph, phase: str
    ) -> None:
        """Called before a phase starts processing its frontier."""

    def end_phase(
        self,
        state: AlgorithmState,
        hypergraph: Hypergraph,
        phase: str,
        activated: Frontier,
    ) -> Frontier:
        """Transform the set activated during ``phase`` into the next frontier.

        The default is the identity (Algorithm 1's behaviour); algorithms
        with finalisation steps (MIS decisions, k-core re-seeding, BC's
        backward pass) override this to steer the engine.
        """
        return activated

    def finished(
        self, state: AlgorithmState, hypergraph: Hypergraph, iteration: int
    ) -> bool:
        """Convergence test, checked after each iteration's vertex phase.

        Engines additionally stop when both frontiers are empty and a
        ``max_iterations`` cap exists in either place.
        """
        return state.frontier_v.is_empty() and state.frontier_e.is_empty()

    # -- results --------------------------------------------------------------

    def result(self, state: AlgorithmState, hypergraph: Hypergraph) -> np.ndarray:
        """The per-vertex output array (what tests compare across engines)."""
        return state.vertex_values

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

"""Betweenness centrality on a hypergraph (single-source Brandes).

Runs Brandes' algorithm over the bipartite representation: a forward BFS
accumulating shortest-path counts (sigma), then a backward sweep
accumulating dependencies (delta) level by level.  Hyperedge nodes mediate
paths but do not count as path endpoints, following the single-graph
formulation of hypergraph betweenness (HyperBC): when dependency flows back
from a hyperedge the ``+1`` endpoint term is omitted.

The backward sweep is expressed through the same HF/VF machinery — the
frontier simply walks the recorded BFS levels deepest-first — so every
engine (Hygra order, chain order, ChGraph) runs the identical computation.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    PHASE_HYPEREDGE,
    AlgorithmState,
    HypergraphAlgorithm,
)
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["BetweennessCentrality"]

_FORWARD = "forward"
_BACKWARD = "backward"


class BetweennessCentrality(HypergraphAlgorithm):
    """Single-source betweenness contributions for every vertex."""

    name = "BC"
    apply_cost_factor = 1.5
    max_iterations = 10_000  # safety net; real bound is the BFS diameter

    def __init__(self, source: int = 0) -> None:
        self.source = source

    # -- setup -----------------------------------------------------------------

    def init_state(self, hypergraph: Hypergraph) -> AlgorithmState:
        nv, nh = hypergraph.num_vertices, hypergraph.num_hyperedges
        state = AlgorithmState(
            vertex_values=np.full(nv, np.inf),  # forward: distance
            hyperedge_values=np.full(nh, np.inf),
            frontier_v=Frontier(nv, [self.source]),
            frontier_e=Frontier(nh),
        )
        state.vertex_values[self.source] = 0.0
        state.extras.update(
            mode=_FORWARD,
            sigma_v=np.zeros(nv),
            sigma_e=np.zeros(nh),
            delta_v=np.zeros(nv),
            delta_e=np.zeros(nh),
            levels=[("vertex", np.array([self.source]))],
            backward_index=-1,
        )
        state.extras["sigma_v"][self.source] = 1.0
        return state

    # -- update functions --------------------------------------------------------

    def apply_hf(
        self, state: AlgorithmState, hypergraph: Hypergraph, v: int, h: int
    ) -> bool:
        x = state.extras
        if x["mode"] == _FORWARD:
            dist_v = state.vertex_values[v]
            if state.hyperedge_values[h] == np.inf:
                state.hyperedge_values[h] = dist_v + 1.0
            if state.hyperedge_values[h] == dist_v + 1.0:
                x["sigma_e"][h] += x["sigma_v"][v]
                return True
            return False
        # Backward: vertex v at level L pushes dependency to hyperedge
        # predecessors at level L-1.  v is a real endpoint: include the +1.
        if state.hyperedge_values[h] == state.vertex_values[v] - 1.0:
            x["delta_e"][h] += (x["sigma_e"][h] / x["sigma_v"][v]) * (
                1.0 + x["delta_v"][v]
            )
        return False

    def apply_vf(
        self, state: AlgorithmState, hypergraph: Hypergraph, h: int, v: int
    ) -> bool:
        x = state.extras
        if x["mode"] == _FORWARD:
            dist_h = state.hyperedge_values[h]
            if state.vertex_values[v] == np.inf:
                state.vertex_values[v] = dist_h + 1.0
            if state.vertex_values[v] == dist_h + 1.0:
                x["sigma_v"][v] += x["sigma_e"][h]
                return True
            return False
        # Backward: hyperedge h pushes dependency to vertex predecessors;
        # h is not an endpoint, so no +1 term.
        if state.vertex_values[v] == state.hyperedge_values[h] - 1.0:
            x["delta_v"][v] += (x["sigma_v"][v] / x["sigma_e"][h]) * x["delta_e"][h]
        return False

    # -- level bookkeeping ----------------------------------------------------

    def _backward_frontiers(
        self, state: AlgorithmState, hypergraph: Hypergraph
    ) -> tuple[Frontier, Frontier]:
        """Frontiers holding the next backward level (one side non-empty)."""
        x = state.extras
        frontier_v = Frontier(hypergraph.num_vertices)
        frontier_e = Frontier(hypergraph.num_hyperedges)
        index = x["backward_index"]
        if index <= 0:  # level 0 is the source; nothing flows above it
            return frontier_v, frontier_e
        side, ids = x["levels"][index]
        target = frontier_v if side == "vertex" else frontier_e
        for element in ids:
            target.add(int(element))
        return frontier_v, frontier_e

    def end_phase(
        self,
        state: AlgorithmState,
        hypergraph: Hypergraph,
        phase: str,
        activated: Frontier,
    ) -> Frontier:
        x = state.extras
        if x["mode"] == _FORWARD:
            if not activated.is_empty():
                side = "hyperedge" if phase == PHASE_HYPEREDGE else "vertex"
                x["levels"].append((side, activated.ids()))
                return activated
            # Forward exhausted after a vertex phase: pivot to backward.
            if phase == PHASE_HYPEREDGE:
                return activated
            x["mode"] = _BACKWARD
            x["backward_index"] = len(x["levels"]) - 1
            frontier_v, frontier_e = self._backward_frontiers(state, hypergraph)
            state.frontier_e = frontier_e
            return frontier_v
        # Backward mode: a vertex level is consumed by the hyperedge phase
        # (vertices push dependency into hyperedges) and a hyperedge level by
        # the vertex phase; descend one level only when that happened.
        index = x["backward_index"]
        if index > 0:
            side = x["levels"][index][0]
            consumed = (phase == PHASE_HYPEREDGE and side == "vertex") or (
                phase != PHASE_HYPEREDGE and side == "hyperedge"
            )
            if consumed:
                x["backward_index"] -= 1
        frontier_v, frontier_e = self._backward_frontiers(state, hypergraph)
        if phase == PHASE_HYPEREDGE:
            state.frontier_v = frontier_v  # not read until next iteration
            return frontier_e
        state.frontier_e = frontier_e
        return frontier_v

    def finished(
        self, state: AlgorithmState, hypergraph: Hypergraph, iteration: int
    ) -> bool:
        x = state.extras
        return x["mode"] == _BACKWARD and x["backward_index"] <= 0

    def result(self, state: AlgorithmState, hypergraph: Hypergraph) -> np.ndarray:
        return state.extras["delta_v"]

"""Breadth-first search on a hypergraph.

Distances count bipartite hops: a vertex at distance ``d`` activates its
unvisited incident hyperedges at ``d + 1``, which activate their unvisited
member vertices at ``d + 2``.  Dividing vertex distances by two recovers the
"number of hyperedges crossed" metric.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import AlgorithmState, HypergraphAlgorithm
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["Bfs", "UNREACHED"]

#: Sentinel distance for unreached elements.
UNREACHED = np.inf


class Bfs(HypergraphAlgorithm):
    """Hypergraph BFS from a source vertex."""

    name = "BFS"
    apply_cost_factor = 0.7

    def __init__(self, source: int = 0) -> None:
        self.source = source

    def init_state(self, hypergraph: Hypergraph) -> AlgorithmState:
        vertex_values = np.full(hypergraph.num_vertices, UNREACHED)
        hyperedge_values = np.full(hypergraph.num_hyperedges, UNREACHED)
        vertex_values[self.source] = 0.0
        return AlgorithmState(
            vertex_values=vertex_values,
            hyperedge_values=hyperedge_values,
            frontier_v=Frontier(hypergraph.num_vertices, [self.source]),
            frontier_e=Frontier(hypergraph.num_hyperedges),
        )

    def apply_hf(
        self, state: AlgorithmState, hypergraph: Hypergraph, v: int, h: int
    ) -> bool:
        if state.hyperedge_values[h] != UNREACHED:
            return False
        state.hyperedge_values[h] = state.vertex_values[v] + 1.0
        return True

    def apply_vf(
        self, state: AlgorithmState, hypergraph: Hypergraph, h: int, v: int
    ) -> bool:
        if state.vertex_values[v] != UNREACHED:
            return False
        state.vertex_values[v] = state.hyperedge_values[h] + 1.0
        return True

"""Connected components via min-label propagation.

A hyperedge's label is the minimum over its members; a vertex's label is the
minimum over its hyperedges.  Propagation continues until no label changes.
Two vertices end with equal labels iff they are connected through some
sequence of hyperedges.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import AlgorithmState, HypergraphAlgorithm
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["ConnectedComponents"]


class ConnectedComponents(HypergraphAlgorithm):
    """Label-propagation connected components."""

    name = "CC"
    apply_cost_factor = 0.8

    def init_state(self, hypergraph: Hypergraph) -> AlgorithmState:
        return AlgorithmState(
            vertex_values=np.arange(hypergraph.num_vertices, dtype=np.float64),
            hyperedge_values=np.full(hypergraph.num_hyperedges, np.inf),
            frontier_v=Frontier.all_active(hypergraph.num_vertices),
            frontier_e=Frontier(hypergraph.num_hyperedges),
        )

    def apply_hf(
        self, state: AlgorithmState, hypergraph: Hypergraph, v: int, h: int
    ) -> bool:
        label = state.vertex_values[v]
        if label < state.hyperedge_values[h]:
            state.hyperedge_values[h] = label
            return True
        return False

    def apply_vf(
        self, state: AlgorithmState, hypergraph: Hypergraph, h: int, v: int
    ) -> bool:
        label = state.hyperedge_values[h]
        if label < state.vertex_values[v]:
            state.vertex_values[v] = label
            return True
        return False

"""Ordinary-graph applications over 2-uniform hypergraphs (§VI-I, Fig 25).

The paper demonstrates ChGraph's generality on conventional graphs by
treating each edge as a hyperedge with exactly two members.  Two apps are
evaluated: SSSP and Adsorption (a label-propagation style algorithm).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    PHASE_HYPEREDGE,
    AlgorithmState,
    HypergraphAlgorithm,
)
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["Sssp", "Adsorption"]


class Sssp(HypergraphAlgorithm):
    """Single-source shortest paths (Bellman-Ford style relaxation).

    On a 2-uniform hypergraph a hyperedge relaxes to ``min`` of its two
    endpoints plus its weight; the formulation generalises to arbitrary
    hyperedges (crossing hyperedge ``h`` costs ``weights[h]``, default 1).
    ``weights`` must be non-negative for the frontier relaxation to
    terminate at the true shortest distances.
    """

    name = "SSSP"

    def __init__(self, source: int = 0, weights=None) -> None:
        self.source = source
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.size and weights.min() < 0:
                raise ValueError("SSSP requires non-negative hyperedge weights")
        self.weights = weights

    def _weight(self, h: int) -> float:
        return 1.0 if self.weights is None else float(self.weights[h])

    def init_state(self, hypergraph: Hypergraph) -> AlgorithmState:
        if self.weights is not None and self.weights.size != (
            hypergraph.num_hyperedges
        ):
            raise ValueError(
                f"weights cover {self.weights.size} hyperedges, hypergraph "
                f"has {hypergraph.num_hyperedges}"
            )
        vertex_values = np.full(hypergraph.num_vertices, np.inf)
        vertex_values[self.source] = 0.0
        return AlgorithmState(
            vertex_values=vertex_values,
            hyperedge_values=np.full(hypergraph.num_hyperedges, np.inf),
            frontier_v=Frontier(hypergraph.num_vertices, [self.source]),
            frontier_e=Frontier(hypergraph.num_hyperedges),
        )

    def apply_hf(
        self, state: AlgorithmState, hypergraph: Hypergraph, v: int, h: int
    ) -> bool:
        candidate = state.vertex_values[v] + self._weight(h)
        if candidate < state.hyperedge_values[h]:
            state.hyperedge_values[h] = candidate
            return True
        return False

    def apply_vf(
        self, state: AlgorithmState, hypergraph: Hypergraph, h: int, v: int
    ) -> bool:
        candidate = state.hyperedge_values[h]
        if candidate < state.vertex_values[v]:
            state.vertex_values[v] = candidate
            return True
        return False


class Adsorption(HypergraphAlgorithm):
    """Adsorption-style label propagation with fixed iterations.

    Each vertex blends its injected seed score with the average score of its
    incident (hyper)edges: ``v = beta * seed_v + (1 - beta) * avg_h(h)``,
    where ``h = avg_v(v)`` over its members.  Dense frontier, like PR.
    """

    name = "Adsorption"
    dense_frontier = True
    # Degrees ride in the same record as the value (Hygra packs them), so
    # degree lookups add no memory traffic beyond the value access.

    def __init__(self, iterations: int = 10, beta: float = 0.2, seed: int = 9) -> None:
        self.max_iterations = iterations
        self.beta = beta
        self.seed = seed

    def init_state(self, hypergraph: Hypergraph) -> AlgorithmState:
        rng = np.random.default_rng(self.seed)
        seeds = rng.random(hypergraph.num_vertices)
        state = AlgorithmState(
            vertex_values=seeds.copy(),
            hyperedge_values=np.zeros(hypergraph.num_hyperedges),
            frontier_v=Frontier.all_active(hypergraph.num_vertices),
            frontier_e=Frontier(hypergraph.num_hyperedges),
        )
        state.extras["seeds"] = seeds
        return state

    def begin_phase(
        self, state: AlgorithmState, hypergraph: Hypergraph, phase: str
    ) -> None:
        if phase == PHASE_HYPEREDGE:
            state.hyperedge_values[:] = 0.0
        else:
            state.extras["previous"] = state.vertex_values.copy()
            state.vertex_values[:] = 0.0

    def apply_hf(
        self, state: AlgorithmState, hypergraph: Hypergraph, v: int, h: int
    ) -> bool:
        state.hyperedge_values[h] += state.vertex_values[v] / (
            hypergraph.hyperedge_degree(h)
        )
        return True

    def apply_vf(
        self, state: AlgorithmState, hypergraph: Hypergraph, h: int, v: int
    ) -> bool:
        share = state.hyperedge_values[h] / hypergraph.vertex_degree(v)
        state.vertex_values[v] += (1.0 - self.beta) * share
        return True

    def end_phase(
        self,
        state: AlgorithmState,
        hypergraph: Hypergraph,
        phase: str,
        activated: Frontier,
    ) -> Frontier:
        if phase == PHASE_HYPEREDGE:
            return Frontier.all_active(hypergraph.num_hyperedges)
        seeds = state.extras["seeds"]
        state.vertex_values += self.beta * seeds
        isolated = np.diff(hypergraph.vertices.offsets) == 0
        if isolated.any():
            state.vertex_values[isolated] = seeds[isolated]
        return Frontier.all_active(hypergraph.num_vertices)

    def finished(
        self, state: AlgorithmState, hypergraph: Hypergraph, iteration: int
    ) -> bool:
        return iteration + 1 >= self.max_iterations

"""k-core decomposition by iterative peeling.

Computes the *coreness* of every vertex: round ``k`` repeatedly removes
vertices whose remaining degree (count of surviving incident hyperedges) is
below ``k``; a hyperedge dies when fewer than two of its members survive.
A vertex removed during round ``k`` has coreness ``k - 1``.

The cascade maps directly onto the two phases: dying vertices shrink their
hyperedges (HF), dying hyperedges shrink their members' degrees (VF).  When
a round's cascade drains, ``end_phase`` bumps ``k`` and re-seeds the vertex
frontier from the survivors.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    PHASE_HYPEREDGE,
    AlgorithmState,
    HypergraphAlgorithm,
)
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["KCore"]


class KCore(HypergraphAlgorithm):
    """Peeling k-core decomposition; result is per-vertex coreness."""

    name = "k-core"
    apply_cost_factor = 0.8
    max_iterations = 100_000  # safety net; bounded by sum of degrees

    def init_state(self, hypergraph: Hypergraph) -> AlgorithmState:
        nv, nh = hypergraph.num_vertices, hypergraph.num_hyperedges
        size_h = np.diff(hypergraph.hyperedges.offsets).astype(np.float64)
        alive_e = size_h >= 2  # degenerate hyperedges never connect
        # A vertex's peeling degree counts only connecting hyperedges.
        degree_v = np.zeros(nv, dtype=np.float64)
        for h in np.flatnonzero(alive_e):
            degree_v[hypergraph.incident_vertices(int(h))] += 1.0
        state = AlgorithmState(
            vertex_values=np.full(nv, -1.0),  # coreness, -1 while alive
            hyperedge_values=size_h.copy(),  # surviving member count
            frontier_v=Frontier(nv),
            frontier_e=Frontier(nh),
        )
        state.extras.update(
            k=1,
            degree=degree_v,
            alive_v=np.ones(nv, dtype=bool),
            alive_e=alive_e,
        )
        state.frontier_v = self._seed(state)
        return state

    def _seed(self, state: AlgorithmState) -> Frontier:
        """Vertices that die in the current round ``k``."""
        x = state.extras
        doomed = np.flatnonzero(x["alive_v"] & (x["degree"] < x["k"]))
        return Frontier(x["alive_v"].size, doomed)

    def begin_phase(
        self, state: AlgorithmState, hypergraph: Hypergraph, phase: str
    ) -> None:
        x = state.extras
        if phase == PHASE_HYPEREDGE:
            # The active vertices die now; record their coreness.
            dying = state.frontier_v.ids()
            x["alive_v"][dying] = False
            state.vertex_values[dying] = x["k"] - 1
        else:
            # The active hyperedges die now.
            x["alive_e"][state.frontier_e.ids()] = False

    def apply_hf(
        self, state: AlgorithmState, hypergraph: Hypergraph, v: int, h: int
    ) -> bool:
        x = state.extras
        if not x["alive_e"][h]:
            return False
        state.hyperedge_values[h] -= 1.0
        return state.hyperedge_values[h] < 2.0

    def apply_vf(
        self, state: AlgorithmState, hypergraph: Hypergraph, h: int, v: int
    ) -> bool:
        x = state.extras
        if not x["alive_v"][v]:
            return False
        x["degree"][v] -= 1.0
        return x["degree"][v] < x["k"]

    def end_phase(
        self,
        state: AlgorithmState,
        hypergraph: Hypergraph,
        phase: str,
        activated: Frontier,
    ) -> Frontier:
        x = state.extras
        if phase == PHASE_HYPEREDGE:
            return activated
        if not activated.is_empty():
            return activated
        # Round k's cascade is exhausted: advance k past the minimum
        # surviving degree and re-seed.
        alive_degrees = x["degree"][x["alive_v"]]
        if alive_degrees.size == 0:
            return activated  # everyone peeled; finished() will stop us
        x["k"] = max(x["k"] + 1, int(alive_degrees.min()) + 1)
        return self._seed(state)

    def finished(
        self, state: AlgorithmState, hypergraph: Hypergraph, iteration: int
    ) -> bool:
        return not state.extras["alive_v"].any()

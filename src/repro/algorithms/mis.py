"""Maximal independent set on a hypergraph (Luby-style).

Independence uses the paper's overlap notion for vertices: two vertices are
adjacent iff some hyperedge contains both (the clique expansion).  Each
round, an undecided vertex enters the set when its random priority is the
minimum among undecided vertices in *every* hyperedge containing it; its
clique neighbors are then excluded.  This is Luby's algorithm executed
through the bipartite structure, so the result is a *maximal* independent
set of the clique expansion.

Determinism: priorities come from a seeded generator, so every engine
produces the identical set.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    PHASE_HYPEREDGE,
    AlgorithmState,
    HypergraphAlgorithm,
)
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["MaximalIndependentSet", "UNDECIDED", "IN_SET", "EXCLUDED"]

UNDECIDED = 0.0
IN_SET = 1.0
EXCLUDED = 2.0


class MaximalIndependentSet(HypergraphAlgorithm):
    """Luby MIS over the hypergraph's clique expansion."""

    name = "MIS"
    apply_cost_factor = 0.9
    max_iterations = 200  # safety net; Luby terminates in O(log n) rounds

    def __init__(self, seed: int = 42) -> None:
        self.seed = seed

    def init_state(self, hypergraph: Hypergraph) -> AlgorithmState:
        rng = np.random.default_rng(self.seed)
        priorities = rng.permutation(hypergraph.num_vertices).astype(np.float64)
        state = AlgorithmState(
            vertex_values=np.full(hypergraph.num_vertices, UNDECIDED),
            hyperedge_values=np.full(hypergraph.num_hyperedges, np.inf),
            frontier_v=Frontier.all_active(hypergraph.num_vertices),
            frontier_e=Frontier(hypergraph.num_hyperedges),
        )
        state.extras["priority"] = priorities
        state.extras["vertex_min"] = np.full(hypergraph.num_vertices, np.inf)
        return state

    def begin_phase(
        self, state: AlgorithmState, hypergraph: Hypergraph, phase: str
    ) -> None:
        if phase == PHASE_HYPEREDGE:
            # Each round recomputes per-hyperedge minima among undecided.
            state.hyperedge_values[:] = np.inf
        else:
            state.extras["vertex_min"][:] = np.inf

    def apply_hf(
        self, state: AlgorithmState, hypergraph: Hypergraph, v: int, h: int
    ) -> bool:
        if state.vertex_values[v] != UNDECIDED:
            return False
        priority = state.extras["priority"][v]
        if priority < state.hyperedge_values[h]:
            state.hyperedge_values[h] = priority
        return True

    def apply_vf(
        self, state: AlgorithmState, hypergraph: Hypergraph, h: int, v: int
    ) -> bool:
        if state.vertex_values[v] != UNDECIDED:
            return False
        minimum = state.hyperedge_values[h]
        if minimum < state.extras["vertex_min"][v]:
            state.extras["vertex_min"][v] = minimum
        return True

    def end_phase(
        self,
        state: AlgorithmState,
        hypergraph: Hypergraph,
        phase: str,
        activated: Frontier,
    ) -> Frontier:
        if phase == PHASE_HYPEREDGE:
            return activated
        # Decision step: an undecided vertex whose priority equals the min of
        # every containing hyperedge joins the set.
        priorities = state.extras["priority"]
        vertex_min = state.extras["vertex_min"]
        undecided = state.vertex_values == UNDECIDED
        winners = undecided & (priorities <= vertex_min)
        # Isolated vertices (no hyperedges) are trivially independent.
        winners |= undecided & (np.diff(hypergraph.vertices.offsets) == 0)
        state.vertex_values[winners] = IN_SET
        # Exclude clique neighbors of winners.
        for v in np.flatnonzero(winners):
            for h in hypergraph.incident_hyperedges(int(v)):
                for u in hypergraph.incident_vertices(int(h)):
                    if state.vertex_values[u] == UNDECIDED:
                        state.vertex_values[u] = EXCLUDED
        remaining = np.flatnonzero(state.vertex_values == UNDECIDED)
        return Frontier(hypergraph.num_vertices, remaining)

    def finished(
        self, state: AlgorithmState, hypergraph: Hypergraph, iteration: int
    ) -> bool:
        return not np.any(state.vertex_values == UNDECIDED)

"""Hypergraph PageRank, exactly the HF/VF of Algorithm 1 (Lines 15-21).

Each iteration: active vertices scatter ``vertex_value[v] / deg(v)`` into
their hyperedges (HF), then hyperedges scatter
``(1 - alpha) / (|V| * deg(v)) + alpha * hyperedge_value[h] / deg(h)`` back
into vertices (VF).  All vertices and hyperedges are active every iteration
— the property the paper leans on when noting PR's chains only need
generating once (§VI-B).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import (
    PHASE_HYPEREDGE,
    AlgorithmState,
    HypergraphAlgorithm,
)
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["PageRank"]


class PageRank(HypergraphAlgorithm):
    """Fixed-iteration hypergraph PageRank (the paper benchmarks 10)."""

    name = "PR"
    apply_cost_factor = 1.3
    dense_frontier = True
    # Degrees ride in the same record as the value (Hygra packs them), so
    # degree lookups add no memory traffic beyond the value access.

    def __init__(self, iterations: int = 10, alpha: float = 0.85) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.alpha = alpha
        self.max_iterations = iterations

    def init_state(self, hypergraph: Hypergraph) -> AlgorithmState:
        n = max(hypergraph.num_vertices, 1)
        return AlgorithmState(
            vertex_values=np.full(hypergraph.num_vertices, 1.0 / n),
            hyperedge_values=np.zeros(hypergraph.num_hyperedges),
            frontier_v=Frontier.all_active(hypergraph.num_vertices),
            frontier_e=Frontier(hypergraph.num_hyperedges),
        )

    def begin_phase(
        self, state: AlgorithmState, hypergraph: Hypergraph, phase: str
    ) -> None:
        # Ranks are recomputed from scratch each phase: zero the side about
        # to be written before its phase accumulates contributions.
        if phase == PHASE_HYPEREDGE:
            state.hyperedge_values[:] = 0.0
        else:
            state.extras["old_vertex_values"] = state.vertex_values.copy()
            state.vertex_values[:] = 0.0

    def apply_hf(
        self, state: AlgorithmState, hypergraph: Hypergraph, v: int, h: int
    ) -> bool:
        degree = hypergraph.vertex_degree(v)
        state.hyperedge_values[h] += state.vertex_values[v] / degree
        return True

    def apply_vf(
        self, state: AlgorithmState, hypergraph: Hypergraph, h: int, v: int
    ) -> bool:
        degree_v = hypergraph.vertex_degree(v)
        degree_h = hypergraph.hyperedge_degree(h)
        addend = (1.0 - self.alpha) / (hypergraph.num_vertices * degree_v)
        state.vertex_values[v] += addend + (
            self.alpha * state.hyperedge_values[h] / degree_h
        )
        return True

    def end_phase(
        self,
        state: AlgorithmState,
        hypergraph: Hypergraph,
        phase: str,
        activated: Frontier,
    ) -> Frontier:
        # PR is dense: every element stays active every iteration.
        if phase == PHASE_HYPEREDGE:
            return Frontier.all_active(hypergraph.num_hyperedges)
        # Isolated vertices keep their teleport mass.
        zero_degree = np.diff(hypergraph.vertices.offsets) == 0
        if zero_degree.any():
            old = state.extras["old_vertex_values"]
            state.vertex_values[zero_degree] = old[zero_degree]
        return Frontier.all_active(hypergraph.num_vertices)

    def finished(
        self, state: AlgorithmState, hypergraph: Hypergraph, iteration: int
    ) -> bool:
        return iteration + 1 >= self.max_iterations

"""Hypergraph PageRank, exactly the HF/VF of Algorithm 1 (Lines 15-21).

Each iteration: active vertices scatter ``vertex_value[v] / deg(v)`` into
their hyperedges (HF), then hyperedges scatter
``(1 - alpha) / (|V| * deg(v)) + alpha * hyperedge_value[h] / deg(h)`` back
into vertices (VF).  All vertices and hyperedges are active every iteration
— the property the paper leans on when noting PR's chains only need
generating once (§VI-B).
"""

from __future__ import annotations

import numpy as np

from typing import Callable

from repro.algorithms.base import (
    PHASE_HYPEREDGE,
    AlgorithmState,
    HypergraphAlgorithm,
)
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["PageRank"]


class PageRank(HypergraphAlgorithm):
    """Fixed-iteration hypergraph PageRank (the paper benchmarks 10)."""

    name = "PR"
    apply_cost_factor = 1.3
    dense_frontier = True
    # Degrees ride in the same record as the value (Hygra packs them), so
    # degree lookups add no memory traffic beyond the value access.

    def __init__(self, iterations: int = 10, alpha: float = 0.85) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.alpha = alpha
        self.max_iterations = iterations
        self._vdeg: list[int] = []
        self._hdeg: list[int] = []
        self._num_vertices = 0
        self._one_minus_alpha = 1.0 - alpha
        # Live list mirror handed out by phase_apply: (phase, values list).
        # Flushed back into the numpy state array by end_phase.
        self._mirror: tuple[str, list[float]] | None = None

    def init_state(self, hypergraph: Hypergraph) -> AlgorithmState:
        # Hot-loop constants for the apply functions: plain-list degree
        # mirrors and the teleport numerator.  Same values the general
        # accessors return, minus per-tuple method and numpy overhead.
        self._vdeg = hypergraph.vertices.degrees_list()
        self._hdeg = hypergraph.hyperedges.degrees_list()
        self._num_vertices = hypergraph.num_vertices
        n = max(hypergraph.num_vertices, 1)
        return AlgorithmState(
            vertex_values=np.full(hypergraph.num_vertices, 1.0 / n),
            hyperedge_values=np.zeros(hypergraph.num_hyperedges),
            frontier_v=Frontier.all_active(hypergraph.num_vertices),
            frontier_e=Frontier(hypergraph.num_hyperedges),
        )

    def begin_phase(
        self, state: AlgorithmState, hypergraph: Hypergraph, phase: str
    ) -> None:
        # Ranks are recomputed from scratch each phase: zero the side about
        # to be written before its phase accumulates contributions.
        self._mirror = None  # any un-flushed mirror is stale now
        if phase == PHASE_HYPEREDGE:
            state.hyperedge_values[:] = 0.0
        else:
            state.extras["old_vertex_values"] = state.vertex_values.copy()
            state.vertex_values[:] = 0.0

    def phase_apply(
        self, state: AlgorithmState, hypergraph: Hypergraph, phase: str
    ) -> Callable[[int, int], bool]:
        """Bound apply over plain-list mirrors of the value arrays.

        Python floats and numpy float64 share IEEE-754 double arithmetic, so
        running the identical expression over ``.tolist()`` mirrors and
        copying the result back (:meth:`end_phase`) is bit-identical to the
        per-call numpy-indexing methods — minus the ~1µs/tuple numpy scalar
        boxing that dominated the engines' inner loops.
        """
        if phase == PHASE_HYPEREDGE:
            values = state.hyperedge_values.tolist()
            src = state.vertex_values.tolist()
            vdeg = self._vdeg
            self._mirror = (phase, values)

            def apply_h(v: int, h: int) -> bool:
                values[h] += src[v] / vdeg[v]
                return True

            return apply_h
        values = state.vertex_values.tolist()
        src = state.hyperedge_values.tolist()
        vdeg = self._vdeg
        hdeg = self._hdeg
        alpha = self.alpha
        teleport = self._one_minus_alpha
        n = self._num_vertices
        self._mirror = (phase, values)

        def apply_v(h: int, v: int) -> bool:
            addend = teleport / (n * vdeg[v])
            values[v] += addend + (alpha * src[h] / hdeg[h])
            return True

        return apply_v

    def apply_hf(
        self, state: AlgorithmState, hypergraph: Hypergraph, v: int, h: int
    ) -> bool:
        state.hyperedge_values[h] += state.vertex_values[v] / self._vdeg[v]
        return True

    def apply_vf(
        self, state: AlgorithmState, hypergraph: Hypergraph, h: int, v: int
    ) -> bool:
        addend = self._one_minus_alpha / (self._num_vertices * self._vdeg[v])
        state.vertex_values[v] += addend + (
            self.alpha * state.hyperedge_values[h] / self._hdeg[h]
        )
        return True

    def end_phase(
        self,
        state: AlgorithmState,
        hypergraph: Hypergraph,
        phase: str,
        activated: Frontier,
    ) -> Frontier:
        # Reconcile the phase_apply list mirror before anything reads the
        # numpy arrays again (the copy is exact: same doubles either way).
        mirror = self._mirror
        if mirror is not None and mirror[0] == phase:
            if phase == PHASE_HYPEREDGE:
                state.hyperedge_values[:] = mirror[1]
            else:
                state.vertex_values[:] = mirror[1]
            self._mirror = None
        # PR is dense: every element stays active every iteration.
        if phase == PHASE_HYPEREDGE:
            return Frontier.all_active(hypergraph.num_hyperedges)
        # Isolated vertices keep their teleport mass.
        zero_degree = np.diff(hypergraph.vertices.offsets) == 0
        if zero_degree.any():
            old = state.extras["old_vertex_values"]
            state.vertex_values[zero_degree] = old[zero_degree]
        return Frontier.all_active(hypergraph.num_vertices)

    def finished(
        self, state: AlgorithmState, hypergraph: Hypergraph, iteration: int
    ) -> bool:
        return iteration + 1 >= self.max_iterations

"""Comparison systems: HATS-V, an event-driven prefetcher, and Ligra."""

from repro.baselines.hats import HatsVEngine
from repro.baselines.ligra import LigraEngine
from repro.baselines.prefetcher_ev import EventPrefetcherEngine

__all__ = ["EventPrefetcherEngine", "HatsVEngine", "LigraEngine"]

"""HATS-V: the paper's hypergraph-capable variant of HATS (§II-C, Fig 7).

HATS (Mukkara et al., MICRO'18) is a hardware traversal scheduler that runs
bounded depth-first exploration over an ordinary graph's CSR to produce a
locality-aware vertex order.  It has no notion of hyperedges, so the paper
builds **HATS-V** with three modifications: index renumbering to distinguish
the two element kinds, added control logic to traverse the two CSR
directions alternately, and split update semantics.

The crucial remaining deficiencies — which this model reproduces — are:

* HATS-V explores the *bipartite structure itself*, not the OAG, so finding
  the next same-side element requires traversing **two** bipartite edges
  (element -> incident neighbor -> that neighbor's incident element), extra
  engine traffic ChGraph never pays;
* its BDFS order is overlap-*oblivious*: it follows whichever neighbor
  appears first rather than the maximally-overlapped successor, so it
  recovers only part of the chain order's locality.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import AlgorithmState, HypergraphAlgorithm
from repro.engine.base import PhaseSpec
from repro.engine.chgraph_engine import ChGraphEngine
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import Chunk
from repro.sim.protocol import MemorySystem

__all__ = ["HatsVEngine", "bdfs_order"]


def bdfs_order(
    hypergraph: Hypergraph,
    side: str,
    active: np.ndarray,
    first_id: int,
    depth_limit: int = 16,
    visit_budget: int = 64,
) -> tuple[list[int], int]:
    """Bounded DFS over the bipartite structure, HATS style.

    Returns the schedule (global ids within ``[first_id, first_id+len)``)
    and the number of bipartite edges traversed to *discover* it (the
    two-hop neighbor-finding overhead).  ``visit_budget`` bounds how many
    incident entries are inspected per exploration step, mirroring HATS's
    bounded traversal buffers.
    """
    src_csr = hypergraph.side(side)
    other_csr = hypergraph.side("vertex" if side == "hyperedge" else "hyperedge")
    remaining = active.copy()
    order: list[int] = []
    traversed = 0

    for root_local in range(active.size):
        if not remaining[root_local]:
            continue
        stack = [(first_id + root_local, 0)]
        remaining[root_local] = False
        while stack:
            element, depth = stack.pop()
            order.append(element)
            if depth >= depth_limit:
                continue
            # Two-hop neighbor discovery through the bipartite graph.
            inspected = 0
            for mid in src_csr.neighbors(element):
                if inspected >= visit_budget:
                    break
                traversed += 1
                for nxt in other_csr.neighbors(int(mid)):
                    inspected += 1
                    traversed += 1
                    if inspected >= visit_budget:
                        break
                    local = int(nxt) - first_id
                    if 0 <= local < active.size and remaining[local]:
                        remaining[local] = False
                        stack.append((int(nxt), depth + 1))
    return order, traversed


class HatsVEngine(ChGraphEngine):
    """HATS-V: hardware BDFS scheduling without the OAG.

    Reuses ChGraph's decoupled prefetch datapath (HATS also prefetches along
    its schedule) but generates the order with :func:`bdfs_order`, charging
    the two-hop discovery traffic to the engine.
    """

    name = "HATS-V"

    def _generate_chunk(
        self,
        system: MemorySystem,
        frontier: Frontier,
        chunk: Chunk,
        oag,
        edge_base: int,
        dense: bool,
        core: int,
    ) -> tuple[list[int], float, bool]:
        active = frontier.bitmap[chunk.first : chunk.last]
        order, traversed = bdfs_order(
            self._hypergraph, self._side_of_phase, active, chunk.first
        )
        # Each traversal step is a pipeline beat plus an incident-array read.
        # Those reads walk the same arrays the prefetcher is streaming, so
        # they are predominantly L2 hits; charge them analytically rather
        # than perturbing the hierarchy state.
        config = system.config
        cycles = traversed * (
            config.hw_stage_cycles + config.l2_latency / config.engine_mlp
        )
        self._stats["generations"] += 1
        self._stats["chains"] += 1
        self._stats["elements"] += len(order)
        self._stats["inspections"] += traversed
        return order, cycles, False

    def _run_phase(
        self,
        system: MemorySystem,
        hypergraph: Hypergraph,
        algorithm: HypergraphAlgorithm,
        state: AlgorithmState,
        spec: PhaseSpec,
        frontier: Frontier,
        chunks: list[Chunk],
        activated: Frontier,
    ) -> None:
        # Stash phase context for _generate_chunk (signature is shared with
        # ChGraphEngine, which gets this from the OAG instead).
        self._hypergraph = hypergraph
        self._side_of_phase = spec.src_side
        super()._run_phase(
            system, hypergraph, algorithm, state, spec, frontier, chunks, activated
        )

"""Ligra-like ordinary-graph baseline (§VI-I, Fig 25).

Ligra (Shun & Blelloch, PPoPP'13) is the frontier-based shared-memory graph
framework Hygra generalises.  On a 2-uniform hypergraph (each hyperedge is
one graph edge) its execution behaviour is exactly index-ordered frontier
processing over the bipartite CSR — i.e. the Hygra engine — but it is a
*graph* system, so it only accepts 2-uniform inputs.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import HypergraphAlgorithm
from repro.engine.hygra import HygraEngine
from repro.engine.result import RunResult
from repro.errors import EngineError
from repro.hypergraph.hypergraph import Hypergraph
from repro.sim.protocol import MemorySystem

__all__ = ["LigraEngine"]


class LigraEngine(HygraEngine):
    """Index-ordered frontier engine restricted to ordinary graphs."""

    name = "Ligra"

    def run(
        self,
        algorithm: HypergraphAlgorithm,
        hypergraph: Hypergraph,
        system: MemorySystem | None = None,
    ) -> RunResult:
        degrees = np.diff(hypergraph.hyperedges.offsets)
        if degrees.size and degrees.max() > 2:
            raise EngineError(
                "Ligra processes ordinary graphs only: every hyperedge must "
                "have exactly two incident vertices (got degree "
                f"{int(degrees.max())})"
            )
        return super().run(algorithm, hypergraph, system)

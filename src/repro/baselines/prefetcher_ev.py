"""Event-driven programmable prefetcher baseline (§VI-H, Fig 23).

Models the event-triggered prefetcher of Ainsworth & Jones (ASPLOS'18): the
traversal order stays Hygra's *index order*, but the prefetcher chases the
indirection ``incident[i] -> value[incident[i]]`` ahead of the core, hiding
miss latency.  Crucially it does **not** change which lines are fetched —
the paper's point is that such prefetchers "hide access latency for
saturating memory bandwidth" whereas ChGraph "utilizes bandwidth fully
without prefetching too much noisy data by changing the scheduling order".
Consequently this engine's DRAM traffic matches Hygra's while its stall
time approaches the bandwidth floor.
"""

from __future__ import annotations

from repro.algorithms.base import AlgorithmState, HypergraphAlgorithm
from repro.core.gla import index_order_schedule
from repro.engine.hygra import charge_frontier_traversal
from repro.engine.base import ExecutionEngine, PhaseSpec
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import Chunk
from repro.sim.protocol import MemorySystem
from repro.sim.layout import ArrayId

__all__ = ["EventPrefetcherEngine"]


class EventPrefetcherEngine(ExecutionEngine):
    """Index-ordered execution with an indirect-access prefetch engine."""

    name = "EventPrefetcher"

    def _prepare(
        self,
        hypergraph: Hypergraph,
        system: MemorySystem,
        chunks: dict[str, list[Chunk]],
    ) -> None:
        hierarchy = system.hierarchy
        if hierarchy is not None:
            self._engine_access = hierarchy.engine_access
            self._engine_access_block = hierarchy.engine_access_block
            self._dram_counter = hierarchy.dram
        else:
            self._engine_access = lambda core, array, index: 0
            self._engine_access_block = lambda core, array, start, count: 0
            self._dram_counter = None

    def _run_phase(
        self,
        system: MemorySystem,
        hypergraph: Hypergraph,
        algorithm: HypergraphAlgorithm,
        state: AlgorithmState,
        spec: PhaseSpec,
        frontier: Frontier,
        chunks: list[Chunk],
        activated: Frontier,
    ) -> None:
        config = system.config
        csr = hypergraph.side(spec.src_side)
        offsets = csr.offsets_list()
        indices = csr.indices_list()
        apply_fn = algorithm.phase_apply(state, hypergraph, spec.phase)
        dense = algorithm.dense_frontier
        engine_access = self._engine_access
        engine_access_block = self._engine_access_block
        activated_bitmap = activated.bitmap

        for chunk in chunks:
            core = chunk.core
            charge_frontier_traversal(system, core, chunk, frontier, algorithm)
            dram_before = self._dram_counter.accesses if self._dram_counter else 0
            engine_latency = 0.0
            beats = 0
            for element in index_order_schedule(frontier, chunk):
                # The prefetch engine chases the per-element indirections.
                beats += 1
                engine_latency += engine_access_block(
                    core, spec.src_offset, element, 2
                )
                engine_latency += engine_access(core, spec.src_value, element)
                start, end = offsets[element], offsets[element + 1]
                for position in range(start, end):
                    dst = indices[position]
                    beats += 1
                    engine_latency += engine_access(core, spec.incident, position)
                    engine_latency += engine_access(core, spec.dst_value, dst)
                    modified = apply_fn(element, dst)
                    system.charge_compute(
                        core, config.apply_cycles * algorithm.apply_cost_factor
                    )
                    if modified:
                        system.write(core, spec.dst_value, dst)
                        if not activated_bitmap[dst]:
                            activated_bitmap[dst] = True
                            if not dense:
                                system.write(core, ArrayId.BITMAP, dst)
            engine_cycles = (
                beats * config.hw_stage_cycles
                + engine_latency / config.engine_mlp
            )
            if self._dram_counter is not None:
                lines = self._dram_counter.accesses - dram_before
                floor = lines / (
                    self._dram_counter.peak_lines_per_cycle / config.num_cores
                )
                engine_cycles = max(engine_cycles, floor)
            system.charge_engine(core, engine_cycles)

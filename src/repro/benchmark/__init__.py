"""Continuous benchmark-regression subsystem.

A declarative registry of timed *probes* over the repo's real hot paths
(:mod:`repro.benchmark.probes`), a measurement core with warmup,
min-of-k repetitions and bootstrap confidence intervals
(:mod:`repro.benchmark.measure`), schema-versioned ``BENCH_<host>.json``
artifacts written with the store's atomic tmp+rename + sha256-manifest
discipline (:mod:`repro.benchmark.artifact`), and noise-aware
baseline comparison/gating (:mod:`repro.benchmark.compare`) rendered as a
trend table (:mod:`repro.benchmark.trend`).

Driven by the CLI verbs ``repro benchmark run|compare|gate|baseline`` and
the ``benchmark-smoke`` CI job; the committed per-host baselines live in
``benchmarks/baselines/``.
"""

from repro.benchmark.artifact import (
    BENCH_SCHEMA_VERSION,
    build_report,
    host_class,
    load_report,
    report_filename,
    scale_report,
    write_report,
)
from repro.benchmark.compare import (
    DEFAULT_GATE_THRESHOLD,
    ProbeComparison,
    compare_reports,
    gate_failures,
)
from repro.benchmark.measure import Measurement, bootstrap_ci, measure_probe, timed
from repro.benchmark.registry import (
    BenchProbe,
    bench,
    get_probe,
    load_default_probes,
    probe_names,
)
from repro.benchmark.trend import trend_table

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchProbe",
    "DEFAULT_GATE_THRESHOLD",
    "Measurement",
    "ProbeComparison",
    "bench",
    "bootstrap_ci",
    "build_report",
    "compare_reports",
    "gate_failures",
    "get_probe",
    "host_class",
    "load_default_probes",
    "load_report",
    "measure_probe",
    "probe_names",
    "report_filename",
    "scale_report",
    "timed",
    "trend_table",
    "write_report",
]

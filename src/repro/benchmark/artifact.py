"""Schema-versioned ``BENCH_<host-class>.json`` artifacts.

Reports are written with the artifact store's discipline — payload lands
via atomic tmp+rename, then a sha256 manifest sidecar follows — so a
half-written report can never be mistaken for a measurement, and CI can
verify an uploaded artifact byte-for-byte.  The host class (platform,
machine, Python major.minor, CPU count) is part of the filename because
absolute timings are only comparable within one host class; gating across
classes would gate on hardware, not code.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.benchmark.measure import Measurement
from repro.errors import BenchmarkError
from repro.store.store import ArtifactStore

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "build_report",
    "host_class",
    "load_report",
    "report_filename",
    "scale_report",
    "write_report",
]

#: Bump when the report layout changes; the comparison layer refuses to
#: gate across schema versions instead of misreading old fields.
BENCH_SCHEMA_VERSION = 1

#: Per-probe timing fields a synthetic scale factor applies to.
_TIMING_FIELDS = ("best_s", "mean_s", "ci_lower_s", "ci_upper_s")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def host_class() -> str:
    """The comparability class measurements belong to.

    Example: ``linux-x86_64-py3.11-8cpu``.  Deliberately excludes
    hostnames and exact CPU models: two CI runners of the same shape must
    share a class, or every baseline would be single-use.
    """
    return (
        f"{sys.platform}-{platform.machine() or 'unknown'}"
        f"-py{sys.version_info.major}.{sys.version_info.minor}"
        f"-{_usable_cpus()}cpu"
    )


def report_filename(host: str | None = None) -> str:
    return f"BENCH_{host_class() if host is None else host}.json"


def build_report(
    measurements: list[Measurement],
    repeats: int,
    warmup: int,
    host: str | None = None,
) -> dict[str, object]:
    """Assemble the JSON document for one measurement session."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "bench-report",
        "host_class": host_class() if host is None else host,
        "created_unix": time.time(),
        "repeats": repeats,
        "warmup": warmup,
        "probes": {m.name: m.as_json() for m in measurements},
    }


def write_report(
    report: dict[str, object],
    directory: str | Path,
    filename: str | None = None,
) -> Path:
    """Atomically persist ``report`` plus its sha256 manifest sidecar.

    Returns the payload path; ``filename`` defaults to
    ``BENCH_<host-class>.json`` for the report's own host class.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        filename
        if filename is not None
        else report_filename(str(report["host_class"]))
    )
    payload = json.dumps(report, indent=2, sort_keys=True).encode("utf-8")
    ArtifactStore._atomic_write(path, payload)
    manifest = {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "bench-report",
        "checksum": ArtifactStore._checksum(payload),
        "size": len(payload),
    }
    ArtifactStore._atomic_write(
        path.with_name(path.name + ".manifest"),
        json.dumps(manifest).encode("utf-8"),
    )
    return path


def load_report(path: str | Path, verify: bool = True) -> dict[str, object]:
    """Load one report, verifying schema and (when present) its manifest.

    A missing manifest is tolerated — hand-edited baselines are legitimate
    — but a *mismatching* one means truncation or tampering and is fatal.
    """
    path = Path(path)
    try:
        payload = path.read_bytes()
    except OSError as exc:
        raise BenchmarkError(f"cannot read bench report {path}: {exc}") from exc
    try:
        report = json.loads(payload.decode("utf-8"))
    except ValueError as exc:
        raise BenchmarkError(f"corrupt bench report {path}: {exc}") from exc
    if verify:
        manifest_path = path.with_name(path.name + ".manifest")
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_bytes())
            except (OSError, ValueError) as exc:
                raise BenchmarkError(
                    f"unreadable bench manifest {manifest_path}: {exc}"
                ) from exc
            if manifest.get("checksum") != ArtifactStore._checksum(payload):
                raise BenchmarkError(
                    f"bench report {path} fails its manifest checksum"
                )
    if report.get("kind") != "bench-report":
        raise BenchmarkError(f"{path} is not a bench report")
    if report.get("schema") != BENCH_SCHEMA_VERSION:
        raise BenchmarkError(
            f"bench report {path} has schema {report.get('schema')!r}, "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    return report


def scale_report(
    report: dict[str, object], factor: float
) -> dict[str, object]:
    """A copy of ``report`` with every timing scaled by ``factor``.

    The CI smoke job uses ``factor=0.5`` to synthesize a baseline against
    which the *current* run is a 2x regression, proving the gate fires.
    """
    if factor <= 0:
        raise BenchmarkError("scale factor must be positive")
    scaled = json.loads(json.dumps(report))
    for probe in scaled["probes"].values():
        for field in _TIMING_FIELDS:
            probe[field] = probe[field] * factor
        probe["samples_s"] = [s * factor for s in probe["samples_s"]]
    return scaled

"""Noise-aware comparison of a current bench report against a baseline.

A probe is a **regression** only when both hold:

1. its min-of-k time exceeds the baseline's by more than the threshold
   (default +50%: generous enough for shared CI runners, far below the
   2x the smoke job injects), and
2. the bootstrap confidence intervals are disjoint — the current lower
   bound clears the baseline upper bound — so plain repetition noise
   cannot trip the gate.

A probe present in the baseline but missing from the current run also
fails the gate: silently dropping a probe is how coverage regresses.
New probes (in current only) are reported but never gated.
"""

from __future__ import annotations

import dataclasses

from repro.errors import BenchmarkError

__all__ = [
    "DEFAULT_GATE_THRESHOLD",
    "ProbeComparison",
    "compare_reports",
    "gate_failures",
]

#: Fail a probe past +50% over baseline (ratio > 1.5), CI-permitting.
DEFAULT_GATE_THRESHOLD = 0.5


@dataclasses.dataclass(frozen=True)
class ProbeComparison:
    """Verdict for one probe across the two reports."""

    name: str
    baseline_best_s: float | None
    current_best_s: float | None
    ratio: float | None  # current / baseline; > 1 means slower
    regression: bool
    verdict: str  # "ok" | "regression" | "noise" | "missing" | "new"

    @property
    def gated(self) -> bool:
        return self.regression


def _compare_probe(
    name: str,
    baseline: dict[str, object] | None,
    current: dict[str, object] | None,
    threshold: float,
) -> ProbeComparison:
    if baseline is None:
        return ProbeComparison(
            name=name,
            baseline_best_s=None,
            current_best_s=float(current["best_s"]),
            ratio=None,
            regression=False,
            verdict="new",
        )
    if current is None:
        return ProbeComparison(
            name=name,
            baseline_best_s=float(baseline["best_s"]),
            current_best_s=None,
            ratio=None,
            regression=True,
            verdict="missing",
        )
    baseline_best = float(baseline["best_s"])
    current_best = float(current["best_s"])
    if baseline_best <= 0:
        raise BenchmarkError(f"baseline probe {name!r} has non-positive time")
    ratio = current_best / baseline_best
    slowed = ratio > 1.0 + threshold
    # Noise guard: only a *separated* pair of intervals may gate.
    separated = float(current["ci_lower_s"]) > float(baseline["ci_upper_s"])
    if slowed and separated:
        verdict = "regression"
    elif slowed:
        verdict = "noise"
    else:
        verdict = "ok"
    return ProbeComparison(
        name=name,
        baseline_best_s=baseline_best,
        current_best_s=current_best,
        ratio=ratio,
        regression=verdict == "regression",
        verdict=verdict,
    )


def compare_reports(
    current: dict[str, object],
    baseline: dict[str, object],
    threshold: float = DEFAULT_GATE_THRESHOLD,
) -> list[ProbeComparison]:
    """Per-probe comparisons, baseline order first, new probes last."""
    if threshold <= 0:
        raise BenchmarkError("gate threshold must be positive")
    if current.get("host_class") != baseline.get("host_class"):
        raise BenchmarkError(
            "host-class mismatch: current "
            f"{current.get('host_class')!r} vs baseline "
            f"{baseline.get('host_class')!r} — absolute timings are only "
            "comparable within one host class"
        )
    baseline_probes: dict = baseline["probes"]  # type: ignore[assignment]
    current_probes: dict = current["probes"]  # type: ignore[assignment]
    names = list(baseline_probes)
    names += [n for n in current_probes if n not in baseline_probes]
    return [
        _compare_probe(
            name,
            baseline_probes.get(name),
            current_probes.get(name),
            threshold,
        )
        for name in names
    ]


def gate_failures(
    comparisons: list[ProbeComparison],
) -> list[ProbeComparison]:
    """The subset of comparisons that must fail the gate."""
    return [c for c in comparisons if c.gated]

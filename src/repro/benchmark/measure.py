"""Measurement core: warmup, min-of-k repetitions, bootstrap CIs.

The gating statistic is the **minimum** over repetitions: on a quiet
machine the minimum converges to the true cost of the code path, while
means absorb scheduler noise (the reason the old hand-rolled speedup
benchmarks were untrustworthy near their thresholds).  The bootstrap
confidence interval quantifies how noisy that minimum still is — the
comparison layer refuses to call a regression when the current and
baseline intervals overlap.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Callable, Sequence

from repro.benchmark.registry import BenchProbe
from repro.errors import BenchmarkError

__all__ = ["Measurement", "bootstrap_ci", "measure_probe", "timed"]

#: Bootstrap resample count; enough for a stable 90% interval on <=32
#: samples while staying invisible next to the probes' own runtime.
BOOTSTRAP_RESAMPLES = 200

#: Seed for the bootstrap RNG — fixed so re-rendering a report is
#: deterministic; the *samples* carry all the real entropy.
BOOTSTRAP_SEED = 0x5EED


def timed(fn: Callable[[], object]) -> tuple[object, float]:
    """Run ``fn`` once; return ``(result, elapsed_seconds)``.

    The single timing primitive shared by the measurement core and the
    speedup benchmarks under ``benchmarks/`` (which predate this module
    and used to hand-roll it).
    """
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@dataclasses.dataclass(frozen=True)
class Measurement:
    """Timing summary of one probe: samples plus derived statistics."""

    name: str
    description: str
    samples_s: tuple[float, ...]
    warmup_s: float
    ci_lower_s: float
    ci_upper_s: float

    @property
    def best_s(self) -> float:
        """Min over repetitions — the gated statistic."""
        return min(self.samples_s)

    @property
    def mean_s(self) -> float:
        return sum(self.samples_s) / len(self.samples_s)

    def as_json(self) -> dict[str, object]:
        return {
            "description": self.description,
            "samples_s": list(self.samples_s),
            "warmup_s": self.warmup_s,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "ci_lower_s": self.ci_lower_s,
            "ci_upper_s": self.ci_upper_s,
        }


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[Sequence[float]], float] = min,
    resamples: int = BOOTSTRAP_RESAMPLES,
    seed: int = BOOTSTRAP_SEED,
    alpha: float = 0.10,
) -> tuple[float, float]:
    """Percentile-bootstrap ``1 - alpha`` interval for ``statistic``.

    Deterministic for a given ``(samples, seed)``; a single sample yields
    the degenerate interval ``(x, x)``.
    """
    if not samples:
        raise BenchmarkError("bootstrap_ci needs at least one sample")
    rng = random.Random(seed)
    stats = sorted(
        statistic([rng.choice(samples) for _ in samples])
        for _ in range(resamples)
    )
    lo_index = int((alpha / 2) * (len(stats) - 1))
    hi_index = int((1 - alpha / 2) * (len(stats) - 1))
    return stats[lo_index], stats[hi_index]


def measure_probe(
    probe: BenchProbe, repeats: int = 5, warmup: int = 1
) -> Measurement:
    """Measure one probe: untimed setup, warmup, then ``repeats`` samples.

    Setup runs outside the timed region; its cleanup (when the probe holds
    a temp store or a live service) is guaranteed to run even when a
    repetition raises.
    """
    if repeats < 1:
        raise BenchmarkError("measure_probe needs repeats >= 1")
    thunk, cleanup = probe.setup()
    try:
        warmup_s = 0.0
        for _ in range(warmup):
            _, elapsed = timed(thunk)
            warmup_s += elapsed
        samples = tuple(timed(thunk)[1] for _ in range(repeats))
    finally:
        if cleanup is not None:
            cleanup()
    lower, upper = bootstrap_ci(samples)
    return Measurement(
        name=probe.name,
        description=probe.description,
        samples_s=samples,
        warmup_s=warmup_s,
        ci_lower_s=lower,
        ci_upper_s=upper,
    )

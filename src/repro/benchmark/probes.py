"""The built-in probe suite: one timed thunk per perf-bearing layer.

Each probe exercises a hot path end to end, sized so the whole suite
stays in CI-smoke territory:

- ``oag-build-fast`` — vectorized OAG construction (the PR 1 tentpole);
- ``chain-generation`` — probe-free chain generation over the H-OAG;
- ``store-warm-load`` — a verified warm ``GlaResources`` load from a
  prewarmed artifact store (the PR 2 tentpole);
- ``run-many-jobs2`` — a cold two-run matrix through the sharded
  parallel executor (the PR 3 tentpole), fresh store per repetition;
- ``serve-roundtrip`` — submit→result latency against a live service
  answering from the store fast path (the PR 6 tentpole);
- ``reorder-stage`` — the ``locality_reorder`` transform backing the
  ``locality-reorder`` pipeline stage (the PR 9 tentpole's hot new code);
- ``sim-inner-loop`` — the ChGraph engine inner loop on a seeded
  affiliation hypergraph (the simulator core every figure rests on);
- ``hierarchy-access`` — a seeded demand/engine access mix against the
  raw ``MemoryHierarchy`` (the PR 10 tentpole's O(1) cache core and
  batched access paths, isolated from engine overhead).

Setup (dataset builds, prewarming, service boot) runs outside the timed
region; probes that hold a temp store or a live service return a cleanup.
"""

from __future__ import annotations

import shutil
import tempfile

import numpy as np

from repro.benchmark.registry import bench
from repro.core.chain import ChainGenerator
from repro.core.oag import build_oag
from repro.engine import GlaResources
from repro.engine.registry import create_engine
from repro.harness.differential import seeded_graphs
from repro.hypergraph.generators import paper_dataset
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem
from repro.store import ArtifactStore

__all__: list[str] = []

#: The scaled-down simulation shape shared by the heavier probes (matches
#: the CI smoke workloads: 4 cores, 2 KB LLC).
_SMALL_CORES = 4
_SMALL_LLC_KB = 2


@bench(
    "oag-build-fast",
    "Vectorized H-OAG build on the OK dataset (build_oag fast path)",
)
def _oag_build_fast():
    hypergraph = paper_dataset("OK")
    return lambda: build_oag(hypergraph, "hyperedge", fast=True)


@bench(
    "chain-generation",
    "Probe-free chain generation over the OK H-OAG, all nodes active",
)
def _chain_generation():
    hypergraph = paper_dataset("OK")
    oag = build_oag(hypergraph, "hyperedge", fast=True)
    active = np.ones(oag.num_nodes, dtype=bool)
    generator = ChainGenerator(fast=True)
    return lambda: generator.generate(active, oag)


@bench(
    "store-warm-load",
    "Warm GlaResources load (checksum-verified npz) from a prewarmed store",
)
def _store_warm_load():
    hypergraph = paper_dataset("OK")
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    store = ArtifactStore(root)
    GlaResources.build_or_load(hypergraph, 16, store=store)  # prewarm

    def thunk():
        return GlaResources.build_or_load(hypergraph, 16, store=store)

    return thunk, lambda: shutil.rmtree(root, ignore_errors=True)


@bench(
    "run-many-jobs2",
    "Cold 2-run matrix through the sharded parallel executor (--jobs 2)",
)
def _run_many_jobs2():
    from repro.harness.runner import Runner
    from repro.harness.spec import RunSpec

    config = scaled_config(num_cores=_SMALL_CORES, llc_kb=_SMALL_LLC_KB)
    specs = [
        RunSpec("Hygra", "PR", "OG", config),
        RunSpec("Hygra", "BFS", "FS", config),
    ]
    roots: list[str] = []

    def thunk():
        # A fresh store per repetition keeps every execution cold — a warm
        # hit would measure the store, not the executor.
        root = tempfile.mkdtemp(prefix="repro-bench-runmany-")
        roots.append(root)
        runner = Runner(pr_iterations=1, cache_dir=root)
        return runner.run_many(specs, jobs=2, timeout=600)

    def cleanup():
        for root in roots:
            shutil.rmtree(root, ignore_errors=True)

    return thunk, cleanup


@bench(
    "serve-roundtrip",
    "Service submit→result latency on the store fast path (repro serve)",
)
def _serve_roundtrip():
    import asyncio
    import threading

    from repro.service import (
        JobRequest,
        SchedulerConfig,
        ServiceClient,
        ServiceConfig,
        SimulationService,
    )

    root = tempfile.mkdtemp(prefix="repro-bench-serve-")
    service = SimulationService(
        ServiceConfig(
            port=0,
            cache_dir=root,
            scheduler=SchedulerConfig(batch_window=0.01),
        ),
        log=None,
    )
    ready = threading.Event()

    def body() -> None:
        async def _main() -> None:
            task = asyncio.create_task(service.run(install_signals=False))
            while service.port is None:
                await asyncio.sleep(0.005)
            ready.set()
            await task

        asyncio.run(_main())

    thread = threading.Thread(target=body, daemon=True)
    thread.start()
    if not ready.wait(30):
        raise RuntimeError("bench service failed to start")
    client = ServiceClient(port=service.port)
    request = JobRequest.build(
        "Hygra",
        "BFS",
        "FS",
        cores=_SMALL_CORES,
        llc_kb=_SMALL_LLC_KB,
        pr_iterations=1,
    )
    # Pay the one real simulation during setup so every timed round trip
    # is answered from the store fast path — the serving overhead itself.
    client.run(request, timeout=600)

    def cleanup() -> None:
        service.request_drain()
        thread.join(60)
        shutil.rmtree(root, ignore_errors=True)

    return (lambda: client.run(request, timeout=600)), cleanup


@bench(
    "reorder-stage",
    "locality_reorder (degree-sort + CSR rebuild) on a seeded hypergraph",
)
def _reorder_stage():
    from repro.hypergraph.reorder import locality_reorder

    hypergraph = seeded_graphs(1)[0]
    return lambda: locality_reorder(hypergraph)


@bench(
    "sim-inner-loop",
    "ChGraph engine PR inner loop on a seeded affiliation hypergraph",
)
def _sim_inner_loop():
    from repro.algorithms import PageRank

    hypergraph = seeded_graphs(1)[0]
    config = scaled_config(num_cores=_SMALL_CORES, llc_kb=_SMALL_LLC_KB)
    resources = GlaResources.build_or_load(hypergraph, config.num_cores)

    def thunk():
        # Fresh engine + system per repetition: engines carry run state.
        engine = create_engine("ChGraph", resources)
        system = SimulatedSystem(config)
        return engine.run(PageRank(iterations=2), hypergraph, system)

    return thunk


@bench(
    "hierarchy-access",
    "Seeded demand/engine access mix against the raw MemoryHierarchy",
)
def _hierarchy_access():
    import random

    from repro.sim.hierarchy import MemoryHierarchy
    from repro.sim.layout import ArrayId

    config = scaled_config(num_cores=_SMALL_CORES, llc_kb=_SMALL_LLC_KB)
    # A fixed op tape (seeded, built once in setup) replayed against a
    # fresh hierarchy each repetition: the same mix of single accesses,
    # line-granular blocks, engine probes and pre-bound prober calls the
    # engines issue, without any engine bookkeeping in the timed region.
    rng = random.Random(0x5EED)
    arrays = [
        ArrayId.VERTEX_VALUE,
        ArrayId.HYPEREDGE_VALUE,
        ArrayId.INCIDENT_VERTEX,
        ArrayId.BITMAP,
    ]
    tape = []
    for _ in range(20_000):
        op = rng.randrange(6)
        core = rng.randrange(_SMALL_CORES)
        array = arrays[rng.randrange(len(arrays))]
        index = rng.randrange(4096)
        count = rng.randrange(1, 17)
        tape.append((op, core, array, index, count))

    def thunk():
        hierarchy = MemoryHierarchy(config)
        probers = {}
        total = 0
        for op, core, array, index, count in tape:
            if op == 0:
                total += hierarchy.access(core, array, index, write=False)
            elif op == 1:
                total += hierarchy.access(core, array, index, write=True)
            elif op == 2:
                total += hierarchy.access_block(core, array, index, count, True)
            elif op == 3:
                total += hierarchy.engine_access(core, array, index)
            elif op == 4:
                total += hierarchy.engine_access_block(core, array, index, count)
            else:
                key = (core, array)
                probe = probers.get(key)
                if probe is None:
                    probe = probers[key] = hierarchy.engine_prober(core, array)
                total += probe(index)
        return total

    return thunk

"""The declarative benchmark-probe registry.

A *probe* names one hot path and knows how to produce a zero-argument
timed thunk for it.  The factory runs **outside** the timed region — it
builds datasets, prewarms stores, boots services — and returns either the
thunk alone or ``(thunk, cleanup)`` when the setup holds resources
(temp directories, a live service) that must be torn down after
measurement.

Probes register themselves with the :func:`bench` decorator at import
time; :func:`load_default_probes` imports the built-in suite
(:mod:`repro.benchmark.probes`) exactly once, so the registry is cheap to
consult and tests can install synthetic probes without paying for the
real ones.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.errors import BenchmarkError

__all__ = [
    "BenchProbe",
    "PROBE_REGISTRY",
    "bench",
    "get_probe",
    "load_default_probes",
    "probe_names",
]

#: A factory returns the timed thunk, optionally paired with a cleanup.
ProbeSetup = Callable[[], object]


@dataclasses.dataclass(frozen=True)
class BenchProbe:
    """One registered hot-path probe."""

    name: str
    description: str
    factory: ProbeSetup

    def setup(self) -> tuple[Callable[[], object], Callable[[], None] | None]:
        """Run the (untimed) setup; normalize to ``(thunk, cleanup)``."""
        produced = self.factory()
        if isinstance(produced, tuple):
            thunk, cleanup = produced
            return thunk, cleanup
        return produced, None


#: name -> probe, in registration order (dicts preserve it).
PROBE_REGISTRY: dict[str, BenchProbe] = {}


def bench(
    name: str, description: str = ""
) -> Callable[[ProbeSetup], ProbeSetup]:
    """Register a probe factory under ``name``.

    The decorated function is the *setup*: it is invoked once per
    measurement session and must return the zero-argument thunk to time
    (or ``(thunk, cleanup)``).
    """

    def register(factory: ProbeSetup) -> ProbeSetup:
        if name in PROBE_REGISTRY:
            raise BenchmarkError(f"duplicate benchmark probe {name!r}")
        PROBE_REGISTRY[name] = BenchProbe(
            name=name,
            description=description or (factory.__doc__ or "").strip(),
            factory=factory,
        )
        return factory

    return register


def load_default_probes() -> None:
    """Import the built-in probe suite (idempotent)."""
    import repro.benchmark.probes  # noqa: F401  (registers via @bench)


def probe_names() -> tuple[str, ...]:
    """Registered probe names, in registration order."""
    return tuple(PROBE_REGISTRY)


def get_probe(name: str) -> BenchProbe:
    try:
        return PROBE_REGISTRY[name]
    except KeyError:
        known = ", ".join(PROBE_REGISTRY) or "<none loaded>"
        raise BenchmarkError(
            f"unknown benchmark probe {name!r} (known: {known})"
        ) from None

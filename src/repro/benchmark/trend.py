"""Trend-table rendering for measurements and comparisons."""

from __future__ import annotations

from repro.benchmark.compare import ProbeComparison
from repro.benchmark.measure import Measurement
from repro.harness.report import render_table

__all__ = ["measurements_table", "trend_table"]


def _ms(seconds: float | None) -> object:
    return "-" if seconds is None else round(seconds * 1e3, 3)


def measurements_table(
    measurements: list[Measurement], host: str, repeats: int
) -> str:
    """The ``benchmark run`` summary table."""
    rows = [
        [
            m.name,
            _ms(m.best_s),
            _ms(m.mean_s),
            f"[{_ms(m.ci_lower_s)}, {_ms(m.ci_upper_s)}]",
            len(m.samples_s),
        ]
        for m in measurements
    ]
    return render_table(
        ["probe", "best (ms)", "mean (ms)", "90% CI (ms)", "reps"],
        rows,
        title=f"Benchmark suite — {host}, min of {repeats}",
    )


def trend_table(comparisons: list[ProbeComparison], title: str) -> str:
    """The ``benchmark compare``/``gate`` trend table."""
    rows = []
    for c in comparisons:
        rows.append([
            c.name,
            _ms(c.baseline_best_s),
            _ms(c.current_best_s),
            "-" if c.ratio is None else round(c.ratio, 2),
            c.verdict.upper() if c.gated else c.verdict,
        ])
    return render_table(
        ["probe", "baseline (ms)", "current (ms)", "ratio", "verdict"],
        rows,
        title=title,
    )

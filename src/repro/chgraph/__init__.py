"""ChGraph hardware models: FIFOs, HCG, CP, device interface, area."""

from repro.chgraph.area import AreaReport, area_report
from repro.chgraph.engine import ChGraphConfigRegisters, ChGraphDevice
from repro.chgraph.fifo import BoundedFifo
from repro.chgraph.hcg import HardwareChainGenerator, HcgCost
from repro.chgraph.prefetcher import ChainPrefetcher, CpCost

__all__ = [
    "AreaReport",
    "BoundedFifo",
    "ChGraphConfigRegisters",
    "ChGraphDevice",
    "ChainPrefetcher",
    "CpCost",
    "HardwareChainGenerator",
    "HcgCost",
    "area_report",
]

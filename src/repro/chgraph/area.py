"""Area, power and storage accounting for ChGraph (§VI-E).

The paper reports, at TSMC 65 nm: 0.094 mm² and 61 mW total, i.e. 0.26% of
the area and 0.19% of the TDP of an Intel Core2 E6750 core (65 nm).  The
buffer storage derives mechanically from the microarchitectural parameters:

* stack: 16 levels x (4 B vertex id + 4 B begin offset + 4 B end offset +
  64 B neighbor cacheline) = 1216 B = 1.19 KB;
* chain FIFO: 32 x 4 B = 128 B = 0.13 KB;
* bipartite-edge FIFO: 32 x 24 B tuples = 768 B = 0.75 KB;
* configuration registers: 84 B.

This module reproduces that derivation and splits the total area/power into
SRAM (CACTI-style per-KB constants) and logic, with the logic constants
calibrated so the default configuration reproduces the paper's totals.
"""

from __future__ import annotations

import dataclasses

from repro.sim.config import SystemConfig

__all__ = ["AreaReport", "area_report", "CORE2_E6750_CORE_AREA_MM2", "CORE2_E6750_TDP_MW"]

#: A single core of the 65 nm Intel Core2 E6750 (two cores, 143 mm² die,
#: caches excluded) — the paper's comparison core, back-derived from the
#: reported 0.26% ratio: 0.094 mm² / 0.26% ≈ 36 mm².
CORE2_E6750_CORE_AREA_MM2 = 36.2
#: Per-core TDP reference for the 0.19% power ratio: 61 mW / 0.19% ≈ 32 W.
CORE2_E6750_TDP_MW = 32_000.0

# 65 nm SRAM: ~0.52 mm²/KB for small buffers with peripheral overhead
# (CACTI 6.5 class numbers for sub-KB register-file style arrays are
# dominated by periphery; we fold that into the per-KB constant).
_SRAM_MM2_PER_KB = 0.0255
_SRAM_MW_PER_KB = 9.5
# Handcrafted datapath logic for the two 4-stage pipelines.
_LOGIC_MM2 = 0.040
_LOGIC_MW = 41.0


@dataclasses.dataclass(frozen=True)
class AreaReport:
    """The §VI-E accounting for one ChGraph engine."""

    stack_bytes: int
    chain_fifo_bytes: int
    tuple_fifo_bytes: int
    register_bytes: int
    sram_mm2: float
    logic_mm2: float
    sram_mw: float
    logic_mw: float

    @property
    def buffer_bytes(self) -> int:
        return (
            self.stack_bytes
            + self.chain_fifo_bytes
            + self.tuple_fifo_bytes
            + self.register_bytes
        )

    @property
    def total_mm2(self) -> float:
        return self.sram_mm2 + self.logic_mm2

    @property
    def total_mw(self) -> float:
        return self.sram_mw + self.logic_mw

    @property
    def area_fraction_of_core(self) -> float:
        """Fraction of a Core2 E6750 core's area (paper: 0.26%)."""
        return self.total_mm2 / CORE2_E6750_CORE_AREA_MM2

    @property
    def power_fraction_of_core(self) -> float:
        """Fraction of core TDP (paper: 0.19%)."""
        return self.total_mw / CORE2_E6750_TDP_MW


def area_report(config: SystemConfig | None = None) -> AreaReport:
    """Derive buffer sizes from the configuration and price them."""
    if config is None:
        config = SystemConfig(name="default")
    # Each stack level: vertex id + begin/end offsets + a neighbor cacheline.
    stack_bytes = config.stack_depth * (4 + 4 + 4 + config.line_size)
    chain_fifo_bytes = config.chain_fifo_depth * 4
    tuple_fifo_bytes = config.tuple_fifo_depth * 24
    register_bytes = 84
    buffer_kb = (
        stack_bytes + chain_fifo_bytes + tuple_fifo_bytes + register_bytes
    ) / 1024
    return AreaReport(
        stack_bytes=stack_bytes,
        chain_fifo_bytes=chain_fifo_bytes,
        tuple_fifo_bytes=tuple_fifo_bytes,
        register_bytes=register_bytes,
        sram_mm2=buffer_kb * _SRAM_MM2_PER_KB,
        logic_mm2=_LOGIC_MM2,
        sram_mw=buffer_kb * _SRAM_MW_PER_KB,
        logic_mw=_LOGIC_MW,
    )

"""Cycle-level timing model of one ChGraph engine + core (§VI-A).

The paper evaluates ChGraph with "a cycle-accurate simulator ... designed to
model the microarchitecture behavior of ChGraph".  The execution engines in
:mod:`repro.engine` use closed-form cost accounting for speed; this module
provides the detailed counterpart: an exact timing recurrence over the three
serial units — HCG, CP, core — coupled by the two bounded FIFOs, with the
CP's memory-level parallelism modelled as a finite pool of outstanding-miss
slots (MSHRs) rather than a divisor.

Because each unit processes its operations in order, pipeline timing needs
no per-cycle stepping: each operation's completion time is a recurrence over
(unit previous completion, upstream data-ready time, downstream FIFO space),
which is exact for this topology and fast enough to run inside tests.

`benchmarks/test_ablation_cycle_model.py` cross-validates the engines'
closed-form estimates against this model.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.chain import ChainGenerator, ChainProbe
from repro.core.oag import Oag
from repro.hypergraph.hypergraph import Hypergraph
from repro.sim.config import SystemConfig

__all__ = ["ChainMicroOp", "CycleStats", "record_hcg_microops", "simulate_phase"]

#: HCG micro-op kinds, one per pipeline stage activation.
ROOT_SCAN = "root_scan"
OFFSETS = "offsets"
INSPECT = "inspect"
SELECT = "select"


@dataclasses.dataclass(frozen=True)
class ChainMicroOp:
    """One HCG pipeline step; ``element`` is set on SELECT ops."""

    kind: str
    memory_accesses: int
    element: int = -1


@dataclasses.dataclass
class CycleStats:
    """Timing outcome of one chunk-phase under the cycle model."""

    total_cycles: float
    hcg_busy_until: float
    cp_busy_until: float
    core_busy_cycles: float
    tuples: int
    chain_fifo_peak: int
    tuple_fifo_peak: int
    core_stalled_cycles: float

    @property
    def core_utilization(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.core_busy_cycles / self.total_cycles


class _RecordingProbe(ChainProbe):
    """Captures the HCG micro-op sequence for one chunk."""

    def __init__(self, dense: bool) -> None:
        self.ops: list[ChainMicroOp] = []
        self.dense = dense

    def on_root_scan(self, element: int) -> None:
        self.ops.append(ChainMicroOp(ROOT_SCAN, 0 if self.dense else 1))

    def on_offsets_fetch(self, node: int) -> None:
        self.ops.append(ChainMicroOp(OFFSETS, 2))

    def on_neighbor_inspect(self, node: int, position: int) -> None:
        self.ops.append(ChainMicroOp(INSPECT, 1))

    def on_select(self, element: int) -> None:
        self.ops.append(ChainMicroOp(SELECT, 0, element=element))


def record_hcg_microops(
    active: np.ndarray,
    oag: Oag,
    d_max: int = 16,
    dense: bool = False,
) -> list[ChainMicroOp]:
    """The HCG's micro-op stream for one chunk (semantics = Algorithm 3)."""
    probe = _RecordingProbe(dense)
    ChainGenerator(d_max=d_max).generate(active, oag, probe=probe)
    return probe.ops


class _MshrPool:
    """A finite pool of outstanding-request slots (min-heap of free times)."""

    def __init__(self, slots: int) -> None:
        self._free: list[float] = [0.0] * max(1, slots)
        heapq.heapify(self._free)

    def issue(self, ready: float, latency: float) -> float:
        """Issue at ``max(ready, earliest free slot)``; returns completion."""
        slot_free = heapq.heappop(self._free)
        start = max(ready, slot_free)
        done = start + latency
        heapq.heappush(self._free, done)
        return done


def simulate_phase(
    microops: Sequence[ChainMicroOp],
    hypergraph: Hypergraph,
    side: str,
    config: SystemConfig,
    hcg_latency: Callable[[], float],
    cp_latency: Callable[[], float],
    apply_cycles: float | None = None,
) -> CycleStats:
    """Run the HCG -> chain FIFO -> CP -> tuple FIFO -> core recurrence.

    ``hcg_latency()`` / ``cp_latency()`` sample per-access memory latencies
    (constants, or draws from a measured distribution).  The HCG's OAG walk
    is dependency-chained, so its accesses serialize; the CP's prefetches
    share a ``config.engine_mlp``-slot MSHR pool.
    """
    if apply_cycles is None:
        apply_cycles = float(config.apply_cycles + config.fifo_pop_cycles)
    stage = config.hw_stage_cycles
    chain_depth = config.chain_fifo_depth
    tuple_depth = config.tuple_fifo_depth
    csr = hypergraph.side(side)

    # --- HCG: serial micro-ops; SELECTs push into the chain FIFO. ---------
    chain_push: list[float] = []  # push time of each chain entry
    elements: list[int] = []
    hcg_time = 0.0

    # Every unit is in-order, so a single forward interleave suffices: CP,
    # tuple-FIFO and core times are computed lazily as chain entries appear.
    mshrs = _MshrPool(int(config.engine_mlp))
    cp_time = 0.0
    tuple_push: list[float] = []
    core_time = 0.0
    core_busy = 0.0
    core_pop: list[float] = []
    tuples = 0
    chain_fifo_peak = 0

    def cp_consume(entry_index: int) -> None:
        """CP processes chain entry ``entry_index`` end to end."""
        nonlocal cp_time, core_time, core_busy, tuples
        element = elements[entry_index]
        # Element acquisition + the three source-side loads.
        cp_ready = max(cp_time, chain_push[entry_index]) + stage
        done = cp_ready
        for _ in range(3):
            done = max(done, mshrs.issue(cp_ready, cp_latency()))
        cp_time = cp_ready
        start, end = csr.row_slice(element)
        for _ in range(start, end):
            issue = cp_time + stage
            completion = mshrs.issue(issue, cp_latency())
            completion = max(completion, mshrs.issue(issue, cp_latency()))
            cp_time = issue
            ready = max(completion, done)
            # Tuple FIFO backpressure: wait for a slot.
            if len(tuple_push) >= tuple_depth:
                ready = max(ready, core_pop[len(tuple_push) - tuple_depth])
            tuple_push.append(ready)
            # Core pops in order.
            pop = max(core_time, ready) + apply_cycles
            core_pop.append(pop)
            core_busy += apply_cycles
            core_time = pop
            tuples += 1

    entry_index = 0
    for op in microops:
        cost = stage
        if op.kind == SELECT:
            hcg_time += cost
            # Chain FIFO backpressure.
            push = hcg_time
            if len(chain_push) >= chain_depth:
                # Wait until the CP has popped far enough; force-consume.
                while entry_index <= len(chain_push) - chain_depth:
                    cp_consume(entry_index)
                    entry_index += 1
                push = max(push, cp_time)
            chain_push.append(push)
            elements.append(op.element)
            chain_fifo_peak = max(chain_fifo_peak, len(chain_push) - entry_index)
            hcg_time = push
        else:
            # Dependency-chained walk: each access serializes.
            hcg_time += cost
            for _ in range(op.memory_accesses):
                hcg_time += hcg_latency()
    # Drain remaining chain entries through the CP and core.
    while entry_index < len(chain_push):
        cp_consume(entry_index)
        entry_index += 1

    # Tuple-FIFO peak occupancy from the push/pop timelines.
    events = [(t, +1) for t in tuple_push] + [(t, -1) for t in core_pop]
    occupancy = 0
    tuple_fifo_peak = 0
    for _, delta in sorted(events):
        occupancy += delta
        tuple_fifo_peak = max(tuple_fifo_peak, occupancy)

    total = max(hcg_time, cp_time, core_time)
    return CycleStats(
        total_cycles=total,
        hcg_busy_until=hcg_time,
        cp_busy_until=cp_time,
        core_busy_cycles=core_busy,
        tuples=tuples,
        chain_fifo_peak=chain_fifo_peak,
        tuple_fifo_peak=min(tuple_fifo_peak, tuple_depth),
        core_stalled_cycles=max(0.0, core_time - core_busy),
    )

"""The programmer-visible ChGraph device model (§V-A, Figure 13).

A general-purpose core drives its private ChGraph engine through two ISA
instructions, exposed to software as two low-level APIs:

* ``ChGraph_Configure()`` (the ``CH_CONFIGURE`` instruction) writes the
  memory-mapped configuration registers: the computation-phase label, the
  bases/sizes of the six hypergraph arrays, the bitmap base, the chunk's id
  range, and the OAG array bases.
* ``ChGraph_fetch_bipartite_edge()`` (``CH_FETCH_BIPARTITE_EDGE``) pops the
  next prefetched tuple from the bipartite-edge FIFO, bypassing the normal
  load datapath.  After the last tuple the engine delivers the fake tuple
  ``{-1, -1, -1, -1}`` and stalls.

This model is functional: it produces the exact tuple stream the hardware
would, using the HCG chain order.  Cycle-level cost accounting lives in
:mod:`repro.chgraph.hcg` / :mod:`repro.chgraph.prefetcher` and is composed
by the performance engine.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

import numpy as np

from repro.chgraph.fifo import BoundedFifo
from repro.core.chain import ChainGenerator
from repro.core.oag import Oag
from repro.core.tuples import END_OF_CHAINS, BipartiteTuple
from repro.errors import ConfigurationError
from repro.hypergraph.hypergraph import Hypergraph
from repro.sim.config import SystemConfig

__all__ = ["ChGraphConfigRegisters", "ChGraphDevice"]

#: Figure 13's register file totals 84 bytes.
CONFIG_REGISTER_BYTES = 84


@dataclasses.dataclass
class ChGraphConfigRegisters:
    """The memory-mapped configuration registers (Figure 13).

    In this functional model the "base addresses" are the Python objects
    themselves; the simulated byte layout is owned by
    :class:`~repro.sim.layout.MemoryLayout`.
    """

    phase_label: int  # 1 = hyperedge computation, 0 = vertex computation
    hypergraph: Hypergraph
    bitmap: np.ndarray
    chunk_first: int
    chunk_last: int
    oag: Oag
    d_max: int = 16

    def __post_init__(self) -> None:
        if self.phase_label not in (0, 1):
            raise ConfigurationError("phase_label must be 0 or 1")
        if self.chunk_first > self.chunk_last:
            raise ConfigurationError("chunk range reversed")
        expected = self.chunk_last - self.chunk_first
        if self.oag.num_nodes != expected:
            raise ConfigurationError(
                f"OAG covers {self.oag.num_nodes} nodes, chunk has {expected}"
            )
        if self.bitmap.size != expected:
            raise ConfigurationError("bitmap must cover exactly the chunk")

    @property
    def scheduled_side(self) -> str:
        """Which side's elements the chains schedule."""
        return "vertex" if self.phase_label == 1 else "hyperedge"


class ChGraphDevice:
    """One core's ChGraph engine: configure, then stream tuples."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig(name="default")
        self.chain_fifo = BoundedFifo(self.config.chain_fifo_depth, entry_bytes=4)
        self.tuple_fifo = BoundedFifo(self.config.tuple_fifo_depth, entry_bytes=24)
        self._registers: ChGraphConfigRegisters | None = None
        self._stream = None

    # -- the two ISA-level operations ----------------------------------------

    def ch_configure(self, registers: ChGraphConfigRegisters) -> None:
        """``CH_CONFIGURE``: load the registers and arm the pipelines."""
        self._registers = registers
        self._stream = self._tuple_stream(registers)

    def ch_fetch_bipartite_edge(self) -> BipartiteTuple:
        """``CH_FETCH_BIPARTITE_EDGE``: next tuple (or the -1 sentinel)."""
        if self._stream is None:
            raise ConfigurationError("ChGraph not configured")
        self._refill()
        if self.tuple_fifo.is_empty:
            return END_OF_CHAINS
        return self.tuple_fifo.pop()

    # -- internals -----------------------------------------------------------

    def _refill(self) -> None:
        """The CP fills the tuple FIFO whenever it has space."""
        assert self._stream is not None
        while not self.tuple_fifo.is_full:
            entry = next(self._stream, None)
            if entry is None:
                break
            self.tuple_fifo.push(entry)

    def _tuple_stream(
        self, registers: ChGraphConfigRegisters
    ) -> Iterator[BipartiteTuple]:
        """HCG chains feeding the CP's tuple packing, as one generator."""
        generator = ChainGenerator(
            d_max=min(registers.d_max, self.config.stack_depth)
        )
        chains = generator.generate(registers.bitmap.astype(bool), registers.oag)
        csr = registers.hypergraph.side(registers.scheduled_side)
        for chain in chains:
            for element in chain:
                # The chain FIFO decouples HCG from CP; occupancy is modelled
                # by pushing/popping each element through it.
                self.chain_fifo.push(element)
                src = self.chain_fifo.pop()
                fresh = True
                for neighbor in csr.neighbors(src):
                    yield BipartiteTuple(src=src, dst=int(neighbor), fresh_src=fresh)
                    fresh = False

    def drain(self) -> list[BipartiteTuple]:
        """Fetch every tuple until the sentinel (testing convenience)."""
        tuples = []
        while True:
            entry = self.ch_fetch_bipartite_edge()
            if entry == END_OF_CHAINS:
                return tuples
            tuples.append(entry)

"""Bounded hardware FIFO model.

ChGraph uses two FIFOs: the *chain FIFO* between the chain generator and the
prefetcher (32 x 4 B) and the *bipartite edge FIFO* between the prefetcher
and the core (32 x 24 B tuples).  The model tracks occupancy and stall
counts so tests can assert backpressure behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import FifoError

__all__ = ["BoundedFifo"]


class BoundedFifo:
    """A bounded FIFO with occupancy statistics."""

    def __init__(self, depth: int, entry_bytes: int = 4) -> None:
        if depth < 1:
            raise FifoError("FIFO depth must be >= 1")
        self.depth = depth
        self.entry_bytes = entry_bytes
        self._entries: deque[Any] = deque()
        self.pushes = 0
        self.pops = 0
        self.push_stalls = 0
        self.pop_stalls = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def try_push(self, entry: Any) -> bool:
        """Push if space; returns False (and counts a stall) when full."""
        if self.is_full:
            self.push_stalls += 1
            return False
        self._entries.append(entry)
        self.pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._entries))
        return True

    def push(self, entry: Any) -> None:
        """Push, raising on overflow (for callers that already checked)."""
        if not self.try_push(entry):
            raise FifoError(f"push to full FIFO (depth={self.depth})")

    def try_pop(self) -> tuple[bool, Any]:
        """Pop if available; ``(False, None)`` (and a stall) when empty."""
        if self.is_empty:
            self.pop_stalls += 1
            return False, None
        self.pops += 1
        return True, self._entries.popleft()

    def pop(self) -> Any:
        ok, entry = self.try_pop()
        if not ok:
            raise FifoError("pop from empty FIFO")
        return entry

    def peek(self) -> Any:
        if self.is_empty:
            raise FifoError("peek at empty FIFO")
        return self._entries[0]

    def storage_bytes(self) -> int:
        return self.depth * self.entry_bytes

    def __repr__(self) -> str:
        return f"BoundedFifo(depth={self.depth}, occupancy={len(self)})"

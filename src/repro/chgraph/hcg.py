"""Hardware-accelerated chain generator (HCG) cost model (§V-B).

The HCG is a 4-stage pipeline — *root setting*, *offsets fetching*, *active
neighbors fetching*, *neighbor selection* — backed by a 16-deep stack.  The
chain semantics are exactly :class:`~repro.core.chain.ChainGenerator` (the
stack depth is the ``D_max`` bound); this module adds the hardware cost
accounting: one pipeline beat per micro-step, engine-side memory requests
for the bitmap and OAG arrays, and serial (dependency-chained) latency for
the OAG walk.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.core.chain import ChainGenerator, ChainProbe, ChainSet
from repro.core.oag import Oag
from repro.sim.config import SystemConfig
from repro.sim.layout import ArrayId

__all__ = ["HcgCost", "HardwareChainGenerator"]


@dataclasses.dataclass
class HcgCost:
    """Cycle/traffic accounting of one HCG activation."""

    beats: int = 0  # pipeline micro-steps (1 element or inspection each)
    serial_latency: float = 0.0  # dependency-chained OAG/bitmap access time
    requests: int = 0  # engine-side memory requests issued

    def engine_cycles(self, stage_cycles: float) -> float:
        """Busy time of the HCG for this activation, in core cycles."""
        return self.beats * stage_cycles + self.serial_latency


class _HcgProbe(ChainProbe):
    """Counts pipeline beats and issues engine-side accesses."""

    def __init__(
        self,
        access: Callable[[int, ArrayId, int], int],
        core: int,
        cost: HcgCost,
        edge_base: int,
        dense: bool,
        access_block: Callable[[int, ArrayId, int, int], int] | None = None,
        edge_probe: Callable[[int], int] | None = None,
        offsets_probe: Callable[[int], int] | None = None,
    ) -> None:
        self.access = access
        self.core = core
        self.cost = cost
        self.edge_base = edge_base
        self.dense = dense
        if access_block is None:
            def access_block(
                core: int, array: ArrayId, start: int, count: int
            ) -> int:
                return sum(access(core, array, index)
                           for index in range(start, start + count))
        self.access_block = access_block
        if edge_probe is None:
            def edge_probe(index: int) -> int:
                return access(core, ArrayId.OAG_EDGE, index)
        # Pre-bound OAG probes (normally ``engine_prober`` /
        # ``engine_pair_prober``): neighbor inspection and the offsets-pair
        # fetch are the HCG's hottest micro-steps.
        self.edge_probe = edge_probe
        if offsets_probe is None:
            def offsets_probe(node: int) -> int:
                return self.access_block(core, ArrayId.OAG_OFFSET, node, 2)
        self.offsets_probe = offsets_probe

    def _load(self, array: ArrayId, index: int) -> None:
        self.cost.requests += 1
        self.cost.serial_latency += self.access(self.core, array, index)

    def on_root_scan(self, element: int) -> None:
        self.cost.beats += 1
        if not self.dense:
            self._load(ArrayId.BITMAP, element)

    def on_offsets_fetch(self, node: int) -> None:
        cost = self.cost
        cost.beats += 1
        cost.requests += 2
        cost.serial_latency += self.offsets_probe(node)

    def on_neighbor_inspect(self, node: int, position: int) -> None:
        cost = self.cost
        cost.beats += 1
        cost.requests += 1
        cost.serial_latency += self.edge_probe(self.edge_base + position)

    def on_select(self, element: int) -> None:
        self.cost.beats += 1


class HardwareChainGenerator:
    """Per-core HCG: generates chains and reports hardware cost."""

    def __init__(self, config: SystemConfig, d_max: int) -> None:
        # The stack bounds the exploration depth; D_max cannot exceed it.
        self.config = config
        self.d_max = min(d_max, config.stack_depth)
        self._generator = ChainGenerator(d_max=self.d_max)

    def generate(
        self,
        active: np.ndarray,
        oag: Oag,
        core: int,
        access: Callable[[int, ArrayId, int], int],
        edge_base: int = 0,
        dense: bool = False,
        access_block: Callable[[int, ArrayId, int, int], int] | None = None,
        edge_probe: Callable[[int], int] | None = None,
        offsets_probe: Callable[[int], int] | None = None,
    ) -> tuple[ChainSet, HcgCost]:
        """Generate chains for one chunk with engine-side accesses.

        ``access(core, array, index) -> latency`` is the engine's path into
        the memory hierarchy (normally ``MemoryHierarchy.engine_access``);
        ``access_block`` the batched equivalent over an element range
        (``MemoryHierarchy.engine_access_block``), defaulting to a
        per-element loop over ``access``; ``edge_probe`` / ``offsets_probe``
        pre-bound probes for this core's OAG_EDGE element and OAG_OFFSET
        pair (normally ``MemoryHierarchy.engine_prober`` /
        ``engine_pair_prober``), defaulting to the unbatched callables.
        """
        cost = HcgCost()
        probe = _HcgProbe(
            access, core, cost, edge_base, dense, access_block, edge_probe,
            offsets_probe,
        )
        chains = self._generator.generate(active, oag, probe=probe)
        return chains, cost

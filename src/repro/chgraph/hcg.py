"""Hardware-accelerated chain generator (HCG) cost model (§V-B).

The HCG is a 4-stage pipeline — *root setting*, *offsets fetching*, *active
neighbors fetching*, *neighbor selection* — backed by a 16-deep stack.  The
chain semantics are exactly :class:`~repro.core.chain.ChainGenerator` (the
stack depth is the ``D_max`` bound); this module adds the hardware cost
accounting: one pipeline beat per micro-step, engine-side memory requests
for the bitmap and OAG arrays, and serial (dependency-chained) latency for
the OAG walk.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.core.chain import ChainGenerator, ChainProbe, ChainSet
from repro.core.oag import Oag
from repro.sim.config import SystemConfig
from repro.sim.layout import ArrayId

__all__ = ["HcgCost", "HardwareChainGenerator"]


@dataclasses.dataclass
class HcgCost:
    """Cycle/traffic accounting of one HCG activation."""

    beats: int = 0  # pipeline micro-steps (1 element or inspection each)
    serial_latency: float = 0.0  # dependency-chained OAG/bitmap access time
    requests: int = 0  # engine-side memory requests issued

    def engine_cycles(self, stage_cycles: float) -> float:
        """Busy time of the HCG for this activation, in core cycles."""
        return self.beats * stage_cycles + self.serial_latency


class _HcgProbe(ChainProbe):
    """Counts pipeline beats and issues engine-side accesses."""

    def __init__(
        self,
        access: Callable[[int, ArrayId, int], int],
        core: int,
        cost: HcgCost,
        edge_base: int,
        dense: bool,
    ) -> None:
        self.access = access
        self.core = core
        self.cost = cost
        self.edge_base = edge_base
        self.dense = dense

    def _load(self, array: ArrayId, index: int) -> None:
        self.cost.requests += 1
        self.cost.serial_latency += self.access(self.core, array, index)

    def on_root_scan(self, element: int) -> None:
        self.cost.beats += 1
        if not self.dense:
            self._load(ArrayId.BITMAP, element)

    def on_offsets_fetch(self, node: int) -> None:
        self.cost.beats += 1
        self._load(ArrayId.OAG_OFFSET, node)
        self._load(ArrayId.OAG_OFFSET, node + 1)

    def on_neighbor_inspect(self, node: int, position: int) -> None:
        self.cost.beats += 1
        self._load(ArrayId.OAG_EDGE, self.edge_base + position)

    def on_select(self, element: int) -> None:
        self.cost.beats += 1


class HardwareChainGenerator:
    """Per-core HCG: generates chains and reports hardware cost."""

    def __init__(self, config: SystemConfig, d_max: int) -> None:
        # The stack bounds the exploration depth; D_max cannot exceed it.
        self.config = config
        self.d_max = min(d_max, config.stack_depth)
        self._generator = ChainGenerator(d_max=self.d_max)

    def generate(
        self,
        active: np.ndarray,
        oag: Oag,
        core: int,
        access: Callable[[int, ArrayId, int], int],
        edge_base: int = 0,
        dense: bool = False,
    ) -> tuple[ChainSet, HcgCost]:
        """Generate chains for one chunk with engine-side accesses.

        ``access(core, array, index) -> latency`` is the engine's path into
        the memory hierarchy (normally ``MemoryHierarchy.engine_access``).
        """
        cost = HcgCost()
        probe = _HcgProbe(access, core, cost, edge_base, dense)
        chains = self._generator.generate(active, oag, probe=probe)
        return chains, cost

"""Chain-driven prefetcher (CP) cost model (§V-B).

The CP is a 4-stage pipeline — *element acquisition*, *offsets fetching*,
*neighbors fetching*, *values fetching* — that walks the chain FIFO and
packs ``{src, dst, src_value, dst_value}`` tuples into the bipartite-edge
FIFO.  Unlike the HCG's pointer chase, the CP's loads for upcoming chain
elements are independent, so their latencies overlap up to the engine's
effective MLP (bounded by the FIFO depths).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable

from repro.engine.base import PhaseSpec
from repro.hypergraph.hypergraph import Hypergraph
from repro.sim.config import SystemConfig
from repro.sim.layout import ArrayId

__all__ = ["CpCost", "ChainPrefetcher"]


@dataclasses.dataclass
class CpCost:
    """Cycle/traffic accounting of one CP activation."""

    beats: int = 0  # one per tuple packed (pipeline II=1)
    overlapped_latency: float = 0.0  # raw latency of independent prefetches
    requests: int = 0
    tuples: int = 0

    def engine_cycles(self, stage_cycles: float, engine_mlp: float) -> float:
        """Busy time of the CP: beat throughput plus overlapped miss time."""
        return self.beats * stage_cycles + self.overlapped_latency / engine_mlp


class ChainPrefetcher:
    """Per-core CP: prefetches the bipartite edges of a chain order."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config

    def prefetch(
        self,
        order: Iterable[int],
        hypergraph: Hypergraph,
        spec: PhaseSpec,
        core: int,
        access: Callable[[int, ArrayId, int], int],
    ) -> CpCost:
        """Issue all prefetches for ``order``; returns the cost summary.

        Per chain element: the two offset reads and the source-value read
        (the tuple keeps them resident across the element's edges); per
        bipartite edge: the incident-id read and the destination-value read.
        """
        cost = CpCost()
        for element in order:
            self.prefetch_element(element, hypergraph, spec, core, access, cost)
        return cost

    def prefetch_element(
        self,
        element: int,
        hypergraph: Hypergraph,
        spec: PhaseSpec,
        core: int,
        access: Callable[[int, ArrayId, int], int],
        cost: CpCost,
    ) -> None:
        """Prefetch one chain element's bipartite edges into ``cost``.

        Engines call this element-by-element, interleaved with the core's
        Apply work, which models the bounded (FIFO-depth) run-ahead of the
        real CP: prefetched lines are consumed before they can be evicted.
        """
        csr = hypergraph.side(spec.src_side)
        offsets = csr.offsets

        def load(array: ArrayId, index: int) -> None:
            cost.requests += 1
            cost.overlapped_latency += access(core, array, index)

        cost.beats += 1  # element acquisition
        load(spec.src_offset, element)
        load(spec.src_offset, element + 1)
        load(spec.src_value, element)
        start, end = int(offsets[element]), int(offsets[element + 1])
        for position in range(start, end):
            cost.beats += 1
            cost.tuples += 1
            load(spec.incident, position)
            dst = int(csr.indices[position])
            load(spec.dst_value, dst)

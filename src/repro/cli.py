"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print Table II for the built-in datasets.
``run``
    Simulate one (engine, algorithm, dataset) and print the result summary.
``compare``
    Run Hygra, software GLA and ChGraph on one workload side by side.
``profile``
    Run engines on one workload under instrumentation and print per-phase
    cycle/DRAM breakdowns plus the per-iteration frontier timeline.
``experiment``
    Regenerate one paper table/figure by id (e.g. ``fig14``, ``table2``).
``bench``
    Regenerate a set of figures, executing their combined run matrix on
    the sharded parallel executor (``--jobs N --timeout S``); the tables
    are byte-identical to serial execution.
``check``
    Run the invariant + cross-engine differential checking suite: every
    registry engine on seeded generator hypergraphs under an attached
    :class:`~repro.sim.invariants.InvariantChecker`, asserting identical
    algorithm results and sane access-count orderings.  Exits non-zero on
    any failure; ``--inject-fault`` deliberately breaks the hierarchy to
    prove the checker fires.
``area``
    Print the §VI-E area/power accounting.
``benchmark``
    The continuous benchmark-regression suite (:mod:`repro.benchmark`):
    ``run`` measures the registered hot-path probes (warmup + min-of-k +
    bootstrap CIs) and emits a schema-versioned ``BENCH_<host>.json``;
    ``compare`` renders the trend table against a baseline; ``gate``
    additionally exits non-zero on a noise-cleared regression;
    ``baseline`` promotes (optionally scaling) a report into
    ``benchmarks/baselines/``.
``prewarm``
    Build GlaResources for dataset × core-count combos in parallel and
    persist them into the artifact store.
``cache``
    Inspect or maintain the artifact store (``stats``/``ls``/``gc``/``clear``).
``serve``
    Run the long-lived simulation service (``repro.service``): JSON over
    HTTP with request coalescing, admission control, a store-backed fast
    path and graceful SIGTERM drain.
``submit``
    Submit one run to a running service and (by default) wait for it,
    printing the same summary table ``run`` prints — byte-identical.
``status``
    Poll a job by id, or print the service's /healthz + /stats overview.

The artifact store root comes from ``--cache-dir`` or ``$REPRO_CACHE_DIR``;
``run``/``compare``/``experiment`` transparently reuse persisted artifacts
whenever the environment variable is set.

Errors derived from :class:`~repro.errors.ReproError` exit with their
class's distinct exit code (e.g. 75 for a retryable
``ServiceOverloadedError``, 66 for ``JobNotFoundError``) instead of dumping
a traceback; ``repro --version`` reports the package version.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro import __version__
from repro.engine.registry import engine_names
from repro.errors import ReproError
from repro.harness import differential
from repro.harness import experiments as registry
from repro.harness.report import render_table, render_telemetry
from repro.harness.runner import ALGORITHM_NAMES, Runner
from repro.harness.spec import RunSpec
from repro.hypergraph.generators import PAPER_DATASETS
from repro.hypergraph.pipeline import PreprocessSpec, StageSpec, stage_names
from repro.sim.config import scaled_config
from repro.store import ArtifactStore, prewarm, prewarm_jobs, resolve_cache_dir

__all__ = ["main", "build_parser"]

#: Every registered engine, in registry order — the single source of truth
#: for ``--engine`` choices is :mod:`repro.engine.registry`.
ENGINES = engine_names()
#: Algorithm choices come from the harness (the layer that builds them).
ALGORITHMS = ALGORITHM_NAMES

#: Experiment ids resolvable by the ``experiment`` command.
EXPERIMENTS = {
    "table1": lambda runner: registry.table1_rows(),
    "table2": registry.table2_rows,
    "fig02": registry.fig02_memory_accesses,
    "fig03": registry.fig03_performance,
    "fig05": registry.fig05_memory_stalls,
    "fig07": registry.fig07_hats_v,
    "fig08": registry.fig08_overlap,
    "fig14": registry.fig14_performance,
    "fig15": registry.fig15_breakdown,
    "fig16": registry.fig16_hw_breakdown,
    "fig17": registry.fig17_dmax_sweep,
    "fig18": registry.fig18_wmin_sweep,
    "fig19": registry.fig19_llc_sweep,
    "fig20": registry.fig20_core_scaling,
    "fig21": registry.fig21_preprocessing,
    "fig22": registry.fig22_total_time,
    "fig23": registry.fig23_prefetcher,
    "fig24": registry.fig24_reordering,
    "fig25": registry.fig25_graph_apps,
    "vi_e": lambda runner: registry.vi_e_area_power(),
    "summary": registry.headline_summary,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ChGraph (HPCA 2022) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print Table II for the built-in datasets")
    sub.add_parser("area", help="print the §VI-E area/power accounting")

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--algorithm", default="PR", choices=ALGORITHMS, help="application"
        )
        p.add_argument(
            "--dataset",
            default="WEB",
            choices=(*PAPER_DATASETS, "AZ", "PK"),
            help="built-in dataset key",
        )
        p.add_argument("--cores", type=int, default=16, help="simulated cores")
        p.add_argument("--llc-kb", type=int, default=4, help="shared LLC size")
        p.add_argument(
            "--pr-iterations", type=int, default=2,
            help="iterations for PR/Adsorption",
        )
        p.add_argument(
            "--w-min", type=int, default=None,
            help="OAG pruning threshold (default: the paper's w_min)",
        )
        p.add_argument(
            "--d-max", type=int, default=None,
            help="chain depth bound (default: the paper's d_max)",
        )
        p.add_argument(
            "--preprocess", action="append", default=None,
            choices=stage_names(), metavar="STAGE",
            help="preprocessing stage to apply before simulation "
                 f"(repeatable; one of: {', '.join(stage_names())})",
        )

    run = sub.add_parser("run", help="simulate one engine on one workload")
    run.add_argument("--engine", default="ChGraph", choices=ENGINES)
    add_workload_args(run)

    compare = sub.add_parser(
        "compare", help="Hygra vs software GLA vs ChGraph on one workload"
    )
    add_workload_args(compare)

    profile = sub.add_parser(
        "profile",
        help="instrumented runs: per-phase and per-iteration telemetry",
    )
    profile.add_argument(
        "--engines",
        default="Hygra,GLA,ChGraph",
        help="comma-separated engines to profile (default: Hygra,GLA,ChGraph)",
    )
    profile.add_argument(
        "--check", action="store_true",
        help="attach the invariant checker; violations are reported through "
             "the telemetry and fail the command",
    )
    add_workload_args(profile)

    check = sub.add_parser(
        "check",
        help="invariant + cross-engine differential checking suite",
    )
    check.add_argument(
        "--graphs", type=int, default=5,
        help="seeded generator hypergraphs to sweep (default: 5)",
    )
    check.add_argument(
        "--seed", type=int, default=101, help="base generator seed"
    )
    check.add_argument(
        "--algorithms", default=",".join(differential.DEFAULT_ALGORITHMS),
        help="comma-separated algorithms (default: PR,BFS,CC)",
    )
    check.add_argument(
        "--engines", default=None,
        help="comma-separated engines (default: every registry engine)",
    )
    check.add_argument("--cores", type=int, default=4, help="simulated cores")
    check.add_argument("--llc-kb", type=int, default=2, help="shared LLC size")
    check.add_argument(
        "--no-ordering", action="store_true",
        help="skip the overlap-heavy DRAM-ordering checks",
    )
    check.add_argument(
        "--inject-fault", default=None, choices=differential.FAULT_KINDS,
        help="deliberately break the hierarchy; the command must then FAIL",
    )
    check.add_argument(
        "--quiet", action="store_true", help="suppress per-workload progress"
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")

    def add_cache_dir_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir",
            default=None,
            help="artifact store root (default: $REPRO_CACHE_DIR)",
        )

    bench = sub.add_parser(
        "bench",
        help="regenerate figures via the sharded parallel executor",
    )
    bench.add_argument(
        "--figures",
        default="all",
        help="comma-separated experiment ids (default: every experiment)",
    )
    bench.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: CPU count; 1 forces serial)",
    )
    bench.add_argument(
        "--timeout", type=float, default=None,
        help="per-run timeout in seconds, enforced inside workers",
    )
    bench.add_argument(
        "--retries", type=int, default=2,
        help="retries for crashed/hung worker shards (default: 2)",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="run under instrumentation and append a telemetry summary "
             "(tables are unchanged: observation charges nothing)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="attach the invariant checker to every run (forces serial "
             "in-process execution and implies --profile); violations fail "
             "the command",
    )
    add_cache_dir_arg(bench)

    benchmark = sub.add_parser(
        "benchmark", help="continuous benchmark-regression suite"
    )
    bench_sub = benchmark.add_subparsers(dest="benchmark_command", required=True)

    b_run = bench_sub.add_parser(
        "run", help="measure the registered probes, emit BENCH_<host>.json"
    )
    b_run.add_argument(
        "--repeats", type=int, default=5,
        help="timed repetitions per probe; the min is gated (default: 5)",
    )
    b_run.add_argument(
        "--warmup", type=int, default=1,
        help="untimed warmup repetitions per probe (default: 1)",
    )
    b_run.add_argument(
        "--probes", default="all",
        help="comma-separated probe names (default: the full registry)",
    )
    b_run.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_<host>.json + manifest (default: cwd)",
    )

    def add_compare_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--current", required=True, help="the BENCH json under test"
        )
        p.add_argument(
            "--baseline", default=None,
            help="baseline BENCH json (default: "
                 "benchmarks/baselines/BENCH_<host-class>.json)",
        )
        p.add_argument(
            "--threshold", type=float, default=None,
            help="regression threshold as a fraction over baseline "
                 "(default: 0.5, i.e. fail past 1.5x)",
        )

    b_compare = bench_sub.add_parser(
        "compare", help="trend table vs a baseline (never fails the build)"
    )
    add_compare_args(b_compare)

    b_gate = bench_sub.add_parser(
        "gate", help="compare and exit non-zero on a gated regression"
    )
    add_compare_args(b_gate)

    b_baseline = bench_sub.add_parser(
        "baseline", help="promote a report into benchmarks/baselines/"
    )
    b_baseline.add_argument(
        "--from", dest="source", required=True,
        help="the BENCH json to promote",
    )
    b_baseline.add_argument(
        "--out", default=None,
        help="destination file (default: "
             "benchmarks/baselines/BENCH_<host-class>.json)",
    )
    b_baseline.add_argument(
        "--scale", type=float, default=1.0,
        help="scale every timing by this factor (0.5 synthesizes a "
             "baseline the current run regresses 2x against)",
    )

    pre = sub.add_parser(
        "prewarm",
        help="build and persist GlaResources for dataset/core combos",
    )
    add_cache_dir_arg(pre)
    pre.add_argument(
        "--datasets",
        default=",".join(PAPER_DATASETS),
        help="comma-separated dataset keys (default: all Table II)",
    )
    pre.add_argument(
        "--cores",
        default="16",
        help="comma-separated core counts (default: 16)",
    )
    pre.add_argument("--w-min", type=int, default=None, help="OAG pruning threshold")
    pre.add_argument("--d-max", type=int, default=None, help="chain depth bound")
    pre.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker processes (default: one per job, capped at CPUs)",
    )

    cache = sub.add_parser("cache", help="inspect or maintain the artifact store")
    cache.add_argument(
        "action", choices=("stats", "ls", "gc", "clear"), help="maintenance action"
    )
    add_cache_dir_arg(cache)
    cache.add_argument(
        "--max-mb", type=float, default=None,
        help="size bound for gc, in megabytes",
    )

    def add_endpoint_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1", help="service host")
        p.add_argument(
            "--port", type=int, default=None,
            help="service port (default: $REPRO_SERVICE_PORT or "
                 f"{service_default_port()})",
        )

    serve = sub.add_parser(
        "serve", help="run the long-lived simulation service"
    )
    add_endpoint_args(serve)
    add_cache_dir_arg(serve)
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="admission bound on queued jobs (default: 64)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="simulation worker processes per batch (default: auto)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-job wall-clock budget inside a worker, in seconds",
    )
    serve.add_argument(
        "--job-retries", type=int, default=1,
        help="re-dispatches before a failing job is reported failed",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.05,
        help="seconds to batch concurrent submissions (default: 0.05)",
    )
    serve.add_argument(
        "--stats-interval", type=float, default=0.0,
        help="print a stats line every N seconds (default: off)",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-job log lines"
    )

    submit = sub.add_parser(
        "submit", help="submit one run to a running service"
    )
    submit.add_argument("--engine", default="ChGraph", choices=ENGINES)
    add_workload_args(submit)
    add_endpoint_args(submit)
    submit.add_argument(
        "--priority", type=int, default=0,
        help="queue priority (higher runs sooner; default: 0)",
    )
    submit.add_argument(
        "--profile", action="store_true",
        help="request an instrumented run (separate cache entry)",
    )
    submit.add_argument(
        "--check", action="store_true",
        help="request a checked run: the service re-executes the "
             "simulation under the invariant checker (never answered "
             "from the store)",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="print the accepted job and return without waiting",
    )
    submit.add_argument(
        "--wait-timeout", type=float, default=None,
        help="give up waiting after N seconds (exit 70)",
    )
    submit.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the raw job record as JSON instead of the summary table",
    )

    status = sub.add_parser(
        "status", help="job status by id, or the service overview"
    )
    status.add_argument(
        "job_id", nargs="?", default=None,
        help="job id from submit (omit for /healthz + /stats overview)",
    )
    add_endpoint_args(status)
    status.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print raw JSON instead of a table",
    )
    return parser


def _preprocess_spec(args: argparse.Namespace) -> PreprocessSpec:
    """The workload flags' preprocessing record (defaults where unset)."""
    defaults = PreprocessSpec()
    return PreprocessSpec(
        w_min=defaults.w_min if args.w_min is None else args.w_min,
        d_max=defaults.d_max if args.d_max is None else args.d_max,
        stages=tuple(
            StageSpec.make(name) for name in (args.preprocess or ())
        ),
    )


def _workload_spec(args: argparse.Namespace, engine: str) -> RunSpec:
    """Build the :class:`RunSpec` the workload flags describe."""
    return RunSpec(
        engine=engine,
        algorithm=args.algorithm,
        dataset=args.dataset,
        config=scaled_config(num_cores=args.cores, llc_kb=args.llc_kb),
        pr_iterations=args.pr_iterations,
        preprocessing=_preprocess_spec(args),
    )


def _cmd_datasets(_: argparse.Namespace) -> int:
    title, headers, rows = registry.table2_rows(Runner())
    print(render_table(headers, rows, title=title))
    return 0


def _cmd_area(_: argparse.Namespace) -> int:
    title, headers, rows = registry.vi_e_area_power()
    print(render_table(headers, rows, title=title))
    return 0


def _render_run_result(result) -> str:
    """The ``run`` summary table — shared verbatim by ``submit`` so a served
    result renders byte-identically to a local run."""
    rows = [
        ["engine", result.engine],
        ["algorithm", result.algorithm],
        ["dataset", result.dataset],
        ["iterations", result.iterations],
        ["cycles", result.cycles],
        ["DRAM accesses", result.dram_accesses],
        ["memory-stall fraction", result.memory_stall_fraction],
        *[
            [f"DRAM: {group}", count]
            for group, count in result.dram_by_group.items()
        ],
    ]
    return render_table(["Quantity", "Value"], rows, title="Run summary")


def _cmd_run(args: argparse.Namespace) -> int:
    runner = Runner()
    result = runner.run(_workload_spec(args, args.engine))
    print(_render_run_result(result))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    runner = Runner()
    config = scaled_config(num_cores=args.cores, llc_kb=args.llc_kb)
    baseline = runner.run(_workload_spec(args, "Hygra"))
    rows = []
    for engine in ("Hygra", "GLA", "ChGraph"):
        result = runner.run(_workload_spec(args, engine))
        rows.append([
            engine,
            result.cycles,
            result.dram_accesses,
            result.speedup_over(baseline),
            result.dram_reduction_over(baseline),
        ])
    print(
        render_table(
            ["System", "Cycles", "DRAM", "Speedup", "DRAM reduction"],
            rows,
            title=f"{args.algorithm} on {args.dataset} "
                  f"({config.num_cores} cores, {args.llc_kb}KB LLC)",
        )
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    engines = [e for e in args.engines.split(",") if e]
    unknown = [e for e in engines if e not in ENGINES]
    if unknown:
        print(f"unknown engine(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    runner = Runner()
    violations = 0
    for engine in engines:
        result = runner.run(
            _workload_spec(args, engine), profile=True, check=args.check,
        )
        label = f"{engine} — {args.algorithm} on {args.dataset}"
        if result.telemetry is None:
            print(f"{label}: no telemetry recorded", file=sys.stderr)
            return 1
        print(render_telemetry(result.telemetry, label))
        print()
        violations += len(result.telemetry.violations)
    if args.check:
        if violations:
            print(f"check: {violations} invariant violation(s)", file=sys.stderr)
            return 1
        print("check: all invariants held")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    runner = Runner()
    title, headers, rows = EXPERIMENTS[args.id](runner)
    print(render_table(headers, rows, title=title))
    if runner.store is not None:
        print(f"cache: {runner.store.stats} ({runner.store.root})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    ids = (
        list(EXPERIMENTS)
        if args.figures == "all"
        else [f for f in args.figures.split(",") if f]
    )
    unknown = [f for f in ids if f not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    runner = Runner(cache_dir=args.cache_dir)
    if runner.store is None and not args.check and (
        args.jobs is None or args.jobs > 1
    ):
        print(
            "bench: no artifact store (--cache-dir/$REPRO_CACHE_DIR); "
            "executing serially in-process",
            file=sys.stderr,
        )
    specs = registry.run_matrix(ids)
    results = runner.run_many(
        specs, jobs=args.jobs, timeout=args.timeout, retries=args.retries,
        profile=args.profile or args.check, check=args.check,
    )
    for experiment_id in ids:
        title, headers, rows = EXPERIMENTS[experiment_id](runner)
        print(render_table(headers, rows, title=title))
        print()
    if args.profile:
        rows = []
        for spec, result in results.items():
            telemetry = result.telemetry
            if telemetry is None:
                continue
            by_phase = {
                name: profile.cycles
                for name, profile in telemetry.phases.items()
            }
            rows.append([
                spec.label(),
                by_phase.get("hyperedge", 0.0),
                by_phase.get("vertex", 0.0),
                telemetry.mean_frontier_density,
                result.dram_accesses,
            ])
        print(
            render_table(
                ["run", "hyperedge cyc", "vertex cyc", "mean density", "DRAM"],
                rows,
                title="Profile summary",
            )
        )
        print()
    report = runner.last_execution_report
    if report is not None:
        retried = len(report.retried())
        print(
            f"bench: {len(report.reports)} runs in {len(report.shards)} "
            f"shard(s), jobs={report.jobs}, "
            f"parallel={'yes' if report.parallel else 'no'}, "
            f"retried-inline={retried}, {report.seconds:.2f}s"
        )
    if runner.store is not None:
        print(f"cache: {runner.store.stats} ({runner.store.root})")
    if args.check:
        violations = [
            f"{spec.label()}: {message}"
            for spec, result in results.items()
            if result.telemetry is not None
            for message in result.telemetry.violations
        ]
        if violations:
            print(
                f"check: {len(violations)} invariant violation(s)",
                file=sys.stderr,
            )
            for message in violations:
                print(f"  - {message}", file=sys.stderr)
            return 1
        print(f"check: all invariants held across {len(results)} runs")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    engines = None
    if args.engines:
        engines = [e for e in args.engines.split(",") if e]
        unknown = [e for e in engines if e not in ENGINES]
        if unknown:
            print(f"unknown engine(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    algorithms = tuple(a for a in args.algorithms.split(",") if a)
    unknown = [a for a in algorithms if a not in ALGORITHMS]
    if unknown:
        print(f"unknown algorithm(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    config = scaled_config(num_cores=args.cores, llc_kb=args.llc_kb)
    log = None if args.quiet else (lambda message: print(f"  {message}"))

    def sweep():
        return differential.run_differential(
            engines=engines,
            algorithms=algorithms,
            graph_count=args.graphs,
            base_seed=args.seed,
            config=config,
            ordering=not args.no_ordering,
            log=log,
        )

    if args.inject_fault is not None:
        print(f"check: injecting fault {args.inject_fault!r}")
        with differential.inject_fault(args.inject_fault):
            report = sweep()
    else:
        report = sweep()
    for message in report.skipped:
        print(f"  skip: {message}")
    for message in report.failures:
        print(f"  FAIL: {message}", file=sys.stderr)
    for message in report.violations:
        print(f"  VIOLATION: {message}", file=sys.stderr)
    print(report.summary())
    return 0 if report.ok else 1


#: Where committed per-host-class baselines live (repo-relative).
BASELINE_DIR = "benchmarks/baselines"


def _default_baseline_path():
    from pathlib import Path

    from repro.benchmark import report_filename

    return Path(BASELINE_DIR) / report_filename()


def _load_comparison(args: argparse.Namespace):
    """Shared by ``benchmark compare`` and ``benchmark gate``."""
    from pathlib import Path

    from repro import benchmark
    from repro.errors import BenchmarkError

    baseline_path = (
        Path(args.baseline) if args.baseline else _default_baseline_path()
    )
    if not baseline_path.exists():
        raise BenchmarkError(
            f"no baseline at {baseline_path} — run "
            f"`repro benchmark baseline --from <BENCH json>` first, or pass "
            f"--baseline"
        )
    current = benchmark.load_report(args.current)
    baseline = benchmark.load_report(baseline_path)
    threshold = (
        benchmark.DEFAULT_GATE_THRESHOLD
        if args.threshold is None
        else args.threshold
    )
    comparisons = benchmark.compare_reports(current, baseline, threshold)
    title = (
        f"Benchmark trend — {current['host_class']} "
        f"(gate at >{1.0 + threshold:.2f}x, CI-separated)"
    )
    return comparisons, title


def _cmd_benchmark(args: argparse.Namespace) -> int:
    from repro import benchmark
    from repro.benchmark.trend import measurements_table, trend_table

    if args.benchmark_command == "run":
        benchmark.load_default_probes()
        names = (
            list(benchmark.probe_names())
            if args.probes == "all"
            else [p for p in args.probes.split(",") if p]
        )
        measurements = []
        for name in names:
            probe = benchmark.get_probe(name)
            print(f"benchmark: measuring {name} ...", file=sys.stderr)
            measurements.append(
                benchmark.measure_probe(
                    probe, repeats=args.repeats, warmup=args.warmup
                )
            )
        report = benchmark.build_report(
            measurements, repeats=args.repeats, warmup=args.warmup
        )
        path = benchmark.write_report(report, args.out_dir)
        print(
            measurements_table(
                measurements, str(report["host_class"]), args.repeats
            )
        )
        print(f"wrote {path}")
        return 0

    if args.benchmark_command in ("compare", "gate"):
        comparisons, title = _load_comparison(args)
        print(trend_table(comparisons, title))
        failures = benchmark.gate_failures(comparisons)
        if args.benchmark_command == "gate" and failures:
            print(
                f"benchmark gate: {len(failures)} regression(s): "
                + ", ".join(c.name for c in failures),
                file=sys.stderr,
            )
            return 1
        if failures:
            print(
                f"note: {len(failures)} probe(s) would fail the gate",
                file=sys.stderr,
            )
        return 0

    # baseline: promote (optionally scaled) into the committed directory.
    from pathlib import Path

    report = benchmark.load_report(args.source)
    if args.scale != 1.0:
        report = benchmark.scale_report(report, args.scale)
    out = Path(args.out) if args.out else (
        Path(BASELINE_DIR) / benchmark.report_filename(str(report["host_class"]))
    )
    benchmark.write_report(report, out.parent, filename=out.name)
    scaled = "" if args.scale == 1.0 else f" (timings x{args.scale})"
    print(f"baseline: {args.source} -> {out}{scaled}")
    return 0


def _open_store(args: argparse.Namespace) -> ArtifactStore | None:
    root = resolve_cache_dir(args.cache_dir)
    if root is None:
        print(
            "no artifact store configured: pass --cache-dir or set "
            "$REPRO_CACHE_DIR",
            file=sys.stderr,
        )
        return None
    return ArtifactStore(root)


def _cmd_prewarm(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    datasets = [d for d in args.datasets.split(",") if d]
    core_counts = [int(c) for c in args.cores.split(",") if c]
    kwargs = {}
    if args.w_min is not None:
        kwargs["w_min"] = args.w_min
    if args.d_max is not None:
        kwargs["d_max"] = args.d_max
    jobs = prewarm_jobs(datasets, core_counts, **kwargs)
    reports = prewarm(store.root, jobs, workers=args.workers)
    rows = [
        [
            r.job.dataset,
            r.job.num_cores,
            "built" if r.built else "cached",
            round(r.seconds, 3),
            round(r.payload_bytes / 1024, 1),
            r.key[:12],
        ]
        for r in reports
    ]
    print(
        render_table(
            ["Dataset", "Cores", "Status", "Seconds", "KB", "Key"],
            rows,
            title=f"Prewarmed {len(reports)} artifact(s) into {store.root}",
        )
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    if args.action == "stats":
        entries = store.ls()
        by_kind: dict[str, int] = {}
        for entry in entries:
            by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
        rows = [
            ["root", str(store.root)],
            ["entries", len(entries)],
            *[[f"entries: {kind}", count] for kind, count in sorted(by_kind.items())],
            ["disk KB", round(store.disk_bytes() / 1024, 1)],
        ]
        print(render_table(["Quantity", "Value"], rows, title="Artifact store"))
    elif args.action == "ls":
        rows = [
            [e.kind, e.key, round(e.size_bytes / 1024, 1)] for e in store.ls()
        ]
        print(
            render_table(
                ["Kind", "Key", "KB"], rows,
                title=f"Artifact store — {store.root}",
            )
        )
    elif args.action == "gc":
        if args.max_mb is None:
            print("cache gc requires --max-mb", file=sys.stderr)
            return 2
        evicted = store.gc(int(args.max_mb * 1024 * 1024))
        print(f"evicted {evicted} entr{'y' if evicted == 1 else 'ies'}")
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


def service_default_port() -> int:
    """``$REPRO_SERVICE_PORT`` when set, else the package default port."""
    import os

    from repro.service.server import DEFAULT_PORT

    return int(os.environ.get("REPRO_SERVICE_PORT", DEFAULT_PORT))


def _client(args: argparse.Namespace):
    from repro.service import ServiceClient

    port = args.port if args.port is not None else service_default_port()
    return ServiceClient(host=args.host, port=port)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import SchedulerConfig, ServiceConfig, SimulationService

    root = resolve_cache_dir(args.cache_dir)
    config = ServiceConfig(
        host=args.host,
        port=args.port if args.port is not None else service_default_port(),
        cache_dir=None if root is None else str(root),
        max_depth=args.max_queue,
        scheduler=SchedulerConfig(
            workers=args.workers,
            job_timeout=args.job_timeout,
            job_retries=args.job_retries,
            batch_window=args.batch_window,
        ),
        stats_interval=args.stats_interval,
    )

    def log(message: str) -> None:
        # The listening banner must always surface (scripts parse the
        # bound port from it); per-job chatter is opt-out via --quiet.
        if not args.quiet or message.startswith(("repro-serve", "drained")):
            print(message, flush=True)

    service = SimulationService(config, log=log)
    asyncio.run(service.run())
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.service import JobRequest, ServiceClient

    request = JobRequest.build(
        engine=args.engine,
        algorithm=args.algorithm,
        dataset=args.dataset,
        cores=args.cores,
        llc_kb=args.llc_kb,
        pr_iterations=args.pr_iterations,
        profile=args.profile,
        check=args.check,
        w_min=args.w_min,
        d_max=args.d_max,
        stages=tuple(args.preprocess or ()),
        priority=args.priority,
    )
    client = _client(args)
    if args.no_wait:
        job = client.submit(request)
        if args.as_json:
            print(json_module.dumps(job))
        else:
            print(f"{job['job_id']} {job['state']} ({request.label()})")
        return 0
    job = client.run(request, timeout=args.wait_timeout)
    if args.as_json:
        print(json_module.dumps(job))
        return 0
    print(_render_run_result(ServiceClient.run_result(job)))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json as json_module

    client = _client(args)
    if args.job_id is not None:
        job = client.status(args.job_id)
        if args.as_json:
            print(json_module.dumps(job))
            return 0
        rows = [
            [field, "" if job.get(field) is None else job[field]]
            for field in (
                "job_id", "state", "key", "attempts", "served_from",
                "coalesced_into", "latency", "error",
            )
        ]
        request = job.get("request", {})
        # The wire format wraps the RunSpec; fall back to the legacy flat
        # fields for records from an older server.
        spec = request.get("spec", request)
        rows[2:2] = [[
            "request",
            f"{spec.get('engine')}/{spec.get('algorithm')}/"
            f"{spec.get('dataset')}",
        ]]
        print(render_table(["Field", "Value"], rows, title=f"Job {job['job_id']}"))
        return 0 if job["state"] != "failed" else 1
    health = client.health()
    stats = client.stats()
    if args.as_json:
        print(json_module.dumps({"healthz": health, "stats": stats}))
        return 0
    rows = [[key, value] for key, value in health.items()]
    rows += [
        [key, value] for key, value in stats.items() if key != "latency"
    ]
    rows += [
        [f"latency {key}", round(value, 4)]
        for key, value in stats["latency"].items()
    ]
    print(render_table(
        ["Quantity", "Value"], rows,
        title=f"Service at {client.host}:{client.port}",
    ))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    :class:`~repro.errors.ReproError` subclasses exit with their class's
    ``exit_code`` and a one-line message instead of a traceback, so shells
    and supervisors can distinguish e.g. a retryable overload (75) from a
    missing job (66).
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "area": _cmd_area,
        "benchmark": _cmd_benchmark,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "profile": _cmd_profile,
        "check": _cmd_check,
        "experiment": _cmd_experiment,
        "bench": _cmd_bench,
        "prewarm": _cmd_prewarm,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"repro {args.command}: {type(exc).__name__}: {exc}", file=sys.stderr)
        return exc.exit_code
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())

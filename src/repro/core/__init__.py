"""The paper's contribution: OAG, chains, and the GLA execution model."""

from repro.core.chain import ChainGenerator, ChainSet
from repro.core.metrics import ChainQuality, chain_quality, schedule_affinity
from repro.core.oag import Oag, build_oag

__all__ = [
    "ChainGenerator",
    "ChainQuality",
    "ChainSet",
    "Oag",
    "build_oag",
    "chain_quality",
    "schedule_affinity",
]

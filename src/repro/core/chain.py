"""Chain generation (Definition 2, Algorithm 3, and the HCG pipeline order).

A chain is a sequence of OAG nodes produced by a greedy maximally-overlapped
walk: starting from the lowest-indexed active element, repeatedly step to the
unvisited *active* neighbor with the highest overlap weight (the OAG rows are
pre-sorted descending, so "pick the first eligible" is weight-maximal), until
no eligible neighbor remains or the exploration depth reaches ``D_max``
(default 16 — the paper's sweet spot, equal to the hardware stack depth).

Elements that are active but have no OAG presence (isolated nodes, or nodes
whose overlaps were pruned by ``W_min``) become singleton chains in index
order, which is the paper's correctness argument for pruning: "the data that
miss the overlapping information will be safely scheduled in order of their
indices".

Every active element appears in exactly one chain exactly once; inactive
elements never appear.  Tests enforce this invariant.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

import numpy as np

from repro.core.oag import Oag

__all__ = ["ChainSet", "ChainGenerator", "ChainProbe", "DEFAULT_D_MAX"]

#: §IV-B: "we set D_max to 16 by default".
DEFAULT_D_MAX = 16


class ChainProbe:
    """Instrumentation hooks invoked once per micro-step of generation.

    Execution engines subclass this to charge memory accesses / cycles for
    each hardware pipeline stage (root setting, offsets fetching, neighbor
    fetching, neighbor selection) without duplicating the algorithm.
    """

    def on_root_scan(self, element: int) -> None:
        """Bitmap probe while hunting for the next active root."""

    def on_offsets_fetch(self, node: int) -> None:
        """OAG_offset read for the node on top of the stack."""

    def on_neighbor_inspect(self, node: int, position: int) -> None:
        """OAG_edge/OAG_weight read at CSR position ``position``."""

    def on_select(self, element: int) -> None:
        """An element enters the chain (pushed to stack + chain FIFO).

        ``element`` is the *global* hypergraph id, like all probe hooks.
        """


@dataclasses.dataclass
class ChainSet:
    """The chains generated for one chunk in one phase, plus cost counters."""

    chains: list[list[int]]
    root_scans: int = 0
    offsets_fetches: int = 0
    neighbor_inspections: int = 0

    @property
    def num_chains(self) -> int:
        return len(self.chains)

    @property
    def num_elements(self) -> int:
        return sum(len(chain) for chain in self.chains)

    @property
    def mean_length(self) -> float:
        return self.num_elements / self.num_chains if self.chains else 0.0

    def order(self) -> Iterator[int]:
        """The flattened scheduling order."""
        for chain in self.chains:
            yield from chain

    def __iter__(self) -> Iterator[list[int]]:
        return iter(self.chains)


class ChainGenerator:
    """Greedy maximal-overlap chain generation over a (chunk) OAG.

    Two equivalent paths implement Algorithm 3: the instrumented scalar walk
    (always used when a :class:`ChainProbe` is attached, so HCG cycle and
    access accounting is untouched) and a probe-free fast path that replaces
    the per-neighbor Python loop with array operations (``fast=True``,
    engaged only when no probe is passed).  Both return identical chains and
    identical ``root_scans`` / ``offsets_fetches`` / ``neighbor_inspections``
    counters; ``tests/core/test_fast_parity.py`` enforces the equivalence.
    """

    def __init__(self, d_max: int = DEFAULT_D_MAX, fast: bool = True) -> None:
        if d_max < 1:
            raise ValueError("d_max must be >= 1")
        self.d_max = d_max
        self.fast = fast

    def generate(
        self,
        active: np.ndarray,
        oag: Oag,
        probe: ChainProbe | None = None,
    ) -> ChainSet:
        """Generate chains for the active elements of one chunk.

        ``active`` is a boolean bitmap over the chunk's elements (local index
        0 is hypergraph element ``oag.first_id``).  The bitmap is not
        mutated.  Chain entries are *global* element ids.
        """
        if active.size != oag.num_nodes:
            raise ValueError(
                f"active bitmap size {active.size} != OAG nodes {oag.num_nodes}"
            )
        if probe is None and self.fast:
            return self._generate_fast(active, oag)
        if probe is None:
            probe = ChainProbe()
        # Plain-list mirrors of the numpy inputs: the scalar walk touches
        # them once per micro-step, where numpy scalar indexing costs ~10x a
        # list index.  ``remaining`` is private to this call; the CSR lists
        # are the Csr's cached copies.
        remaining = active.tolist()
        result = ChainSet(chains=[])
        offsets = oag.csr.offsets_list()
        edges = oag.csr.indices_list()
        first_id = oag.first_id
        on_root_scan = probe.on_root_scan
        root_scans = 0

        for root in range(active.size):
            # Root-setting stage: scan the bitmap for the minimal active id.
            root_scans += 1
            on_root_scan(first_id + root)
            if not remaining[root]:
                continue
            chain = self._explore(
                root, remaining, offsets, edges, probe, result, first_id
            )
            result.chains.append([first_id + node for node in chain])
        result.root_scans += root_scans
        return result

    def _explore(
        self,
        root: int,
        remaining: list[bool],
        offsets: list[int],
        edges: list[int],
        probe: ChainProbe,
        result: ChainSet,
        first_id: int,
    ) -> list[int]:
        """One greedy walk: the chain rooted at ``root`` (local node ids)."""
        chain = [root]
        remaining[root] = False
        probe.on_select(first_id + root)
        on_offsets_fetch = probe.on_offsets_fetch
        on_neighbor_inspect = probe.on_neighbor_inspect
        offsets_fetches = 0
        neighbor_inspections = 0
        current = root
        depth = 0
        while depth < self.d_max - 1:
            # Offsets-fetching stage.
            offsets_fetches += 1
            on_offsets_fetch(current)
            start, end = offsets[current], offsets[current + 1]
            # Neighbor fetching + selection: the row is weight-descending, so
            # the first unvisited active neighbor is the maximal-weight one.
            successor = -1
            for position in range(start, end):
                neighbor_inspections += 1
                on_neighbor_inspect(current, position)
                candidate = edges[position]
                if remaining[candidate]:
                    successor = candidate
                    break
            if successor < 0:
                break
            remaining[successor] = False
            chain.append(successor)
            probe.on_select(first_id + successor)
            current = successor
            depth += 1
        result.offsets_fetches += offsets_fetches
        result.neighbor_inspections += neighbor_inspections
        return chain

    def _generate_fast(self, active: np.ndarray, oag: Oag) -> ChainSet:
        """Probe-free Algorithm 3: whole-row array steps, identical output.

        Matches the scalar walk chain-for-chain and counter-for-counter: the
        scalar path scans every local index as a root candidate
        (``root_scans``), fetches one offsets pair per walk step
        (``offsets_fetches``), and inspects each CSR slot up to and
        including the first still-active neighbor (``neighbor_inspections``).
        """
        remaining = active.astype(bool, copy=True)
        result = ChainSet(chains=[], root_scans=int(active.size))
        offsets = oag.csr.offsets
        edges = oag.csr.indices
        first_id = oag.first_id
        offsets_fetches = 0
        neighbor_inspections = 0
        max_steps = self.d_max - 1
        chains = result.chains

        for root in np.flatnonzero(remaining):
            if not remaining[root]:
                continue  # consumed by an earlier walk
            chain = [first_id + int(root)]
            remaining[root] = False
            current = int(root)
            for _ in range(max_steps):
                offsets_fetches += 1
                row = edges[offsets[current] : offsets[current + 1]]
                if row.size == 0:
                    break
                # The row is weight-descending, so the first still-active
                # slot is the maximal-weight successor.
                alive = remaining[row]
                hit = int(np.argmax(alive))
                if not alive[hit]:
                    neighbor_inspections += int(row.size)
                    break
                neighbor_inspections += hit + 1
                current = int(row[hit])
                remaining[current] = False
                chain.append(first_id + current)
            chains.append(chain)
        result.offsets_fetches = offsets_fetches
        result.neighbor_inspections = neighbor_inspections
        return result

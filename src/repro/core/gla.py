"""The Generate-Load-Apply execution model (Algorithm 2), schedule side.

This module owns the *Generate* step as the software GLA engine and the
ChGraph engine both consume it: given the current frontier and the per-chunk
OAGs, produce each chunk's chain-ordered schedule.  The *Load* step is
:mod:`repro.core.tuples`; the *Apply* step is the algorithm's HF/VF and
lives with the execution engines.
"""

from __future__ import annotations

import dataclasses

from repro.core.chain import ChainGenerator, ChainProbe, ChainSet
from repro.core.oag import Oag
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.partition import Chunk

__all__ = ["ChunkSchedule", "generate_schedules", "index_order_schedule"]


@dataclasses.dataclass
class ChunkSchedule:
    """The scheduling order for one chunk in one phase."""

    chunk: Chunk
    chains: ChainSet

    def order(self) -> list[int]:
        return list(self.chains.order())


def generate_schedules(
    frontier: Frontier,
    chunks: list[Chunk],
    oags: list[Oag],
    generator: ChainGenerator,
    probes: list[ChainProbe] | None = None,
) -> list[ChunkSchedule]:
    """Generate per-chunk chain schedules from the active frontier.

    ``oags[i]`` must be the OAG of ``chunks[i]``; ``probes[i]``, when given,
    receives the per-step instrumentation callbacks for chunk ``i`` (engines
    use this to charge chain-generation costs to the owning core).
    """
    if len(chunks) != len(oags):
        raise ValueError("chunks and oags must be parallel lists")
    schedules = []
    for i, (chunk, oag) in enumerate(zip(chunks, oags)):
        active = frontier.bitmap[chunk.first : chunk.last]
        probe = probes[i] if probes is not None else None
        chains = generator.generate(active, oag, probe=probe)
        schedules.append(ChunkSchedule(chunk=chunk, chains=chains))
    return schedules


def index_order_schedule(frontier: Frontier, chunk: Chunk) -> list[int]:
    """Hygra's schedule: active elements of the chunk in ascending index."""
    return [int(i) for i in frontier.ids() if chunk.first <= i < chunk.last]

"""Chain-quality metrics.

Quantifies how good a generated schedule is, independent of the cache
simulator:

* **overlap capture** — of all the overlap weight available in the OAG, how
  much lies on *adjacent* chain pairs (the only overlaps a chain actually
  turns into reuse);
* **length distribution** — fragmentation (singleton chains schedule in
  index order and recover nothing);
* **schedule affinity** — mean shared-neighbor count between consecutive
  scheduled elements, measured on the hypergraph itself (works even for
  schedules that never saw an OAG, e.g. HATS's BDFS order).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.core.chain import ChainSet
from repro.core.oag import Oag
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["ChainQuality", "chain_quality", "schedule_affinity"]


@dataclasses.dataclass(frozen=True)
class ChainQuality:
    """Summary of one :class:`ChainSet` against its OAG."""

    num_chains: int
    num_elements: int
    singleton_fraction: float
    mean_length: float
    max_length: int
    captured_weight: int
    available_weight: int

    @property
    def capture_ratio(self) -> float:
        """Adjacent-pair weight over all (undirected) OAG weight."""
        if self.available_weight == 0:
            return 0.0
        return self.captured_weight / self.available_weight


def chain_quality(chains: ChainSet, oag: Oag) -> ChainQuality:
    """Score a chunk's chains against its OAG."""
    weights: dict[tuple[int, int], int] = {}
    for node in range(oag.num_nodes):
        for neighbor, weight in zip(oag.neighbors(node), oag.weights(node)):
            if node < int(neighbor):
                weights[(node, int(neighbor))] = int(weight)
    available = sum(weights.values())

    captured = 0
    lengths = []
    for chain in chains:
        lengths.append(len(chain))
        for a, b in zip(chain, chain[1:]):
            local_a, local_b = a - oag.first_id, b - oag.first_id
            key = (min(local_a, local_b), max(local_a, local_b))
            captured += weights.get(key, 0)

    num_chains = len(lengths)
    singletons = sum(1 for length in lengths if length == 1)
    return ChainQuality(
        num_chains=num_chains,
        num_elements=sum(lengths),
        singleton_fraction=singletons / num_chains if num_chains else 0.0,
        mean_length=sum(lengths) / num_chains if num_chains else 0.0,
        max_length=max(lengths, default=0),
        captured_weight=captured,
        available_weight=available,
    )


def schedule_affinity(
    hypergraph: Hypergraph, order: Sequence[int], side: str = "hyperedge"
) -> float:
    """Mean |N(a) ∩ N(b)| over consecutive scheduled pairs.

    Measured on the hypergraph's true incidence (not the pruned OAG), so any
    scheduling policy — index order, BDFS, chains — is comparable.
    """
    if len(order) < 2:
        return 0.0
    csr = hypergraph.side(side)
    total = 0
    for a, b in zip(order, order[1:]):
        members = set(map(int, csr.neighbors(a)))
        total += sum(1 for n in csr.neighbors(b) if int(n) in members)
    return total / (len(order) - 1)

"""Overlap-aware abstraction graph (OAG) construction (Definition 1, §IV-A).

Given a hypergraph, the hyperedge OAG (H-OAG) is a weighted undirected graph
with one node per hyperedge; an edge connects two hyperedges that overlap and
its weight is ``|N(h) ∩ N(h')|``.  Edges with weight below ``W_min`` are
pruned ("discarding those unimportant edges that improve little locality").
The vertex OAG (V-OAG) is symmetric.

The OAG is stored in CSR form with each node's neighbor list sorted in
*descending weight order* — the paper does this precisely to avoid sorting
during chain generation (§IV-B: "we enforce to store the CSR-based edges of
each vertex in a descending order according to their weights").

Two implementations build the same OAG: a NumPy-vectorized pipeline (the
default, ``fast=True``) that expands every pivot row into pair arrays and
collapses them with ``np.unique``, and the original per-element scalar
counter kept as the reference (``fast=False``).  Both produce bit-identical
CSRs (offsets, indices, weights) and identical ``build_operations`` counts,
so Figure 21(a)'s preprocessing-cost reporting is unaffected by the fast
path; ``tests/core/test_fast_parity.py`` enforces the equivalence.
"""

from __future__ import annotations

import dataclasses
import time
from collections import defaultdict

import numpy as np

try:  # SpGEMM backend for the fast path; numpy-only fallback below.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy is optional
    _sparse = None

from repro.hypergraph.csr import Csr
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import Chunk

__all__ = ["Oag", "build_oag", "build_chunk_oags", "DEFAULT_W_MIN"]

#: The paper's empirical sweet spot (§IV-A): "in this work we empirically
#: set W_min = 3".  The scaled datasets keep paper-scale hyperedge degrees
#: (45-58), so overlap weights are in the paper's range and the same
#: threshold applies.
DEFAULT_W_MIN = 3


@dataclasses.dataclass(frozen=True)
class Oag:
    """A weighted CSR over one side's elements, weight-descending per row.

    ``side`` is ``"hyperedge"`` (H-OAG, nodes are hyperedges) or ``"vertex"``
    (V-OAG).  ``first_id`` offsets node ids when the OAG covers a chunk:
    node ``n`` of this OAG is element ``first_id + n`` of the hypergraph.
    """

    side: str
    csr: Csr
    w_min: int
    first_id: int = 0
    build_seconds: float = 0.0
    build_operations: int = 0

    @property
    def num_nodes(self) -> int:
        return self.csr.num_rows

    @property
    def num_edges(self) -> int:
        """Directed edge slots; each undirected overlap pair stores two."""
        return self.csr.num_entries

    def neighbors(self, node: int) -> np.ndarray:
        return self.csr.neighbors(node)

    def weights(self, node: int) -> np.ndarray:
        return self.csr.neighbor_weights(node)

    def storage_bytes(self) -> int:
        """CSR footprint: 4-byte offsets, edges and weights (Figure 21(b))."""
        return 4 * (self.csr.offsets.size + 2 * self.csr.indices.size)

    def is_weight_descending(self) -> bool:
        """Invariant check: every row's weights are non-increasing.

        A weight-less CSR cannot exhibit the invariant at all — it is not a
        valid OAG payload — so it reports ``False`` rather than vacuous
        truth; callers use this method to certify that chain generation may
        rely on "first eligible neighbor is weight-maximal".
        """
        weights = self.csr.weights
        if weights is None:
            return False
        if weights.size < 2:
            return True
        # One pass over the flat weights: a rise w[i] < w[i+1] violates the
        # invariant unless position i+1 starts a new row.
        rises = np.diff(weights) > 0
        row_start = np.zeros(weights.size, dtype=bool)
        starts = self.csr.offsets[1:-1]
        row_start[starts[starts < weights.size]] = True
        return not bool(np.any(rises & ~row_start[1:]))


def _expand_pairs(
    vals: np.ndarray, lens: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All unordered within-segment pairs of ``vals``.

    ``vals`` is a concatenation of segments whose lengths are ``lens``; a
    segment of length ``d`` contributes its ``d * (d - 1) / 2`` element
    pairs.  Returns parallel ``(left, right)`` arrays where ``left`` sits
    earlier in its segment than ``right``.
    """
    empty = np.zeros(0, dtype=np.int64)
    if vals.size == 0:
        return empty, empty
    lens = lens.astype(np.int64, copy=False)
    # Element at segment position p of a length-d segment leads d - 1 - p
    # pairs, one per later element of the same segment.
    seg_len = np.repeat(lens, lens)
    starts = np.cumsum(lens) - lens
    pos = np.arange(vals.size, dtype=np.int64) - np.repeat(starts, lens)
    reps = seg_len - 1 - pos
    total = int(reps.sum())
    if total == 0:
        return empty, empty
    left = np.repeat(vals, reps)
    # The partner of pair k in lead element g's group is vals[g + 1 + k'],
    # with k' the offset inside the group; fold g + 1 - group_start into one
    # per-element constant so only a single large repeat is needed.
    shift = np.arange(vals.size, dtype=np.int64) + 1 - (np.cumsum(reps) - reps)
    right = vals[np.arange(total, dtype=np.int64) + np.repeat(shift, reps)]
    return left, right


def _unique_pair_counts(
    vals: np.ndarray, lens: np.ndarray, num_cols: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unique co-occurrence pairs of ``vals`` with their multiplicities.

    ``vals`` holds element ids in ``[0, num_cols)`` concatenated per
    segment; a pair's weight is the number of segments containing both ids.
    Returns ``(lo, hi, weight)`` with ``lo < hi``, sorted by ``(lo, hi)``.
    Uses one sparse matrix product (``B.T @ B`` over the segment incidence)
    when scipy is available, else a numpy repeat/advanced-indexing pipeline.
    """
    empty = np.zeros(0, dtype=np.int64)
    if vals.size == 0 or num_cols == 0:
        return empty, empty, empty
    if _sparse is not None:
        lens = lens.astype(np.int64, copy=False)
        indptr = np.zeros(lens.size + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
        incidence = _sparse.csr_matrix(
            (np.ones(vals.size, dtype=np.int64), vals, indptr),
            shape=(lens.size, num_cols),
        )
        gram = (incidence.T @ incidence).tocsr()
        gram.sort_indices()
        coo = gram.tocoo()
        upper = coo.row < coo.col  # drop the degree diagonal + mirror half
        return (
            coo.row[upper].astype(np.int64),
            coo.col[upper].astype(np.int64),
            coo.data[upper].astype(np.int64),
        )
    left, right = _expand_pairs(vals, lens)
    if left.size == 0:
        return empty, empty, empty
    lo = np.minimum(left, right)
    hi = np.maximum(left, right)
    span = np.int64(num_cols)
    keys, counts = np.unique(lo * span + hi, return_counts=True)
    return keys // span, keys % span, counts.astype(np.int64)


def _pairs_to_csr(
    lo: np.ndarray,
    hi: np.ndarray,
    weights: np.ndarray,
    w_min: int,
    first_id: int,
    num_nodes: int,
) -> Csr:
    """Emit the weight-descending CSR for one node range from pair arrays."""
    keep = weights >= w_min
    lo = lo[keep] - first_id
    hi = hi[keep] - first_id
    kept = weights[keep]
    # Each undirected overlap stores two directed slots.
    rows = np.concatenate([lo, hi])
    cols = np.concatenate([hi, lo])
    flat_weights = np.concatenate([kept, kept])
    # Row-major, weight-descending within a row, ascending id tiebreak —
    # exactly the scalar builder's per-row sort key.
    order = np.lexsort((cols, -flat_weights, rows))
    offsets = np.zeros(num_nodes + 1, dtype=np.int64)
    if rows.size:
        np.cumsum(np.bincount(rows, minlength=num_nodes), out=offsets[1:])
    return Csr(offsets, cols[order], flat_weights[order])


def _overlap_pairs_fast(
    hypergraph: Hypergraph, side: str, first_id: int, last_id: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Vectorized :func:`_overlap_counts`: unique pairs plus operation count.

    The operation count reproduces the scalar path exactly: one per incident
    element in range, one per counted (pre-collapse) pair.
    """
    pivot = hypergraph.vertices if side == "hyperedge" else hypergraph.hyperedges
    indices = pivot.indices
    degrees = np.diff(pivot.offsets)
    universe = (
        hypergraph.num_hyperedges if side == "hyperedge" else hypergraph.num_vertices
    )
    if first_id == 0 and last_id == universe:
        vals = indices
        lens = degrees
    else:
        keep = (indices >= first_id) & (indices < last_id)
        vals = indices[keep]
        row_ids = np.repeat(np.arange(pivot.num_rows, dtype=np.int64), degrees)
        lens = np.bincount(row_ids[keep], minlength=pivot.num_rows)
    # One op per in-range incidence plus one per counted pair — the scalar
    # loop's accounting, computed in closed form.
    operations = int(vals.size) + int((lens * (lens - 1) // 2).sum())
    lo, hi, weights = _unique_pair_counts(vals, lens, last_id)
    return lo, hi, weights, operations


def _chunk_overlap_pairs_fast(
    hypergraph: Hypergraph, side: str, chunks: list[Chunk]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Vectorized one-pass pair counting restricted to same-chunk pairs.

    Returns unique ``(lo, hi, weight)`` arrays sorted by ``lo`` (so chunk
    ranges are contiguous) and the scalar-identical operation count.
    """
    pivot = hypergraph.vertices if side == "hyperedge" else hypergraph.hyperedges
    indices = pivot.indices
    degrees = np.diff(pivot.offsets)
    bounds = np.array(
        [chunk.first for chunk in chunks] + [chunks[-1].last], dtype=np.int64
    )
    row_ids = np.repeat(np.arange(pivot.num_rows, dtype=np.int64), degrees)
    # Sort by (pivot row, element id) so each (row, chunk) run is contiguous;
    # pair membership is order-independent, so the reorder is harmless.
    order = np.lexsort((indices, row_ids))
    vals = indices[order]
    rows = row_ids[order]
    if vals.size:
        chunk_of = np.searchsorted(bounds, vals, side="right") - 1
        new_seg = np.empty(vals.size, dtype=bool)
        new_seg[0] = True
        new_seg[1:] = (rows[1:] != rows[:-1]) | (chunk_of[1:] != chunk_of[:-1])
        seg_starts = np.flatnonzero(new_seg)
        lens = np.diff(np.append(seg_starts, vals.size))
    else:
        lens = np.zeros(0, dtype=np.int64)
    operations = int(vals.size) + int((lens * (lens - 1) // 2).sum())
    lo, hi, weights = _unique_pair_counts(vals, lens, int(bounds[-1]))
    return lo, hi, weights, operations


def _overlap_counts(
    hypergraph: Hypergraph, side: str, first_id: int, last_id: int
) -> tuple[dict[tuple[int, int], int], int]:
    """Count pairwise overlaps among elements in ``[first_id, last_id)``.

    For the hyperedge side, two hyperedges overlap once per shared vertex, so
    walking every vertex's incident-hyperedge list and counting pairs yields
    exactly ``|N(h) ∩ N(h')|``.  Returns the pair counts and the number of
    elementary counting operations (used for preprocessing-cost reporting,
    Figure 21(a)).
    """
    # Pivot side: vertices enumerate hyperedge pairs and vice versa.
    pivot = hypergraph.vertices if side == "hyperedge" else hypergraph.hyperedges
    counts: dict[tuple[int, int], int] = defaultdict(int)
    operations = 0
    for row in range(pivot.num_rows):
        incident = [
            int(e) for e in pivot.neighbors(row) if first_id <= e < last_id
        ]
        operations += len(incident)
        for i, a in enumerate(incident):
            for b in incident[i + 1 :]:
                counts[(a, b) if a < b else (b, a)] += 1
                operations += 1
    return counts, operations


def build_oag(
    hypergraph: Hypergraph,
    side: str,
    w_min: int = DEFAULT_W_MIN,
    chunk: Chunk | None = None,
    fast: bool = True,
) -> Oag:
    """Build the OAG for one side, optionally restricted to a chunk.

    A chunk OAG contains only nodes in the chunk and only edges between two
    chunk members: each chunk is processed by one core with its own OAG
    (§IV-B), so cross-chunk overlap is intentionally invisible.

    ``fast`` selects the vectorized builder; ``fast=False`` runs the scalar
    reference.  Both yield bit-identical CSRs and operation counts.
    """
    if side not in ("hyperedge", "vertex"):
        raise ValueError(f"unknown side {side!r}")
    start = time.perf_counter()
    universe = (
        hypergraph.num_hyperedges if side == "hyperedge" else hypergraph.num_vertices
    )
    first_id = chunk.first if chunk is not None else 0
    last_id = chunk.last if chunk is not None else universe
    num_nodes = last_id - first_id

    if fast:
        lo, hi, weights, operations = _overlap_pairs_fast(
            hypergraph, side, first_id, last_id
        )
        csr = _pairs_to_csr(lo, hi, weights, w_min, first_id, num_nodes)
    else:
        counts, operations = _overlap_counts(hypergraph, side, first_id, last_id)
        csr = _counts_to_csr(counts, w_min, first_id, num_nodes)
    return Oag(
        side=side,
        csr=csr,
        w_min=w_min,
        first_id=first_id,
        build_seconds=time.perf_counter() - start,
        build_operations=operations,
    )


def _counts_to_csr(
    counts: dict[tuple[int, int], int], w_min: int, first_id: int, num_nodes: int
) -> Csr:
    """The scalar reference CSR emitter (per-row Python sort)."""
    adjacency: list[list[tuple[int, int]]] = [[] for _ in range(num_nodes)]
    for (a, b), weight in counts.items():
        if weight < w_min:
            continue
        adjacency[a - first_id].append((weight, b - first_id))
        adjacency[b - first_id].append((weight, a - first_id))

    rows: list[list[int]] = []
    weight_rows: list[list[int]] = []
    for entries in adjacency:
        # Descending weight; ascending id tiebreak for determinism.
        entries.sort(key=lambda pair: (-pair[0], pair[1]))
        rows.append([node for _, node in entries])
        weight_rows.append([weight for weight, _ in entries])
    return Csr.from_lists(rows, weights=weight_rows)


def build_chunk_oags(
    hypergraph: Hypergraph,
    side: str,
    chunks: list[Chunk],
    w_min: int = DEFAULT_W_MIN,
    fast: bool = True,
) -> list[Oag]:
    """One OAG per chunk (what each core's ChGraph engine is configured with).

    Built in a single pass over the pivot side: each pivot row's incident
    elements are binned by owning chunk and only same-chunk pairs counted,
    which matches :func:`build_oag`'s per-chunk output (an edge requires
    both endpoints inside the chunk) at a fraction of the cost.  ``fast``
    selects the vectorized pipeline (default); the scalar reference stays
    available for parity testing.
    """
    if not chunks:
        return []
    start = time.perf_counter()
    if fast:
        lo, hi, weights, operations = _chunk_overlap_pairs_fast(
            hypergraph, side, chunks
        )
        elapsed = time.perf_counter() - start
        oags = []
        for chunk in chunks:
            # ``lo`` ascends, and both pair endpoints share a chunk, so one
            # binary search per boundary slices out the chunk's pairs.
            a = np.searchsorted(lo, chunk.first, side="left")
            b = np.searchsorted(lo, chunk.last, side="left")
            oags.append(
                Oag(
                    side=side,
                    csr=_pairs_to_csr(
                        lo[a:b], hi[a:b], weights[a:b], w_min,
                        chunk.first, chunk.last - chunk.first,
                    ),
                    w_min=w_min,
                    first_id=chunk.first,
                    build_seconds=elapsed / len(chunks),
                    build_operations=operations // len(chunks),
                )
            )
        return oags
    pivot = hypergraph.vertices if side == "hyperedge" else hypergraph.hyperedges
    bounds = [chunk.first for chunk in chunks] + [chunks[-1].last]
    counts: list[dict[tuple[int, int], int]] = [defaultdict(int) for _ in chunks]
    operations = 0
    num_chunks = len(chunks)
    for row in range(pivot.num_rows):
        bins: dict[int, list[int]] = {}
        for e in pivot.neighbors(row):
            e = int(e)
            # Contiguous near-equal chunks: locate by division then adjust.
            c = min(e * num_chunks // max(bounds[-1], 1), num_chunks - 1)
            while e < bounds[c]:
                c -= 1
            while e >= bounds[c + 1]:
                c += 1
            bins.setdefault(c, []).append(e)
            operations += 1
        for c, incident in bins.items():
            table = counts[c]
            for i, a in enumerate(incident):
                for b in incident[i + 1 :]:
                    table[(a, b) if a < b else (b, a)] += 1
                    operations += 1
    elapsed = time.perf_counter() - start

    oags = []
    for chunk, table in zip(chunks, counts):
        oags.append(
            Oag(
                side=side,
                csr=_counts_to_csr(
                    table, w_min, chunk.first, chunk.last - chunk.first
                ),
                w_min=w_min,
                first_id=chunk.first,
                build_seconds=elapsed / len(chunks),
                build_operations=operations // len(chunks),
            )
        )
    return oags

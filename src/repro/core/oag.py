"""Overlap-aware abstraction graph (OAG) construction (Definition 1, §IV-A).

Given a hypergraph, the hyperedge OAG (H-OAG) is a weighted undirected graph
with one node per hyperedge; an edge connects two hyperedges that overlap and
its weight is ``|N(h) ∩ N(h')|``.  Edges with weight below ``W_min`` are
pruned ("discarding those unimportant edges that improve little locality").
The vertex OAG (V-OAG) is symmetric.

The OAG is stored in CSR form with each node's neighbor list sorted in
*descending weight order* — the paper does this precisely to avoid sorting
during chain generation (§IV-B: "we enforce to store the CSR-based edges of
each vertex in a descending order according to their weights").
"""

from __future__ import annotations

import dataclasses
import time
from collections import defaultdict

import numpy as np

from repro.hypergraph.csr import Csr
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import Chunk

__all__ = ["Oag", "build_oag", "build_chunk_oags", "DEFAULT_W_MIN"]

#: The paper's empirical sweet spot (§IV-A): "in this work we empirically
#: set W_min = 3".  The scaled datasets keep paper-scale hyperedge degrees
#: (45-58), so overlap weights are in the paper's range and the same
#: threshold applies.
DEFAULT_W_MIN = 3


@dataclasses.dataclass(frozen=True)
class Oag:
    """A weighted CSR over one side's elements, weight-descending per row.

    ``side`` is ``"hyperedge"`` (H-OAG, nodes are hyperedges) or ``"vertex"``
    (V-OAG).  ``first_id`` offsets node ids when the OAG covers a chunk:
    node ``n`` of this OAG is element ``first_id + n`` of the hypergraph.
    """

    side: str
    csr: Csr
    w_min: int
    first_id: int = 0
    build_seconds: float = 0.0
    build_operations: int = 0

    @property
    def num_nodes(self) -> int:
        return self.csr.num_rows

    @property
    def num_edges(self) -> int:
        """Directed edge slots; each undirected overlap pair stores two."""
        return self.csr.num_entries

    def neighbors(self, node: int) -> np.ndarray:
        return self.csr.neighbors(node)

    def weights(self, node: int) -> np.ndarray:
        return self.csr.neighbor_weights(node)

    def storage_bytes(self) -> int:
        """CSR footprint: 4-byte offsets, edges and weights (Figure 21(b))."""
        return 4 * (self.csr.offsets.size + 2 * self.csr.indices.size)

    def is_weight_descending(self) -> bool:
        """Invariant check: every row's weights are non-increasing."""
        weights = self.csr.weights
        if weights is None:
            return False
        for node in range(self.num_nodes):
            row = self.csr.neighbor_weights(node)
            if np.any(np.diff(row) > 0):
                return False
        return True


def _overlap_counts(
    hypergraph: Hypergraph, side: str, first_id: int, last_id: int
) -> tuple[dict[tuple[int, int], int], int]:
    """Count pairwise overlaps among elements in ``[first_id, last_id)``.

    For the hyperedge side, two hyperedges overlap once per shared vertex, so
    walking every vertex's incident-hyperedge list and counting pairs yields
    exactly ``|N(h) ∩ N(h')|``.  Returns the pair counts and the number of
    elementary counting operations (used for preprocessing-cost reporting,
    Figure 21(a)).
    """
    # Pivot side: vertices enumerate hyperedge pairs and vice versa.
    pivot = hypergraph.vertices if side == "hyperedge" else hypergraph.hyperedges
    counts: dict[tuple[int, int], int] = defaultdict(int)
    operations = 0
    for row in range(pivot.num_rows):
        incident = [
            int(e) for e in pivot.neighbors(row) if first_id <= e < last_id
        ]
        operations += len(incident)
        for i, a in enumerate(incident):
            for b in incident[i + 1 :]:
                counts[(a, b) if a < b else (b, a)] += 1
                operations += 1
    return counts, operations


def build_oag(
    hypergraph: Hypergraph,
    side: str,
    w_min: int = DEFAULT_W_MIN,
    chunk: Chunk | None = None,
) -> Oag:
    """Build the OAG for one side, optionally restricted to a chunk.

    A chunk OAG contains only nodes in the chunk and only edges between two
    chunk members: each chunk is processed by one core with its own OAG
    (§IV-B), so cross-chunk overlap is intentionally invisible.
    """
    if side not in ("hyperedge", "vertex"):
        raise ValueError(f"unknown side {side!r}")
    start = time.perf_counter()
    universe = (
        hypergraph.num_hyperedges if side == "hyperedge" else hypergraph.num_vertices
    )
    first_id = chunk.first if chunk is not None else 0
    last_id = chunk.last if chunk is not None else universe

    counts, operations = _overlap_counts(hypergraph, side, first_id, last_id)

    num_nodes = last_id - first_id
    adjacency: list[list[tuple[int, int]]] = [[] for _ in range(num_nodes)]
    for (a, b), weight in counts.items():
        if weight < w_min:
            continue
        adjacency[a - first_id].append((weight, b - first_id))
        adjacency[b - first_id].append((weight, a - first_id))

    rows: list[list[int]] = []
    weight_rows: list[list[int]] = []
    for entries in adjacency:
        # Descending weight; ascending id tiebreak for determinism.
        entries.sort(key=lambda pair: (-pair[0], pair[1]))
        rows.append([node for _, node in entries])
        weight_rows.append([weight for weight, _ in entries])

    csr = Csr.from_lists(rows, weights=weight_rows)
    return Oag(
        side=side,
        csr=csr,
        w_min=w_min,
        first_id=first_id,
        build_seconds=time.perf_counter() - start,
        build_operations=operations,
    )


def build_chunk_oags(
    hypergraph: Hypergraph,
    side: str,
    chunks: list[Chunk],
    w_min: int = DEFAULT_W_MIN,
) -> list[Oag]:
    """One OAG per chunk (what each core's ChGraph engine is configured with).

    Built in a single pass over the pivot side: each pivot row's incident
    elements are binned by owning chunk and only same-chunk pairs counted,
    which matches :func:`build_oag`'s per-chunk output (an edge requires
    both endpoints inside the chunk) at a fraction of the cost.
    """
    if not chunks:
        return []
    start = time.perf_counter()
    pivot = hypergraph.vertices if side == "hyperedge" else hypergraph.hyperedges
    bounds = [chunk.first for chunk in chunks] + [chunks[-1].last]
    counts: list[dict[tuple[int, int], int]] = [defaultdict(int) for _ in chunks]
    operations = 0
    num_chunks = len(chunks)
    for row in range(pivot.num_rows):
        bins: dict[int, list[int]] = {}
        for e in pivot.neighbors(row):
            e = int(e)
            # Contiguous near-equal chunks: locate by division then adjust.
            c = min(e * num_chunks // max(bounds[-1], 1), num_chunks - 1)
            while e < bounds[c]:
                c -= 1
            while e >= bounds[c + 1]:
                c += 1
            bins.setdefault(c, []).append(e)
            operations += 1
        for c, incident in bins.items():
            table = counts[c]
            for i, a in enumerate(incident):
                for b in incident[i + 1 :]:
                    table[(a, b) if a < b else (b, a)] += 1
                    operations += 1
    elapsed = time.perf_counter() - start

    oags = []
    for chunk, table in zip(chunks, counts):
        num_nodes = chunk.last - chunk.first
        adjacency: list[list[tuple[int, int]]] = [[] for _ in range(num_nodes)]
        for (a, b), weight in table.items():
            if weight < w_min:
                continue
            adjacency[a - chunk.first].append((weight, b - chunk.first))
            adjacency[b - chunk.first].append((weight, a - chunk.first))
        rows: list[list[int]] = []
        weight_rows: list[list[int]] = []
        for entries in adjacency:
            entries.sort(key=lambda pair: (-pair[0], pair[1]))
            rows.append([node for _, node in entries])
            weight_rows.append([weight for weight, _ in entries])
        oags.append(
            Oag(
                side=side,
                csr=Csr.from_lists(rows, weights=weight_rows),
                w_min=w_min,
                first_id=chunk.first,
                build_seconds=elapsed / len(chunks),
                build_operations=operations // len(chunks),
            )
        )
    return oags

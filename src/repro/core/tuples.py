"""Chain-guided data loading: the bipartite-edge tuple (§IV-B).

Each in-flight unit of work is the tuple
``{src_id, dst_id, src_value, dst_value}`` — for vertex computation,
``{h_id, v_id, hyperedge_value[h], vertex_value[v]}``.  The tuple acts as a
one-entry register: while loading the bipartite edges of one chain element,
the element id and its value stay resident, so only the neighbor-side fields
are (re)loaded per edge.  :class:`TupleLoader` exposes exactly that reuse
structure so engines charge one source-value load per element rather than
per edge.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["BipartiteTuple", "TupleLoader", "END_OF_CHAINS"]


@dataclasses.dataclass(frozen=True)
class BipartiteTuple:
    """One unit of Apply work.

    ``src`` is the scheduled chain element (a hyperedge during vertex
    computation), ``dst`` its incident neighbor.  ``fresh_src`` is True for
    the first edge of an element — the only edge that had to load the
    source-side fields.
    """

    src: int
    dst: int
    fresh_src: bool


#: The sentinel the prefetcher enqueues after the last tuple ("a fake tuple
#: {-1, -1, -1, -1}"), telling the core the phase's work is exhausted.
END_OF_CHAINS = BipartiteTuple(src=-1, dst=-1, fresh_src=False)


class TupleLoader:
    """Streams the bipartite edges of scheduled elements in tuple form."""

    def __init__(self, hypergraph: Hypergraph, side: str) -> None:
        # ``side`` is the side being *scheduled*: "hyperedge" means active
        # hyperedges stream their incident vertices (vertex computation).
        self.csr = hypergraph.side(side)
        self.side = side

    def edges_of(self, element: int) -> Iterator[BipartiteTuple]:
        """Tuples for one element; the first is marked ``fresh_src``."""
        fresh = True
        for neighbor in self.csr.neighbors(element):
            yield BipartiteTuple(src=element, dst=int(neighbor), fresh_src=fresh)
            fresh = False

    def chain_tuples(self, order: Iterator[int]) -> Iterator[BipartiteTuple]:
        """Tuples for a whole scheduling order, then :data:`END_OF_CHAINS`."""
        for element in order:
            yield from self.edges_of(element)
        yield END_OF_CHAINS

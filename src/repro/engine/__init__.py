"""Execution engines: Hygra baseline, software GLA, and ChGraph."""

from repro.engine.base import ExecutionEngine, PhaseSpec, PHASE_SPECS
from repro.engine.chgraph_engine import ChGraphEngine
from repro.engine.gla_soft import SoftwareGlaEngine
from repro.engine.hygra import HygraEngine
from repro.engine.interleaved import InterleavedHygraEngine
from repro.engine.pull import PullHygraEngine
from repro.engine.registry import (
    ENGINE_REGISTRY,
    EngineSpec,
    create_engine,
    engine_names,
)
from repro.engine.resources import GlaResources
from repro.engine.result import RunResult

__all__ = [
    "ENGINE_REGISTRY",
    "PHASE_SPECS",
    "ChGraphEngine",
    "EngineSpec",
    "ExecutionEngine",
    "GlaResources",
    "HygraEngine",
    "InterleavedHygraEngine",
    "PullHygraEngine",
    "PhaseSpec",
    "RunResult",
    "SoftwareGlaEngine",
    "create_engine",
    "engine_names",
]

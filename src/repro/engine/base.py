"""Shared engine scaffolding: the Algorithm 1 / Algorithm 2 iteration loop.

Every engine runs the same synchronous loop — hyperedge computation (active
vertices push HF) then vertex computation (active hyperedges push VF), with
a barrier after each phase — and differs only in how a phase schedules and
charges its work.  Subclasses implement :meth:`_run_phase`.
"""

from __future__ import annotations

import abc
import dataclasses

from repro.algorithms.base import (
    PHASE_HYPEREDGE,
    PHASE_VERTEX,
    AlgorithmState,
    HypergraphAlgorithm,
)
from repro.engine.result import RunResult
from repro.errors import EngineError
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import Chunk, contiguous_chunks
from repro.sim.layout import ArrayId
from repro.sim.null import NullSystem
from repro.sim.observe import InstrumentedSystem
from repro.sim.protocol import (
    ITERATION_BEGIN,
    ITERATION_END,
    PHASE_BEGIN,
    PHASE_END,
    EngineEvent,
    MemorySystem,
)

__all__ = ["ExecutionEngine", "PhaseSpec", "PHASE_SPECS"]

#: Hard cap on engine iterations, guarding against a non-terminating
#: algorithm implementation (each paper workload converges well below this).
MAX_ENGINE_ITERATIONS = 1_000_000


@dataclasses.dataclass(frozen=True)
class PhaseSpec:
    """Which arrays a phase touches.

    During *hyperedge computation* the scheduled (source) side is vertices:
    the engine walks ``vertex_offset`` / ``incident_hyperedge`` and updates
    ``hyperedge_value``.  Vertex computation is the mirror image.
    """

    phase: str
    src_side: str  # CSR side scheduled: "vertex" or "hyperedge"
    src_offset: ArrayId
    src_value: ArrayId
    incident: ArrayId
    dst_offset: ArrayId
    dst_value: ArrayId


PHASE_SPECS: dict[str, PhaseSpec] = {
    PHASE_HYPEREDGE: PhaseSpec(
        phase=PHASE_HYPEREDGE,
        src_side="vertex",
        src_offset=ArrayId.VERTEX_OFFSET,
        src_value=ArrayId.VERTEX_VALUE,
        incident=ArrayId.INCIDENT_HYPEREDGE,
        dst_offset=ArrayId.HYPEREDGE_OFFSET,
        dst_value=ArrayId.HYPEREDGE_VALUE,
    ),
    PHASE_VERTEX: PhaseSpec(
        phase=PHASE_VERTEX,
        src_side="hyperedge",
        src_offset=ArrayId.HYPEREDGE_OFFSET,
        src_value=ArrayId.HYPEREDGE_VALUE,
        incident=ArrayId.INCIDENT_VERTEX,
        dst_offset=ArrayId.VERTEX_OFFSET,
        dst_value=ArrayId.VERTEX_VALUE,
    ),
}


class ExecutionEngine(abc.ABC):
    """Base class for Hygra, software GLA, ChGraph and the other baselines."""

    name: str = "base"

    def run(
        self,
        algorithm: HypergraphAlgorithm,
        hypergraph: Hypergraph,
        system: MemorySystem | None = None,
    ) -> RunResult:
        """Execute ``algorithm`` to convergence on ``hypergraph``.

        ``system`` is any :class:`~repro.sim.protocol.MemorySystem` —
        typically a :class:`~repro.sim.system.SimulatedSystem` (full
        cache/timing simulation) or ``None`` for a pure semantic run.
        """
        if system is None:
            system = NullSystem()
        num_cores = system.config.num_cores
        chunks = {
            # Chunks of the *source* side each phase schedules.
            PHASE_HYPEREDGE: contiguous_chunks(hypergraph.num_vertices, num_cores),
            PHASE_VERTEX: contiguous_chunks(hypergraph.num_hyperedges, num_cores),
        }
        self._prepare(hypergraph, system, chunks)
        emit = system.on_event

        state = algorithm.init_state(hypergraph)
        iteration = 0
        while True:
            algorithm.begin_iteration(state, hypergraph, iteration)
            emit(EngineEvent(ITERATION_BEGIN, iteration))

            algorithm.begin_phase(state, hypergraph, PHASE_HYPEREDGE)
            emit(
                EngineEvent(
                    PHASE_BEGIN,
                    iteration,
                    phase=PHASE_HYPEREDGE,
                    frontier_size=len(state.frontier_v),
                    frontier_density=state.frontier_v.density(),
                    frontier=state.frontier_v,
                )
            )
            activated = Frontier(hypergraph.num_hyperedges)
            self._run_phase(
                system,
                hypergraph,
                algorithm,
                state,
                PHASE_SPECS[PHASE_HYPEREDGE],
                state.frontier_v,
                chunks[PHASE_HYPEREDGE],
                activated,
            )
            state.frontier_e = algorithm.end_phase(
                state, hypergraph, PHASE_HYPEREDGE, activated
            )
            system.barrier()
            emit(EngineEvent(PHASE_END, iteration, phase=PHASE_HYPEREDGE))

            algorithm.begin_phase(state, hypergraph, PHASE_VERTEX)
            emit(
                EngineEvent(
                    PHASE_BEGIN,
                    iteration,
                    phase=PHASE_VERTEX,
                    frontier_size=len(state.frontier_e),
                    frontier_density=state.frontier_e.density(),
                    frontier=state.frontier_e,
                )
            )
            activated = Frontier(hypergraph.num_vertices)
            self._run_phase(
                system,
                hypergraph,
                algorithm,
                state,
                PHASE_SPECS[PHASE_VERTEX],
                state.frontier_e,
                chunks[PHASE_VERTEX],
                activated,
            )
            state.frontier_v = algorithm.end_phase(
                state, hypergraph, PHASE_VERTEX, activated
            )
            system.barrier()
            emit(EngineEvent(PHASE_END, iteration, phase=PHASE_VERTEX))
            emit(EngineEvent(ITERATION_END, iteration))

            if algorithm.finished(state, hypergraph, iteration):
                break
            iteration += 1
            if (
                algorithm.max_iterations is not None
                and iteration >= algorithm.max_iterations
            ):
                break
            if iteration >= MAX_ENGINE_ITERATIONS:
                raise EngineError(
                    f"{algorithm.name} exceeded {MAX_ENGINE_ITERATIONS} iterations"
                )

        return self._build_result(algorithm, hypergraph, system, state, iteration + 1)

    # -- subclass hooks ------------------------------------------------------

    def _prepare(
        self,
        hypergraph: Hypergraph,
        system: MemorySystem,
        chunks: dict[str, list[Chunk]],
    ) -> None:
        """Per-run setup (GLA engines attach per-chunk OAGs here)."""

    @abc.abstractmethod
    def _run_phase(
        self,
        system: MemorySystem,
        hypergraph: Hypergraph,
        algorithm: HypergraphAlgorithm,
        state: AlgorithmState,
        spec: PhaseSpec,
        frontier: Frontier,
        chunks: list[Chunk],
        activated: Frontier,
    ) -> None:
        """Process one phase: visit active elements, apply updates, charge."""

    # -- result assembly -------------------------------------------------------

    def _chain_stats(self) -> dict[str, float]:
        """Chain statistics accumulated during the run (GLA engines)."""
        return {}

    def _fifo_stats(self) -> dict[str, float]:
        """Accelerator queue-occupancy statistics (ChGraph engines)."""
        return {}

    def _build_result(
        self,
        algorithm: HypergraphAlgorithm,
        hypergraph: Hypergraph,
        system: MemorySystem,
        state: AlgorithmState,
        iterations: int,
    ) -> RunResult:
        breakdown = system.breakdown
        telemetry = None
        if isinstance(system, InstrumentedSystem):
            telemetry = system.telemetry(
                chain_stats=self._chain_stats(), fifo=self._fifo_stats()
            )
        return RunResult(
            engine=self.name,
            algorithm=algorithm.name,
            dataset=hypergraph.name,
            result=algorithm.result(state, hypergraph).copy(),
            vertex_values=state.vertex_values.copy(),
            hyperedge_values=state.hyperedge_values.copy(),
            iterations=iterations,
            cycles=system.total_cycles,
            compute_cycles=breakdown.compute_cycles,
            memory_stall_cycles=breakdown.memory_stall_cycles,
            dram_accesses=system.dram_accesses(),
            dram_by_array=system.dram_breakdown(),
            dram_writebacks=system.dram_writebacks(),
            dram_writebacks_by_array=system.dram_writeback_breakdown(),
            chain_stats=self._chain_stats(),
            telemetry=telemetry,
        )

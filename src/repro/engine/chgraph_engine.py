"""The ChGraph execution engine: hardware-accelerated GLA (§V).

Per chunk and phase, the decoupled engine beside the core does the Generate
and Load work — the HCG walks the chunk's OAG to emit the chain order, the
CP prefetches each element's bipartite edges into the L2 — while the core
only pops tuples and runs Apply.  The engine's busy time (whichever of HCG
or CP dominates, plus a DRAM-bandwidth floor) overlaps the core's compute
through the phase timer's ``max(core, engine)`` rule.

The CP's run-ahead is bounded by the 32-deep FIFOs, so the model interleaves
prefetch and apply element-by-element: lines are consumed while still hot.

Ablation switches reproduce Figure 16: ``use_hcg=False`` generates chains in
software (charged to the core), ``use_cp=False`` leaves the loads on the
core's demand path.
"""

from __future__ import annotations

from repro.algorithms.base import AlgorithmState, HypergraphAlgorithm
from repro.chgraph.hcg import HardwareChainGenerator
from repro.chgraph.prefetcher import ChainPrefetcher, CpCost
from repro.core.chain import ChainGenerator
from repro.core.oag import Oag
from repro.engine.base import ExecutionEngine, PhaseSpec
from repro.engine.gla_soft import _SoftwareChainProbe
from repro.engine.resources import GlaResources
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import Chunk
from repro.sim.layout import ArrayId
from repro.sim.observe import InstrumentedSystem
from repro.sim.protocol import MemorySystem

__all__ = ["ChGraphEngine"]


class ChGraphEngine(ExecutionEngine):
    """Hardware-accelerated chain-driven hypergraph processing."""

    name = "ChGraph"

    def __init__(
        self,
        resources: GlaResources | None = None,
        use_hcg: bool = True,
        use_cp: bool = True,
        cache_dense_chains: bool = True,
    ) -> None:
        self.resources = resources
        self.use_hcg = use_hcg
        self.use_cp = use_cp
        # §VI-B optimization: dense (all-active) algorithms produce the same
        # chains every iteration, so they are generated once.  Disable to
        # measure that optimization's worth (ablation bench).
        self.cache_dense_chains = cache_dense_chains
        if not use_hcg and use_cp:
            self.name = "ChGraph-CPonly"
        elif use_hcg and not use_cp:
            self.name = "ChGraph-HCGonly"
        self._stats: dict[str, float] = {}
        self._dense_chain_cache: dict[str, list[list[int]]] = {}
        self._profiling = False
        self._max_chain_length = 0
        self._chain_fifo_depth = 0

    # -- setup ------------------------------------------------------------------

    def _prepare(
        self,
        hypergraph: Hypergraph,
        system: MemorySystem,
        chunks: dict[str, list[Chunk]],
    ) -> None:
        if self.resources is None or self.resources.num_cores != (
            system.config.num_cores
        ):
            self.resources = GlaResources.build(hypergraph, system.config.num_cores)
        config = system.config
        self._hcg = HardwareChainGenerator(config, d_max=self.resources.d_max)
        self._cp = ChainPrefetcher(config)
        self._sw_generator = ChainGenerator(
            d_max=self.resources.d_max, fast=self.resources.fast
        )
        self._stats = {
            "chains": 0.0,
            "elements": 0.0,
            "inspections": 0.0,
            "generations": 0.0,
        }
        self._dense_chain_cache = {}
        # Occupancy stats are only worth collecting under instrumentation.
        self._profiling = isinstance(system, InstrumentedSystem)
        self._max_chain_length = 0
        self._chain_fifo_depth = system.config.chain_fifo_depth
        hierarchy = system.hierarchy
        self._hierarchy = hierarchy
        if hierarchy is not None:
            self._engine_access = hierarchy.engine_access
            self._engine_access_block = hierarchy.engine_access_block
            self._dram_counter = hierarchy.dram
        else:
            self._engine_access = lambda core, array, index: 0
            self._engine_access_block = lambda core, array, start, count: 0
            self._dram_counter = None

    def _chain_stats(self) -> dict[str, float]:
        return dict(self._stats)

    def _fifo_stats(self) -> dict[str, float]:
        """Chain-FIFO occupancy: the HCG stalls once a chain outgrows it.

        The longest chain bounds how deep the FIFO ever fills; the depth
        itself caps it (Algorithm 3 emits and blocks at ``chain_fifo_depth``).
        Collected only under instrumentation.
        """
        if not self._profiling:
            return {}
        return {
            "chain_fifo_depth": float(self._chain_fifo_depth),
            "chain_fifo_peak": float(
                min(self._chain_fifo_depth, self._max_chain_length)
            ),
            "max_chain_length": float(self._max_chain_length),
        }

    # -- phase execution -----------------------------------------------------

    def _run_phase(
        self,
        system: MemorySystem,
        hypergraph: Hypergraph,
        algorithm: HypergraphAlgorithm,
        state: AlgorithmState,
        spec: PhaseSpec,
        frontier: Frontier,
        chunks: list[Chunk],
        activated: Frontier,
    ) -> None:
        assert self.resources is not None
        config = system.config
        dense = algorithm.dense_frontier
        oags = self.resources.oags_for(spec.src_side)
        bases = self.resources.edge_position_bases(spec.src_side)
        cached_orders = (
            self._dense_chain_cache.get(spec.phase)
            if dense and self.cache_dense_chains
            else None
        )
        new_orders: list[list[int]] = []
        # Bound once per phase: the apply closure (never per chunk — the
        # algorithm may hand out a mirror it reconciles in end_phase) and a
        # plain-list mirror of the activation bitmap (numpy bool indexing
        # costs ~3x a list index; flushed back after the chunk loop).
        apply_fn = algorithm.phase_apply(state, hypergraph, spec.phase)
        activated_bitmap = activated.bitmap.tolist()

        for chunk_index, chunk in enumerate(chunks):
            core = chunk.core
            dram_before = (
                self._dram_counter.accesses if self._dram_counter else 0
            )
            engine_cycles = 0.0

            # -- Generate ------------------------------------------------------
            if cached_orders is not None:
                order = cached_orders[chunk_index]
            else:
                order, gen_cycles, on_core = self._generate_chunk(
                    system, frontier, chunk, oags[chunk_index], bases[chunk_index],
                    dense, core,
                )
                if on_core:
                    system.charge_compute(core, gen_cycles)
                else:
                    engine_cycles += gen_cycles
                new_orders.append(order)

            # -- Load + Apply, interleaved per element -------------------------
            cp_cost = CpCost()
            self._process_chunk(
                system, hypergraph, algorithm, state, spec, core, order,
                activated_bitmap, cp_cost, apply_fn,
            )
            if self.use_cp:
                engine_cycles += cp_cost.engine_cycles(
                    config.hw_stage_cycles, config.engine_mlp
                )

            # The engine cannot outrun its share of DRAM bandwidth.
            if self._dram_counter is not None:
                lines = self._dram_counter.accesses - dram_before
                floor = lines / (
                    self._dram_counter.peak_lines_per_cycle / config.num_cores
                )
                engine_cycles = max(engine_cycles, floor)
            system.charge_engine(core, engine_cycles)

        activated.bitmap[:] = activated_bitmap

        if (
            cached_orders is None
            and dense
            and self.cache_dense_chains
            and not frontier.is_empty()
        ):
            self._dense_chain_cache[spec.phase] = new_orders

    def _generate_chunk(
        self,
        system: MemorySystem,
        frontier: Frontier,
        chunk: Chunk,
        oag: Oag,
        edge_base: int,
        dense: bool,
        core: int,
    ) -> tuple[list[int], float, bool]:
        """Generate one chunk's chain order.

        Returns ``(order, cycles, charged_on_core)``: with the HCG the cost
        is engine-side; the ``use_hcg=False`` ablation runs Algorithm 3 in
        software on the core instead.
        """
        active = frontier.bitmap[chunk.first : chunk.last]
        if self.use_hcg:
            hierarchy = self._hierarchy
            edge_probe = offsets_probe = None
            if hierarchy is not None:
                edge_probe = hierarchy.engine_prober(core, ArrayId.OAG_EDGE)
                offsets_probe = hierarchy.engine_pair_prober(
                    core, ArrayId.OAG_OFFSET
                )
            chains, cost = self._hcg.generate(
                active, oag, core, self._engine_access, edge_base, dense,
                access_block=self._engine_access_block,
                edge_probe=edge_probe,
                offsets_probe=offsets_probe,
            )
            cycles = cost.engine_cycles(system.config.hw_stage_cycles)
            on_core = False
        else:
            probe = _SoftwareChainProbe(system, core, dense, edge_base, oag=oag)
            chains = self._sw_generator.generate(active, oag, probe=probe)
            cycles = 0.0  # the probe charged the core directly
            on_core = True
        self._stats["generations"] += 1
        self._stats["chains"] += chains.num_chains
        self._stats["elements"] += chains.num_elements
        self._stats["inspections"] += chains.neighbor_inspections
        if self._profiling and chains.chains:
            longest = max(len(chain) for chain in chains.chains)
            if longest > self._max_chain_length:
                self._max_chain_length = longest
        return list(chains.order()), cycles, on_core

    def _process_chunk(
        self,
        system: MemorySystem,
        hypergraph: Hypergraph,
        algorithm: HypergraphAlgorithm,
        state: AlgorithmState,
        spec: PhaseSpec,
        core: int,
        order: list[int],
        activated_bitmap: list[bool],
        cp_cost: CpCost,
        apply_fn,
    ) -> None:
        """Interleaved CP prefetch + core Apply for one chunk."""
        config = system.config
        csr = hypergraph.side(spec.src_side)
        offsets = csr.offsets_list()
        indices = csr.indices_list()
        dense = algorithm.dense_frontier
        dst_degree = algorithm.reads_dst_degree
        per_tuple_core = (
            config.apply_cycles * algorithm.apply_cost_factor
            + config.fifo_pop_cycles
        )
        frontier_cycles = config.frontier_op_cycles
        read = system.read
        read_block = system.read_block
        write = system.write
        charge = system.charge_compute
        write_dst = system.demand_writer(core, spec.dst_value)
        dst_offset = spec.dst_offset

        if not self.use_cp:
            # Ablation: loads stay on the core's demand path.
            for element in order:
                read_block(core, spec.src_offset, element, 2)
                read(core, spec.src_value, element)
                start, end = offsets[element], offsets[element + 1]
                for position in range(start, end):
                    dst = indices[position]
                    read(core, spec.incident, position)
                    read(core, spec.dst_value, dst)
                    if dst_degree:
                        read_block(core, dst_offset, dst, 2)
                    modified = apply_fn(element, dst)
                    charge(core, per_tuple_core)
                    if modified:
                        write_dst(dst)
                        if not activated_bitmap[dst]:
                            activated_bitmap[dst] = True
                            if not dense:
                                write(core, ArrayId.BITMAP, dst)
                                charge(core, frontier_cycles)
            return

        # CP stages run tuple-by-tuple, a bounded FIFO ahead of the core,
        # so each prefetched line is consumed (and written) while still
        # resident — model that by interleaving the CP loads with the
        # core's Apply at edge granularity.  The CP counters accumulate in
        # locals (ints, so folding is exact) and land on ``cp_cost`` once;
        # the uniform per-tuple core charges accumulate as a run and are
        # flushed through ``charge_compute_run`` before any *different*
        # compute charge, preserving the accumulator's addition order.
        charge_run = system.charge_compute_run
        hierarchy = system.hierarchy
        if hierarchy is not None:
            # Uncounted probers: the loop below knows exactly how many
            # probes it issues (1 per element + 2 per tuple), so the probe
            # counter is settled once at the end instead of per access.
            probe_src = hierarchy.engine_prober(core, spec.src_value, counted=False)
            probe_inc = hierarchy.engine_prober(core, spec.incident, counted=False)
            probe_dst = hierarchy.engine_prober(core, spec.dst_value, counted=False)
            probe_off = hierarchy.engine_pair_prober(core, spec.src_offset)
        else:
            engine_access = self._engine_access
            src_value = spec.src_value
            incident = spec.incident
            dst_value = spec.dst_value

            def probe_src(element: int) -> int:
                return engine_access(core, src_value, element)

            def probe_inc(position: int) -> int:
                return engine_access(core, incident, position)

            def probe_dst(dst: int) -> int:
                return engine_access(core, dst_value, dst)

            engine_access_block = self._engine_access_block
            src_offset = spec.src_offset

            def probe_off(element: int) -> int:
                return engine_access_block(core, src_offset, element, 2)

        beats = 0
        requests = 0
        tuples = 0
        charged = 0  # tuples whose core charge has been flushed
        overlapped = 0
        for element in order:
            overlapped += probe_off(element)
            overlapped += probe_src(element)
            start, end = offsets[element], offsets[element + 1]
            # CP counters per element: 1 beat + 3 requests for acquisition,
            # then 1 beat + 2 requests per tuple — hoisted out of the tuple
            # loop (int sums, exact).  ``tuple_base`` recovers the running
            # tuple count mid-element for the charge-flush watermark.
            n = end - start
            beats += 1 + n
            requests += 3 + 2 * n
            tuple_base = tuples
            tuples += n
            for position in range(start, end):
                dst = indices[position]
                overlapped += probe_inc(position)
                overlapped += probe_dst(dst)
                if dst_degree:
                    read_block(core, dst_offset, dst, 2)
                if apply_fn(element, dst):
                    write_dst(dst)
                    if not activated_bitmap[dst]:
                        activated_bitmap[dst] = True
                        if not dense:
                            done = tuple_base + (position - start + 1)
                            charge_run(core, per_tuple_core, done - charged)
                            charged = done
                            write(core, ArrayId.BITMAP, dst)
                            charge(core, frontier_cycles)
        charge_run(core, per_tuple_core, tuples - charged)
        if hierarchy is not None:
            # Settle the uncounted probers: 1 probe per element + 2 per
            # tuple = requests − 2·elements (the block accesses self-count).
            hierarchy.engine_probes += requests - 2 * len(order)
        cp_cost.beats += beats
        cp_cost.requests += requests
        cp_cost.tuples += tuples
        cp_cost.overlapped_latency += overlapped

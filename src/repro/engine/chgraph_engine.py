"""The ChGraph execution engine: hardware-accelerated GLA (§V).

Per chunk and phase, the decoupled engine beside the core does the Generate
and Load work — the HCG walks the chunk's OAG to emit the chain order, the
CP prefetches each element's bipartite edges into the L2 — while the core
only pops tuples and runs Apply.  The engine's busy time (whichever of HCG
or CP dominates, plus a DRAM-bandwidth floor) overlaps the core's compute
through the phase timer's ``max(core, engine)`` rule.

The CP's run-ahead is bounded by the 32-deep FIFOs, so the model interleaves
prefetch and apply element-by-element: lines are consumed while still hot.

Ablation switches reproduce Figure 16: ``use_hcg=False`` generates chains in
software (charged to the core), ``use_cp=False`` leaves the loads on the
core's demand path.
"""

from __future__ import annotations

from repro.algorithms.base import AlgorithmState, HypergraphAlgorithm
from repro.chgraph.hcg import HardwareChainGenerator
from repro.chgraph.prefetcher import ChainPrefetcher, CpCost
from repro.core.chain import ChainGenerator
from repro.core.oag import Oag
from repro.engine.base import ExecutionEngine, PhaseSpec
from repro.engine.gla_soft import _SoftwareChainProbe
from repro.engine.resources import GlaResources
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import Chunk
from repro.sim.layout import ArrayId
from repro.sim.observe import InstrumentedSystem
from repro.sim.protocol import MemorySystem

__all__ = ["ChGraphEngine"]


class ChGraphEngine(ExecutionEngine):
    """Hardware-accelerated chain-driven hypergraph processing."""

    name = "ChGraph"

    def __init__(
        self,
        resources: GlaResources | None = None,
        use_hcg: bool = True,
        use_cp: bool = True,
        cache_dense_chains: bool = True,
    ) -> None:
        self.resources = resources
        self.use_hcg = use_hcg
        self.use_cp = use_cp
        # §VI-B optimization: dense (all-active) algorithms produce the same
        # chains every iteration, so they are generated once.  Disable to
        # measure that optimization's worth (ablation bench).
        self.cache_dense_chains = cache_dense_chains
        if not use_hcg and use_cp:
            self.name = "ChGraph-CPonly"
        elif use_hcg and not use_cp:
            self.name = "ChGraph-HCGonly"
        self._stats: dict[str, float] = {}
        self._dense_chain_cache: dict[str, list[list[int]]] = {}
        self._profiling = False
        self._max_chain_length = 0
        self._chain_fifo_depth = 0

    # -- setup ------------------------------------------------------------------

    def _prepare(
        self,
        hypergraph: Hypergraph,
        system: MemorySystem,
        chunks: dict[str, list[Chunk]],
    ) -> None:
        if self.resources is None or self.resources.num_cores != (
            system.config.num_cores
        ):
            self.resources = GlaResources.build(hypergraph, system.config.num_cores)
        config = system.config
        self._hcg = HardwareChainGenerator(config, d_max=self.resources.d_max)
        self._cp = ChainPrefetcher(config)
        self._sw_generator = ChainGenerator(
            d_max=self.resources.d_max, fast=self.resources.fast
        )
        self._stats = {
            "chains": 0.0,
            "elements": 0.0,
            "inspections": 0.0,
            "generations": 0.0,
        }
        self._dense_chain_cache = {}
        # Occupancy stats are only worth collecting under instrumentation.
        self._profiling = isinstance(system, InstrumentedSystem)
        self._max_chain_length = 0
        self._chain_fifo_depth = system.config.chain_fifo_depth
        hierarchy = system.hierarchy
        if hierarchy is not None:
            self._engine_access = hierarchy.engine_access
            self._dram_counter = hierarchy.dram
        else:
            self._engine_access = lambda core, array, index: 0
            self._dram_counter = None

    def _chain_stats(self) -> dict[str, float]:
        return dict(self._stats)

    def _fifo_stats(self) -> dict[str, float]:
        """Chain-FIFO occupancy: the HCG stalls once a chain outgrows it.

        The longest chain bounds how deep the FIFO ever fills; the depth
        itself caps it (Algorithm 3 emits and blocks at ``chain_fifo_depth``).
        Collected only under instrumentation.
        """
        if not self._profiling:
            return {}
        return {
            "chain_fifo_depth": float(self._chain_fifo_depth),
            "chain_fifo_peak": float(
                min(self._chain_fifo_depth, self._max_chain_length)
            ),
            "max_chain_length": float(self._max_chain_length),
        }

    # -- phase execution -----------------------------------------------------

    def _run_phase(
        self,
        system: MemorySystem,
        hypergraph: Hypergraph,
        algorithm: HypergraphAlgorithm,
        state: AlgorithmState,
        spec: PhaseSpec,
        frontier: Frontier,
        chunks: list[Chunk],
        activated: Frontier,
    ) -> None:
        assert self.resources is not None
        config = system.config
        dense = algorithm.dense_frontier
        oags = self.resources.oags_for(spec.src_side)
        bases = self.resources.edge_position_bases(spec.src_side)
        cached_orders = (
            self._dense_chain_cache.get(spec.phase)
            if dense and self.cache_dense_chains
            else None
        )
        new_orders: list[list[int]] = []

        for chunk_index, chunk in enumerate(chunks):
            core = chunk.core
            dram_before = (
                self._dram_counter.accesses if self._dram_counter else 0
            )
            engine_cycles = 0.0

            # -- Generate ------------------------------------------------------
            if cached_orders is not None:
                order = cached_orders[chunk_index]
            else:
                order, gen_cycles, on_core = self._generate_chunk(
                    system, frontier, chunk, oags[chunk_index], bases[chunk_index],
                    dense, core,
                )
                if on_core:
                    system.charge_compute(core, gen_cycles)
                else:
                    engine_cycles += gen_cycles
                new_orders.append(order)

            # -- Load + Apply, interleaved per element -------------------------
            cp_cost = CpCost()
            self._process_chunk(
                system, hypergraph, algorithm, state, spec, core, order,
                activated, cp_cost,
            )
            if self.use_cp:
                engine_cycles += cp_cost.engine_cycles(
                    config.hw_stage_cycles, config.engine_mlp
                )

            # The engine cannot outrun its share of DRAM bandwidth.
            if self._dram_counter is not None:
                lines = self._dram_counter.accesses - dram_before
                floor = lines / (
                    self._dram_counter.peak_lines_per_cycle / config.num_cores
                )
                engine_cycles = max(engine_cycles, floor)
            system.charge_engine(core, engine_cycles)

        if (
            cached_orders is None
            and dense
            and self.cache_dense_chains
            and not frontier.is_empty()
        ):
            self._dense_chain_cache[spec.phase] = new_orders

    def _generate_chunk(
        self,
        system: MemorySystem,
        frontier: Frontier,
        chunk: Chunk,
        oag: Oag,
        edge_base: int,
        dense: bool,
        core: int,
    ) -> tuple[list[int], float, bool]:
        """Generate one chunk's chain order.

        Returns ``(order, cycles, charged_on_core)``: with the HCG the cost
        is engine-side; the ``use_hcg=False`` ablation runs Algorithm 3 in
        software on the core instead.
        """
        active = frontier.bitmap[chunk.first : chunk.last]
        if self.use_hcg:
            chains, cost = self._hcg.generate(
                active, oag, core, self._engine_access, edge_base, dense
            )
            cycles = cost.engine_cycles(system.config.hw_stage_cycles)
            on_core = False
        else:
            probe = _SoftwareChainProbe(system, core, dense, edge_base, oag=oag)
            chains = self._sw_generator.generate(active, oag, probe=probe)
            cycles = 0.0  # the probe charged the core directly
            on_core = True
        self._stats["generations"] += 1
        self._stats["chains"] += chains.num_chains
        self._stats["elements"] += chains.num_elements
        self._stats["inspections"] += chains.neighbor_inspections
        if self._profiling and chains.chains:
            longest = max(len(chain) for chain in chains.chains)
            if longest > self._max_chain_length:
                self._max_chain_length = longest
        return list(chains.order()), cycles, on_core

    def _process_chunk(
        self,
        system: MemorySystem,
        hypergraph: Hypergraph,
        algorithm: HypergraphAlgorithm,
        state: AlgorithmState,
        spec: PhaseSpec,
        core: int,
        order: list[int],
        activated: Frontier,
        cp_cost: CpCost,
    ) -> None:
        """Interleaved CP prefetch + core Apply for one chunk."""
        config = system.config
        csr = hypergraph.side(spec.src_side)
        offsets = csr.offsets
        indices = csr.indices
        apply_fn = (
            algorithm.apply_hf if spec.phase == "hyperedge" else algorithm.apply_vf
        )
        dense = algorithm.dense_frontier
        dst_degree = algorithm.reads_dst_degree
        per_tuple_core = (
            config.apply_cycles * algorithm.apply_cost_factor
            + config.fifo_pop_cycles
        )
        read = system.read
        write = system.write
        charge = system.charge_compute
        activated_bitmap = activated.bitmap

        engine_access = self._engine_access
        for element in order:
            if self.use_cp:
                # CP stages run tuple-by-tuple, a bounded FIFO ahead of the
                # core, so each prefetched line is consumed (and written)
                # while still resident — model that by interleaving the CP
                # loads with the core's Apply at edge granularity.
                cp_cost.beats += 1  # element acquisition
                cp_cost.requests += 3
                cp_cost.overlapped_latency += engine_access(
                    core, spec.src_offset, element
                )
                cp_cost.overlapped_latency += engine_access(
                    core, spec.src_offset, element + 1
                )
                cp_cost.overlapped_latency += engine_access(
                    core, spec.src_value, element
                )
            else:
                # Ablation: loads stay on the core's demand path.
                read(core, spec.src_offset, element)
                read(core, spec.src_offset, element + 1)
                read(core, spec.src_value, element)
            start, end = int(offsets[element]), int(offsets[element + 1])
            for position in range(start, end):
                dst = int(indices[position])
                if self.use_cp:
                    cp_cost.beats += 1
                    cp_cost.tuples += 1
                    cp_cost.requests += 2
                    cp_cost.overlapped_latency += engine_access(
                        core, spec.incident, position
                    )
                    cp_cost.overlapped_latency += engine_access(
                        core, spec.dst_value, dst
                    )
                else:
                    read(core, spec.incident, position)
                    read(core, spec.dst_value, dst)
                if dst_degree:
                    read(core, spec.dst_offset, dst)
                    read(core, spec.dst_offset, dst + 1)
                modified = apply_fn(state, hypergraph, element, dst)
                charge(core, per_tuple_core)
                if modified:
                    write(core, spec.dst_value, dst)
                    if not activated_bitmap[dst]:
                        activated_bitmap[dst] = True
                        if not dense:
                            write(core, ArrayId.BITMAP, dst)
                            charge(core, config.frontier_op_cycles)

"""The software-only GLA engine (Figure 3's "GLA" bars).

Chain generation runs on the general-purpose core: every OAG probe is a
dependency-chained load (DFS pointer chasing cannot overlap misses) and
every neighbor inspection costs branchy bookkeeping cycles.  This is the
overhead that, per the paper, "may outweigh the benefits achieved from the
chain-driven idea" — the Apply side is identical to Hygra's, only the
schedule order changes.

The software engine regenerates chains every iteration (pass
``cache_dense_chains=True`` to reuse a dense algorithm's first-iteration
chains).  Regeneration is the default because it reproduces the paper's
measured behaviour — a software-GLA slowdown that is stable in the
iteration count (Fig 3 reports 1.14x slower for 10-iteration PR) — while
PR still shows the mildest slowdown of all apps: its dense phases are the
largest, so generation is best amortized (the §VI-B observation).
"""

from __future__ import annotations

import math

from repro.algorithms.base import AlgorithmState, HypergraphAlgorithm
from repro.core.chain import ChainGenerator, ChainProbe
from repro.core.gla import generate_schedules
from repro.core.oag import Oag
from repro.engine.base import ExecutionEngine, PhaseSpec
from repro.engine.hygra import process_elements_demand
from repro.engine.resources import GlaResources
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import Chunk
from repro.sim.layout import ArrayId
from repro.sim.protocol import MemorySystem

__all__ = ["SoftwareGlaEngine"]


class _SoftwareChainProbe(ChainProbe):
    """Charges chain-generation work to the core's serial demand path.

    Besides the dependency-chained OAG loads, software exploration pays the
    Algorithm 3 Line 7 cost the hardware never does: sorting the current
    node's active neighbors by weight (``k log k`` comparison-swaps for an
    OAG row of degree ``k``).
    """

    def __init__(
        self,
        system: MemorySystem,
        core: int,
        dense: bool,
        edge_base: int,
        oag: Oag | None = None,
    ) -> None:
        self.system = system
        self.core = core
        self.dense = dense
        self.edge_base = edge_base
        self.oag = oag
        self.explore_cycles = system.config.sw_explore_cycles

    def on_root_scan(self, element: int) -> None:
        if not self.dense:
            self.system.read_serial(self.core, ArrayId.BITMAP, element)
        self.system.charge_compute(self.core, self.system.config.frontier_op_cycles)

    def on_offsets_fetch(self, node: int) -> None:
        self.system.read_serial_block(self.core, ArrayId.OAG_OFFSET, node, 2)
        if self.oag is not None:
            degree = self.oag.csr.degree(node)
            if degree > 1:
                comparisons = degree * max(1.0, math.log2(degree))
                self.system.charge_compute(
                    self.core, comparisons * self.system.config.sw_sort_cycles
                )

    def on_neighbor_inspect(self, node: int, position: int) -> None:
        self.system.read_serial(
            self.core, ArrayId.OAG_EDGE, self.edge_base + position
        )
        self.system.charge_compute(self.core, self.explore_cycles)

    def on_select(self, element: int) -> None:
        self.system.charge_compute(
            self.core, self.system.config.sw_generate_cycles
        )


class SoftwareGlaEngine(ExecutionEngine):
    """Chain-driven scheduling executed entirely in software."""

    name = "GLA"

    def __init__(
        self,
        resources: GlaResources | None = None,
        cache_dense_chains: bool = False,
    ) -> None:
        self.resources = resources
        self.cache_dense_chains = cache_dense_chains
        self._generator: ChainGenerator | None = None
        self._stats: dict[str, float] = {}
        self._dense_schedule_cache: dict[str, list[list[int]]] = {}

    def _prepare(
        self,
        hypergraph: Hypergraph,
        system: MemorySystem,
        chunks: dict[str, list[Chunk]],
    ) -> None:
        if self.resources is None or self.resources.num_cores != (
            system.config.num_cores
        ):
            self.resources = GlaResources.build(
                hypergraph, system.config.num_cores
            )
        self._generator = ChainGenerator(
            d_max=self.resources.d_max, fast=self.resources.fast
        )
        self._stats = {
            "chains": 0.0,
            "elements": 0.0,
            "inspections": 0.0,
            "generations": 0.0,
        }
        self._dense_schedule_cache = {}

    def _chain_stats(self) -> dict[str, float]:
        return dict(self._stats)

    def _run_phase(
        self,
        system: MemorySystem,
        hypergraph: Hypergraph,
        algorithm: HypergraphAlgorithm,
        state: AlgorithmState,
        spec: PhaseSpec,
        frontier: Frontier,
        chunks: list[Chunk],
        activated: Frontier,
    ) -> None:
        assert self.resources is not None and self._generator is not None
        dense = algorithm.dense_frontier
        cacheable = dense and self.cache_dense_chains
        cached = cacheable and spec.phase in self._dense_schedule_cache
        if cached:
            orders = self._dense_schedule_cache[spec.phase]
        else:
            oags = self.resources.oags_for(spec.src_side)
            bases = self.resources.edge_position_bases(spec.src_side)
            probes = [
                _SoftwareChainProbe(system, chunk.core, dense, base, oag=oag)
                for chunk, base, oag in zip(chunks, bases, oags)
            ]
            schedules = generate_schedules(
                frontier, chunks, oags, self._generator, probes
            )
            orders = [schedule.order() for schedule in schedules]
            self._stats["generations"] += 1
            for schedule in schedules:
                self._stats["chains"] += schedule.chains.num_chains
                self._stats["elements"] += schedule.chains.num_elements
                self._stats["inspections"] += schedule.chains.neighbor_inspections
            if cacheable and not frontier.is_empty():
                self._dense_schedule_cache[spec.phase] = orders

        sw_load = system.config.sw_load_cycles
        apply_fn = algorithm.phase_apply(state, hypergraph, spec.phase)
        for chunk, order in zip(chunks, orders):
            process_elements_demand(
                system,
                hypergraph,
                algorithm,
                state,
                spec,
                chunk.core,
                order,
                activated,
                extra_element_cycles=sw_load,
                extra_tuple_cycles=sw_load,
                apply_fn=apply_fn,
            )

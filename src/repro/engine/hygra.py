"""The Hygra baseline: index-ordered synchronous hypergraph processing.

Reimplements the execution behaviour of Hygra (Shun, PPoPP'20) as the paper
uses it: each phase iterates its active elements in ascending index order
(Algorithm 1's ``VertexPro`` / ``HyperedgePro``), streaming the CSR and
issuing demand accesses from the general-purpose core.

The demand-path element processor ``process_elements_demand`` is shared with
the software GLA engine, which differs only in schedule order.
"""

from __future__ import annotations

from repro.algorithms.base import (
    PHASE_HYPEREDGE,
    AlgorithmState,
    HypergraphAlgorithm,
)
from repro.core.gla import index_order_schedule
from repro.engine.base import ExecutionEngine, PhaseSpec
from repro.sim.protocol import MemorySystem
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import Chunk
from repro.sim.layout import ArrayId

__all__ = ["HygraEngine", "process_elements_demand"]


def process_elements_demand(
    system: MemorySystem,
    hypergraph: Hypergraph,
    algorithm: HypergraphAlgorithm,
    state: AlgorithmState,
    spec: PhaseSpec,
    core: int,
    elements: list[int],
    activated: Frontier,
    extra_element_cycles: float = 0.0,
    extra_tuple_cycles: float = 0.0,
    apply_fn=None,
) -> None:
    """Process scheduled elements with all accesses on the core's demand path.

    Per element: the two offset reads and one source-value read; per
    incident edge: the incident-id read, optional destination-degree reads,
    the destination-value read, the apply compute, and on modification the
    destination-value write plus the next-frontier bitmap write (the
    frontier-membership *reads* are the traversal engine's job — dense scans
    or sparse lists — and are charged by the caller).  The ``extra_*``
    cycles let the software GLA engine charge its chain-queue indirection
    and tuple-packing overhead on the same path.

    ``apply_fn`` is the phase's bound ``apply(src, dst)`` closure.  Engines
    that call this once per phase should pass ``algorithm.phase_apply(...)``
    themselves (the hook must run once per *phase*, not per chunk); when
    omitted, the update methods are bound directly — always safe, never
    mirror-backed.
    """
    config = system.config
    csr = hypergraph.side(spec.src_side)
    offsets = csr.offsets_list()
    indices = csr.indices_list()
    if apply_fn is None:
        fn = (
            algorithm.apply_hf
            if spec.phase == PHASE_HYPEREDGE
            else algorithm.apply_vf
        )

        def apply_fn(src, dst, _fn=fn):
            return _fn(state, hypergraph, src, dst)

    dense = algorithm.dense_frontier
    dst_degree = algorithm.reads_dst_degree
    apply_cycles = config.apply_cycles * algorithm.apply_cost_factor
    frontier_cycles = config.frontier_op_cycles
    read = system.read
    read_block = system.read_block
    write = system.write
    charge = system.charge_compute
    activated_bitmap = activated.bitmap

    for element in elements:
        if extra_element_cycles:
            charge(core, extra_element_cycles)
        read_block(core, spec.src_offset, element, 2)
        read(core, spec.src_value, element)
        start, end = offsets[element], offsets[element + 1]
        for position in range(start, end):
            read(core, spec.incident, position)
            dst = indices[position]
            if dst_degree:
                read_block(core, spec.dst_offset, dst, 2)
            read(core, spec.dst_value, dst)
            modified = apply_fn(element, dst)
            charge(core, apply_cycles + extra_tuple_cycles)
            if modified:
                write(core, spec.dst_value, dst)
                if not activated_bitmap[dst]:
                    activated_bitmap[dst] = True
                    if not dense:
                        write(core, ArrayId.BITMAP, dst)
                        charge(core, frontier_cycles)


def charge_frontier_traversal(
    system: MemorySystem,
    core: int,
    chunk: Chunk,
    frontier: Frontier,
    algorithm: HypergraphAlgorithm,
    threshold: float = 0.05,
) -> None:
    """Charge the cost of *finding* a chunk's active elements.

    Hygra switches representations like Ligra: a dense frontier is read by
    scanning the bitmap sequentially over the chunk's id range (cheap — 64
    flags per line); a sparse frontier is an explicit element list whose
    sequential read is negligible next to the per-element CSR work.
    All-active algorithms (PR) skip the bitmap entirely (§VI-C).
    """
    if algorithm.dense_frontier:
        return
    if frontier.density() >= threshold:
        config = system.config
        stride = config.line_size  # one BITMAP probe per line of flags
        for index in range(chunk.first, chunk.last, stride):
            system.read(core, ArrayId.BITMAP, index)
        system.charge_compute(
            core, len(chunk) * config.frontier_op_cycles / 8
        )


class HygraEngine(ExecutionEngine):
    """Index-ordered scheduling — the paper's software baseline."""

    name = "Hygra"

    #: Frontier density at which the sparse list flips to a bitmap scan.
    sparse_dense_threshold = 0.05

    def _run_phase(
        self,
        system: MemorySystem,
        hypergraph: Hypergraph,
        algorithm: HypergraphAlgorithm,
        state: AlgorithmState,
        spec: PhaseSpec,
        frontier: Frontier,
        chunks: list[Chunk],
        activated: Frontier,
    ) -> None:
        apply_fn = algorithm.phase_apply(state, hypergraph, spec.phase)
        for chunk in chunks:
            charge_frontier_traversal(
                system, chunk.core, chunk, frontier, algorithm,
                self.sparse_dense_threshold,
            )
            elements = index_order_schedule(frontier, chunk)
            process_elements_demand(
                system,
                hypergraph,
                algorithm,
                state,
                spec,
                chunk.core,
                elements,
                activated,
                apply_fn=apply_fn,
            )

"""Interleaved-core execution: a fidelity check on chunk-serial simulation.

The engines simulate a phase chunk-by-chunk: core 0's whole chunk runs
through the hierarchy before core 1's begins.  Real cores run concurrently,
interleaving their access streams in the shared L3.  This engine processes
one element per core in round-robin order, which is the opposite extreme
(perfectly fair instruction-level interleaving).

`benchmarks/test_ablation_interleaving.py` measures how much the choice
moves DRAM counts; the gap bounds the error the serial simplification
introduces into the shared-LLC behaviour.
"""

from __future__ import annotations

from repro.algorithms.base import AlgorithmState, HypergraphAlgorithm
from repro.core.gla import index_order_schedule
from repro.engine.base import PhaseSpec
from repro.engine.hygra import (
    HygraEngine,
    charge_frontier_traversal,
    process_elements_demand,
)
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import Chunk
from repro.sim.protocol import MemorySystem

__all__ = ["InterleavedHygraEngine"]


class InterleavedHygraEngine(HygraEngine):
    """Hygra with per-element round-robin interleaving across cores."""

    name = "Hygra-interleaved"

    def _run_phase(
        self,
        system: MemorySystem,
        hypergraph: Hypergraph,
        algorithm: HypergraphAlgorithm,
        state: AlgorithmState,
        spec: PhaseSpec,
        frontier: Frontier,
        chunks: list[Chunk],
        activated: Frontier,
    ) -> None:
        apply_fn = algorithm.phase_apply(state, hypergraph, spec.phase)
        schedules = []
        for chunk in chunks:
            charge_frontier_traversal(
                system, chunk.core, chunk, frontier, algorithm,
                self.sparse_dense_threshold,
            )
            schedules.append((chunk.core, index_order_schedule(frontier, chunk)))

        position = 0
        live = True
        while live:
            live = False
            for core, elements in schedules:
                if position < len(elements):
                    live = True
                    process_elements_demand(
                        system,
                        hypergraph,
                        algorithm,
                        state,
                        spec,
                        core,
                        [elements[position]],
                        activated,
                        apply_fn=apply_fn,
                    )
            position += 1

"""Pull-direction (dense-gather) execution — Ligra's ``edgeMapDense``.

The push engines iterate *active sources* and scatter updates into
destinations; the pull direction iterates *all destinations* and gathers
from their active sources.  Hygra inherits this direction choice from
Ligra: pulling wins when the frontier is dense (no scatter write-sharing,
destination values written once, sequentially) and loses when sparse (every
destination probes every incident source's activity bit).

This engine always pulls — it exists to study the direction trade-off
(`benchmarks/test_ablation_pull.py`), not to replace the push baseline the
paper models.  Results are identical to push by construction: the same
``apply`` calls run, merely discovered from the other side.
"""

from __future__ import annotations

from repro.algorithms.base import (
    AlgorithmState,
    HypergraphAlgorithm,
)
from repro.engine.base import ExecutionEngine, PhaseSpec
from repro.sim.protocol import MemorySystem
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import Chunk, contiguous_chunks
from repro.sim.layout import ArrayId

__all__ = ["PullHygraEngine"]


class PullHygraEngine(ExecutionEngine):
    """Index-ordered dense-gather execution over the destination side."""

    name = "Hygra-pull"

    def _run_phase(
        self,
        system: MemorySystem,
        hypergraph: Hypergraph,
        algorithm: HypergraphAlgorithm,
        state: AlgorithmState,
        spec: PhaseSpec,
        frontier: Frontier,
        chunks: list[Chunk],
        activated: Frontier,
    ) -> None:
        config = system.config
        # Pull iterates the DESTINATION side: its CSR is the mirror of the
        # phase's source CSR (hyperedges' member lists during hyperedge
        # computation, where sources are vertices).
        dst_side = "hyperedge" if spec.src_side == "vertex" else "vertex"
        dst_csr = hypergraph.side(dst_side)
        offsets = dst_csr.offsets_list()
        indices = dst_csr.indices_list()
        apply_fn = algorithm.phase_apply(state, hypergraph, spec.phase)
        # The positions walked are the destination side's incidence list
        # (e.g. incident_vertex while gathering into hyperedges), the mirror
        # of the push engines' array.
        gather_incident = (
            ArrayId.INCIDENT_VERTEX
            if spec.incident == ArrayId.INCIDENT_HYPEREDGE
            else ArrayId.INCIDENT_HYPEREDGE
        )
        dense = algorithm.dense_frontier
        apply_cycles = config.apply_cycles * algorithm.apply_cost_factor
        frontier_bitmap = frontier.bitmap
        activated_bitmap = activated.bitmap
        read = system.read
        read_block = system.read_block
        write = system.write
        charge = system.charge_compute

        # Destinations are chunked over their own universe.
        dst_chunks = contiguous_chunks(dst_csr.num_rows, config.num_cores)
        for chunk in dst_chunks:
            core = chunk.core
            for dst in chunk.ids():
                read_block(core, spec.dst_offset, dst, 2)
                read(core, spec.dst_value, dst)
                start, end = offsets[dst], offsets[dst + 1]
                touched = False
                for position in range(start, end):
                    src = indices[position]
                    read(core, gather_incident, position)
                    if not dense:
                        # The pull tax: probe every incident source's bit.
                        read(core, ArrayId.BITMAP, src)
                        charge(core, config.frontier_op_cycles)
                        if not frontier_bitmap[src]:
                            continue
                    read(core, spec.src_value, src)
                    modified = apply_fn(src, dst)
                    charge(core, apply_cycles)
                    touched = touched or modified
                if touched:
                    # One sequential write per destination (pull's payoff).
                    write(core, spec.dst_value, dst)
                    if not activated_bitmap[dst]:
                        activated_bitmap[dst] = True
                        if not dense:
                            write(core, ArrayId.BITMAP, dst)

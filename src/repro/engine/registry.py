"""Declarative engine registry: the single source of engine names.

The harness, the CLI and the parallel executor all need to turn an engine
name into an instance; keeping the mapping declarative here means adding an
engine is one :class:`EngineSpec` entry instead of three if/elif chains.

Specs are split by what they need: GLA-family engines require the
preprocessed :class:`~repro.engine.resources.GlaResources` (the OAGs), the
demand-path baselines do not.  :func:`create_engine` enforces that split at
construction time.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.engine.base import ExecutionEngine
from repro.engine.chgraph_engine import ChGraphEngine
from repro.engine.gla_soft import SoftwareGlaEngine
from repro.engine.hygra import HygraEngine
from repro.engine.interleaved import InterleavedHygraEngine
from repro.engine.pull import PullHygraEngine
from repro.engine.resources import GlaResources

__all__ = ["EngineSpec", "ENGINE_REGISTRY", "engine_names", "create_engine"]


@dataclasses.dataclass(frozen=True)
class EngineSpec:
    """How to build one engine by name.

    ``factory`` takes ``GlaResources | None``; specs with
    ``needs_resources=False`` ignore the argument (and the harness skips
    the OAG preprocessing entirely for them).
    """

    name: str
    factory: Callable[[GlaResources | None], ExecutionEngine]
    needs_resources: bool
    description: str = ""


def _baseline_specs() -> list[EngineSpec]:
    # Deferred imports: repro.baselines imports engine submodules, so
    # importing it at repro.engine.registry module load from within
    # repro.engine.__init__ would be circular.
    from repro.baselines import EventPrefetcherEngine, HatsVEngine, LigraEngine

    return [
        EngineSpec(
            "Ligra",
            lambda resources: LigraEngine(),
            needs_resources=False,
            description="Ligra graph baseline (2-uniform inputs only)",
        ),
        EngineSpec(
            "EventPrefetcher",
            lambda resources: EventPrefetcherEngine(),
            needs_resources=False,
            description="event-driven programmable prefetcher baseline",
        ),
        EngineSpec(
            "HATS-V",
            lambda resources: HatsVEngine(resources),
            needs_resources=True,
            description="HATS hardware traversal scheduler, hypergraph variant",
        ),
    ]


def _registry() -> dict[str, EngineSpec]:
    specs = [
        EngineSpec(
            "Hygra",
            lambda resources: HygraEngine(),
            needs_resources=False,
            description="index-ordered software baseline",
        ),
        EngineSpec(
            "Hygra-pull",
            lambda resources: PullHygraEngine(),
            needs_resources=False,
            description="dense-gather (pull) direction ablation",
        ),
        EngineSpec(
            "Hygra-interleaved",
            lambda resources: InterleavedHygraEngine(),
            needs_resources=False,
            description="per-element round-robin core interleaving ablation",
        ),
        EngineSpec(
            "GLA",
            lambda resources: SoftwareGlaEngine(resources),
            needs_resources=True,
            description="chain-driven scheduling entirely in software",
        ),
        EngineSpec(
            "ChGraph",
            lambda resources: ChGraphEngine(resources),
            needs_resources=True,
            description="hardware-accelerated chain-driven engine (the paper)",
        ),
        EngineSpec(
            "ChGraph-HCGonly",
            lambda resources: ChGraphEngine(resources, use_hcg=True, use_cp=False),
            needs_resources=True,
            description="ablation: hardware chain generation, demand loads",
        ),
        EngineSpec(
            "ChGraph-CPonly",
            lambda resources: ChGraphEngine(resources, use_hcg=False, use_cp=True),
            needs_resources=True,
            description="ablation: software chains, hardware prefetch",
        ),
        *_baseline_specs(),
    ]
    return {spec.name: spec for spec in specs}


#: Name -> spec, in presentation order (paper engines first, then ablations
#: and baselines).
ENGINE_REGISTRY: dict[str, EngineSpec] = _registry()


def engine_names() -> tuple[str, ...]:
    """Every registered engine name, in registry order."""
    return tuple(ENGINE_REGISTRY)


def create_engine(
    name: str, resources: GlaResources | None = None
) -> ExecutionEngine:
    """Instantiate a registered engine by name.

    Raises ``KeyError`` for unknown names and ``ValueError`` when a
    GLA-family engine is requested without its resources.
    """
    try:
        spec = ENGINE_REGISTRY[name]
    except KeyError:
        known = ", ".join(engine_names())
        raise KeyError(f"unknown engine {name!r} (known: {known})") from None
    if spec.needs_resources and resources is None:
        raise ValueError(f"engine {name!r} requires GlaResources")
    return spec.factory(resources)

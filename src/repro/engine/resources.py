"""Preprocessing artifacts shared by the GLA engines.

Both the software GLA engine and ChGraph consume per-chunk OAGs for each
side.  Building them is the paper's extra preprocessing step (Figure 21);
the artifacts are reusable across algorithms, which is how the paper argues
the overhead amortises.  :meth:`GlaResources.build_or_load` extends that
amortization across processes via the persistent :mod:`repro.store`.
"""

from __future__ import annotations

import dataclasses
import os
import time

from typing import TYPE_CHECKING

from repro.core.chain import DEFAULT_D_MAX
from repro.core.oag import DEFAULT_W_MIN, Oag, build_chunk_oags
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import contiguous_chunks

if TYPE_CHECKING:
    from repro.hypergraph.pipeline import PreprocessSpec
    from repro.store import ArtifactStore

__all__ = ["GlaResources"]


@dataclasses.dataclass
class GlaResources:
    """Per-chunk V-OAGs and H-OAGs plus preprocessing accounting."""

    num_cores: int
    w_min: int
    d_max: int
    vertex_oags: list[Oag]
    hyperedge_oags: list[Oag]
    build_seconds: float
    build_operations: int
    fast: bool = True

    @classmethod
    def build(
        cls,
        hypergraph: Hypergraph,
        num_cores: int,
        w_min: int = DEFAULT_W_MIN,
        d_max: int = DEFAULT_D_MAX,
        fast: bool = True,
    ) -> "GlaResources":
        """Construct both sides' chunk OAGs for an ``num_cores``-way run.

        ``fast`` selects the vectorized OAG builders (parity-tested against
        the scalar reference, so results and Figure 21 accounting are
        unchanged either way).
        """
        start = time.perf_counter()
        vertex_chunks = contiguous_chunks(hypergraph.num_vertices, num_cores)
        hyperedge_chunks = contiguous_chunks(hypergraph.num_hyperedges, num_cores)
        vertex_oags = build_chunk_oags(
            hypergraph, "vertex", vertex_chunks, w_min, fast=fast
        )
        hyperedge_oags = build_chunk_oags(
            hypergraph, "hyperedge", hyperedge_chunks, w_min, fast=fast
        )
        elapsed = time.perf_counter() - start
        operations = sum(
            oag.build_operations for oag in (*vertex_oags, *hyperedge_oags)
        )
        return cls(
            num_cores=num_cores,
            w_min=w_min,
            d_max=d_max,
            vertex_oags=vertex_oags,
            hyperedge_oags=hyperedge_oags,
            build_seconds=elapsed,
            build_operations=operations,
            fast=fast,
        )

    @classmethod
    def build_or_load(
        cls,
        hypergraph: Hypergraph,
        num_cores: int,
        w_min: int = DEFAULT_W_MIN,
        d_max: int = DEFAULT_D_MAX,
        fast: bool = True,
        store: "ArtifactStore | None" = None,
        preprocessing: "PreprocessSpec | None" = None,
    ) -> "GlaResources":
        """:meth:`build`, persisted through an artifact ``store``.

        With ``store`` (an :class:`~repro.store.ArtifactStore`), the
        content-addressed entry for this hypergraph + preprocessing
        combination is loaded when present and bit-identical to a fresh
        build; on a miss — including checksum or schema failures, which the
        store reports as misses — the resources are built and written back.
        ``store=None`` degrades to a plain build.

        ``preprocessing`` (a
        :class:`~repro.hypergraph.pipeline.PreprocessSpec`) is the typed
        form of the build parameters; when given, its ``w_min``/``d_max``
        supersede the legacy keyword arguments and its full record —
        including the stage list that produced ``hypergraph`` — is hashed
        into the store key, so artifacts can never alias across pipelines.
        """
        from repro.hypergraph.pipeline import PreprocessSpec

        if preprocessing is None:
            preprocessing = PreprocessSpec(w_min=w_min, d_max=d_max)
        w_min = preprocessing.w_min
        d_max = preprocessing.d_max
        if store is None:
            return cls.build(hypergraph, num_cores, w_min=w_min, d_max=d_max, fast=fast)
        from repro.store.keys import resources_key

        key = resources_key(hypergraph.content_hash(), num_cores, preprocessing)
        resources = store.get_resources(key)
        if resources is None:
            resources = cls.build(
                hypergraph, num_cores, w_min=w_min, d_max=d_max, fast=fast
            )
            store.put_resources(key, resources)
        return resources

    def save(self, path: str | os.PathLike) -> None:
        """Write the npz artifact payload to ``path`` (no store manifest)."""
        from repro.store.serialize import resources_to_bytes

        with open(path, "wb") as fh:
            fh.write(resources_to_bytes(self))

    @classmethod
    def load(cls, path: str | os.PathLike) -> "GlaResources":
        """Inverse of :meth:`save`; raises
        :class:`~repro.store.SerializationError` on a malformed payload."""
        from repro.store.serialize import resources_from_bytes

        with open(path, "rb") as fh:
            return resources_from_bytes(fh.read())

    def oags_for(self, src_side: str) -> list[Oag]:
        """The per-chunk OAGs for the side a phase schedules."""
        if src_side == "vertex":
            return self.vertex_oags
        if src_side == "hyperedge":
            return self.hyperedge_oags
        raise ValueError(f"unknown side {src_side!r}")

    def storage_bytes(self) -> int:
        """Extra storage the OAGs add over the plain bipartite CSR (Fig 21b)."""
        return sum(
            oag.storage_bytes() for oag in (*self.vertex_oags, *self.hyperedge_oags)
        )

    def edge_position_bases(self, src_side: str) -> list[int]:
        """Address base (in OAG_edge element slots) of each chunk's edges.

        Chunk OAGs are separate structures laid out back to back in the
        OAG_edge / OAG_weight regions; these bases keep their address ranges
        disjoint in the simulated layout.
        """
        bases = []
        total = 0
        for oag in self.oags_for(src_side):
            bases.append(total)
            total += oag.num_edges
        return bases

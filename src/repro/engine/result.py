"""The result record every engine run produces."""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from repro.sim.layout import ARRAY_GROUPS, ArrayId
from repro.sim.telemetry import RunTelemetry

__all__ = ["RunResult", "group_dram_breakdown"]


def group_dram_breakdown(by_array: dict[ArrayId, int]) -> dict[str, int]:
    """Collapse the per-array DRAM counts into Figure 15's five groups."""
    return {
        group: sum(by_array.get(array, 0) for array in arrays)
        for group, arrays in ARRAY_GROUPS.items()
    }


@dataclasses.dataclass
class RunResult:
    """Everything a benchmark needs from one (engine, algorithm, dataset) run."""

    engine: str
    algorithm: str
    dataset: str
    result: np.ndarray
    vertex_values: np.ndarray
    hyperedge_values: np.ndarray
    iterations: int
    cycles: float
    compute_cycles: float
    memory_stall_cycles: float
    dram_accesses: int
    dram_by_array: dict[ArrayId, int]
    #: DRAM write traffic (dirty lines retired to memory), counted apart
    #: from the read-side ``dram_accesses`` that drive the paper's figures.
    dram_writebacks: int = 0
    dram_writebacks_by_array: dict[ArrayId, int] = dataclasses.field(
        default_factory=dict
    )
    chain_stats: dict[str, float] = dataclasses.field(default_factory=dict)
    extra: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Populated only when the run was profiled (InstrumentedSystem attached).
    telemetry: RunTelemetry | None = None

    @property
    def dram_by_group(self) -> dict[str, int]:
        return group_dram_breakdown(self.dram_by_array)

    @property
    def memory_stall_fraction(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return min(1.0, self.memory_stall_cycles / self.cycles)

    def speedup_over(self, other: "RunResult") -> float:
        """How much faster this run is than ``other`` (>1 means faster)."""
        if self.cycles <= 0:
            return float("inf")
        return other.cycles / self.cycles

    def dram_reduction_over(self, other: "RunResult") -> float:
        """Main-memory access reduction factor vs ``other`` (>1 is fewer)."""
        if self.dram_accesses <= 0:
            return float("inf")
        return other.dram_accesses / self.dram_accesses

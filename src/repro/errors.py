"""Exceptions shared across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class HypergraphFormatError(ReproError):
    """Raised when hypergraph input data is malformed."""


class ConfigurationError(ReproError):
    """Raised when a simulator or engine is configured inconsistently."""


class EngineError(ReproError):
    """Raised when an execution engine is used incorrectly."""


class FifoError(ReproError):
    """Raised on misuse of a bounded hardware FIFO model."""

"""Exceptions shared across the :mod:`repro` package.

Every error carries an ``exit_code`` so the CLI can map failures to
distinct, stable process exit codes (loosely following ``sysexits.h``)
instead of dumping tracebacks; scripts and the service smoke tests key on
them.  ``retryable`` marks transient conditions a client should back off
and retry rather than treat as permanent.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""

    #: Process exit code the CLI uses when this error escapes a command.
    exit_code: int = 1
    #: Whether a client may retry the failed operation after a backoff.
    retryable: bool = False


class HypergraphFormatError(ReproError):
    """Raised when hypergraph input data is malformed."""

    exit_code = 65  # EX_DATAERR


class ConfigurationError(ReproError):
    """Raised when a simulator or engine is configured inconsistently."""

    exit_code = 78  # EX_CONFIG


class EngineError(ReproError):
    """Raised when an execution engine is used incorrectly."""


class FifoError(ReproError):
    """Raised on misuse of a bounded hardware FIFO model."""


class BenchmarkError(ReproError):
    """Raised on benchmark registry misuse or an unreadable/corrupt
    ``BENCH_*.json`` report (a *gated regression* is not an error — the
    gate command reports it through its exit status, not an exception)."""

    exit_code = 65  # EX_DATAERR


class ServiceError(ReproError):
    """Base class for simulation-service failures (server or client side)."""

    exit_code = 70  # EX_SOFTWARE


class ServiceOverloadedError(ServiceError):
    """Raised when the service's admission control rejects a job because the
    queue is at its configured depth bound (or the server is draining).

    Retryable by definition: in-flight jobs keep completing, so a client
    that backs off and resubmits will eventually be admitted.
    """

    exit_code = 75  # EX_TEMPFAIL
    retryable = True


class JobNotFoundError(ServiceError):
    """Raised when a job id is unknown to the service (never submitted,
    or already evicted from the bounded finished-job retention window)."""

    exit_code = 66  # EX_NOINPUT

"""Experiment harness: dataset registry, memoized runner, report tables,
and the sharded parallel experiment executor."""

from repro.harness.datasets import graph_dataset, hypergraph_dataset
from repro.harness.parallel import (
    ExecutionReport,
    RunReport,
    execute_runs,
    plan_shards,
)
from repro.harness.report import render_table
from repro.harness.runner import Runner, get_runner
from repro.harness.spec import RunSpec

__all__ = [
    "ExecutionReport",
    "RunReport",
    "RunSpec",
    "Runner",
    "execute_runs",
    "get_runner",
    "graph_dataset",
    "hypergraph_dataset",
    "plan_shards",
    "render_table",
]

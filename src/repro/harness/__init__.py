"""Experiment harness: dataset registry, memoized runner, report tables."""

from repro.harness.datasets import graph_dataset, hypergraph_dataset
from repro.harness.report import render_table
from repro.harness.runner import Runner, get_runner

__all__ = [
    "Runner",
    "get_runner",
    "graph_dataset",
    "hypergraph_dataset",
    "render_table",
]

"""Dataset registry for the evaluation harness.

The five Table II hypergraphs come from
:func:`repro.hypergraph.generators.paper_dataset`.  Figure 25 additionally
needs two ordinary graphs — com-Amazon (AZ) and soc-Pokec (PK) — which are
generated as 2-uniform hypergraphs with community structure (AZ: mild
power-law co-purchase graph; PK: denser social graph).
"""

from __future__ import annotations

import random

from repro.hypergraph.generators import paper_dataset
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "hypergraph_dataset",
    "graph_dataset",
    "clear_dataset_cache",
    "GRAPH_DATASETS",
]

#: The two §VI-I ordinary-graph datasets, in paper order.
GRAPH_DATASETS: tuple[str, ...] = ("AZ", "PK")

_cache: dict[tuple[str, float], Hypergraph] = {}


def clear_dataset_cache() -> None:
    """Drop every module-cached dataset instance.

    Tests that mutate generator behaviour (or assert cold-path timings,
    e.g. the store benchmarks) use this to force regeneration; production
    code never needs it.
    """
    _cache.clear()


def hypergraph_dataset(key: str, scale: float = 1.0) -> Hypergraph:
    """A Table II stand-in, cached across the harness."""
    cache_key = (key, scale)
    if cache_key not in _cache:
        _cache[cache_key] = paper_dataset(key, scale=scale)
    return _cache[cache_key]


def _community_graph(
    num_vertices: int,
    num_edges: int,
    num_communities: int,
    rewire: float,
    seed: int,
    name: str,
) -> Hypergraph:
    """An ordinary graph with community structure, as a 2-uniform hypergraph."""
    rng = random.Random(seed)
    community = [rng.randrange(num_communities) for _ in range(num_vertices)]
    members: list[list[int]] = [[] for _ in range(num_communities)]
    for v, c in enumerate(community):
        members[c].append(v)
    for pool in members:
        if not pool:
            pool.append(rng.randrange(num_vertices))
    edges: set[tuple[int, int]] = set()
    while len(edges) < num_edges:
        u = rng.randrange(num_vertices)
        if rng.random() < rewire:
            w = rng.randrange(num_vertices)
        else:
            w = rng.choice(members[community[u]])
        if u != w:
            edges.add((min(u, w), max(u, w)))
    hyperedges = [list(edge) for edge in sorted(edges)]
    return Hypergraph.from_hyperedge_lists(
        hyperedges, num_vertices=num_vertices, name=name
    )


def graph_dataset(key: str) -> Hypergraph:
    """A Figure 25 ordinary-graph stand-in ('AZ' or 'PK')."""
    cache_key = (f"graph:{key}", 1.0)
    if cache_key in _cache:
        return _cache[cache_key]
    if key == "AZ":  # com-Amazon: sparse co-purchase network
        graph = _community_graph(
            num_vertices=2400,
            num_edges=7200,
            num_communities=120,
            rewire=0.05,
            seed=21,
            name="AZ",
        )
    elif key == "PK":  # soc-Pokec: denser social network
        graph = _community_graph(
            num_vertices=1800,
            num_edges=13500,
            num_communities=60,
            rewire=0.1,
            seed=22,
            name="PK",
        )
    else:
        raise KeyError(f"unknown graph dataset {key!r}; expected 'AZ' or 'PK'")
    _cache[cache_key] = graph
    return graph

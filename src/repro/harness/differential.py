"""Cross-engine differential checking.

Ten engines implement the same synchronous hyperedge/vertex loop over the
same algorithms; they may only differ in *scheduling* and therefore in
access counts and cycles — never in answers.  This harness exploits that
redundancy: it sweeps seeded generator hypergraphs across every registry
engine and asserts

- **result identity** — each engine's algorithm output matches the
  reference engine's (``np.allclose`` with ``equal_nan``, the established
  cross-engine standard: accumulation order differs under chain
  scheduling, so bit-equality of floats is too strong);
- **runtime invariants** — every run executes under an attached
  :class:`~repro.sim.invariants.InvariantChecker`, so the hierarchy's
  conservation laws are audited at each barrier along the way;
- **access-count sanity** — simulated runs must touch DRAM, and on
  overlap-heavy inputs (re-seeded full-scale paper presets) ChGraph's
  chain-driven schedule must not fetch *more* DRAM lines than Hygra's
  index order, the paper's headline ordering.

Engines that structurally cannot run an input (Ligra on non-2-uniform
hypergraphs) are recorded as skips, not failures.

:func:`inject_fault` deliberately breaks the hierarchy (reintroducing the
bug classes this PR fixed) so tests and the ``repro check --inject-fault``
smoke can prove the checker actually fires.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Callable, Iterator

import numpy as np

from repro.engine import RunResult
from repro.engine.registry import engine_names
from repro.errors import EngineError
from repro.harness.runner import Runner
from repro.hypergraph.generators import (
    AffiliationConfig,
    generate_affiliation_hypergraph,
    paper_dataset,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.sim.config import SystemConfig, scaled_config
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.invariants import InvariantChecker
from repro.sim.observe import InstrumentedSystem
from repro.sim.system import SimulatedSystem

__all__ = [
    "DifferentialReport",
    "FAULT_KINDS",
    "inject_fault",
    "overlap_heavy_graphs",
    "run_differential",
    "seeded_graphs",
]

#: Algorithms the differential sweep exercises by default.
DEFAULT_ALGORITHMS: tuple[str, ...] = ("PR", "BFS", "CC")

#: The reference engine results are compared against.
REFERENCE_ENGINE = "Hygra"


@dataclasses.dataclass
class DifferentialReport:
    """Outcome of one differential sweep."""

    runs: int = 0
    comparisons: int = 0
    failures: list[str] = dataclasses.field(default_factory=list)
    violations: list[str] = dataclasses.field(default_factory=list)
    skipped: list[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else "FAIL"
        return (
            f"differential: {status} — {self.runs} runs, "
            f"{self.comparisons} comparisons, {len(self.failures)} failures, "
            f"{len(self.violations)} invariant violations, "
            f"{len(self.skipped)} skipped"
        )


def seeded_graphs(count: int = 5, base_seed: int = 101) -> list[Hypergraph]:
    """Small deterministic affiliation hypergraphs for identity checks."""
    graphs = []
    for i in range(count):
        config = AffiliationConfig(
            num_vertices=352,
            num_hyperedges=480,
            mean_hyperedge_degree=12.0,
            num_communities=12,
            overlap_bias=0.95,
            hubs_per_community=3,
            hub_bias=0.2,
            vertex_run=4,
            hyperedge_run=2,
            seed=base_seed + i,
        )
        graphs.append(
            generate_affiliation_hypergraph(config, name=f"diff-{base_seed + i}")
        )
    return graphs


def overlap_heavy_graphs(
    keys: tuple[str, ...] = ("OG", "WEB"), seeds: tuple[int, ...] = (1,)
) -> list[Hypergraph]:
    """Re-seeded full-scale paper presets for access-count ordering checks.

    Only the full-scale presets are overlap-heavy enough that the paper's
    ChGraph <= Hygra DRAM ordering is robust; small ad-hoc graphs can
    legitimately invert it (chunked chains lose their reuse window), so
    ordering is *not* asserted on :func:`seeded_graphs` outputs.
    """
    from repro.hypergraph.generators import _PAPER_PRESETS

    graphs = []
    for key in keys:
        for seed in seeds:
            preset = dataclasses.replace(_PAPER_PRESETS[key], seed=seed * 1000 + 7)
            graphs.append(
                generate_affiliation_hypergraph(preset, name=f"{key}-s{seed}")
            )
    return graphs


# -- fault injection ---------------------------------------------------------

FAULT_KINDS: tuple[str, ...] = ("lost-writeback", "skewed-attribution")


@contextlib.contextmanager
def inject_fault(kind: str) -> "Iterator[None]":
    """Deliberately break the hierarchy for the duration of the context.

    ``lost-writeback`` reintroduces the silent write-traffic loss this PR
    fixed: dirty lines retire without being counted or reported.
    ``skewed-attribution`` drops the per-array attribution of every DRAM
    fetch while still counting the total.  Both must trip the
    :class:`~repro.sim.invariants.InvariantChecker`.
    """
    if kind == "lost-writeback":
        original = MemoryHierarchy._writeback_to_dram

        def broken(self, line: int) -> None:  # drop the writeback silently
            return None

        MemoryHierarchy._writeback_to_dram = broken  # type: ignore[method-assign]
        try:
            yield
        finally:
            MemoryHierarchy._writeback_to_dram = original  # type: ignore[method-assign]
    elif kind == "skewed-attribution":
        original_access = MemoryHierarchy.access

        def skewed(
            self: MemoryHierarchy,
            core: int,
            array: str,
            index: int,
            write: bool = False,
        ) -> float:
            before = self.dram.accesses
            latency = original_access(self, core, array, index, write=write)
            if self.dram.accesses != before:
                self.dram_by_array[array] -= 1  # un-attribute the fetch
            return latency

        MemoryHierarchy.access = skewed  # type: ignore[method-assign]
        try:
            yield
        finally:
            MemoryHierarchy.access = original_access  # type: ignore[method-assign]
    else:
        raise ValueError(f"unknown fault kind {kind!r}; expected {FAULT_KINDS}")


# -- the sweep ---------------------------------------------------------------

def _checked_run(
    runner: Runner,
    engine_name: str,
    algorithm_name: str,
    hypergraph: Hypergraph,
    config: SystemConfig,
) -> "tuple[RunResult, list[str]]":
    """One simulated run with an invariant checker attached.

    Returns ``(result, violations)``; raises :class:`EngineError` when the
    engine structurally cannot process the input.
    """
    engine = runner.engine(engine_name, hypergraph, config)
    algorithm = runner.algorithm(algorithm_name)
    system = InstrumentedSystem(SimulatedSystem(config))
    checker = system.add_observer(InvariantChecker())
    result = engine.run(algorithm, hypergraph, system)
    return result, checker.violations()


def run_differential(
    engines: list[str] | None = None,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    graph_count: int = 5,
    base_seed: int = 101,
    config: SystemConfig | None = None,
    ordering: bool = True,
    pr_iterations: int = 2,
    log: "Callable[[str], None] | None" = None,
) -> DifferentialReport:
    """Sweep engines x algorithms x seeded graphs; return the findings."""
    if engines is None:
        engines = list(engine_names())
    if config is None:
        config = scaled_config(num_cores=4, llc_kb=2)
    emit = log if log is not None else (lambda message: None)
    runner = Runner(pr_iterations=pr_iterations, cache_dir=None)
    report = DifferentialReport()

    reference = REFERENCE_ENGINE if REFERENCE_ENGINE in engines else engines[0]
    for hypergraph in seeded_graphs(graph_count, base_seed):
        for algorithm in algorithms:
            emit(f"{hypergraph.name} / {algorithm}")
            runs = {}
            for engine_name in engines:
                try:
                    result, violations = _checked_run(
                        runner, engine_name, algorithm, hypergraph, config
                    )
                except EngineError as exc:
                    report.skipped.append(
                        f"{engine_name}/{algorithm}/{hypergraph.name}: {exc}"
                    )
                    continue
                report.runs += 1
                runs[engine_name] = result
                report.violations.extend(
                    f"{engine_name}/{algorithm}/{hypergraph.name}: {message}"
                    for message in violations
                )
                if result.dram_accesses <= 0:
                    report.failures.append(
                        f"{engine_name}/{algorithm}/{hypergraph.name}: "
                        f"simulated run made no DRAM accesses"
                    )
            base = runs.get(reference)
            if base is None:
                report.failures.append(
                    f"{algorithm}/{hypergraph.name}: reference engine "
                    f"{reference} produced no run"
                )
                continue
            for engine_name, result in runs.items():
                if engine_name == reference:
                    continue
                report.comparisons += 1
                if result.result.shape != base.result.shape or not np.allclose(
                    result.result, base.result, equal_nan=True
                ):
                    report.failures.append(
                        f"{engine_name}/{algorithm}/{hypergraph.name}: "
                        f"result diverges from {reference}"
                    )

    if ordering and "ChGraph" in engines and reference == "Hygra":
        for hypergraph in overlap_heavy_graphs():
            emit(f"{hypergraph.name} / PR ordering")
            counts = {}
            for engine_name in ("Hygra", "ChGraph"):
                result, violations = _checked_run(
                    runner, engine_name, "PR", hypergraph, config
                )
                report.runs += 1
                counts[engine_name] = result.dram_accesses
                report.violations.extend(
                    f"{engine_name}/PR/{hypergraph.name}: {message}"
                    for message in violations
                )
            report.comparisons += 1
            if counts["ChGraph"] > counts["Hygra"]:
                report.failures.append(
                    f"ordering/{hypergraph.name}: ChGraph DRAM "
                    f"({counts['ChGraph']}) > Hygra DRAM ({counts['Hygra']}) "
                    f"on an overlap-heavy input"
                )
    return report

"""One function per paper table/figure: the reproduction registry.

Each function returns ``(title, headers, rows)`` ready for
:func:`repro.harness.report.render_table`.  Benchmarks print the table and
assert the paper's qualitative shape; EXPERIMENTS.md records the measured
numbers next to the paper's.
"""

from __future__ import annotations

from typing import Iterable

from repro.chgraph.area import area_report
from repro.engine import RunResult
from repro.harness.datasets import GRAPH_DATASETS
from repro.harness.runner import PAPER_APPS, Runner
from repro.harness.spec import RunSpec
from repro.hypergraph.generators import PAPER_DATASETS
from repro.harness.report import with_bars
from repro.hypergraph.pipeline import PreprocessSpec, StageSpec
from repro.hypergraph.stats import dataset_stats, overlap_curve
from repro.sim.config import SystemConfig, scaled_config, table1_config

__all__ = [
    "RUN_MATRICES",
    "run_matrix",
    "table1_rows",
    "table2_rows",
    "fig02_memory_accesses",
    "fig03_performance",
    "fig05_memory_stalls",
    "fig07_hats_v",
    "fig08_overlap",
    "fig14_performance",
    "fig15_breakdown",
    "fig16_hw_breakdown",
    "fig17_dmax_sweep",
    "fig18_wmin_sweep",
    "fig19_llc_sweep",
    "fig20_core_scaling",
    "fig21_preprocessing",
    "fig22_total_time",
    "fig23_prefetcher",
    "fig24_reordering",
    "fig25_graph_apps",
    "vi_e_area_power",
]

#: Cycles charged per elementary preprocessing operation when converting
#: host-side preprocessing work into simulated core cycles (Figs 21/22).
#: Bipartite CSR construction is branchy and allocation-heavy; the OAG's
#: pair-counting inner loop is a tight streaming kernel, hence cheaper
#: per operation.
PREPROCESS_OP_CYCLES = 2.0
OAG_OP_CYCLES = 0.5

#: The Figure 24 preprocessing record: run the spatial locality reordering
#: as a registered pipeline stage in front of the engine, instead of
#: hand-building reordered engines outside the runner.
REORDER_PREPROCESS = PreprocessSpec(stages=(StageSpec.make("locality-reorder"),))


# -- run matrices ------------------------------------------------------------


def _specs(
    engines: tuple[str, ...],
    apps: tuple[str, ...],
    datasets: tuple[str, ...],
    config: SystemConfig | None = None,
) -> list[RunSpec]:
    """The cross product of engines × apps × datasets as run specs."""
    return [
        RunSpec(engine=e, algorithm=a, dataset=d, config=config)
        for a in apps
        for d in datasets
        for e in engines
    ]


def _fig17_specs(depths: tuple[int, ...] = (2, 4, 8, 16, 32, 64)) -> list[RunSpec]:
    return [
        RunSpec("ChGraph", "PR", "WEB", preprocessing=PreprocessSpec(d_max=d))
        for d in depths
    ]


def _fig18_specs(
    thresholds: tuple[int, ...] = (1, 3, 9, 17, 33, 65),
) -> list[RunSpec]:
    return [
        RunSpec("ChGraph", "PR", "WEB", preprocessing=PreprocessSpec(w_min=w))
        for w in thresholds
    ]


def _fig24_specs() -> list[RunSpec]:
    plain = _specs(("Hygra", "ChGraph"), ("PR",), ("WEB",))
    return plain + [
        RunSpec(spec.engine, "PR", "WEB", preprocessing=REORDER_PREPROCESS)
        for spec in plain
    ]


def _fig19_specs() -> list[RunSpec]:
    return [
        RunSpec("ChGraph", "PR", "WEB", scaled_config(llc_kb=llc))
        for llc in (2, 4, 6, 8)
    ]


def _fig20_specs() -> list[RunSpec]:
    return [
        spec
        for n in (4, 8, 16)
        for spec in _specs(
            ("Hygra", "ChGraph"), ("PR",), ("WEB",), scaled_config(num_cores=n)
        )
    ]


#: The ``runner.run`` matrix each figure consumes, declared up front so the
#: sharded executor (:mod:`repro.harness.parallel`) can run a whole figure
#: suite in parallel before the figure functions assemble their tables from
#: warm cache hits.  Since every run — including the fig17/fig18 sensitivity
#: sweeps and fig24's reordered engines — is now expressed as a
#: :class:`~repro.harness.spec.RunSpec` with its own preprocessing record,
#: every figure's full matrix is declared here; only config tables declare
#: nothing.
RUN_MATRICES = {
    "fig02": lambda: _specs(("Hygra", "GLA", "ChGraph"), ("PR",), ("WEB",)),
    "fig03": lambda: _specs(("Hygra", "GLA", "ChGraph"), ("PR",), ("WEB",)),
    "fig05": lambda: _specs(("Hygra",), ("BFS", "PR", "BC", "CC"), PAPER_DATASETS),
    "fig07": lambda: _specs(("HATS-V", "ChGraph"), ("BFS", "PR"), PAPER_DATASETS),
    "fig14": lambda: _specs(("Hygra", "GLA", "ChGraph"), PAPER_APPS, PAPER_DATASETS),
    "fig15": lambda: _specs(("Hygra", "ChGraph"), PAPER_APPS, PAPER_DATASETS),
    "fig16": lambda: _specs(
        ("GLA", "ChGraph-HCGonly", "ChGraph"), PAPER_APPS, ("WEB",)
    ),
    "fig17": _fig17_specs,
    "fig18": _fig18_specs,
    "fig19": _fig19_specs,
    "fig20": _fig20_specs,
    "fig22": lambda: _specs(("Hygra", "ChGraph"), ("BFS", "PR", "CC"), PAPER_DATASETS),
    "fig23": lambda: _specs(
        ("EventPrefetcher", "ChGraph", "Hygra"), ("BFS", "PR", "CC"), PAPER_DATASETS
    ),
    "fig24": _fig24_specs,
    "fig25": lambda: _specs(
        ("Ligra", "HATS-V", "ChGraph"), ("Adsorption", "SSSP"), GRAPH_DATASETS
    ),
    "summary": lambda: _specs(
        ("Hygra", "ChGraph", "GLA"), ("BFS", "PR", "CC"), PAPER_DATASETS
    ),
}


def run_matrix(ids: Iterable[str]) -> list[RunSpec]:
    """The deduplicated union run matrix of the given experiment ids.

    Ids without a declared matrix (config tables, bespoke-resource sweeps)
    contribute nothing; order follows first occurrence, so equal id lists
    always produce the identical matrix — the shard planner relies on that
    determinism.
    """
    specs: list[RunSpec] = []
    for experiment_id in ids:
        factory = RUN_MATRICES.get(experiment_id)
        if factory is not None:
            specs.extend(factory())
    return list(dict.fromkeys(specs))


# -- configuration tables ----------------------------------------------------


def table1_rows() -> tuple[str, list[str], list[list[object]]]:
    config = table1_config()
    rows = [
        ["Cores", f"{config.num_cores} cores, x86-64, {config.frequency_ghz}GHz, OOO"],
        ["L1 caches", f"{config.l1_size // 1024}KB per-core, {config.l1_assoc}-way, "
                      f"{config.l1_latency}-cycle latency"],
        ["L2 cache", f"{config.l2_size // 1024}KB per-core, {config.l2_assoc}-way, "
                     f"{config.l2_latency}-cycle latency"],
        ["L3 cache", f"{config.l3_size // (1024 * 1024)}MB shared, {config.l3_banks} banks, "
                     f"{config.l3_assoc}-way, inclusive={config.inclusive_l3}, "
                     f"{config.l3_latency}-cycle bank latency"],
        ["NoC", f"4x4 mesh, X-Y routing, {config.noc_router_latency}-cycle routers, "
                f"{config.noc_link_latency}-cycle links"],
        ["Coherence", "presence + dirty bits, 64B lines (synchronous engines)"],
        ["Main memory", f"{config.dram_controllers} controllers, "
                        f"{config.dram_gbps_per_controller} GB/s each"],
    ]
    return "Table I: simulated system configuration", ["Structure", "Configuration"], rows


def table2_rows(runner: Runner) -> tuple[str, list[str], list[list[object]]]:
    rows = []
    for key in PAPER_DATASETS:
        stats = dataset_stats(runner.dataset(key))
        rows.append([
            stats.name,
            stats.num_vertices,
            stats.num_hyperedges,
            stats.num_bipartite_edges,
            round(stats.size_mb, 2),
        ])
    return (
        "Table II: hypergraph datasets (scaled stand-ins)",
        ["Dataset", "#Vertices", "#Hyperedges", "#BEdges", "Size (MB)"],
        rows,
    )


# -- headline figures ------------------------------------------------------


def fig02_memory_accesses(runner: Runner) -> tuple[str, list[str], list[list[object]]]:
    """GLA reduces main-memory accesses vs Hygra (PR on WEB)."""
    hygra = runner.run("Hygra", "PR", "WEB")
    gla = runner.run("GLA", "PR", "WEB")
    chg = runner.run("ChGraph", "PR", "WEB")
    rows = [
        ["Hygra", hygra.dram_accesses, 1.0],
        ["GLA", gla.dram_accesses, hygra.dram_accesses / gla.dram_accesses],
        ["ChGraph", chg.dram_accesses, hygra.dram_accesses / chg.dram_accesses],
    ]
    return (
        "Figure 2: main-memory accesses, PR on WEB",
        ["System", "DRAM accesses", "Reduction vs Hygra", ""],
        with_bars(rows, 1),
    )


def fig03_performance(runner: Runner) -> tuple[str, list[str], list[list[object]]]:
    """Software GLA is slower than Hygra; ChGraph reverses it (PR on WEB)."""
    hygra = runner.run("Hygra", "PR", "WEB")
    gla = runner.run("GLA", "PR", "WEB")
    chg = runner.run("ChGraph", "PR", "WEB")
    rows = [
        ["Hygra", hygra.cycles, 1.0],
        ["GLA", gla.cycles, gla.speedup_over(hygra)],
        ["ChGraph", chg.cycles, chg.speedup_over(hygra)],
    ]
    return (
        "Figure 3: execution time, PR on WEB (speedup vs Hygra; <1 is slower)",
        ["System", "Cycles", "Speedup vs Hygra", ""],
        with_bars(rows, 1),
    )


def fig05_memory_stalls(
    runner: Runner, apps: tuple[str, ...] = ("BFS", "PR", "BC", "CC")
) -> tuple[str, list[str], list[list[object]]]:
    """Fraction of Hygra execution time stalled on main memory."""
    rows = []
    for app in apps:
        row: list[object] = [app]
        for dataset in PAPER_DATASETS:
            row.append(runner.run("Hygra", app, dataset).memory_stall_fraction)
        rows.append(row)
    return (
        "Figure 5: fraction of time stalled on memory (Hygra)",
        ["App", *PAPER_DATASETS],
        rows,
    )


def fig07_hats_v(
    runner: Runner, apps: tuple[str, ...] = ("BFS", "PR")
) -> tuple[str, list[str], list[list[object]]]:
    """ChGraph vs the HATS-V variant, normalized to HATS-V."""
    rows = []
    for app in apps:
        for dataset in PAPER_DATASETS:
            hats = runner.run("HATS-V", app, dataset)
            chg = runner.run("ChGraph", app, dataset)
            rows.append([app, dataset, chg.speedup_over(hats)])
    return (
        "Figure 7: ChGraph speedup over HATS-V",
        ["App", "Dataset", "ChGraph vs HATS-V"],
        rows,
    )


def fig08_overlap(
    runner: Runner, thresholds: tuple[int, ...] = (2, 8, 32, 64)
) -> tuple[str, list[str], list[list[object]]]:
    """Sharable ratios of vertices and hyperedges (two panels in one table).

    The paper plots thresholds 2..7 for datasets with mean degrees 3-37; the
    scaled stand-ins keep paper-scale hyperedge degrees but higher vertex
    degrees, so the discriminating thresholds sit higher.
    """
    rows = []
    for side in ("vertex", "hyperedge"):
        for dataset in PAPER_DATASETS:
            curve = overlap_curve(runner.dataset(dataset), side, thresholds)
            rows.append([side, dataset, *[curve[t] for t in thresholds]])
    return (
        "Figure 8: sharable ratio vs sharing threshold",
        ["Side", "Dataset", *[f">={t}" for t in thresholds]],
        rows,
    )


def fig14_performance(
    runner: Runner, apps: tuple[str, ...] = PAPER_APPS
) -> tuple[str, list[str], list[list[object]]]:
    """Hygra vs software GLA vs ChGraph across apps and datasets."""
    rows = []
    for app in apps:
        for dataset in PAPER_DATASETS:
            hygra = runner.run("Hygra", app, dataset)
            gla = runner.run("GLA", app, dataset)
            chg = runner.run("ChGraph", app, dataset)
            rows.append([
                app,
                dataset,
                gla.speedup_over(hygra),
                chg.speedup_over(hygra),
                chg.dram_reduction_over(hygra),
            ])
    return (
        "Figure 14: speedup over Hygra (GLA < 1 means slower)",
        ["App", "Dataset", "GLA", "ChGraph", "DRAM reduction"],
        rows,
    )


def fig15_breakdown(
    runner: Runner, apps: tuple[str, ...] = PAPER_APPS
) -> tuple[str, list[str], list[list[object]]]:
    """Main-memory access breakdown by array group, Hygra (H) vs ChGraph (C)."""
    groups = ("offset", "incident", "value", "oag", "other")
    rows = []
    for app in apps:
        for dataset in PAPER_DATASETS:
            for name, run in (
                ("H", runner.run("Hygra", app, dataset)),
                ("C", runner.run("ChGraph", app, dataset)),
            ):
                breakdown = run.dram_by_group
                rows.append([
                    app, dataset, name, run.dram_accesses,
                    *[breakdown[g] for g in groups],
                ])
    return (
        "Figure 15: DRAM access breakdown (H=Hygra, C=ChGraph)",
        ["App", "Dataset", "Sys", "Total", *groups],
        rows,
    )


def fig16_hw_breakdown(
    runner: Runner,
    apps: tuple[str, ...] = PAPER_APPS,
    dataset: str = "WEB",
) -> tuple[str, list[str], list[list[object]]]:
    """Benefit breakdown of HCG and CP over the software GLA baseline."""
    rows = []
    for app in apps:
        gla = runner.run("GLA", app, dataset)
        hcg = runner.run("ChGraph-HCGonly", app, dataset)
        full = runner.run("ChGraph", app, dataset)
        rows.append([
            app,
            hcg.speedup_over(gla),
            full.speedup_over(hcg),
            full.speedup_over(gla),
        ])
    return (
        f"Figure 16: hardware benefit breakdown on {dataset} (vs software GLA)",
        ["App", "+HCG", "+CP (over HCG)", "Full ChGraph"],
        rows,
    )


# -- sensitivity sweeps --------------------------------------------------------


def _chgraph_run(
    dataset_key: str,
    runner: Runner,
    d_max: int | None = None,
    w_min: int | None = None,
    config: SystemConfig | None = None,
) -> RunResult:
    """A ChGraph PR run with non-default preprocessing (sweeps).

    The sweep point travels as the spec's own ``PreprocessSpec``, so these
    runs go through the ordinary memoized/store-backed ``runner.run`` path
    instead of hand-building resources — and their specs match the ones
    :data:`RUN_MATRICES` declares for prewarming.
    """
    defaults = PreprocessSpec()
    spec = RunSpec(
        "ChGraph",
        "PR",
        dataset_key,
        config=config,
        preprocessing=PreprocessSpec(
            w_min=defaults.w_min if w_min is None else w_min,
            d_max=defaults.d_max if d_max is None else d_max,
        ),
    )
    return runner.run(spec)


def fig17_dmax_sweep(
    runner: Runner,
    dataset: str = "WEB",
    depths: tuple[int, ...] = (2, 4, 8, 16, 32, 64),
) -> tuple[str, list[str], list[list[object]]]:
    """ChGraph PR performance vs maximum exploration depth D_max."""
    runs = {d: _chgraph_run(dataset, runner, d_max=d) for d in depths}
    base = runs[depths[0]].cycles
    rows = [[d, runs[d].cycles, base / runs[d].cycles] for d in depths]
    return (
        f"Figure 17: D_max sweep, PR on {dataset} (speedup vs D_max={depths[0]})",
        ["D_max", "Cycles", "Speedup", ""],
        with_bars(rows, 2),
    )


def fig18_wmin_sweep(
    runner: Runner,
    dataset: str = "WEB",
    thresholds: tuple[int, ...] = (1, 3, 9, 17, 33, 65),
) -> tuple[str, list[str], list[list[object]]]:
    """ChGraph PR performance vs the OAG pruning threshold W_min.

    The paper sweeps 1..9 against datasets whose overlap weights are mostly
    1-3; the scaled stand-ins carry paper-scale hyperedge degrees (45-58),
    so their weights sit near 20-45 and the decline appears at
    correspondingly larger thresholds — same shape, shifted axis.
    """
    runs = {w: _chgraph_run(dataset, runner, w_min=w) for w in thresholds}
    base = runs[thresholds[0]].cycles
    rows = [[w, runs[w].cycles, base / runs[w].cycles] for w in thresholds]
    return (
        f"Figure 18: W_min sweep, PR on {dataset} "
        f"(performance vs W_min={thresholds[0]})",
        ["W_min", "Cycles", "Relative performance", ""],
        with_bars(rows, 2),
    )


def fig19_llc_sweep(
    runner: Runner,
    dataset: str = "WEB",
    llc_kbs: tuple[int, ...] = (2, 4, 6, 8),
) -> tuple[str, list[str], list[list[object]]]:
    """ChGraph PR on WEB vs LLC size (paper: 8-32 MB; scaled: 2-8 KB)."""
    rows = []
    base_cycles = None
    for llc in llc_kbs:
        config = scaled_config(llc_kb=llc)
        run = runner.run("ChGraph", "PR", dataset, config)
        if base_cycles is None:
            base_cycles = run.cycles
        rows.append([f"{llc}KB", run.cycles, base_cycles / run.cycles])
    return (
        f"Figure 19: LLC size sweep, ChGraph PR on {dataset}",
        ["LLC", "Cycles", "Speedup vs smallest", ""],
        with_bars(rows, 2),
    )


def fig20_core_scaling(
    runner: Runner,
    dataset: str = "WEB",
    cores: tuple[int, ...] = (4, 8, 16),
) -> tuple[str, list[str], list[list[object]]]:
    """PR scaling with core count, ChGraph vs Hygra."""
    rows = []
    for n in cores:
        config = scaled_config(num_cores=n)
        hygra = runner.run("Hygra", "PR", dataset, config)
        chg = runner.run("ChGraph", "PR", dataset, config)
        rows.append([n, hygra.cycles, chg.cycles, chg.speedup_over(hygra)])
    return (
        f"Figure 20: core-count scaling, PR on {dataset}",
        ["Cores", "Hygra cycles", "ChGraph cycles", "Speedup"],
        rows,
    )


# -- preprocessing ------------------------------------------------------------


def _preprocess_costs(runner: Runner, dataset_key: str) -> tuple[float, float, int]:
    """(hygra_cycles, chgraph_extra_cycles, oag_bytes) for preprocessing.

    Hygra builds the two bipartite CSR directions (~4 ops per bipartite
    edge); ChGraph additionally builds the per-chunk OAGs, whose elementary
    operation count the builder reports.
    """
    hypergraph = runner.dataset(dataset_key)
    config = scaled_config()
    bipartite_ops = 4 * hypergraph.num_bipartite_edges
    resources = runner.resources(hypergraph, config)
    hygra_cycles = bipartite_ops * PREPROCESS_OP_CYCLES / config.num_cores
    oag_cycles = resources.build_operations * OAG_OP_CYCLES / config.num_cores
    return hygra_cycles, oag_cycles, resources.storage_bytes()


def fig21_preprocessing(runner: Runner) -> tuple[str, list[str], list[list[object]]]:
    """Extra preprocessing time and storage of ChGraph over Hygra."""
    rows = []
    for dataset in PAPER_DATASETS:
        hygra_cycles, oag_cycles, oag_bytes = _preprocess_costs(runner, dataset)
        hypergraph = runner.dataset(dataset)
        rows.append([
            dataset,
            100.0 * oag_cycles / hygra_cycles,
            100.0 * oag_bytes / hypergraph.size_bytes(),
        ])
    return (
        "Figure 21: preprocessing overhead of ChGraph vs Hygra",
        ["Dataset", "Extra preprocess time (%)", "Extra storage (%)"],
        rows,
    )


def fig22_total_time(
    runner: Runner, apps: tuple[str, ...] = ("BFS", "PR", "CC")
) -> tuple[str, list[str], list[list[object]]]:
    """Total running time including preprocessing, normalized to Hygra."""
    rows = []
    for app in apps:
        for dataset in PAPER_DATASETS:
            hygra_pre, oag_pre, _ = _preprocess_costs(runner, dataset)
            hygra = runner.run("Hygra", app, dataset)
            chg = runner.run("ChGraph", app, dataset)
            total_hygra = hygra.cycles + hygra_pre
            total_chg = chg.cycles + hygra_pre + oag_pre
            rows.append([app, dataset, total_hygra / total_chg])
    return (
        "Figure 22: total time (incl. preprocessing) speedup over Hygra",
        ["App", "Dataset", "ChGraph speedup"],
        rows,
    )


# -- alternatives -----------------------------------------------------------


def fig23_prefetcher(
    runner: Runner, apps: tuple[str, ...] = ("BFS", "PR", "CC")
) -> tuple[str, list[str], list[list[object]]]:
    """ChGraph vs the event-driven hardware prefetcher."""
    rows = []
    for app in apps:
        for dataset in PAPER_DATASETS:
            pref = runner.run("EventPrefetcher", app, dataset)
            chg = runner.run("ChGraph", app, dataset)
            hygra = runner.run("Hygra", app, dataset)
            rows.append([
                app,
                dataset,
                pref.speedup_over(hygra),
                chg.speedup_over(pref),
            ])
    return (
        "Figure 23: vs event-driven prefetcher",
        ["App", "Dataset", "Prefetcher vs Hygra", "ChGraph vs Prefetcher"],
        rows,
    )


def fig24_reordering(
    runner: Runner, dataset: str = "WEB"
) -> tuple[str, list[str], list[list[object]]]:
    """Spatial reordering does not beat chain scheduling (PR).

    The reordered systems are ordinary runs whose spec carries the
    ``locality-reorder`` pipeline stage; the reordering cost comes from the
    runner's memoized pipeline result, so the comparison charges exactly
    the preprocessing work the runs actually performed.
    """
    pipeline = runner.pipeline(runner.dataset(dataset), REORDER_PREPROCESS)
    reorder_cycles = pipeline.cost_accesses * PREPROCESS_OP_CYCLES

    hygra = runner.run("Hygra", "PR", dataset)
    chg = runner.run("ChGraph", "PR", dataset)
    hygra_re = runner.run(
        RunSpec("Hygra", "PR", dataset, preprocessing=REORDER_PREPROCESS)
    )
    chg_re = runner.run(
        RunSpec("ChGraph", "PR", dataset, preprocessing=REORDER_PREPROCESS)
    )
    rows = [
        ["Hygra", hygra.cycles, 1.0],
        ["Hygra+Reorder", hygra_re.cycles + reorder_cycles,
         hygra.cycles / (hygra_re.cycles + reorder_cycles)],
        ["ChGraph", chg.cycles, hygra.cycles / chg.cycles],
        ["ChGraph+Reorder", chg_re.cycles + reorder_cycles,
         hygra.cycles / (chg_re.cycles + reorder_cycles)],
    ]
    return (
        f"Figure 24: reordering comparison, PR on {dataset} (incl. reorder cost)",
        ["System", "Cycles", "Speedup vs Hygra"],
        rows,
    )


def fig25_graph_apps(runner: Runner) -> tuple[str, list[str], list[list[object]]]:
    """Ordinary-graph apps: ChGraph vs Ligra and HATS (§VI-I)."""
    rows = []
    for app in ("Adsorption", "SSSP"):
        for dataset in GRAPH_DATASETS:
            ligra = runner.run("Ligra", app, dataset)
            hats = runner.run("HATS-V", app, dataset)
            chg = runner.run("ChGraph", app, dataset)
            rows.append([
                app,
                dataset,
                chg.speedup_over(ligra),
                chg.speedup_over(hats),
            ])
    return (
        "Figure 25: graph applications (speedups of ChGraph)",
        ["App", "Graph", "vs Ligra", "vs HATS"],
        rows,
    )


def headline_summary(
    runner: Runner, apps: tuple[str, ...] = ("BFS", "PR", "CC")
) -> tuple[str, list[str], list[list[object]]]:
    """The abstract's claims, condensed: per-app speedup and DRAM reduction."""
    rows = []
    for app in apps:
        speedups = []
        reductions = []
        gla = []
        for dataset in PAPER_DATASETS:
            hygra = runner.run("Hygra", app, dataset)
            chg = runner.run("ChGraph", app, dataset)
            soft = runner.run("GLA", app, dataset)
            speedups.append(chg.speedup_over(hygra))
            reductions.append(chg.dram_reduction_over(hygra))
            gla.append(soft.speedup_over(hygra))
        rows.append([
            app,
            min(speedups), max(speedups),
            min(reductions), max(reductions),
            sum(gla) / len(gla),
        ])
    return (
        "Headline summary (paper: speedup 3.39-4.73x, DRAM 2.77-4.56x, GLA < 1)",
        ["App", "Speedup min", "max", "DRAM red min", "max", "GLA mean"],
        rows,
    )


def vi_e_area_power() -> tuple[str, list[str], list[list[object]]]:
    """The §VI-E area/power/storage accounting."""
    report = area_report()
    rows = [
        ["Stack storage", f"{report.stack_bytes} B"],
        ["Chain FIFO storage", f"{report.chain_fifo_bytes} B"],
        ["Bipartite-edge FIFO storage", f"{report.tuple_fifo_bytes} B"],
        ["Config registers", f"{report.register_bytes} B"],
        ["Total area", f"{report.total_mm2:.3f} mm2"],
        ["Area vs core", f"{report.area_fraction_of_core:.2%}"],
        ["Total power", f"{report.total_mw:.0f} mW"],
        ["Power vs core TDP", f"{report.power_fraction_of_core:.2%}"],
    ]
    return "Section VI-E: ChGraph area and power", ["Quantity", "Value"], rows

"""Sharded parallel experiment execution.

The figure suite drives hundreds of (engine, algorithm, dataset, config)
simulations through one :class:`~repro.harness.runner.Runner`; each is
seconds of single-threaded work, and the suite ran them strictly serially.
This module partitions that run matrix across worker *processes*, using the
persistent :class:`~repro.store.ArtifactStore` as the cross-process result
bus: workers execute their shard through an ordinary store-backed
``Runner`` (so every ``RunResult`` and ``GlaResources`` artifact lands in
the shared store), and the parent re-runs the figure functions against warm
cache hits — producing tables byte-identical to serial execution.

Sharding is deterministic and resource-aware: runs that consume the same
``GlaResources`` artifact (same dataset and core count, for the
OAG-consuming engines) are grouped onto one shard, so the expensive
preprocessing is built exactly once instead of racing in several workers.
Groups are packed onto shards longest-first onto the least-loaded shard —
a deterministic LPT schedule.

Robustness (see :func:`execute_runs`):

- per-run timeout, enforced *inside* the worker via ``SIGALRM`` so one
  pathological run fails cleanly without killing its shard;
- crashed or hung workers are retried with backoff by the shared
  :func:`~repro.store.pool.run_tasks` machinery, on a fresh pool;
- graceful degradation: with no cache directory, a single job, or after
  retries are exhausted, runs execute inline in the parent process — the
  suite always completes, worst case at serial speed.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from typing import TYPE_CHECKING

from repro.core.chain import DEFAULT_D_MAX
from repro.core.oag import DEFAULT_W_MIN
from repro.harness.spec import RunSpec
from repro.hypergraph.pipeline import PreprocessSpec

if TYPE_CHECKING:
    from repro.harness.runner import Runner

__all__ = [
    "RESOURCE_ENGINES",
    "ExecutionReport",
    "RunReport",
    "RunSpec",
    "execute_runs",
    "plan_shards",
    "resource_group",
]

#: Engines that consume a ``GlaResources`` artifact (per-chunk OAGs); runs
#: using the same artifact are scheduled onto the same shard.
RESOURCE_ENGINES: frozenset[str] = frozenset(
    {"GLA", "ChGraph", "ChGraph-HCGonly", "ChGraph-CPonly", "HATS-V"}
)


@dataclasses.dataclass(frozen=True)
class RunReport:
    """How one run fared in the executor."""

    spec: RunSpec
    ok: bool
    seconds: float
    where: str  # "worker" or "inline"
    error: str | None = None


@dataclasses.dataclass(frozen=True)
class ExecutionReport:
    """What :func:`execute_runs` did: shard plan plus per-run reports."""

    reports: tuple[RunReport, ...]
    shards: tuple[tuple[RunSpec, ...], ...]
    jobs: int
    parallel: bool
    seconds: float

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    def failures(self) -> list[RunReport]:
        return [report for report in self.reports if not report.ok]

    def retried(self) -> list[RunReport]:
        """Runs that needed the inline fallback after a worker failure."""
        return [r for r in self.reports if r.where == "inline" and self.parallel]


# -- shard planning ----------------------------------------------------------


def resource_group(spec: RunSpec) -> tuple[str, int | None, PreprocessSpec]:
    """The preprocessing-sharing key of a run, derived from its spec.

    OAG-consuming engines need the ``GlaResources`` artifact for
    ``(dataset, num_cores, preprocessing)``; the rest only need the
    (pipelined) dataset itself, which each worker also materializes once.
    Runs with equal keys land on one shard so neither is built twice.  The
    preprocessing record is part of the key because specs with different
    stage lists or OAG parameters share no artifacts at all.
    """
    preprocessing = spec.resolved_preprocessing()
    if spec.engine in RESOURCE_ENGINES:
        return (spec.dataset, spec.resolved_config().num_cores, preprocessing)
    return (spec.dataset, None, preprocessing)


def plan_shards(specs: list[RunSpec], jobs: int) -> list[list[RunSpec]]:
    """Deterministically pack the run matrix into at most ``jobs`` shards.

    Specs are deduplicated (first occurrence wins), grouped by
    :func:`resource_group`, and the groups LPT-packed: largest group first
    onto the currently least-loaded shard, ties broken by shard index.
    Equal inputs always produce the identical plan.
    """
    unique = list(dict.fromkeys(specs))
    if jobs <= 1:
        return [unique] if unique else []
    groups: dict[tuple[str, int | None, PreprocessSpec], list[RunSpec]] = {}
    for spec in unique:
        groups.setdefault(resource_group(spec), []).append(spec)
    ordered = sorted(
        groups.items(), key=lambda item: (-len(item[1]), repr(item[0]))
    )
    shards: list[list[RunSpec]] = [[] for _ in range(min(jobs, len(groups)))]
    loads = [0] * len(shards)
    for _, members in ordered:
        target = loads.index(min(loads))
        shards[target].extend(members)
        loads[target] += len(members)
    return [shard for shard in shards if shard]


# -- worker body -------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _ShardPayload:
    """Everything a worker needs to rebuild its Runner and run its shard.

    The specs are fully normalized before sharding, so they carry their own
    ``pr_iterations``/``profile``/``preprocessing``; only the store
    location and the key-exempt ``fast`` flag travel separately.
    """

    cache_dir: str | None
    specs: tuple[RunSpec, ...]
    fast: bool
    timeout: float | None
    parent_pid: int
    fault: str | None = None  # test hook, see _maybe_fault


class _RunTimeout(Exception):
    """Raised inside a worker when a run exceeds its SIGALRM budget."""


def _maybe_fault(payload: _ShardPayload, spec: RunSpec) -> None:
    """Crash-injection hook for the degradation tests.

    ``fault`` is ``"<kind>:<algorithm>"``; it fires at most once per store
    directory (a marker file records the strike) and only in a *worker*
    process — the parent's inline fallback must never be killed.
    ``crash`` hard-exits the worker (simulating a kill); ``hang`` sleeps
    past any sane per-run timeout so the SIGALRM path triggers.
    """
    if payload.fault is None or payload.cache_dir is None:
        return
    if os.getpid() == payload.parent_pid:
        return
    kind, _, match = payload.fault.partition(":")
    if match and spec.algorithm != match:
        return
    marker = os.path.join(payload.cache_dir, f"fault-{kind}.marker")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # already struck once
    os.close(fd)
    if kind == "crash":
        os._exit(1)
    if kind == "hang":
        time.sleep(60.0)


def _run_one(
    runner: "Runner",
    spec: RunSpec,
    timeout: float | None,
    payload: _ShardPayload,
) -> None:
    """Execute one spec on ``runner`` under an optional SIGALRM budget.

    The fault hook fires *inside* the budget so an injected hang is cut
    short by the alarm exactly like a genuinely slow run would be.
    """
    use_alarm = timeout is not None and hasattr(signal, "SIGALRM")
    if not use_alarm:
        _maybe_fault(payload, spec)
        runner.run(spec)
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise _RunTimeout(f"run exceeded {timeout}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        _maybe_fault(payload, spec)
        runner.run(spec)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _run_shard(payload: _ShardPayload) -> list[RunReport]:
    """Worker body: run one shard through a store-backed Runner.

    Results travel via the artifact store, not the return value — the
    reports carry only status.  A run that times out or raises is reported
    failed and the shard *continues*; only a worker death loses the whole
    shard (and the pool machinery retries it).
    """
    from repro.harness.runner import Runner

    runner = Runner(fast=payload.fast, cache_dir=payload.cache_dir)
    where = "worker" if os.getpid() != payload.parent_pid else "inline"
    reports = []
    for spec in payload.specs:
        start = time.perf_counter()
        try:
            _run_one(
                runner, spec,
                payload.timeout if where == "worker" else None,
                payload,
            )
        except _RunTimeout as exc:
            reports.append(RunReport(
                spec=spec, ok=False, seconds=time.perf_counter() - start,
                where=where, error=str(exc),
            ))
            continue
        reports.append(RunReport(
            spec=spec, ok=True, seconds=time.perf_counter() - start, where=where,
        ))
    return reports


# -- the executor ------------------------------------------------------------


def execute_runs(
    specs: list[RunSpec],
    cache_dir: str | os.PathLike | None,
    jobs: int | None = None,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.5,
    pr_iterations: int = 2,
    fast: bool = True,
    w_min: int = DEFAULT_W_MIN,
    d_max: int = DEFAULT_D_MAX,
    profile: bool = False,
    fault: str | None = None,
) -> ExecutionReport:
    """Execute the run matrix, parallel where possible, and report.

    With a ``cache_dir`` and ``jobs > 1``, the deduplicated matrix is
    packed by :func:`plan_shards` and dispatched to worker processes via
    :func:`~repro.store.pool.run_tasks`; each worker writes its artifacts
    into the shared store.  Shards whose worker crashed or hung are retried
    up to ``retries`` times with exponential ``backoff``; individual runs
    that timed out in a worker (or shards that kept failing) are re-run
    **inline** in this process with no timeout, so the suite always
    completes with correct results.

    With no ``cache_dir`` (no cross-process result bus), ``jobs in
    (None-on-1-cpu, 0, 1)``, or fewer than two runs, execution degrades to
    a single inline shard.  ``fault`` is the test-only crash-injection
    hook documented on ``_maybe_fault``.

    The ``pr_iterations``/``w_min``/``d_max``/``profile`` keywords are the
    defaults specs are normalized against — a spec that carries its own
    values keeps them (``profile`` is sticky: asking the executor to
    profile profiles every run).
    """
    start = time.perf_counter()
    defaults = PreprocessSpec(w_min=w_min, d_max=d_max)
    unique = list(dict.fromkeys(
        spec.normalized(
            pr_iterations=pr_iterations,
            preprocessing=defaults,
            profile=profile,
        )
        for spec in specs
    ))
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, jobs)
    parallel = cache_dir is not None and jobs > 1 and len(unique) > 1
    cache_dir = str(cache_dir) if cache_dir is not None else None

    def _payload(
        shard: list[RunSpec], per_run_timeout: float | None
    ) -> _ShardPayload:
        return _ShardPayload(
            cache_dir=cache_dir,
            specs=tuple(shard),
            fast=fast,
            timeout=per_run_timeout,
            parent_pid=os.getpid(),
            fault=fault,
        )

    if not parallel:
        shards = plan_shards(unique, 1)
        reports: list[RunReport] = []
        for shard in shards:
            reports.extend(_run_shard(_payload(shard, None)))
        return ExecutionReport(
            reports=tuple(reports),
            shards=tuple(tuple(shard) for shard in shards),
            jobs=1,
            parallel=False,
            seconds=time.perf_counter() - start,
        )

    from repro.store.pool import run_tasks

    shards = plan_shards(unique, jobs)
    outcomes = run_tasks(
        _run_shard,
        [_payload(shard, timeout) for shard in shards],
        workers=len(shards),
        timeout=None if timeout is None else timeout * max(map(len, shards)),
        retries=retries,
        backoff=backoff,
        inline_fallback=True,
    )
    by_spec: dict[RunSpec, RunReport] = {}
    for outcome in outcomes:
        for report in outcome.value:
            by_spec[report.spec] = report
    # Runs that timed out inside their worker get one inline, untimed
    # retry here — the graceful-degradation guarantee.
    failed = [spec for spec in unique if not by_spec[spec].ok]
    if failed:
        for report in _run_shard(_payload(failed, None)):
            by_spec[report.spec] = report
    return ExecutionReport(
        reports=tuple(by_spec[spec] for spec in unique),
        shards=tuple(tuple(shard) for shard in shards),
        jobs=len(shards),
        parallel=True,
        seconds=time.perf_counter() - start,
    )

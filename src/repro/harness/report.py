"""Fixed-width table rendering for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.telemetry import RunTelemetry

__all__ = [
    "render_table",
    "format_value",
    "with_bars",
    "render_phase_profile",
    "render_iteration_timeline",
    "render_telemetry",
]


def format_value(value: object) -> str:
    """Human-friendly cell formatting: floats get 2-3 significant decimals."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table (what each bench prints)."""
    cells = [[format_value(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def with_bars(
    rows: Sequence[Sequence[object]],
    value_index: int,
    width: int = 28,
) -> list[list[object]]:
    """Append a proportional bar column visualizing ``rows[*][value_index]``.

    Turns a regenerated table into something shaped like the paper's bar
    charts: the largest value spans ``width`` characters, the rest scale.
    A positive value always gets at least one character so tiny bars stay
    visible; zero and negative values render an *empty* bar — "0 accesses"
    must not look nonzero.
    """
    values = [float(row[value_index]) for row in rows]
    peak = max(values, default=0.0)
    out = []
    for row, value in zip(rows, values):
        if peak > 0 and value > 0:
            bar = "#" * max(1, round(width * value / peak))
        else:
            bar = ""
        out.append([*row, bar])
    return out


# -- telemetry rendering ------------------------------------------------------


def render_phase_profile(telemetry: "RunTelemetry", title: str) -> str:
    """Per-phase-kind cycles / access / DRAM table for one profiled run."""
    rows = []
    for profile in telemetry.phases.values():
        rows.append([
            profile.phase,
            profile.activations,
            profile.cycles,
            profile.compute_cycles,
            profile.engine_cycles,
            sum(profile.accesses.values()),
            profile.dram_accesses,
            profile.dram_writebacks,
        ])
    return render_table(
        ["phase", "runs", "cycles", "compute", "engine", "accesses", "DRAM",
         "WB"],
        rows,
        title=title,
    )


def render_iteration_timeline(telemetry: "RunTelemetry", title: str) -> str:
    """Per-iteration frontier size/density and phase cost timeline."""
    rows = []
    for iteration in telemetry.iterations:
        for sample in iteration.phases:
            rows.append([
                iteration.iteration,
                sample.phase,
                sample.frontier_size,
                sample.frontier_density,
                sample.cycles,
                sample.dram_accesses,
            ])
    return render_table(
        ["iter", "phase", "frontier", "density", "cycles", "DRAM"],
        rows,
        title=title,
    )


def render_telemetry(telemetry: "RunTelemetry", label: str) -> str:
    """The full ``repro profile`` block for one engine's run."""
    blocks = [
        render_phase_profile(telemetry, f"{label}: per-phase breakdown"),
        render_iteration_timeline(telemetry, f"{label}: iteration timeline"),
    ]
    extras = []
    if telemetry.chain_stats:
        extras.append(
            "chains: " + ", ".join(
                f"{key}={format_value(value)}"
                for key, value in sorted(telemetry.chain_stats.items())
            )
        )
    if telemetry.fifo:
        extras.append(
            "fifo: " + ", ".join(
                f"{key}={format_value(value)}"
                for key, value in sorted(telemetry.fifo.items())
            )
        )
    if telemetry.violations:
        extras.append(
            f"INVARIANT VIOLATIONS ({len(telemetry.violations)}):\n"
            + "\n".join(f"  - {message}" for message in telemetry.violations)
        )
    if extras:
        blocks.append("\n".join(extras))
    return "\n\n".join(blocks)

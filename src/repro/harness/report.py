"""Fixed-width table rendering for benchmark output."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_value", "with_bars"]


def format_value(value: object) -> str:
    """Human-friendly cell formatting: floats get 2-3 significant decimals."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table (what each bench prints)."""
    cells = [[format_value(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def with_bars(
    rows: Sequence[Sequence[object]],
    value_index: int,
    width: int = 28,
) -> list[list[object]]:
    """Append a proportional bar column visualizing ``rows[*][value_index]``.

    Turns a regenerated table into something shaped like the paper's bar
    charts: the largest value spans ``width`` characters, the rest scale.
    A positive value always gets at least one character so tiny bars stay
    visible; zero and negative values render an *empty* bar — "0 accesses"
    must not look nonzero.
    """
    values = [float(row[value_index]) for row in rows]
    peak = max(values, default=0.0)
    out = []
    for row, value in zip(rows, values):
        if peak > 0 and value > 0:
            bar = "#" * max(1, round(width * value / peak))
        else:
            bar = ""
        out.append([*row, bar])
    return out

"""The memoized experiment runner.

One (engine, algorithm, dataset, system-config) simulation takes seconds;
several figures share the same underlying runs (Fig 2/3/14/15/16/22 all need
Hygra/GLA/ChGraph on the same workloads).  The :class:`Runner` memoizes
``RunResult`` objects per key within the process so the whole benchmark
suite pays for each simulation once.

``REPRO_BENCH_FULL=1`` in the environment switches PageRank from the quick
2-iteration default to the paper's 10 iterations and widens dataset scale.

Setting ``REPRO_CACHE_DIR`` (or passing ``cache_dir=``) additionally
persists both memo layers through the content-addressed
:mod:`repro.store`: ``GlaResources`` and ``RunResult`` artifacts then
survive the interpreter, so a second benchmark invocation skips all
preprocessing and simulation it has already paid for.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Iterable

from repro.algorithms import (
    Adsorption,
    BetweennessCentrality,
    Bfs,
    ConnectedComponents,
    KCore,
    MaximalIndependentSet,
    PageRank,
    Sssp,
)
import dataclasses

import numpy as np

from repro.algorithms.base import HypergraphAlgorithm
from repro.engine import GlaResources, RunResult
from repro.core.chain import DEFAULT_D_MAX
from repro.core.oag import DEFAULT_W_MIN
from repro.engine.base import ExecutionEngine
from repro.engine.registry import ENGINE_REGISTRY, create_engine
from repro.harness.datasets import graph_dataset, hypergraph_dataset
from repro.harness.spec import RunSpec
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.pipeline import (
    PipelineResult,
    PreprocessSpec,
    apply_pipeline,
)
from repro.sim.config import SystemConfig
from repro.sim.observe import (
    IterationTimeline,
    Observer,
    PhaseProfiler,
    instrument,
)
from repro.sim.system import SimulatedSystem

__all__ = ["ALGORITHM_NAMES", "Runner", "get_runner", "PAPER_APPS"]

#: The six applications of the paper's evaluation, in its order.
PAPER_APPS: tuple[str, ...] = ("BFS", "PR", "MIS", "BC", "CC", "k-core")

#: Every algorithm :meth:`Runner.algorithm` can build — the single source
#: of truth for CLI/server request validation.
ALGORITHM_NAMES: tuple[str, ...] = (
    "BFS", "PR", "MIS", "BC", "CC", "k-core", "SSSP", "Adsorption",
)


def _full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


def _unpermute_result(result: RunResult, vertex_perm: np.ndarray) -> RunResult:
    """Gather vertex-indexed result arrays back to original-id order.

    ``vertex_perm[old_id] = new_id``, so ``arr[vertex_perm]`` places the
    value the reordered run computed for original vertex ``old_id`` at
    index ``old_id`` — algorithm outputs stay id-stable no matter what
    renumbering the pipeline applied.  Only arrays of length
    ``num_vertices`` are vertex-indexed (``hyperedge_values`` is not, and
    scalar/other-shaped ``result`` payloads pass through untouched); value
    *domains* that reference vertex ids (e.g. CC component labels) are left
    in the reordered id space.
    """
    num_vertices = len(vertex_perm)

    def gather(arr: np.ndarray) -> np.ndarray:
        if isinstance(arr, np.ndarray) and arr.ndim == 1 and len(arr) == num_vertices:
            return arr[vertex_perm]
        return arr

    return dataclasses.replace(
        result,
        result=gather(result.result),
        vertex_values=gather(result.vertex_values),
    )


class Runner:
    """Builds engines/algorithms by name and memoizes simulation runs.

    ``cache_dir`` (or ``$REPRO_CACHE_DIR`` when it is ``None``) opts into
    the persistent artifact store: resources and run results are then
    loaded from / written to disk around the in-process memo, so repeated
    invocations across interpreters skip preprocessing and simulation.
    """

    def __init__(
        self,
        pr_iterations: int | None = None,
        fast: bool = True,
        cache_dir: str | Path | None = None,
        w_min: int = DEFAULT_W_MIN,
        d_max: int = DEFAULT_D_MAX,
        preprocessing: PreprocessSpec | None = None,
    ) -> None:
        if pr_iterations is None:
            pr_iterations = 10 if _full_mode() else 2
        self.pr_iterations = pr_iterations
        self.fast = fast
        #: The default preprocessing record for specs that do not carry
        #: their own; ``w_min``/``d_max`` are its legacy spelling.
        if preprocessing is None:
            preprocessing = PreprocessSpec(w_min=w_min, d_max=d_max)
        self.preprocessing = preprocessing
        self.w_min = preprocessing.w_min
        self.d_max = preprocessing.d_max
        self._results: dict[RunSpec, RunResult] = {}
        self._resources: dict[tuple, GlaResources] = {}
        self._pipelines: dict[tuple, PipelineResult] = {}
        from repro.store import ArtifactStore, resolve_cache_dir

        resolved = resolve_cache_dir(cache_dir)
        #: The persistent artifact store, or ``None`` when caching is off.
        self.store = ArtifactStore(resolved) if resolved is not None else None
        #: The last :meth:`run_many` parallel execution report, if any.
        self.last_execution_report = None

    # -- factories -----------------------------------------------------------

    def algorithm(self, name: str) -> HypergraphAlgorithm:
        factories = {
            "BFS": Bfs,
            "PR": lambda: PageRank(iterations=self.pr_iterations),
            "MIS": MaximalIndependentSet,
            "BC": BetweennessCentrality,
            "CC": ConnectedComponents,
            "k-core": KCore,
            "SSSP": Sssp,
            "Adsorption": lambda: Adsorption(iterations=self.pr_iterations),
        }
        try:
            return factories[name]()
        except KeyError:
            raise KeyError(f"unknown algorithm {name!r}") from None

    def resources(
        self,
        hypergraph: Hypergraph,
        config: SystemConfig,
        preprocessing: PreprocessSpec | None = None,
    ) -> GlaResources:
        # The memo keys on the hypergraph *content* plus every build
        # parameter: name-keying would alias differently scaled variants of
        # one dataset, and dropping the preprocessing record or fast would
        # alias runs configured with non-default preprocessing.
        if preprocessing is None:
            preprocessing = self.preprocessing
        key = (
            hypergraph.content_hash(),
            config.num_cores,
            preprocessing,
            self.fast,
        )
        if key not in self._resources:
            self._resources[key] = GlaResources.build_or_load(
                hypergraph,
                config.num_cores,
                fast=self.fast,
                store=self.store,
                preprocessing=preprocessing,
            )
        return self._resources[key]

    def engine(
        self,
        name: str,
        hypergraph: Hypergraph,
        config: SystemConfig,
        preprocessing: PreprocessSpec | None = None,
    ) -> ExecutionEngine:
        spec = ENGINE_REGISTRY.get(name)
        if spec is None:
            raise KeyError(f"unknown engine {name!r}")
        resources = (
            self.resources(hypergraph, config, preprocessing)
            if spec.needs_resources
            else None
        )
        return create_engine(name, resources)

    def pipeline(
        self, hypergraph: Hypergraph, preprocessing: PreprocessSpec
    ) -> PipelineResult:
        """Run (memoized) the preprocessing stage list on a loaded dataset."""
        key = (hypergraph.content_hash(), preprocessing.stages)
        if key not in self._pipelines:
            self._pipelines[key] = apply_pipeline(hypergraph, preprocessing)
        return self._pipelines[key]

    def dataset(self, key: str) -> Hypergraph:
        if key in ("AZ", "PK"):
            return graph_dataset(key)
        return hypergraph_dataset(key)

    # -- memoized execution ------------------------------------------------------

    def normalize(self, spec: RunSpec) -> RunSpec:
        """Resolve a spec's ``None`` fields against this runner's defaults."""
        return spec.normalized(
            pr_iterations=self.pr_iterations,
            preprocessing=self.preprocessing,
        )

    def run(
        self,
        spec: RunSpec | str,
        algorithm_name: str | None = None,
        dataset_key: str | None = None,
        config: SystemConfig | None = None,
        profile: bool = False,
        check: bool = False,
    ) -> RunResult:
        """Simulate (memoized) a :class:`~repro.harness.spec.RunSpec` and
        return the :class:`RunResult`.

        The canonical call is ``run(spec)``.  The legacy positional
        signature ``run(engine_name, algorithm_name, dataset_key, config,
        profile=, check=)`` still works as a deprecated shim — it is
        repackaged into a spec — and the ``profile``/``check`` keywords act
        as sticky overrides on a spec that did not set them itself.

        ``profile=True`` runs the simulation under an
        :class:`~repro.sim.observe.InstrumentedSystem` so the result carries
        :class:`~repro.sim.telemetry.RunTelemetry`; the simulated cycles and
        DRAM counts are identical to an unprofiled run, but the entries are
        memoized (and stored) separately because only one carries telemetry.

        ``check=True`` additionally attaches an
        :class:`~repro.sim.invariants.InvariantChecker` (implying
        instrumentation); any violations land on
        ``result.telemetry.violations``.  Checked runs bypass the persistent
        store — the whole point of checking is to re-execute the simulation,
        and a store hit would silently skip the audit.
        """
        if not isinstance(spec, RunSpec):
            if algorithm_name is None or dataset_key is None:
                raise TypeError(
                    "run() takes a RunSpec or the legacy "
                    "(engine, algorithm, dataset[, config]) positional form"
                )
            spec = RunSpec(spec, algorithm_name, dataset_key, config)
        return self._run_spec(
            spec.normalized(
                pr_iterations=self.pr_iterations,
                preprocessing=self.preprocessing,
                profile=profile,
                check=check,
            )
        )

    def _run_spec(self, spec: RunSpec) -> RunResult:
        """Execute one fully-normalized spec (the memo and store unit)."""
        # RunSpec is frozen and fully resolved here, hence hashable: keying
        # on the whole spec keeps modified configs and preprocessing
        # pipelines distinct.
        if spec in self._results:
            return self._results[spec]
        # One dataset resolution serves both the store lookup (content
        # hash) and the simulation itself — loading twice doubled the
        # generator cost on every store-enabled cache miss.
        hypergraph = self.dataset(spec.dataset)
        store_key = None
        if self.store is not None and not spec.check:
            from repro.store import run_result_key

            # Keys hash the *loaded* dataset's content plus the spec's full
            # preprocessing record — the stage list is part of the key, so
            # the pipeline only runs on a genuine miss.
            store_key = run_result_key(spec, hypergraph.content_hash())
            cached = self.store.get_run_result(store_key)
            if cached is not None:
                self._results[spec] = cached
                return cached
        preprocessing = spec.resolved_preprocessing()
        pipeline = self.pipeline(hypergraph, preprocessing)
        engine = self.engine(
            spec.engine, pipeline.hypergraph, spec.config, preprocessing
        )
        algorithm = self.algorithm(spec.algorithm)
        observers: list[Observer] = []
        if spec.profile:
            observers += [PhaseProfiler(), IterationTimeline()]
        if spec.check:
            from repro.sim.invariants import InvariantChecker

            observers.append(InvariantChecker())
        # instrument() hands back the bare system when no observer is
        # attached, so unprofiled runs skip the middleware dispatch.
        system = instrument(SimulatedSystem(spec.config), observers)
        result = engine.run(algorithm, pipeline.hypergraph, system)
        if pipeline.vertex_perm is not None:
            result = _unpermute_result(result, pipeline.vertex_perm)
        self._results[spec] = result
        if store_key is not None:
            self.store.put_run_result(store_key, result)
        return result

    def run_many(
        self,
        specs: Iterable[RunSpec | tuple[Any, ...]],
        jobs: int | None = None,
        timeout: float | None = None,
        retries: int = 2,
        profile: bool = False,
        check: bool = False,
    ) -> dict[RunSpec, RunResult]:
        """Batch :meth:`run`: execute a whole run matrix, sharded in parallel.

        ``specs`` is an iterable of :class:`~repro.harness.parallel.RunSpec`
        (or ``(engine, algorithm, dataset[, config])`` tuples).  With a
        persistent store and ``jobs > 1``, the matrix is executed by the
        sharded :func:`~repro.harness.parallel.execute_runs` executor —
        workers fill the shared store, then this process assembles every
        result from warm hits, so the returned values are identical to
        serial execution.  Without a store (or ``jobs <= 1``) the batch
        degrades to the plain serial loop.

        Returns ``{spec: RunResult}``; the executor's
        :class:`~repro.harness.parallel.ExecutionReport` (or ``None`` when
        it was skipped) is left on :attr:`last_execution_report`.

        ``check=True`` forces the serial in-process path: checked runs
        attach an invariant checker and must actually execute here, not be
        assembled from worker-warmed store entries.
        """
        from repro.harness.parallel import execute_runs

        specs = [
            spec if isinstance(spec, RunSpec) else RunSpec(*spec)
            for spec in specs
        ]
        unique = list(dict.fromkeys(specs))
        resolved = {
            spec: spec.normalized(
                pr_iterations=self.pr_iterations,
                preprocessing=self.preprocessing,
                profile=profile,
                check=check,
            )
            for spec in unique
        }
        self.last_execution_report = None
        if check or any(s.check for s in resolved.values()):
            return {
                spec: self._run_spec(resolved[spec]) for spec in unique
            }
        pending = list(dict.fromkeys(
            s for s in resolved.values() if s not in self._results
        ))
        if self.store is not None and len(pending) > 1 and (
            jobs is None or jobs > 1
        ):
            self.last_execution_report = execute_runs(
                pending,
                cache_dir=self.store.root,
                jobs=jobs,
                timeout=timeout,
                retries=retries,
                pr_iterations=self.pr_iterations,
                fast=self.fast,
                w_min=self.w_min,
                d_max=self.d_max,
            )
        return {spec: self._run_spec(resolved[spec]) for spec in unique}

    def speedup(
        self,
        engine_name: str,
        baseline_name: str,
        algorithm_name: str,
        dataset_key: str,
        config: SystemConfig | None = None,
    ) -> float:
        """Speedup of ``engine_name`` over ``baseline_name``."""
        run = self.run(engine_name, algorithm_name, dataset_key, config)
        base = self.run(baseline_name, algorithm_name, dataset_key, config)
        return run.speedup_over(base)


_runners: dict[tuple, Runner] = {}


def _environment_key() -> tuple:
    """What the shared runner's construction read from the environment."""
    from repro.store import resolve_cache_dir

    cache = resolve_cache_dir(None)
    return (None if cache is None else str(cache), _full_mode())


def get_runner() -> Runner:
    """The process-wide shared runner (benchmarks reuse its memo cache).

    Keyed on the resolved environment (``$REPRO_CACHE_DIR``,
    ``$REPRO_BENCH_FULL``): changing either after the first call yields a
    runner matching the *current* environment instead of silently reusing
    the first-constructed one.  Repeated calls under one environment keep
    returning the same instance, preserving its memo caches.
    """
    key = _environment_key()
    runner = _runners.get(key)
    if runner is None:
        runner = _runners[key] = Runner()
    return runner

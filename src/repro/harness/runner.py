"""The memoized experiment runner.

One (engine, algorithm, dataset, system-config) simulation takes seconds;
several figures share the same underlying runs (Fig 2/3/14/15/16/22 all need
Hygra/GLA/ChGraph on the same workloads).  The :class:`Runner` memoizes
``RunResult`` objects per key within the process so the whole benchmark
suite pays for each simulation once.

``REPRO_BENCH_FULL=1`` in the environment switches PageRank from the quick
2-iteration default to the paper's 10 iterations and widens dataset scale.
"""

from __future__ import annotations

import os

from repro.algorithms import (
    Adsorption,
    BetweennessCentrality,
    Bfs,
    ConnectedComponents,
    KCore,
    MaximalIndependentSet,
    PageRank,
    Sssp,
)
from repro.algorithms.base import HypergraphAlgorithm
from repro.baselines import EventPrefetcherEngine, HatsVEngine, LigraEngine
from repro.engine import (
    ChGraphEngine,
    GlaResources,
    HygraEngine,
    RunResult,
    SoftwareGlaEngine,
)
from repro.engine.base import ExecutionEngine
from repro.harness.datasets import graph_dataset, hypergraph_dataset
from repro.hypergraph.hypergraph import Hypergraph
from repro.sim.config import SystemConfig, scaled_config
from repro.sim.system import SimulatedSystem

__all__ = ["Runner", "get_runner", "PAPER_APPS"]

#: The six applications of the paper's evaluation, in its order.
PAPER_APPS: tuple[str, ...] = ("BFS", "PR", "MIS", "BC", "CC", "k-core")


def _full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


class Runner:
    """Builds engines/algorithms by name and memoizes simulation runs."""

    def __init__(
        self, pr_iterations: int | None = None, fast: bool = True
    ) -> None:
        if pr_iterations is None:
            pr_iterations = 10 if _full_mode() else 2
        self.pr_iterations = pr_iterations
        self.fast = fast
        self._results: dict[tuple, RunResult] = {}
        self._resources: dict[tuple, GlaResources] = {}

    # -- factories -----------------------------------------------------------

    def algorithm(self, name: str) -> HypergraphAlgorithm:
        factories = {
            "BFS": Bfs,
            "PR": lambda: PageRank(iterations=self.pr_iterations),
            "MIS": MaximalIndependentSet,
            "BC": BetweennessCentrality,
            "CC": ConnectedComponents,
            "k-core": KCore,
            "SSSP": Sssp,
            "Adsorption": lambda: Adsorption(iterations=self.pr_iterations),
        }
        try:
            return factories[name]()
        except KeyError:
            raise KeyError(f"unknown algorithm {name!r}") from None

    def resources(self, hypergraph: Hypergraph, config: SystemConfig) -> GlaResources:
        key = (hypergraph.name, config.num_cores)
        if key not in self._resources:
            self._resources[key] = GlaResources.build(
                hypergraph, config.num_cores, fast=self.fast
            )
        return self._resources[key]

    def engine(
        self, name: str, hypergraph: Hypergraph, config: SystemConfig
    ) -> ExecutionEngine:
        if name == "Hygra":
            return HygraEngine()
        if name == "Ligra":
            return LigraEngine()
        if name == "EventPrefetcher":
            return EventPrefetcherEngine()
        resources = self.resources(hypergraph, config)
        if name == "GLA":
            return SoftwareGlaEngine(resources)
        if name == "ChGraph":
            return ChGraphEngine(resources)
        if name == "ChGraph-HCGonly":
            return ChGraphEngine(resources, use_hcg=True, use_cp=False)
        if name == "ChGraph-CPonly":
            return ChGraphEngine(resources, use_hcg=False, use_cp=True)
        if name == "HATS-V":
            return HatsVEngine(resources)
        raise KeyError(f"unknown engine {name!r}")

    def dataset(self, key: str) -> Hypergraph:
        if key in ("AZ", "PK"):
            return graph_dataset(key)
        return hypergraph_dataset(key)

    # -- memoized execution ------------------------------------------------------

    def run(
        self,
        engine_name: str,
        algorithm_name: str,
        dataset_key: str,
        config: SystemConfig | None = None,
    ) -> RunResult:
        """Simulate (memoized) and return the :class:`RunResult`."""
        if config is None:
            config = scaled_config()
        # SystemConfig is a frozen dataclass, hence hashable: keying on the
        # full config (not its name) keeps modified copies distinct.
        key = (engine_name, algorithm_name, dataset_key, config,
               self.pr_iterations)
        if key not in self._results:
            hypergraph = self.dataset(dataset_key)
            engine = self.engine(engine_name, hypergraph, config)
            algorithm = self.algorithm(algorithm_name)
            system = SimulatedSystem(config)
            self._results[key] = engine.run(algorithm, hypergraph, system)
        return self._results[key]

    def speedup(
        self,
        engine_name: str,
        baseline_name: str,
        algorithm_name: str,
        dataset_key: str,
        config: SystemConfig | None = None,
    ) -> float:
        """Speedup of ``engine_name`` over ``baseline_name``."""
        run = self.run(engine_name, algorithm_name, dataset_key, config)
        base = self.run(baseline_name, algorithm_name, dataset_key, config)
        return run.speedup_over(base)


_runner: Runner | None = None


def get_runner() -> Runner:
    """The process-wide shared runner (benchmarks reuse its memo cache)."""
    global _runner
    if _runner is None:
        _runner = Runner()
    return _runner

"""The typed run specification — the single currency for "one simulation".

A :class:`RunSpec` names everything that identifies a simulation run:
engine, algorithm, dataset, :class:`~repro.sim.config.SystemConfig`,
PageRank iteration count, the ``profile``/``check`` instrumentation flags,
and the :class:`~repro.hypergraph.pipeline.PreprocessSpec` describing what
happens to the hypergraph before simulation.  Every layer speaks it: the
CLI builds one from flags, :meth:`Runner.run <repro.harness.runner.Runner.run>`
executes it, :mod:`repro.store.keys` derives both store keys from it,
:mod:`repro.harness.parallel` shard-plans on it, and the service's
``JobRequest`` wraps it verbatim — so a served result is byte-identical to
the same local run for *any* expressible configuration.

``None`` fields mean "use the executing runner's default"; call
:meth:`RunSpec.normalized` to resolve them.  Specs are frozen, hashable,
picklable, and JSON-round-trippable (:meth:`to_json`/:meth:`from_json`).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.errors import ConfigurationError
from repro.hypergraph.pipeline import PreprocessSpec
from repro.sim.config import SystemConfig, scaled_config

__all__ = ["RunSpec"]


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One cell of the run matrix, picklable and hashable.

    ``config=None`` means the default :func:`~repro.sim.config.scaled_config`
    and ``pr_iterations=None``/``preprocessing=None`` mean the executing
    runner's defaults — kept as ``None`` (not eagerly resolved) so specs
    stay cheap to hash and compare.  The first four fields keep their
    historical positional order, so ``RunSpec(engine, algorithm, dataset,
    config)`` tuples from older call sites still construct correctly.
    """

    engine: str
    algorithm: str
    dataset: str
    config: SystemConfig | None = None
    pr_iterations: int | None = None
    profile: bool = False
    check: bool = False
    preprocessing: PreprocessSpec | None = None

    # -- resolution ----------------------------------------------------------

    def resolved_config(self) -> SystemConfig:
        return self.config if self.config is not None else scaled_config()

    def resolved_preprocessing(self) -> PreprocessSpec:
        return (
            self.preprocessing
            if self.preprocessing is not None
            else PreprocessSpec()
        )

    def normalized(
        self,
        pr_iterations: int = 2,
        preprocessing: PreprocessSpec | None = None,
        profile: bool = False,
        check: bool = False,
    ) -> "RunSpec":
        """Resolve every ``None`` field against the given runner defaults.

        ``profile``/``check`` act as sticky overrides (a runner asked to
        profile a batch profiles specs that did not ask themselves);
        ``check`` implies ``profile`` because the invariant checker rides on
        the instrumented system.  The result has no ``None`` fields and is
        what the runner memoizes on and the store keys hash.
        """
        checked = self.check or check
        resolved = dataclasses.replace(
            self,
            config=self.resolved_config(),
            pr_iterations=(
                self.pr_iterations
                if self.pr_iterations is not None
                else pr_iterations
            ),
            profile=self.profile or profile or checked,
            check=checked,
            preprocessing=(
                self.preprocessing
                if self.preprocessing is not None
                else (preprocessing or PreprocessSpec())
            ),
        )
        resolved.validate()
        return resolved

    def validate(self) -> None:
        for field in ("engine", "algorithm", "dataset"):
            value = getattr(self, field)
            if not isinstance(value, str) or not value:
                raise ConfigurationError(
                    f"RunSpec.{field} must be a non-empty string, got {value!r}"
                )
        if self.pr_iterations is not None and self.pr_iterations < 1:
            raise ConfigurationError(
                f"pr_iterations must be >= 1, got {self.pr_iterations}"
            )
        if self.preprocessing is not None:
            self.preprocessing.validate()

    def label(self) -> str:
        return f"{self.engine}/{self.algorithm}/{self.dataset}"

    # -- JSON ----------------------------------------------------------------

    def to_json(self) -> dict[str, object]:
        """A JSON-compatible dict; ``None`` fields are omitted so the
        round trip preserves "use the runner default"."""
        data: dict[str, object] = {
            "engine": self.engine,
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "profile": self.profile,
            "check": self.check,
        }
        if self.config is not None:
            data["config"] = dataclasses.asdict(self.config)
        if self.pr_iterations is not None:
            data["pr_iterations"] = self.pr_iterations
        if self.preprocessing is not None:
            data["preprocessing"] = self.preprocessing.to_json()
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "RunSpec":
        known = {
            "engine", "algorithm", "dataset", "config", "pr_iterations",
            "profile", "check", "preprocessing",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown RunSpec fields: {sorted(unknown)}"
            )
        config = None
        raw_config = data.get("config")
        if raw_config is not None:
            if not isinstance(raw_config, Mapping):
                raise ConfigurationError("RunSpec 'config' must be an object")
            try:
                config = SystemConfig(**dict(raw_config))
            except TypeError as exc:
                raise ConfigurationError(f"bad RunSpec config: {exc}") from None
        preprocessing = None
        raw_pre = data.get("preprocessing")
        if raw_pre is not None:
            if not isinstance(raw_pre, Mapping):
                raise ConfigurationError(
                    "RunSpec 'preprocessing' must be an object"
                )
            preprocessing = PreprocessSpec.from_json(raw_pre)
        raw_pr = data.get("pr_iterations")
        spec = cls(
            engine=str(data.get("engine", "")),
            algorithm=str(data.get("algorithm", "")),
            dataset=str(data.get("dataset", "")),
            config=config,
            pr_iterations=None if raw_pr is None else int(raw_pr),
            profile=bool(data.get("profile", False)),
            check=bool(data.get("check", False)),
            preprocessing=preprocessing,
        )
        spec.validate()
        return spec

"""Hypergraph representation substrate (bipartite CSR, Figure 4)."""

from repro.hypergraph.csr import Csr
from repro.hypergraph.directed import DirectedHypergraph
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.pipeline import (
    PipelineResult,
    PreprocessSpec,
    StageSpec,
    apply_pipeline,
    stage_names,
)

__all__ = [
    "Csr",
    "DirectedHypergraph",
    "Frontier",
    "Hypergraph",
    "PipelineResult",
    "PreprocessSpec",
    "StageSpec",
    "apply_pipeline",
    "stage_names",
]

"""Overlap-aware partitioning (extension of §IV-B's partitioning hook).

The GLA model is "compatible and flexible with other partitioning methods"
— chunks are contiguous id ranges, so *renumbering* elements is how any
partitioner plugs in.  The default contiguous chunking slices ids
arbitrarily, splitting overlap clusters across cores; each per-chunk OAG
then sees only a 1/num_chunks sliver of every cluster.

This module renumbers a side's elements along **global** chains (a single
full-hypergraph OAG walk, no depth cap), so overlap clusters occupy
contiguous id ranges and land inside one chunk.  The effect is measured by
`benchmarks/test_ablation_partitioning.py`: chunk OAGs get denser, chains
longer, and ChGraph faster — at the price of a more expensive preprocessing
pass (the full OAG instead of per-chunk ones).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.chain import ChainGenerator
from repro.core.oag import build_oag
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.reorder import apply_vertex_permutation

__all__ = ["PartitionedHypergraph", "overlap_aware_renumber"]


@dataclasses.dataclass(frozen=True)
class PartitionedHypergraph:
    """A renumbered hypergraph plus the permutations that produced it.

    ``hyperedge_perm[old_id] = new_id`` (identity when the side was not
    renumbered), likewise ``vertex_perm``.  Results computed on the
    renumbered hypergraph are mapped back with :meth:`restore_vertex_order`.
    """

    hypergraph: Hypergraph
    hyperedge_perm: np.ndarray
    vertex_perm: np.ndarray

    def restore_vertex_order(self, values: np.ndarray) -> np.ndarray:
        """Reorder a per-vertex result array back to original vertex ids."""
        restored = np.empty_like(values)
        restored[:] = values[self.vertex_perm]
        return restored


def _chain_permutation(hypergraph: Hypergraph, side: str, w_min: int) -> np.ndarray:
    """old id -> new id, following one global chain decomposition."""
    universe = (
        hypergraph.num_hyperedges if side == "hyperedge" else hypergraph.num_vertices
    )
    oag = build_oag(hypergraph, side, w_min=w_min)
    # No depth cap: the goal is long contiguous clusters, not hardware
    # stack fidelity (this runs at preprocessing time on the host).
    generator = ChainGenerator(d_max=max(universe, 1))
    chains = generator.generate(np.ones(universe, dtype=bool), oag)
    perm = np.empty(universe, dtype=np.int64)
    for new_id, old_id in enumerate(chains.order()):
        perm[old_id] = new_id
    return perm


def overlap_aware_renumber(
    hypergraph: Hypergraph,
    side: str = "both",
    w_min: int = 1,
) -> PartitionedHypergraph:
    """Renumber ``side`` ("hyperedge", "vertex" or "both") along chains."""
    if side not in ("hyperedge", "vertex", "both"):
        raise ValueError(f"unknown side {side!r}")

    hyperedge_perm = np.arange(hypergraph.num_hyperedges, dtype=np.int64)
    vertex_perm = np.arange(hypergraph.num_vertices, dtype=np.int64)
    current = hypergraph

    if side in ("hyperedge", "both"):
        hyperedge_perm = _chain_permutation(current, "hyperedge", w_min)
        members = [None] * current.num_hyperedges
        for old_id in range(current.num_hyperedges):
            members[int(hyperedge_perm[old_id])] = [
                int(v) for v in current.incident_vertices(old_id)
            ]
        current = Hypergraph.from_hyperedge_lists(
            members, num_vertices=current.num_vertices,
            name=current.name + "+part",
        )

    if side in ("vertex", "both"):
        vertex_perm = _chain_permutation(current, "vertex", w_min)
        current = apply_vertex_permutation(current, vertex_perm)

    return PartitionedHypergraph(
        hypergraph=current,
        hyperedge_perm=hyperedge_perm,
        vertex_perm=vertex_perm,
    )

"""Compressed sparse row (CSR) adjacency structure.

The paper stores the bipartite representation of a hypergraph in two CSR
structures (Figure 4(c)): one mapping hyperedges to their incident vertices
and one mapping vertices to their incident hyperedges.  The same structure is
reused for the overlap-aware abstraction graph (OAG), which additionally
carries per-edge weights.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import HypergraphFormatError

__all__ = ["Csr"]


class Csr:
    """A CSR adjacency: ``offsets``/``indices`` and optional ``weights``.

    ``offsets`` has length ``num_rows + 1``; the neighbors of row ``r`` are
    ``indices[offsets[r]:offsets[r + 1]]``.  When ``weights`` is present it is
    parallel to ``indices``.
    """

    __slots__ = (
        "offsets",
        "indices",
        "weights",
        "_offsets_list",
        "_indices_list",
        "_degrees_list",
    )

    def __init__(
        self,
        offsets: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if offsets.ndim != 1 or indices.ndim != 1:
            raise HypergraphFormatError("offsets and indices must be 1-D arrays")
        if offsets.size == 0:
            raise HypergraphFormatError("offsets must have at least one entry")
        if offsets[0] != 0 or offsets[-1] != indices.size:
            raise HypergraphFormatError(
                "offsets must start at 0 and end at len(indices)"
            )
        if np.any(np.diff(offsets) < 0):
            raise HypergraphFormatError("offsets must be non-decreasing")
        if weights is not None:
            weights = np.asarray(weights)
            if weights.shape != indices.shape:
                raise HypergraphFormatError("weights must parallel indices")
        self.offsets = offsets
        self.indices = indices
        self.weights = weights
        # Lazily-built plain-list mirrors for the simulator inner loops: a
        # Python-int list index is several times cheaper than extracting a
        # numpy scalar per element.  The structure is immutable (see
        # ``Hypergraph.content_hash``), so the mirrors never go stale.
        self._offsets_list: list[int] | None = None
        self._indices_list: list[int] | None = None
        self._degrees_list: list[int] | None = None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_lists(
        cls,
        adjacency: Sequence[Iterable[int]],
        weights: Sequence[Iterable[float]] | None = None,
    ) -> "Csr":
        """Build a CSR from a list of per-row neighbor iterables."""
        rows = [list(row) for row in adjacency]
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([len(row) for row in rows], out=offsets[1:])
        indices = np.fromiter(
            (n for row in rows for n in row), dtype=np.int64, count=int(offsets[-1])
        )
        weight_array = None
        if weights is not None:
            flat = [w for row in weights for w in row]
            if len(flat) != indices.size:
                raise HypergraphFormatError("weights shape mismatch with adjacency")
            weight_array = np.asarray(flat, dtype=np.int64)
        return cls(offsets, indices, weight_array)

    # -- access ------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def num_entries(self) -> int:
        return int(self.indices.size)

    def degree(self, row: int) -> int:
        return int(self.offsets[row + 1] - self.offsets[row])

    def offsets_list(self) -> list[int]:
        """``offsets`` as a cached plain-int list (hot-loop mirror)."""
        if self._offsets_list is None:
            self._offsets_list = self.offsets.tolist()
        return self._offsets_list

    def indices_list(self) -> list[int]:
        """``indices`` as a cached plain-int list (hot-loop mirror)."""
        if self._indices_list is None:
            self._indices_list = self.indices.tolist()
        return self._indices_list

    def degrees_list(self) -> list[int]:
        """Per-row degrees as a cached plain-int list (hot-loop mirror)."""
        if self._degrees_list is None:
            self._degrees_list = np.diff(self.offsets).tolist()
        return self._degrees_list

    def neighbors(self, row: int) -> np.ndarray:
        return self.indices[self.offsets[row] : self.offsets[row + 1]]

    def neighbor_weights(self, row: int) -> np.ndarray:
        if self.weights is None:
            raise HypergraphFormatError("this CSR carries no weights")
        return self.weights[self.offsets[row] : self.offsets[row + 1]]

    def row_slice(self, row: int) -> tuple[int, int]:
        """Return ``(start, end)`` positions of ``row`` in ``indices``."""
        return int(self.offsets[row]), int(self.offsets[row + 1])

    def to_lists(self) -> list[list[int]]:
        return [list(map(int, self.neighbors(r))) for r in range(self.num_rows)]

    def transpose(self, num_cols: int | None = None) -> "Csr":
        """Return the transposed adjacency (columns become rows).

        Each output row lists the source rows in ascending order — the
        stable sort keeps the row-major entry order within every column.
        """
        if num_cols is None:
            num_cols = int(self.indices.max()) + 1 if self.indices.size else 0
        counts = np.bincount(self.indices, minlength=num_cols)
        offsets = np.zeros(num_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        rows = np.repeat(
            np.arange(self.num_rows, dtype=np.int64), np.diff(self.offsets)
        )
        order = np.argsort(self.indices, kind="stable")
        return Csr(offsets, rows[order])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Csr):
            return NotImplemented
        same = np.array_equal(self.offsets, other.offsets) and np.array_equal(
            self.indices, other.indices
        )
        if not same:
            return False
        if (self.weights is None) != (other.weights is None):
            return False
        if self.weights is None:
            return True
        return np.array_equal(self.weights, other.weights)

    def __repr__(self) -> str:
        return f"Csr(rows={self.num_rows}, entries={self.num_entries})"

"""Directed hypergraphs (§II-A).

"For a directed hypergraph, the incident vertices of a directed hyperedge
can be divided into a source vertex set and a destination vertex set."
ChGraph supports both kinds; the evaluation treats everything as undirected,
so the engines consume the undirected :class:`~repro.hypergraph.Hypergraph`
— a directed hypergraph provides *projections* that plug into the same
machinery:

* ``forward()`` — hyperedges connect their sources to their destinations:
  the hyperedge-side CSR lists destination sets (what an active hyperedge
  updates) and the vertex-side CSR lists the hyperedges each vertex feeds
  (what an active vertex activates).  Propagation then follows edge
  direction, which is exactly what directed BFS/SSSP/reachability need.
* ``backward()`` — the reverse orientation (for pull-style algorithms or
  reverse reachability).
* ``as_undirected()`` — sources ∪ destinations per hyperedge (what the
  paper's evaluation does).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import HypergraphFormatError
from repro.hypergraph.csr import Csr
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["DirectedHypergraph"]


class DirectedHypergraph:
    """A hypergraph whose hyperedges have source and destination vertex sets.

    ``sources`` maps each hyperedge to its source vertices (the tail set);
    ``destinations`` to its destination vertices (the head set).  A vertex
    may appear in both sets of one hyperedge (a self-sustaining relation).
    """

    __slots__ = ("sources", "destinations", "num_vertices", "name")

    def __init__(
        self,
        sources: Csr,
        destinations: Csr,
        num_vertices: int,
        name: str = "directed-hypergraph",
    ) -> None:
        if sources.num_rows != destinations.num_rows:
            raise HypergraphFormatError(
                "source and destination CSRs disagree on hyperedge count "
                f"({sources.num_rows} vs {destinations.num_rows})"
            )
        for csr, label in ((sources, "source"), (destinations, "destination")):
            if csr.indices.size and csr.indices.max() >= num_vertices:
                raise HypergraphFormatError(f"{label} vertex id out of range")
        self.sources = sources
        self.destinations = destinations
        self.num_vertices = num_vertices
        self.name = name

    # -- construction ------------------------------------------------------

    @classmethod
    def from_lists(
        cls,
        hyperedges: Sequence[tuple[Iterable[int], Iterable[int]]],
        num_vertices: int | None = None,
        name: str = "directed-hypergraph",
    ) -> "DirectedHypergraph":
        """Build from ``(source_set, destination_set)`` pairs."""
        source_rows = [sorted(set(int(v) for v in src)) for src, _ in hyperedges]
        dest_rows = [sorted(set(int(v) for v in dst)) for _, dst in hyperedges]
        peak = 0
        for row in (*source_rows, *dest_rows):
            if row:
                if row[0] < 0:
                    raise HypergraphFormatError("vertex ids must be non-negative")
                peak = max(peak, row[-1] + 1)
        if num_vertices is None:
            num_vertices = peak
        elif num_vertices < peak:
            raise HypergraphFormatError(
                f"num_vertices={num_vertices} smaller than max vertex id + 1"
            )
        return cls(
            Csr.from_lists(source_rows),
            Csr.from_lists(dest_rows),
            num_vertices,
            name=name,
        )

    # -- basic queries ---------------------------------------------------------

    @property
    def num_hyperedges(self) -> int:
        return self.sources.num_rows

    def source_vertices(self, h: int) -> np.ndarray:
        return self.sources.neighbors(h)

    def destination_vertices(self, h: int) -> np.ndarray:
        return self.destinations.neighbors(h)

    # -- projections ------------------------------------------------------------

    def forward(self) -> Hypergraph:
        """The forward orientation as an engine-consumable hypergraph.

        The hyperedge-side CSR lists each hyperedge's *destinations* (the
        vertices it updates during vertex computation); the vertex-side CSR
        lists, for each vertex, the hyperedges it is a *source* of (the
        hyperedges it updates during hyperedge computation).  Propagation
        under Algorithm 1 then flows sources -> hyperedge -> destinations.
        """
        vertex_side = self.sources.transpose(num_cols=self.num_vertices)
        return Hypergraph(
            self.destinations, vertex_side, name=self.name + "+fwd", directed=True
        )

    def backward(self) -> Hypergraph:
        """The reverse orientation (destinations drive, sources receive)."""
        vertex_side = self.destinations.transpose(num_cols=self.num_vertices)
        return Hypergraph(
            self.sources, vertex_side, name=self.name + "+bwd", directed=True
        )

    def as_undirected(self) -> Hypergraph:
        """Union of source and destination sets per hyperedge (the paper's
        evaluation setting: "all hypergraphs are considered undirected")."""
        members = [
            sorted(
                set(map(int, self.source_vertices(h)))
                | set(map(int, self.destination_vertices(h)))
            )
            for h in range(self.num_hyperedges)
        ]
        return Hypergraph.from_hyperedge_lists(
            members, num_vertices=self.num_vertices, name=self.name
        )

    def reverse(self) -> "DirectedHypergraph":
        """Swap every hyperedge's source and destination sets."""
        return DirectedHypergraph(
            self.destinations, self.sources, self.num_vertices,
            name=self.name + "+rev",
        )

    def __repr__(self) -> str:
        return (
            f"DirectedHypergraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|H|={self.num_hyperedges})"
        )

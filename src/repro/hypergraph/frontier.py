"""Active sets of vertices or hyperedges.

The paper keeps per-element activity in a bitmap (1 = active) that is shared
with the ChGraph engine (Figure 13: "base address of the bitmap").  The
software engines also want a sparse view for iteration, mirroring Hygra's
dense/sparse ``VertexSubset``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

__all__ = ["Frontier"]


class Frontier:
    """A set of active ids over a universe ``0..universe-1``.

    Maintains both the dense bitmap (what the hardware reads) and a sorted
    sparse id list (what index-ordered software iterates).
    """

    __slots__ = ("universe", "bitmap")

    def __init__(self, universe: int, active: Iterable[int] = ()) -> None:
        self.universe = int(universe)
        self.bitmap = np.zeros(self.universe, dtype=bool)
        for i in active:
            self.bitmap[i] = True

    @classmethod
    def all_active(cls, universe: int) -> "Frontier":
        frontier = cls(universe)
        frontier.bitmap[:] = True
        return frontier

    @classmethod
    def from_bitmap(cls, bitmap: np.ndarray) -> "Frontier":
        frontier = cls(bitmap.size)
        frontier.bitmap = bitmap.astype(bool, copy=True)
        return frontier

    # -- set operations ------------------------------------------------------

    def add(self, i: int) -> None:
        self.bitmap[i] = True

    def discard(self, i: int) -> None:
        self.bitmap[i] = False

    def __contains__(self, i: int) -> bool:
        return bool(self.bitmap[i])

    def __len__(self) -> int:
        return int(self.bitmap.sum())

    def __iter__(self) -> Iterator[int]:
        """Iterate active ids in ascending index order (Hygra's order)."""
        return iter(self.ids())

    def ids(self) -> np.ndarray:
        """Sorted array of active ids."""
        return np.flatnonzero(self.bitmap)

    def is_empty(self) -> bool:
        return not self.bitmap.any()

    def clear(self) -> None:
        self.bitmap[:] = False

    def copy(self) -> "Frontier":
        return Frontier.from_bitmap(self.bitmap)

    def density(self) -> float:
        """Fraction of the universe that is active."""
        if self.universe == 0:
            return 0.0
        return len(self) / self.universe

    def __repr__(self) -> str:
        return f"Frontier(active={len(self)}/{self.universe})"

"""Active sets of vertices or hyperedges.

The paper keeps per-element activity in a bitmap (1 = active) that is shared
with the ChGraph engine (Figure 13: "base address of the bitmap").  The
software engines also want a sparse view for iteration, mirroring Hygra's
dense/sparse ``VertexSubset``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

__all__ = ["Frontier"]


class Frontier:
    """A set of active ids over a universe ``0..universe-1``.

    Maintains both the dense bitmap (what the hardware reads) and a sorted
    sparse id list (what index-ordered software iterates).

    ``len()`` is cached: engines call it in per-iteration loops, so the
    popcount is memoized while the frontier is mutated only through
    ``add``/``discard``/``clear`` (which keep the count exact).  Reading the
    ``bitmap`` property hands out the mutable array itself — the hardware
    interface writes through it at arbitrary later times — so the first such
    read permanently disables the cache for that frontier and ``len()``
    recounts.
    """

    __slots__ = ("universe", "_bitmap", "_count", "_escaped")

    def __init__(self, universe: int, active: Iterable[int] = ()) -> None:
        self.universe = int(universe)
        self._bitmap = np.zeros(self.universe, dtype=bool)
        self._count: int | None = 0
        self._escaped = False
        for i in active:
            self.add(i)

    @classmethod
    def all_active(cls, universe: int) -> "Frontier":
        frontier = cls(universe)
        frontier._bitmap[:] = True
        frontier._count = frontier.universe
        return frontier

    @classmethod
    def from_bitmap(cls, bitmap: np.ndarray) -> "Frontier":
        frontier = cls(bitmap.size)
        frontier._bitmap = bitmap.astype(bool, copy=True)
        frontier._count = None
        return frontier

    @property
    def bitmap(self) -> np.ndarray:
        """The dense activity array (mutable; disables the ``len`` cache)."""
        self._escaped = True
        self._count = None
        return self._bitmap

    @bitmap.setter
    def bitmap(self, value: np.ndarray) -> None:
        # The caller may retain an alias to ``value``, so stay uncached.
        self._bitmap = value
        self._count = None
        self._escaped = True

    # -- set operations ------------------------------------------------------

    def add(self, i: int) -> None:
        if self._count is not None and not self._bitmap[i]:
            self._count += 1
        self._bitmap[i] = True

    def discard(self, i: int) -> None:
        if self._count is not None and self._bitmap[i]:
            self._count -= 1
        self._bitmap[i] = False

    def __contains__(self, i: int) -> bool:
        return bool(self._bitmap[i])

    def __len__(self) -> int:
        if self._escaped:
            return int(self._bitmap.sum())
        if self._count is None:
            self._count = int(self._bitmap.sum())
        return self._count

    def __iter__(self) -> Iterator[int]:
        """Iterate active ids in ascending index order (Hygra's order)."""
        return iter(self.ids())

    def ids(self) -> np.ndarray:
        """Sorted array of active ids."""
        return np.flatnonzero(self._bitmap)

    def recount(self) -> int:
        """Ground-truth popcount of the bitmap.

        Never reads or writes the memoized count, so the invariant checker
        can compare the cache against reality without perturbing it.
        """
        return int(self._bitmap.sum())

    def cached_count(self) -> int | None:
        """The memoized count (``None`` when uncached or escaped)."""
        return None if self._escaped else self._count

    def is_empty(self) -> bool:
        return len(self) == 0

    def clear(self) -> None:
        self._bitmap[:] = False
        if not self._escaped:
            self._count = 0

    def copy(self) -> "Frontier":
        clone = Frontier.from_bitmap(self._bitmap)
        if not self._escaped:
            # The source count is exact, and the clone owns a fresh bitmap:
            # carry the popcount over instead of forcing an O(n) recount.
            clone._count = self._count
        return clone

    def density(self) -> float:
        """Fraction of the universe that is active."""
        if self.universe == 0:
            return 0.0
        return len(self) / self.universe

    def __repr__(self) -> str:
        return f"Frontier(active={len(self)}/{self.universe})"

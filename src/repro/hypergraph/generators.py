"""Synthetic hypergraph generators.

The paper evaluates on five real hypergraphs (Table II) from SNAP/KONECT.
Those datasets are unavailable offline, so this module generates scaled-down
synthetic stand-ins whose *overlap profiles* (Figure 8) and vertex:hyperedge
ratios match each dataset's character.  The generator is a community
(affiliation) model: vertices belong to communities and each hyperedge samples
most of its members from one community, so hyperedges within a community
overlap heavily — exactly the structure the chain scheduler exploits.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import dataclasses
import math
import random

from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "AffiliationConfig",
    "generate_affiliation_hypergraph",
    "generate_rmat_bipartite",
    "generate_uniform_random_hypergraph",
    "planted_chain_hypergraph",
    "two_uniform_graph",
    "paper_dataset",
    "PAPER_DATASETS",
]


@dataclasses.dataclass(frozen=True)
class AffiliationConfig:
    """Parameters for the community affiliation generator.

    ``overlap_bias`` in [0, 1] is the probability that a hyperedge member is
    drawn from the hyperedge's home community rather than uniformly; higher
    values produce heavier overlap (datasets like OG/LJ/OK in Figure 8).
    """

    num_vertices: int
    num_hyperedges: int
    mean_hyperedge_degree: float
    num_communities: int
    overlap_bias: float = 0.85
    degree_exponent: float = 2.0
    min_hyperedge_degree: int = 2
    seed: int = 7
    # Hub structure: each community designates ``hubs_per_community`` hot
    # vertices that members pick with probability ``hub_bias``.  Hubs are
    # what real hypergraphs' power-law popularity looks like, and they are
    # the source of the weight >= W_min overlaps the OAG keeps: two
    # hyperedges of the same community share most of its hubs.
    hubs_per_community: int = 0
    hub_bias: float = 0.0
    # Vertices are assigned to communities in contiguous runs of this many
    # ids.  Real datasets' ids follow crawl/insertion order, which places
    # related vertices near each other, so the vertices one hyperedge
    # touches share cache lines with the vertices its overlap-neighbors
    # touch.  1 disables co-location (fully random membership).
    vertex_run: int = 1
    # Hyperedges of the same community likewise appear in contiguous id runs
    # of this length (e.g. consecutive crawl of one site's pages).  Short
    # runs (2) keep per-chunk community density under 16-way chunking
    # without handing the index-ordered baseline the full reuse window.
    hyperedge_run: int = 1


def _powerlaw_degree(rng: random.Random, mean: float, exponent: float, lo: int) -> int:
    """Sample a hyperedge cardinality from a truncated Pareto-like law."""
    # Inverse-transform sampling of a Pareto tail, shifted to honour the mean.
    u = rng.random()
    raw = lo * (1.0 - u) ** (-1.0 / exponent)
    scale = mean / (lo * exponent / (exponent - 1.0))
    value = max(lo, int(round(raw * max(scale, 0.25))))
    return min(value, lo + int(mean * 6))


def generate_affiliation_hypergraph(
    config: AffiliationConfig, name: str = "affiliation"
) -> Hypergraph:
    """Generate a hypergraph with community-induced overlap."""
    rng = random.Random(config.seed)
    communities: list[list[int]] = [[] for _ in range(config.num_communities)]
    run = max(1, config.vertex_run)
    for start in range(0, config.num_vertices, run):
        community = rng.randrange(config.num_communities)
        communities[community].extend(
            range(start, min(start + run, config.num_vertices))
        )
    # Guarantee no empty community so sampling below always terminates.
    for c, members in enumerate(communities):
        if not members:
            members.append(rng.randrange(config.num_vertices))

    # Pre-assign each hyperedge's home community in contiguous runs.
    homes: list[int] = []
    h_run = max(1, config.hyperedge_run)
    while len(homes) < config.num_hyperedges:
        home = rng.randrange(config.num_communities)
        homes.extend([home] * h_run)
    del homes[config.num_hyperedges :]

    hyperedges: list[list[int]] = []
    for home in homes:
        cardinality = _powerlaw_degree(
            rng,
            config.mean_hyperedge_degree,
            config.degree_exponent,
            config.min_hyperedge_degree,
        )
        pool = communities[home]
        hubs = pool[: config.hubs_per_community]
        members: set[int] = set()
        attempts = 0
        while len(members) < cardinality and attempts < cardinality * 20:
            attempts += 1
            draw = rng.random()
            if hubs and draw < config.hub_bias:
                members.add(rng.choice(hubs))
            elif draw < config.hub_bias + config.overlap_bias * (
                1.0 - config.hub_bias
            ):
                members.add(rng.choice(pool))
            else:
                members.add(rng.randrange(config.num_vertices))
        if len(members) < 2:
            members.add(rng.randrange(config.num_vertices))
            members.add(rng.randrange(config.num_vertices))
        hyperedges.append(sorted(members))

    return Hypergraph.from_hyperedge_lists(
        hyperedges, num_vertices=config.num_vertices, name=name
    )


def generate_uniform_random_hypergraph(
    num_vertices: int,
    num_hyperedges: int,
    hyperedge_degree: int,
    seed: int = 7,
    name: str = "uniform",
) -> Hypergraph:
    """A k-uniform Erdos-Renyi-style hypergraph (low overlap control case)."""
    rng = random.Random(seed)
    k = min(hyperedge_degree, num_vertices)
    hyperedges = [
        sorted(rng.sample(range(num_vertices), k)) for _ in range(num_hyperedges)
    ]
    return Hypergraph.from_hyperedge_lists(
        hyperedges, num_vertices=num_vertices, name=name
    )


def generate_rmat_bipartite(
    num_vertices: int,
    num_hyperedges: int,
    num_bipartite_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 7,
    name: str = "rmat",
) -> Hypergraph:
    """A bipartite R-MAT hypergraph (power-law on both sides).

    Drops each bipartite edge by recursive quadrant descent over the
    (hyperedge x vertex) adjacency matrix — the standard synthetic for
    skewed graph workloads, useful as a hub-heavy stress input distinct
    from the community model.
    """
    rng = random.Random(seed)
    members: list[set[int]] = [set() for _ in range(num_hyperedges)]
    placed = 0
    attempts = 0
    limit = num_bipartite_edges * 20
    while placed < num_bipartite_edges and attempts < limit:
        attempts += 1
        row_lo, row_hi = 0, num_hyperedges
        col_lo, col_hi = 0, num_vertices
        while row_hi - row_lo > 1 or col_hi - col_lo > 1:
            draw = rng.random()
            top = draw < a + b
            left = draw < a or (a + b <= draw < a + b + c)
            if row_hi - row_lo > 1:
                mid = (row_lo + row_hi) // 2
                row_lo, row_hi = (row_lo, mid) if top else (mid, row_hi)
            if col_hi - col_lo > 1:
                mid = (col_lo + col_hi) // 2
                col_lo, col_hi = (col_lo, mid) if left else (mid, col_hi)
        if col_lo not in members[row_lo]:
            members[row_lo].add(col_lo)
            placed += 1
    hyperedges = [sorted(m) if m else [rng.randrange(num_vertices)] for m in members]
    return Hypergraph.from_hyperedge_lists(
        hyperedges, num_vertices=num_vertices, name=name
    )


def planted_chain_hypergraph(
    num_hyperedges: int, overlap: int = 2, fresh: int = 2, name: str = "planted"
) -> Hypergraph:
    """A hypergraph whose optimal hyperedge chain is known by construction.

    Hyperedge ``i`` shares exactly ``overlap`` vertices with hyperedge
    ``i + 1`` and introduces ``fresh`` new vertices, so the maximal-overlap
    chain is ``<h_0, h_1, ..., h_{n-1}>``.  Used by tests that need a ground
    truth chain.
    """
    hyperedges = []
    base = 0
    for _ in range(num_hyperedges):
        members = list(range(base, base + overlap + fresh))
        hyperedges.append(members)
        base += fresh
    return Hypergraph.from_hyperedge_lists(hyperedges, name=name)


def two_uniform_graph(
    edges: list[tuple[int, int]], num_vertices: int | None = None, name: str = "graph"
) -> Hypergraph:
    """Represent an ordinary graph as a 2-uniform hypergraph (§VI-I)."""
    return Hypergraph.from_hyperedge_lists(
        [list(e) for e in edges], num_vertices=num_vertices, name=name
    )


# --------------------------------------------------------------------------
# Paper dataset stand-ins (Table II, scaled down).
#
# Each preset preserves the dataset's |V|:|H| ratio and its Figure 8 overlap
# character: OG/LJ/OK have 71-82% of vertices shared by >= 7 hyperedges
# (high overlap_bias, few communities relative to size) while FS/WEB sit at
# 8-13% (lower bias, more communities).
# --------------------------------------------------------------------------

_PAPER_PRESETS: dict[str, AffiliationConfig] = {
    # Friendster: |V| > |H|, lightest sharing (largest pools, no hubs).
    "FS": AffiliationConfig(
        num_vertices=1920,
        num_hyperedges=1408,
        mean_hyperedge_degree=45.0,
        min_hyperedge_degree=22,
        degree_exponent=3.0,
        num_communities=18,
        overlap_bias=0.98,
        seed=11,
    ),
    # com-Orkut: |H| > |V|, heavy sharing (small pools + hot hubs).
    "OK": AffiliationConfig(
        num_vertices=1536,
        num_hyperedges=2304,
        mean_hyperedge_degree=50.0,
        min_hyperedge_degree=25,
        degree_exponent=3.0,
        num_communities=24,
        overlap_bias=0.99,
        hubs_per_community=2,
        hub_bias=0.1,
        seed=12,
    ),
    # LiveJournal: |H| > |V|, heavy sharing.
    "LJ": AffiliationConfig(
        num_vertices=1664,
        num_hyperedges=2176,
        mean_hyperedge_degree=48.0,
        min_hyperedge_degree=24,
        degree_exponent=3.0,
        num_communities=24,
        overlap_bias=0.985,
        hubs_per_community=3,
        hub_bias=0.15,
        seed=13,
    ),
    # Web-trackers: largest |V|, light sharing, most memory-bound (Fig 5).
    "WEB": AffiliationConfig(
        num_vertices=1920,
        num_hyperedges=1536,
        mean_hyperedge_degree=52.0,
        min_hyperedge_degree=26,
        degree_exponent=3.0,
        num_communities=26,
        overlap_bias=0.99,
        seed=14,
    ),
    # Orkut-group: densest incidences, heaviest sharing (hub-hot, so the
    # LRU baseline already captures part of the reuse, as §VI-C notes).
    "OG": AffiliationConfig(
        num_vertices=1408,
        num_hyperedges=1920,
        mean_hyperedge_degree=58.0,
        min_hyperedge_degree=28,
        degree_exponent=3.0,
        num_communities=20,
        overlap_bias=0.99,
        hubs_per_community=4,
        hub_bias=0.2,
        seed=15,
    ),
}

#: Names of the five Table II stand-ins in paper order.
PAPER_DATASETS: tuple[str, ...] = ("FS", "OK", "LJ", "WEB", "OG")

#: Scale divisor applied to Table II sizes, recorded for reporting.
PAPER_SCALE_NOTE = "Table II datasets scaled down ~2000-24000x; ratios preserved"


def paper_dataset(key: str, scale: float = 1.0) -> Hypergraph:
    """Instantiate a Table II stand-in by its paper abbreviation.

    ``scale`` < 1 shrinks the preset further (used by quick benchmark modes);
    the |V|:|H| ratio and overlap character are preserved.
    """
    try:
        preset = _PAPER_PRESETS[key]
    except KeyError:
        raise KeyError(
            f"unknown dataset {key!r}; expected one of {sorted(_PAPER_PRESETS)}"
        ) from None
    if scale != 1.0:
        preset = dataclasses.replace(
            preset,
            num_vertices=max(32, int(preset.num_vertices * scale)),
            num_hyperedges=max(16, int(preset.num_hyperedges * scale)),
            num_communities=max(4, int(math.ceil(preset.num_communities * scale))),
        )
    return generate_affiliation_hypergraph(preset, name=key)

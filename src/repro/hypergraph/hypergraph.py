"""The :class:`Hypergraph` container.

A hypergraph ``G = <V, H>`` is stored in its bipartite representation
(Figure 4 of the paper): a hyperedge-side CSR (``hyperedge_offset`` /
``incident_vertex``) and a vertex-side CSR (``vertex_offset`` /
``incident_hyperedge``).  Value arrays (``hyperedge_value`` /
``vertex_value``) live with the execution engines, not here: the structure
is immutable, values are per-run state.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import HypergraphFormatError
from repro.hypergraph.csr import Csr

__all__ = ["Hypergraph"]


class Hypergraph:
    """An undirected hypergraph in bipartite-CSR form.

    Parameters
    ----------
    hyperedges:
        CSR mapping each hyperedge to its incident vertices.
    vertices:
        CSR mapping each vertex to its incident hyperedges.  When omitted it
        is derived by transposing ``hyperedges``.
    name:
        Optional dataset name used in reports.
    """

    __slots__ = ("hyperedges", "vertices", "name", "directed", "_content_hash")

    def __init__(
        self,
        hyperedges: Csr,
        vertices: Csr | None = None,
        name: str = "hypergraph",
        directed: bool = False,
    ) -> None:
        """``directed=True`` marks an *orientation projection* of a directed
        hypergraph (see :mod:`repro.hypergraph.directed`): the two CSR
        directions then describe different incidence relations (a
        hyperedge's head set vs. a vertex's sourced hyperedges), so their
        entry counts may legitimately differ."""
        if vertices is None:
            vertices = hyperedges.transpose()
        self._validate(hyperedges, vertices, directed)
        self.hyperedges = hyperedges
        self.vertices = vertices
        self.name = name
        self.directed = directed
        self._content_hash: str | None = None

    @staticmethod
    def _validate(hyperedges: Csr, vertices: Csr, directed: bool) -> None:
        if not directed and hyperedges.num_entries != vertices.num_entries:
            raise HypergraphFormatError(
                "hyperedge-side and vertex-side CSRs disagree on the number "
                f"of bipartite edges ({hyperedges.num_entries} vs "
                f"{vertices.num_entries})"
            )
        if hyperedges.indices.size and hyperedges.indices.max() >= vertices.num_rows:
            raise HypergraphFormatError("incident vertex id out of range")
        if vertices.indices.size and vertices.indices.max() >= hyperedges.num_rows:
            raise HypergraphFormatError("incident hyperedge id out of range")

    # -- construction -----------------------------------------------------

    @classmethod
    def from_hyperedge_lists(
        cls,
        hyperedge_members: Sequence[Iterable[int]],
        num_vertices: int | None = None,
        name: str = "hypergraph",
    ) -> "Hypergraph":
        """Build from a list of vertex memberships, one per hyperedge."""
        members = [sorted(set(int(v) for v in h)) for h in hyperedge_members]
        for h in members:
            if h and h[0] < 0:
                raise HypergraphFormatError("vertex ids must be non-negative")
        hyperedge_csr = Csr.from_lists(members)
        max_seen = int(hyperedge_csr.indices.max()) + 1 if members and any(members) else 0
        if num_vertices is None:
            num_vertices = max_seen
        elif num_vertices < max_seen:
            raise HypergraphFormatError(
                f"num_vertices={num_vertices} smaller than max vertex id + 1"
            )
        vertex_csr = hyperedge_csr.transpose(num_cols=num_vertices)
        return cls(hyperedge_csr, vertex_csr, name=name)

    # -- basic queries ------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.vertices.num_rows

    @property
    def num_hyperedges(self) -> int:
        return self.hyperedges.num_rows

    @property
    def num_bipartite_edges(self) -> int:
        """``#BEdges`` in Table II: incidences in the bipartite graph."""
        return self.hyperedges.num_entries

    def hyperedge_degree(self, h: int) -> int:
        """``deg(h)``: the number of vertices incident to hyperedge ``h``."""
        return self.hyperedges.degrees_list()[h]

    def vertex_degree(self, v: int) -> int:
        """``deg(v)``: the number of hyperedges incident to vertex ``v``."""
        return self.vertices.degrees_list()[v]

    def incident_vertices(self, h: int) -> np.ndarray:
        """``N(h)``: the vertices connected by hyperedge ``h``."""
        return self.hyperedges.neighbors(h)

    def incident_hyperedges(self, v: int) -> np.ndarray:
        """``N(v)``: the hyperedges containing vertex ``v``."""
        return self.vertices.neighbors(v)

    def content_hash(self) -> str:
        """Stable sha256 hex digest of the structural payload.

        Covers both CSR directions and the ``directed`` flag — not the
        ``name`` — so it is the identity artifact caches key on
        (:mod:`repro.store`).  The structure is immutable, hence the digest
        is computed once and memoized.
        """
        if self._content_hash is None:
            from repro.store.keys import hypergraph_content_hash

            self._content_hash = hypergraph_content_hash(self)
        return self._content_hash

    def hyperedges_overlap(self, h1: int, h2: int) -> bool:
        """Whether two hyperedges share at least one vertex."""
        a = set(map(int, self.incident_vertices(h1)))
        return any(int(v) in a for v in self.incident_vertices(h2))

    def vertices_overlap(self, v1: int, v2: int) -> bool:
        """Whether two vertices are connected by at least one hyperedge."""
        a = set(map(int, self.incident_hyperedges(v1)))
        return any(int(h) in a for h in self.incident_hyperedges(v2))

    # -- derived views -------------------------------------------------------

    def side(self, which: str) -> Csr:
        """Return the CSR for ``"hyperedge"`` or ``"vertex"`` traversal.

        ``side("hyperedge")`` maps hyperedges to incident vertices; it is the
        structure walked during *vertex computation* (active hyperedges push
        to vertices), and vice versa.
        """
        if which == "hyperedge":
            return self.hyperedges
        if which == "vertex":
            return self.vertices
        raise ValueError(f"unknown side {which!r}; expected 'hyperedge' or 'vertex'")

    def clique_expansion(self) -> list[tuple[int, int]]:
        """Clique-expanded edge list (Figure 4(a)); quadratic, small inputs only."""
        edges: set[tuple[int, int]] = set()
        for h in range(self.num_hyperedges):
            members = [int(v) for v in self.incident_vertices(h)]
            for i, u in enumerate(members):
                for w in members[i + 1 :]:
                    edges.add((min(u, w), max(u, w)))
        return sorted(edges)

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the bipartite CSR structure.

        Matches the accounting used for the "Size" column of Table II:
        4-byte ids for both CSR directions plus 8-byte value slots.
        """
        id_bytes = 4
        value_bytes = 8
        structure = id_bytes * (
            (self.num_hyperedges + 1)
            + (self.num_vertices + 1)
            + 2 * self.num_bipartite_edges
        )
        values = value_bytes * (self.num_hyperedges + self.num_vertices)
        return structure + values

    def __repr__(self) -> str:
        return (
            f"Hypergraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|H|={self.num_hyperedges}, #BEdges={self.num_bipartite_edges})"
        )

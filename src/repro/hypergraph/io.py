"""Hypergraph text I/O.

Supports two interchange formats:

* **hyperedge-list** (``.hgr``-like): one hyperedge per line, whitespace
  separated vertex ids; ``#`` comments and blank lines skipped.  This is the
  natural serialization of the bipartite representation.
* **bipartite edge list** (KONECT-like): one ``hyperedge vertex`` pair per
  line, mirroring how KONECT distributes Web-trackers / Orkut-group.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.errors import HypergraphFormatError
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "save_hyperedge_list",
    "load_hyperedge_list",
    "save_bipartite_edges",
    "load_bipartite_edges",
    "save_matrix_market",
    "load_matrix_market",
    "save_json",
    "load_json",
]


def save_hyperedge_list(hypergraph: Hypergraph, path: str | Path) -> None:
    """Write one hyperedge per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# hypergraph {hypergraph.name}\n")
        handle.write(
            f"# vertices={hypergraph.num_vertices} "
            f"hyperedges={hypergraph.num_hyperedges}\n"
        )
        for h in range(hypergraph.num_hyperedges):
            members = " ".join(str(int(v)) for v in hypergraph.incident_vertices(h))
            handle.write(members + "\n")


#: Header written by :func:`save_hyperedge_list`; the loader must honor it or
#: trailing isolated vertices are silently dropped on a save→load round-trip.
_SIZE_HEADER = re.compile(r"^[#%]\s*vertices=(\d+)\s+hyperedges=(\d+)\s*$")


def load_hyperedge_list(
    path: str | Path, num_vertices: int | None = None, name: str | None = None
) -> Hypergraph:
    """Read a hyperedge-list file written by :func:`save_hyperedge_list`.

    A ``# vertices=N hyperedges=M`` comment line fixes the vertex universe,
    so hypergraphs whose highest-numbered vertices are isolated round-trip
    exactly.  An explicit ``num_vertices`` argument takes precedence.
    """
    path = Path(path)
    hyperedges: list[list[int]] = []
    header_vertices: int | None = None
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                match = _SIZE_HEADER.match(line)
                if match is not None:
                    header_vertices = int(match.group(1))
                continue
            try:
                members = [int(token) for token in line.split()]
            except ValueError as exc:
                raise HypergraphFormatError(
                    f"{path}:{line_number}: not an integer list: {line!r}"
                ) from exc
            hyperedges.append(members)
    if num_vertices is None:
        num_vertices = header_vertices
    return Hypergraph.from_hyperedge_lists(
        hyperedges, num_vertices=num_vertices, name=name or path.stem
    )


def save_bipartite_edges(hypergraph: Hypergraph, path: str | Path) -> None:
    """Write ``hyperedge vertex`` pairs, one bipartite edge per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("% bip\n")
        for h in range(hypergraph.num_hyperedges):
            for v in hypergraph.incident_vertices(h):
                handle.write(f"{h} {int(v)}\n")


def load_bipartite_edges(
    path: str | Path, name: str | None = None
) -> Hypergraph:
    """Read a KONECT-like bipartite edge list (``hyperedge vertex`` pairs)."""
    path = Path(path)
    pairs: list[tuple[int, int]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            tokens = line.split()
            if len(tokens) < 2:
                raise HypergraphFormatError(
                    f"{path}:{line_number}: expected 'hyperedge vertex' pair"
                )
            try:
                pairs.append((int(tokens[0]), int(tokens[1])))
            except ValueError as exc:
                raise HypergraphFormatError(
                    f"{path}:{line_number}: not integers: {line!r}"
                ) from exc
    if not pairs:
        raise HypergraphFormatError(f"{path}: no bipartite edges found")
    num_hyperedges = max(h for h, _ in pairs) + 1
    members: list[list[int]] = [[] for _ in range(num_hyperedges)]
    for h, v in pairs:
        members[h].append(v)
    return Hypergraph.from_hyperedge_lists(members, name=name or path.stem)


def save_json(hypergraph: Hypergraph, path: str | Path) -> None:
    """Write a self-describing JSON document (useful for small fixtures)."""
    document = {
        "name": hypergraph.name,
        "num_vertices": hypergraph.num_vertices,
        "hyperedges": hypergraph.hyperedges.to_lists(),
    }
    Path(path).write_text(json.dumps(document, indent=1), encoding="utf-8")


def load_json(path: str | Path) -> Hypergraph:
    """Read a JSON document written by :func:`save_json`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        return Hypergraph.from_hyperedge_lists(
            document["hyperedges"],
            num_vertices=document["num_vertices"],
            name=document.get("name", Path(path).stem),
        )
    except KeyError as exc:
        raise HypergraphFormatError(f"{path}: missing key {exc}") from exc


def save_matrix_market(hypergraph: Hypergraph, path: str | Path) -> None:
    """Write the bipartite incidence matrix in MatrixMarket coordinate form.

    Rows are hyperedges, columns are vertices, entries are 1-based (the MM
    convention); pattern-only (no values).  Interoperates with scipy.io and
    the SuiteSparse collection's ``.mtx`` files.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("%%MatrixMarket matrix coordinate pattern general\n")
        handle.write(f"% hypergraph {hypergraph.name}\n")
        handle.write(
            f"{hypergraph.num_hyperedges} {hypergraph.num_vertices} "
            f"{hypergraph.num_bipartite_edges}\n"
        )
        for h in range(hypergraph.num_hyperedges):
            for v in hypergraph.incident_vertices(h):
                handle.write(f"{h + 1} {int(v) + 1}\n")


def load_matrix_market(path: str | Path, name: str | None = None) -> Hypergraph:
    """Read a MatrixMarket coordinate file as a bipartite hypergraph.

    Rows become hyperedges and columns vertices; any value field after the
    coordinates is ignored (pattern semantics).
    """
    path = Path(path)
    header_seen = False
    dims: tuple[int, int] | None = None
    members: list[list[int]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("%"):
                header_seen = True
                continue
            tokens = line.split()
            if dims is None:
                if len(tokens) < 3:
                    raise HypergraphFormatError(
                        f"{path}:{line_number}: expected 'rows cols nnz' header"
                    )
                try:
                    rows, cols = int(tokens[0]), int(tokens[1])
                except ValueError as exc:
                    raise HypergraphFormatError(
                        f"{path}:{line_number}: bad size line {line!r}"
                    ) from exc
                dims = (rows, cols)
                members = [[] for _ in range(rows)]
                continue
            try:
                h, v = int(tokens[0]) - 1, int(tokens[1]) - 1
            except ValueError as exc:
                raise HypergraphFormatError(
                    f"{path}:{line_number}: bad coordinate {line!r}"
                ) from exc
            if not (0 <= h < dims[0]) or not (0 <= v < dims[1]):
                raise HypergraphFormatError(
                    f"{path}:{line_number}: coordinate ({h + 1}, {v + 1}) "
                    f"outside {dims[0]}x{dims[1]}"
                )
            members[h].append(v)
    if dims is None:
        raise HypergraphFormatError(f"{path}: no size line found")
    if not header_seen:
        raise HypergraphFormatError(f"{path}: missing MatrixMarket header")
    return Hypergraph.from_hyperedge_lists(
        members, num_vertices=dims[1], name=name or path.stem
    )

"""Chunk partitioning of hyperedges and vertices across cores.

Hygra and the GLA model both "logically divide the hyperedges and vertices
into chunks ... assigned to different cores for parallel processing"
(Figure 4(c), §IV-B).  A chunk is a contiguous id range; contiguity matters
because each chunk carries its own per-chunk OAG and the ChGraph config
registers describe a chunk as "first and last indices of data" (Figure 13).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

__all__ = ["Chunk", "contiguous_chunks", "balanced_chunks"]


@dataclasses.dataclass(frozen=True)
class Chunk:
    """A contiguous id range ``[first, last)`` owned by ``core``."""

    core: int
    first: int
    last: int

    def __post_init__(self) -> None:
        if self.first > self.last:
            raise ValueError(f"chunk range reversed: [{self.first}, {self.last})")

    def __len__(self) -> int:
        return self.last - self.first

    def __contains__(self, item: int) -> bool:
        return self.first <= item < self.last

    def ids(self) -> range:
        return range(self.first, self.last)


def contiguous_chunks(universe: int, num_cores: int) -> list[Chunk]:
    """Split ``0..universe`` into ``num_cores`` near-equal contiguous chunks."""
    if num_cores <= 0:
        raise ValueError("num_cores must be positive")
    base, extra = divmod(universe, num_cores)
    chunks = []
    start = 0
    for core in range(num_cores):
        size = base + (1 if core < extra else 0)
        chunks.append(Chunk(core=core, first=start, last=start + size))
        start += size
    return chunks


def balanced_chunks(
    degrees: Sequence[int], num_cores: int
) -> list[Chunk]:
    """Split ids into contiguous chunks balancing total incident degree.

    Work per element is proportional to its degree (bipartite edges touched),
    so degree-balanced chunks approximate Hygra's work partitioning better
    than count-balanced ones on skewed datasets.
    """
    if num_cores <= 0:
        raise ValueError("num_cores must be positive")
    total = sum(degrees)
    target = total / num_cores if num_cores else 0
    chunks: list[Chunk] = []
    start = 0
    running = 0
    core = 0
    for i, degree in enumerate(degrees):
        running += degree
        boundary = running >= target * (core + 1)
        last_core = core == num_cores - 1
        if boundary and not last_core:
            chunks.append(Chunk(core=core, first=start, last=i + 1))
            start = i + 1
            core += 1
    chunks.append(Chunk(core=core, first=start, last=len(degrees)))
    # Pad with empty chunks so every core has one.
    while len(chunks) < num_cores:
        chunks.append(Chunk(core=len(chunks), first=len(degrees), last=len(degrees)))
    return chunks

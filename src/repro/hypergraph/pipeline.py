"""Composable, content-addressed preprocessing pipeline.

A :class:`PreprocessSpec` names everything that happens to a hypergraph
between loading and simulation: the OAG build parameters (``w_min``,
``d_max``) and an ordered list of named preprocessing *stages*.  Stages are
looked up in a registry so a spec is pure data — JSON-round-trippable,
hashable into store keys, and executable anywhere.

The first two registered stages are:

- ``identity`` — the no-op stage (useful for testing that stage plumbing
  itself is free);
- ``locality-reorder`` — the §VI-H / Figure 24 BFS renumbering from
  :mod:`repro.hypergraph.reorder`, lifted into the production path.  Stages
  that permute vertices report the permutation so the runner can un-permute
  algorithm results back to the original ids.

Stage names and parameters are hashed into both ``resources_key`` and
``run_result_key`` (see :mod:`repro.store.keys`), so cached artifacts can
never alias across preprocessing pipelines.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping

import numpy as np

from repro.core.chain import DEFAULT_D_MAX
from repro.core.oag import DEFAULT_W_MIN
from repro.errors import ConfigurationError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.reorder import locality_reorder

__all__ = [
    "StageSpec",
    "PreprocessSpec",
    "StageResult",
    "PipelineResult",
    "stage",
    "stage_names",
    "apply_pipeline",
]

#: JSON-compatible scalar parameter values a stage may take.
ParamValue = bool | int | float | str


@dataclasses.dataclass(frozen=True)
class StageSpec:
    """One named preprocessing stage with its parameters.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so the
    spec stays hashable and its JSON form is canonical.  Use
    :meth:`StageSpec.make` to build one from keyword arguments.
    """

    name: str
    params: tuple[tuple[str, ParamValue], ...] = ()

    @classmethod
    def make(cls, name: str, **params: ParamValue) -> "StageSpec":
        return cls(name=name, params=tuple(sorted(params.items())))

    def param_dict(self) -> dict[str, ParamValue]:
        return dict(self.params)

    def validate(self) -> None:
        if self.name not in _STAGES:
            known = ", ".join(sorted(_STAGES)) or "(none)"
            raise ConfigurationError(
                f"unknown preprocessing stage {self.name!r}; "
                f"registered stages: {known}"
            )

    def to_json(self) -> dict[str, object]:
        return {"name": self.name, "params": self.param_dict()}

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "StageSpec":
        unknown = set(data) - {"name", "params"}
        if unknown:
            raise ConfigurationError(
                f"unknown StageSpec fields: {sorted(unknown)}"
            )
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigurationError("StageSpec requires a non-empty 'name'")
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise ConfigurationError("StageSpec 'params' must be an object")
        spec = cls.make(name, **dict(params))
        spec.validate()
        return spec


@dataclasses.dataclass(frozen=True)
class PreprocessSpec:
    """Everything done to a hypergraph before simulation.

    ``w_min``/``d_max`` parameterize the OAG/chain build (they always ran
    per-run; now they are named).  ``stages`` run in order on the loaded
    hypergraph before resources are built.
    """

    w_min: int = DEFAULT_W_MIN
    d_max: int = DEFAULT_D_MAX
    stages: tuple[StageSpec, ...] = ()

    def validate(self) -> None:
        if self.w_min < 1:
            raise ConfigurationError(f"w_min must be >= 1, got {self.w_min}")
        if self.d_max < 1:
            raise ConfigurationError(f"d_max must be >= 1, got {self.d_max}")
        for s in self.stages:
            s.validate()

    def to_json(self) -> dict[str, object]:
        return {
            "w_min": self.w_min,
            "d_max": self.d_max,
            "stages": [s.to_json() for s in self.stages],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "PreprocessSpec":
        unknown = set(data) - {"w_min", "d_max", "stages"}
        if unknown:
            raise ConfigurationError(
                f"unknown PreprocessSpec fields: {sorted(unknown)}"
            )
        raw_stages = data.get("stages", [])
        if not isinstance(raw_stages, (list, tuple)):
            raise ConfigurationError("PreprocessSpec 'stages' must be a list")
        spec = cls(
            w_min=int(data.get("w_min", DEFAULT_W_MIN)),
            d_max=int(data.get("d_max", DEFAULT_D_MAX)),
            stages=tuple(StageSpec.from_json(s) for s in raw_stages),
        )
        spec.validate()
        return spec


@dataclasses.dataclass(frozen=True)
class StageResult:
    """What one stage produced: the transformed hypergraph, the vertex
    permutation it applied (``perm[old_id] = new_id``; ``None`` if ids are
    untouched), and the stage's own approximate memory traffic."""

    hypergraph: Hypergraph
    vertex_perm: np.ndarray | None = None
    cost_accesses: int = 0


@dataclasses.dataclass(frozen=True)
class PipelineResult:
    """The composed outcome of running every stage in a spec."""

    hypergraph: Hypergraph
    #: Composed permutation over all stages (``perm[old_id] = new_id``), or
    #: ``None`` when no stage renumbered vertices.
    vertex_perm: np.ndarray | None
    cost_accesses: int


StageFn = Callable[[Hypergraph, Mapping[str, ParamValue]], StageResult]

_STAGES: dict[str, StageFn] = {}


def stage(name: str) -> Callable[[StageFn], StageFn]:
    """Register a preprocessing stage under ``name``."""

    def decorate(fn: StageFn) -> StageFn:
        if name in _STAGES:
            raise ValueError(f"duplicate preprocessing stage {name!r}")
        _STAGES[name] = fn
        return fn

    return decorate


def stage_names() -> tuple[str, ...]:
    """Every registered stage name, sorted (the CLI's ``--preprocess`` choices)."""
    return tuple(sorted(_STAGES))


def _reject_params(name: str, params: Mapping[str, ParamValue]) -> None:
    if params:
        raise ConfigurationError(
            f"stage {name!r} takes no parameters, got {sorted(params)}"
        )


@stage("identity")
def _identity(
    hypergraph: Hypergraph, params: Mapping[str, ParamValue]
) -> StageResult:
    _reject_params("identity", params)
    return StageResult(hypergraph=hypergraph)


@stage("locality-reorder")
def _locality_reorder(
    hypergraph: Hypergraph, params: Mapping[str, ParamValue]
) -> StageResult:
    _reject_params("locality-reorder", params)
    reordering = locality_reorder(hypergraph)
    return StageResult(
        hypergraph=reordering.hypergraph,
        vertex_perm=reordering.vertex_perm,
        cost_accesses=reordering.cost_accesses,
    )


def apply_pipeline(
    hypergraph: Hypergraph, preprocessing: PreprocessSpec
) -> PipelineResult:
    """Run every stage in order, composing vertex permutations.

    If stage 1 maps ``old -> mid`` and stage 2 maps ``mid -> new``, the
    composed permutation maps ``old -> new`` so one gather
    (``values[perm]``) restores id-stable algorithm output.
    """
    preprocessing.validate()
    current = hypergraph
    composed: np.ndarray | None = None
    total_cost = 0
    for spec in preprocessing.stages:
        result = _STAGES[spec.name](current, spec.param_dict())
        current = result.hypergraph
        total_cost += result.cost_accesses
        if result.vertex_perm is not None:
            if composed is None:
                composed = result.vertex_perm
            else:
                composed = result.vertex_perm[composed]
    return PipelineResult(
        hypergraph=current, vertex_perm=composed, cost_accesses=total_cost
    )

"""Spatial-locality reordering (§VI-H, Figure 24).

The paper compares ChGraph against "a reordering technique that assigns
incident vertices of each hyperedge with close-by IDs".  This module
implements that technique: a BFS-like renumbering over the bipartite
structure so that vertices co-appearing in hyperedges receive adjacent ids,
plus the bookkeeping to apply / invert a permutation.
"""

from __future__ import annotations

import dataclasses
from collections import deque

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["Reordering", "locality_reorder", "apply_vertex_permutation"]


@dataclasses.dataclass(frozen=True)
class Reordering:
    """A reordered hypergraph with the permutation that produced it.

    ``vertex_perm[old_id] = new_id``.  ``cost_accesses`` approximates the
    reordering pass's own memory traffic (it must scan every bipartite edge
    and rewrite both CSR directions), which Figure 24 charges against the
    technique.  ``inverse_perm`` (``inverse_perm[new_id] = old_id``) is
    precomputed once so :meth:`original_vertex` is O(1) per lookup.
    """

    hypergraph: Hypergraph
    vertex_perm: np.ndarray
    cost_accesses: int
    inverse_perm: np.ndarray = dataclasses.field(init=False, repr=False)

    def __post_init__(self) -> None:
        inverse = np.empty_like(self.vertex_perm)
        inverse[self.vertex_perm] = np.arange(
            len(self.vertex_perm), dtype=self.vertex_perm.dtype
        )
        object.__setattr__(self, "inverse_perm", inverse)

    def original_vertex(self, new_id: int) -> int:
        return int(self.inverse_perm[new_id])


def apply_vertex_permutation(
    hypergraph: Hypergraph, vertex_perm: np.ndarray
) -> Hypergraph:
    """Renumber vertices by ``vertex_perm`` (old id -> new id)."""
    renamed = [
        sorted(int(vertex_perm[v]) for v in hypergraph.incident_vertices(h))
        for h in range(hypergraph.num_hyperedges)
    ]
    return Hypergraph.from_hyperedge_lists(
        renamed, num_vertices=hypergraph.num_vertices, name=hypergraph.name + "+reord"
    )


def locality_reorder(hypergraph: Hypergraph) -> Reordering:
    """BFS renumbering: members of the same hyperedge get close-by new ids."""
    num_vertices = hypergraph.num_vertices
    vertex_perm = np.full(num_vertices, -1, dtype=np.int64)
    next_id = 0
    visited_hyperedges = np.zeros(hypergraph.num_hyperedges, dtype=bool)

    for seed in range(num_vertices):
        if vertex_perm[seed] >= 0:
            continue
        queue: deque[int] = deque([seed])
        vertex_perm[seed] = next_id
        next_id += 1
        while queue:
            v = queue.popleft()
            for h in hypergraph.incident_hyperedges(v):
                if visited_hyperedges[h]:
                    continue
                visited_hyperedges[h] = True
                for u in hypergraph.incident_vertices(int(h)):
                    if vertex_perm[u] < 0:
                        vertex_perm[u] = next_id
                        next_id += 1
                        queue.append(int(u))

    reordered = apply_vertex_permutation(hypergraph, vertex_perm)
    # Reordering reads every bipartite edge twice (discover + rewrite) and
    # writes both CSR directions; that traffic is the technique's overhead.
    cost = 4 * hypergraph.num_bipartite_edges + 2 * num_vertices
    return Reordering(
        hypergraph=reordered, vertex_perm=vertex_perm, cost_accesses=cost
    )

"""Structural statistics: Table II rows and Figure 8 overlap curves."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "DatasetStats",
    "dataset_stats",
    "shared_vertex_ratio",
    "shared_hyperedge_ratio",
    "overlap_curve",
]


@dataclasses.dataclass(frozen=True)
class DatasetStats:
    """One row of Table II."""

    name: str
    num_vertices: int
    num_hyperedges: int
    num_bipartite_edges: int
    size_bytes: int

    @property
    def size_mb(self) -> float:
        return self.size_bytes / (1024 * 1024)


def dataset_stats(hypergraph: Hypergraph) -> DatasetStats:
    """Compute the Table II row for a hypergraph."""
    return DatasetStats(
        name=hypergraph.name,
        num_vertices=hypergraph.num_vertices,
        num_hyperedges=hypergraph.num_hyperedges,
        num_bipartite_edges=hypergraph.num_bipartite_edges,
        size_bytes=hypergraph.size_bytes(),
    )


def shared_vertex_ratio(hypergraph: Hypergraph, min_hyperedges: int) -> float:
    """Fraction of vertices incident to at least ``min_hyperedges`` hyperedges.

    Figure 8(a): "ratio of vertices that can be shared with a different
    number of hyperedges".  A vertex shared by k hyperedges has degree k.
    """
    if hypergraph.num_vertices == 0:
        return 0.0
    degrees = np.diff(hypergraph.vertices.offsets)
    return float(np.count_nonzero(degrees >= min_hyperedges) / hypergraph.num_vertices)


def shared_hyperedge_ratio(hypergraph: Hypergraph, min_vertices: int) -> float:
    """Figure 8(b): fraction of hyperedges overlapping others via sharing.

    A hyperedge "shared by k vertices" means at least ``k`` of its member
    vertices are also members of some other hyperedge.
    """
    if hypergraph.num_hyperedges == 0:
        return 0.0
    vertex_degrees = np.diff(hypergraph.vertices.offsets)
    count = 0
    for h in range(hypergraph.num_hyperedges):
        members = hypergraph.incident_vertices(h)
        shared = int(np.count_nonzero(vertex_degrees[members] >= 2))
        if shared >= min_vertices:
            count += 1
    return count / hypergraph.num_hyperedges


def overlap_curve(
    hypergraph: Hypergraph, side: str, thresholds: tuple[int, ...] = (2, 3, 5, 7)
) -> dict[int, float]:
    """The Figure 8 curve for one dataset: threshold -> sharable ratio."""
    if side == "vertex":
        return {k: shared_vertex_ratio(hypergraph, k) for k in thresholds}
    if side == "hyperedge":
        return {k: shared_hyperedge_ratio(hypergraph, k) for k in thresholds}
    raise ValueError(f"unknown side {side!r}; expected 'vertex' or 'hyperedge'")

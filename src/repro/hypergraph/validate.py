"""Structural audits for user-supplied hypergraphs.

A library users load their own data into needs a way to check it before a
multi-minute simulation: consistency of the two CSR directions, degenerate
structures that change algorithm semantics (empty/singleton hyperedges,
isolated vertices), and a summary of the quantities that drive performance
(degree distributions, overlap availability).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.stats import shared_vertex_ratio

__all__ = ["AuditReport", "audit"]


@dataclasses.dataclass(frozen=True)
class AuditReport:
    """Findings from :func:`audit`; ``warnings`` lists anything suspicious."""

    num_vertices: int
    num_hyperedges: int
    num_bipartite_edges: int
    isolated_vertices: int
    empty_hyperedges: int
    singleton_hyperedges: int
    duplicate_hyperedges: int
    mean_hyperedge_degree: float
    mean_vertex_degree: float
    max_hyperedge_degree: int
    max_vertex_degree: int
    sharable_vertex_ratio: float
    warnings: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.warnings


def audit(hypergraph: Hypergraph) -> AuditReport:
    """Audit a hypergraph; cheap enough to run before every big experiment."""
    h_degrees = np.diff(hypergraph.hyperedges.offsets)
    v_degrees = np.diff(hypergraph.vertices.offsets)

    isolated = int(np.count_nonzero(v_degrees == 0))
    empty = int(np.count_nonzero(h_degrees == 0))
    singleton = int(np.count_nonzero(h_degrees == 1))

    seen: set[tuple[int, ...]] = set()
    duplicates = 0
    for h in range(hypergraph.num_hyperedges):
        key = tuple(map(int, hypergraph.incident_vertices(h)))
        if key in seen:
            duplicates += 1
        else:
            seen.add(key)

    sharable = shared_vertex_ratio(hypergraph, 2)

    warnings = []
    if empty:
        warnings.append(f"{empty} empty hyperedges (connect nothing)")
    if singleton:
        warnings.append(
            f"{singleton} singleton hyperedges (never connect; k-core drops them)"
        )
    if hypergraph.num_vertices and isolated / hypergraph.num_vertices > 0.25:
        warnings.append(
            f"{isolated} isolated vertices "
            f"({isolated / hypergraph.num_vertices:.0%} of the vertex set)"
        )
    if duplicates and duplicates > hypergraph.num_hyperedges // 4:
        warnings.append(
            f"{duplicates} duplicate hyperedges (consider deduplicating)"
        )
    if sharable < 0.2 and hypergraph.num_hyperedges > 1:
        warnings.append(
            f"only {sharable:.0%} of vertices are shared by >= 2 hyperedges: "
            "little overlap for chain scheduling to exploit"
        )

    return AuditReport(
        num_vertices=hypergraph.num_vertices,
        num_hyperedges=hypergraph.num_hyperedges,
        num_bipartite_edges=hypergraph.num_bipartite_edges,
        isolated_vertices=isolated,
        empty_hyperedges=empty,
        singleton_hyperedges=singleton,
        duplicate_hyperedges=duplicates,
        mean_hyperedge_degree=float(h_degrees.mean()) if h_degrees.size else 0.0,
        mean_vertex_degree=float(v_degrees.mean()) if v_degrees.size else 0.0,
        max_hyperedge_degree=int(h_degrees.max()) if h_degrees.size else 0,
        max_vertex_degree=int(v_degrees.max()) if v_degrees.size else 0,
        sharable_vertex_ratio=float(sharable),
        warnings=tuple(warnings),
    )

"""The simulation-serving subsystem: the repo's traffic-facing layer.

``repro serve`` turns the one-shot harness into a long-lived asyncio
service: requests are typed jobs keyed by the content-addressed
:func:`~repro.store.keys.run_result_key`, a bounded priority queue
coalesces concurrent identical requests onto one in-flight execution and
sheds load with retryable rejections, and a scheduler drains batches into
the PR 3 process-pool machinery — with a store-backed fast path that
answers repeat requests without simulating at all.  A served result is
byte-identical to what the same ``repro run`` invocation prints.

Layout
------
:mod:`repro.service.jobs`
    ``JobRequest``/``JobRecord``: typed, JSON-serializable job records.
:mod:`repro.service.queue`
    ``JobQueue``: coalescing, admission control, drain.
:mod:`repro.service.scheduler`
    ``Scheduler``: store fast path + resource-grouped worker dispatch with
    per-job timeout/retry.
:mod:`repro.service.server`
    ``SimulationService``: the asyncio JSON-over-HTTP front end
    (``POST /jobs``, ``GET /jobs/<id>``, ``GET /healthz``, ``GET /stats``)
    with graceful SIGTERM drain.
:mod:`repro.service.metrics`
    ``ServiceMetrics``: depth/in-flight gauges, coalescing and store-hit
    counters, p50/p95/p99 latency.
:mod:`repro.service.client`
    ``ServiceClient``: the blocking client behind ``repro submit``/
    ``repro status``.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import JOB_STATES, JobRecord, JobRequest
from repro.service.metrics import ServiceMetrics
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler, SchedulerConfig
from repro.service.server import DEFAULT_PORT, ServiceConfig, SimulationService

__all__ = [
    "DEFAULT_PORT",
    "JOB_STATES",
    "JobQueue",
    "JobRecord",
    "JobRequest",
    "Scheduler",
    "SchedulerConfig",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "SimulationService",
]

"""A small blocking client for the simulation service.

``repro submit``/``repro status`` are thin wrappers over this class; it is
also the scripting surface for tests and CI smoke jobs::

    from repro.service import JobRequest, ServiceClient

    client = ServiceClient(port=8573)
    job = client.run(JobRequest.build("ChGraph", "PR", "WEB"))
    result = client.run_result(job)          # a full RunResult

Transport errors (server unreachable, connection reset) surface as
:class:`~repro.errors.ServiceError`; HTTP statuses map back onto the same
exception types the server raised (``429`` →
:class:`~repro.errors.ServiceOverloadedError`, ``404`` on a job →
:class:`~repro.errors.JobNotFoundError`), so callers handle one error
vocabulary whether the service is in-process or remote.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import TYPE_CHECKING, Any

from repro.errors import JobNotFoundError, ServiceError, ServiceOverloadedError
from repro.service.jobs import JobRequest
from repro.service.server import DEFAULT_PORT

if TYPE_CHECKING:
    from repro.engine import RunResult

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking JSON-over-HTTP client for one service endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            status = response.status
            data = response.read()
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()
        try:
            obj = json.loads(data.decode("utf-8")) if data else {}
        except ValueError as exc:
            raise ServiceError(
                f"service returned non-JSON ({status}): {data[:200]!r}"
            ) from exc
        if status in (200, 202):
            return obj
        error = obj.get("error", f"HTTP {status}")
        if status == 429 or status == 503:
            raise ServiceOverloadedError(error)
        if status == 404 and path.startswith("/jobs/"):
            raise JobNotFoundError(error)
        raise ServiceError(f"HTTP {status}: {error}")

    # -- API ---------------------------------------------------------------

    def submit(self, request: JobRequest) -> dict[str, Any]:
        """POST the request; returns the accepted job's status record.

        The record's ``"coalesced_into"`` is set when the request attached
        to an execution already in flight.
        """
        return self._request("POST", "/jobs", request.to_json())["job"]

    def status(self, job_id: str) -> dict[str, Any]:
        """GET one job's status record (with the result once done)."""
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def wait(
        self, job_id: str, timeout: float | None = None, poll: float = 0.1
    ) -> dict[str, Any]:
        """Poll until the job finishes; returns the terminal record.

        Raises :class:`ServiceError` if ``timeout`` seconds elapse first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout}s waiting for {job_id} "
                    f"(state: {job['state']})"
                )
            time.sleep(poll)

    def run(
        self, request: JobRequest, timeout: float | None = None
    ) -> dict[str, Any]:
        """Submit and wait; the blocking one-call path ``repro submit`` uses.

        Raises :class:`ServiceError` when the job *failed* — a successful
        return always carries a result payload.
        """
        job = self.wait(self.submit(request)["job_id"], timeout=timeout)
        if job["state"] != "done":
            raise ServiceError(
                f"job {job['job_id']} failed: {job.get('error') or 'unknown'}"
            )
        return job

    @staticmethod
    def run_result(job: dict[str, Any]) -> "RunResult":
        """Reconstruct the full :class:`~repro.engine.result.RunResult` from
        a finished job record — the exact object ``repro run`` computes."""
        from repro.store.serialize import run_result_from_json

        result = job.get("result")
        if result is None:
            raise ServiceError(f"job {job.get('job_id')} carries no result")
        return run_result_from_json(result)

    def health(self) -> dict[str, Any]:
        """GET /healthz."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        """GET /stats."""
        return self._request("GET", "/stats")

"""Typed job records for the simulation service.

A :class:`JobRequest` wraps one :class:`~repro.harness.spec.RunSpec` —
the same typed record ``repro run`` executes locally — plus a queue
``priority``; its :meth:`JobRequest.store_key` is the
:func:`~repro.store.keys.run_result_key` derived from that spec, which
makes the request *content-addressed*: two requests share a key iff a
completed result for one could legally serve the other (same dataset
content, same config, same pr-iterations, same preprocessing pipeline,
same profile/check flags).  That key is what request coalescing and the
store-backed fast path both hang off.  Because the spec travels verbatim
to the worker's runner, a served result is byte-identical to the same
local run for *any* expressible configuration, including the §VI-H
``w_min``/``d_max`` sensitivity sweeps and preprocessing stages.

A :class:`JobRecord` is the service-side lifecycle of one accepted request:
``queued → running → done | failed``, with timestamps, retry attempts, the
serialized :class:`~repro.engine.result.RunResult` payload once finished,
and where the answer came from (``worker``/``inline``/``store``/
``coalesced``).  Both records are plain JSON-serializable data so they can
travel over the HTTP API unchanged.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from typing import Any, Sequence

from repro.errors import ReproError
from repro.harness.spec import RunSpec
from repro.hypergraph.pipeline import PreprocessSpec, StageSpec
from repro.sim.config import SystemConfig

__all__ = ["JOB_STATES", "JobRecord", "JobRequest"]

#: Lifecycle states of a service job, in order.
JOB_STATES = ("queued", "running", "done", "failed")

_job_counter = itertools.count(1)


def _new_job_id() -> str:
    """Process-unique, monotonically readable job id (``job-7-1f2a…``)."""
    import uuid

    return f"job-{next(_job_counter)}-{uuid.uuid4().hex[:8]}"


#: Flat fields the legacy (pre-RunSpec) wire format and :meth:`JobRequest.build`
#: accept; ``w_min``/``d_max``/``check``/``stages`` are newly expressible.
_FLAT_FIELDS = (
    "engine", "algorithm", "dataset", "cores", "llc_kb", "pr_iterations",
    "profile", "check", "w_min", "d_max", "stages", "priority",
)


@dataclasses.dataclass(frozen=True)
class JobRequest:
    """One requested simulation: a :class:`~repro.harness.spec.RunSpec`
    plus a queue ``priority`` (higher runs sooner).

    The spec is carried fully normalized (no ``None`` fields), so the
    request's store key, the worker's execution, and an equivalent local
    ``repro run`` all agree regardless of either process's environment.
    """

    spec: RunSpec
    priority: int = 0

    @classmethod
    def build(
        cls,
        engine: str,
        algorithm: str,
        dataset: str,
        cores: int = 16,
        llc_kb: int = 4,
        pr_iterations: int = 2,
        profile: bool = False,
        check: bool = False,
        w_min: int | None = None,
        d_max: int | None = None,
        stages: Sequence[str] = (),
        priority: int = 0,
    ) -> "JobRequest":
        """Construct a request from ``repro submit``-style flat fields.

        Raises ``ValueError`` on malformed values (the service maps that to
        an HTTP 400); name validity is checked by :meth:`validate`.
        """
        from repro.sim.config import scaled_config

        checks = [
            ("cores", cores, 1), ("llc_kb", llc_kb, 1),
            ("pr_iterations", pr_iterations, 1),
        ]
        if w_min is not None:
            checks.append(("w_min", w_min, 1))
        if d_max is not None:
            checks.append(("d_max", d_max, 1))
        for field, value, minimum in checks:
            if not isinstance(value, int) or value < minimum:
                raise ValueError(
                    f"{field} must be an int >= {minimum}, got {value!r}"
                )
        for field, value in (("profile", profile), ("check", check)):
            if not isinstance(value, bool):
                raise ValueError(f"{field} must be a bool, got {value!r}")
        if isinstance(stages, str) or not all(
            isinstance(name, str) for name in stages
        ):
            raise ValueError(f"stages must be a list of names, got {stages!r}")
        defaults = PreprocessSpec()
        preprocessing = PreprocessSpec(
            w_min=defaults.w_min if w_min is None else w_min,
            d_max=defaults.d_max if d_max is None else d_max,
            stages=tuple(StageSpec.make(name) for name in stages),
        )
        spec = RunSpec(
            engine=engine,
            algorithm=algorithm,
            dataset=dataset,
            config=scaled_config(num_cores=cores, llc_kb=llc_kb),
            pr_iterations=pr_iterations,
            profile=profile or check,
            check=check,
            preprocessing=preprocessing,
        )
        return cls(spec=spec, priority=priority)

    # -- flat accessors (the pre-RunSpec field names, kept for callers) ------

    @property
    def engine(self) -> str:
        return self.spec.engine

    @property
    def algorithm(self) -> str:
        return self.spec.algorithm

    @property
    def dataset(self) -> str:
        return self.spec.dataset

    @property
    def pr_iterations(self) -> int:
        return self.spec.pr_iterations if self.spec.pr_iterations else 2

    @property
    def profile(self) -> bool:
        return self.spec.profile

    def validate(self) -> None:
        """Raise ``ValueError`` unless every field names something real."""
        from repro.engine.registry import engine_names
        from repro.harness.runner import ALGORITHM_NAMES
        from repro.hypergraph.generators import PAPER_DATASETS

        try:
            self.spec.validate()
        except ReproError as exc:
            raise ValueError(str(exc)) from None
        if self.spec.engine not in engine_names():
            raise ValueError(f"unknown engine {self.spec.engine!r}")
        if self.spec.algorithm not in ALGORITHM_NAMES:
            raise ValueError(f"unknown algorithm {self.spec.algorithm!r}")
        if self.spec.dataset not in (*PAPER_DATASETS, "AZ", "PK"):
            raise ValueError(f"unknown dataset {self.spec.dataset!r}")
        if self.spec.pr_iterations is None:
            raise ValueError("job spec must carry concrete pr_iterations")
        if not isinstance(self.priority, int):
            raise ValueError(f"priority must be an int, got {self.priority!r}")

    def config(self) -> SystemConfig:
        """The :class:`~repro.sim.config.SystemConfig` this request runs under."""
        return self.spec.resolved_config()

    def store_key(self) -> str:
        """The content-addressed :func:`~repro.store.keys.run_result_key`.

        Loads (or generates) the dataset to hash its structure — cached
        across calls by the harness dataset layer, so only the first
        request for a dataset pays the materialization.  The key hashes
        the dataset *as loaded*; the preprocessing stage list enters via
        the spec, so keying a request never runs its pipeline.
        """
        from repro.harness.datasets import graph_dataset, hypergraph_dataset
        from repro.store.keys import run_result_key

        if self.spec.dataset in ("AZ", "PK"):
            hypergraph = graph_dataset(self.spec.dataset)
        else:
            hypergraph = hypergraph_dataset(self.spec.dataset)
        return run_result_key(self.spec, hypergraph.content_hash())

    def label(self) -> str:
        """Short human-readable tag for logs and stats lines."""
        return self.spec.label()

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form for the HTTP API (the spec-wrapping wire format)."""
        return {"spec": self.spec.to_json(), "priority": self.priority}

    @classmethod
    def from_json(cls, obj: Any) -> "JobRequest":
        """Parse and validate a request payload; ``ValueError`` on junk.

        Accepts both wire formats: the spec-wrapping form
        (``{"spec": {...}, "priority": n}``) and the legacy flat form
        (``{"engine": ..., "cores": ..., ...}``) older clients send.
        """
        if not isinstance(obj, dict):
            raise ValueError("job request must be a JSON object")
        if "spec" in obj:
            unknown = sorted(set(obj) - {"spec", "priority"})
            if unknown:
                raise ValueError(
                    f"unknown job request field(s): {', '.join(unknown)}"
                )
            try:
                spec = RunSpec.from_json(obj["spec"])
            except ReproError as exc:
                raise ValueError(str(exc)) from None
            # Normalize service-side with the environment-independent
            # defaults so the coalescing key and the worker agree.
            try:
                spec = spec.normalized()
            except ReproError as exc:
                raise ValueError(str(exc)) from None
            request = cls(spec=spec, priority=obj.get("priority", 0))
        else:
            unknown = sorted(set(obj) - set(_FLAT_FIELDS))
            if unknown:
                raise ValueError(
                    f"unknown job request field(s): {', '.join(unknown)}"
                )
            for required in ("engine", "algorithm", "dataset"):
                if required not in obj:
                    raise ValueError(f"job request is missing {required!r}")
            try:
                request = cls.build(**obj)
            except ReproError as exc:
                raise ValueError(str(exc)) from None
        request.validate()
        return request


@dataclasses.dataclass
class JobRecord:
    """The service-side lifecycle of one accepted :class:`JobRequest`."""

    request: JobRequest
    key: str
    job_id: str = dataclasses.field(default_factory=_new_job_id)
    state: str = "queued"
    submitted_at: float = dataclasses.field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    error: str | None = None
    #: Serialized ``RunResult`` (the store's JSON payload) once finished.
    result: dict[str, Any] | None = None
    #: Primary job this record coalesced onto, if any.
    coalesced_into: str | None = None
    #: Where the answer came from: ``worker``/``inline``/``store``/``coalesced``.
    served_from: str | None = None

    @property
    def finished(self) -> bool:
        """Whether the record reached a terminal state."""
        return self.state in ("done", "failed")

    @property
    def latency(self) -> float | None:
        """Submit-to-finish wall seconds, once finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def status_json(self, include_result: bool = False) -> dict[str, Any]:
        """The JSON the HTTP API serves for this job."""
        payload: dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state,
            "key": self.key,
            "request": self.request.to_json(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
            "coalesced_into": self.coalesced_into,
            "served_from": self.served_from,
            "latency": self.latency,
        }
        if include_result and self.result is not None:
            payload["result"] = self.result
        return payload

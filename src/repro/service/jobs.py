"""Typed job records for the simulation service.

A :class:`JobRequest` names one (engine, algorithm, dataset, config)
simulation exactly the way ``repro run`` does; its :meth:`JobRequest.store_key`
is the PR 2 :func:`~repro.store.keys.run_result_key`, which makes the
request *content-addressed*: two requests share a key iff a completed
result for one could legally serve the other (same dataset content, same
config, same pr-iterations, same profile flag).  That key is what request
coalescing and the store-backed fast path both hang off.

A :class:`JobRecord` is the service-side lifecycle of one accepted request:
``queued → running → done | failed``, with timestamps, retry attempts, the
serialized :class:`~repro.engine.result.RunResult` payload once finished,
and where the answer came from (``worker``/``inline``/``store``/
``coalesced``).  Both records are plain JSON-serializable data so they can
travel over the HTTP API unchanged.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from typing import Any

__all__ = ["JOB_STATES", "JobRecord", "JobRequest"]

#: Lifecycle states of a service job, in order.
JOB_STATES = ("queued", "running", "done", "failed")

_job_counter = itertools.count(1)


def _new_job_id() -> str:
    """Process-unique, monotonically readable job id (``job-7-1f2a…``)."""
    import uuid

    return f"job-{next(_job_counter)}-{uuid.uuid4().hex[:8]}"


@dataclasses.dataclass(frozen=True)
class JobRequest:
    """One requested simulation: the service-side twin of ``repro run``.

    ``priority`` orders the queue (higher runs sooner); everything else
    feeds :class:`~repro.harness.runner.Runner.run` unchanged, so a served
    result is the same object a local run would produce.
    """

    engine: str
    algorithm: str
    dataset: str
    cores: int = 16
    llc_kb: int = 4
    pr_iterations: int = 2
    profile: bool = False
    priority: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` unless every field names something real."""
        from repro.engine.registry import engine_names
        from repro.harness.runner import ALGORITHM_NAMES
        from repro.hypergraph.generators import PAPER_DATASETS

        if self.engine not in engine_names():
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.algorithm not in ALGORITHM_NAMES:
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.dataset not in (*PAPER_DATASETS, "AZ", "PK"):
            raise ValueError(f"unknown dataset {self.dataset!r}")
        for field, minimum in (("cores", 1), ("llc_kb", 1), ("pr_iterations", 1)):
            value = getattr(self, field)
            if not isinstance(value, int) or value < minimum:
                raise ValueError(f"{field} must be an int >= {minimum}, got {value!r}")
        if not isinstance(self.priority, int):
            raise ValueError(f"priority must be an int, got {self.priority!r}")
        if not isinstance(self.profile, bool):
            raise ValueError(f"profile must be a bool, got {self.profile!r}")

    def config(self):
        """The :class:`~repro.sim.config.SystemConfig` this request runs under."""
        from repro.sim.config import scaled_config

        return scaled_config(num_cores=self.cores, llc_kb=self.llc_kb)

    def store_key(self) -> str:
        """The content-addressed :func:`~repro.store.keys.run_result_key`.

        Loads (or generates) the dataset to hash its structure — cached
        across calls by the harness dataset layer, so only the first
        request for a dataset pays the materialization.
        """
        from repro.harness.datasets import graph_dataset, hypergraph_dataset
        from repro.store.keys import run_result_key

        if self.dataset in ("AZ", "PK"):
            hypergraph = graph_dataset(self.dataset)
        else:
            hypergraph = hypergraph_dataset(self.dataset)
        return run_result_key(
            self.engine,
            self.algorithm,
            hypergraph.content_hash(),
            self.config(),
            self.pr_iterations,
            profile=self.profile,
        )

    def label(self) -> str:
        """Short human-readable tag for logs and stats lines."""
        return f"{self.engine}/{self.algorithm}/{self.dataset}"

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form for the HTTP API."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, obj: Any) -> "JobRequest":
        """Parse and validate a request payload; ``ValueError`` on junk."""
        if not isinstance(obj, dict):
            raise ValueError("job request must be a JSON object")
        fields = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(obj) - fields)
        if unknown:
            raise ValueError(f"unknown job request field(s): {', '.join(unknown)}")
        for required in ("engine", "algorithm", "dataset"):
            if required not in obj:
                raise ValueError(f"job request is missing {required!r}")
        request = cls(**obj)
        request.validate()
        return request


@dataclasses.dataclass
class JobRecord:
    """The service-side lifecycle of one accepted :class:`JobRequest`."""

    request: JobRequest
    key: str
    job_id: str = dataclasses.field(default_factory=_new_job_id)
    state: str = "queued"
    submitted_at: float = dataclasses.field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    error: str | None = None
    #: Serialized ``RunResult`` (the store's JSON payload) once finished.
    result: dict[str, Any] | None = None
    #: Primary job this record coalesced onto, if any.
    coalesced_into: str | None = None
    #: Where the answer came from: ``worker``/``inline``/``store``/``coalesced``.
    served_from: str | None = None

    @property
    def finished(self) -> bool:
        """Whether the record reached a terminal state."""
        return self.state in ("done", "failed")

    @property
    def latency(self) -> float | None:
        """Submit-to-finish wall seconds, once finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def status_json(self, include_result: bool = False) -> dict[str, Any]:
        """The JSON the HTTP API serves for this job."""
        payload: dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state,
            "key": self.key,
            "request": self.request.to_json(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
            "coalesced_into": self.coalesced_into,
            "served_from": self.served_from,
            "latency": self.latency,
        }
        if include_result and self.result is not None:
            payload["result"] = self.result
        return payload

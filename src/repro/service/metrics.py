"""Service observability: counters, latency percentiles, stats rendering.

One :class:`ServiceMetrics` instance is shared by the queue (completions,
latencies), the scheduler (store hits, computes, retries) and the HTTP
layer (submissions, rejections); ``GET /stats`` serves its
:meth:`~ServiceMetrics.snapshot` and ``repro serve --stats-interval``
prints its :meth:`~ServiceMetrics.render_line` periodically.

Latencies are kept in a bounded ring (the service is meant to run for a
long time), so the percentiles are over the most recent completions.
"""

from __future__ import annotations

import collections
import math
from typing import Any

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Mutating counter bag for one service instance (not thread-safe; all
    writers run on the service's event loop)."""

    #: Latency percentiles served on ``/stats``.
    PERCENTILES = (50.0, 95.0, 99.0)

    def __init__(self, max_latencies: int = 4096) -> None:
        self.submitted = 0  # POST /jobs requests that parsed
        self.accepted = 0  # admitted as a new (primary) execution
        self.coalesced = 0  # attached to an in-flight execution instead
        self.rejected = 0  # refused by admission control / drain
        self.completed = 0  # records that reached `done` (incl. followers)
        self.failed = 0  # records that reached `failed`
        self.store_hits = 0  # primaries answered by the store fast path
        self.computed = 0  # primaries that actually ran a simulation
        self.retries = 0  # job re-dispatches after a failed attempt
        self._latencies: collections.deque[float] = collections.deque(
            maxlen=max_latencies
        )

    # -- recording ---------------------------------------------------------

    def observe_latency(self, seconds: float) -> None:
        """Record one job's submit-to-finish latency."""
        self._latencies.append(seconds)

    # -- derived -----------------------------------------------------------

    @property
    def store_hit_ratio(self) -> float:
        """Fraction of answered executions served straight from the store."""
        answered = self.store_hits + self.computed
        return self.store_hits / answered if answered else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained latencies (0.0 empty)."""
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self, queue_depth: int = 0, in_flight: int = 0) -> dict[str, Any]:
        """The ``/stats`` payload: counters, gauges and latency summary."""
        latencies = list(self._latencies)
        return {
            "queue_depth": queue_depth,
            "in_flight": in_flight,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "store_hits": self.store_hits,
            "computed": self.computed,
            "retries": self.retries,
            "store_hit_ratio": round(self.store_hit_ratio, 4),
            "latency": {
                "count": len(latencies),
                "mean": sum(latencies) / len(latencies) if latencies else 0.0,
                **{
                    f"p{p:g}": self.percentile(p)
                    for p in self.PERCENTILES
                },
            },
        }

    def render_line(self, queue_depth: int = 0, in_flight: int = 0) -> str:
        """One compact stats line for ``repro serve --stats-interval``."""
        return (
            f"stats: depth={queue_depth} inflight={in_flight} "
            f"done={self.completed} failed={self.failed} "
            f"coalesced={self.coalesced} rejected={self.rejected} "
            f"store-hit={self.store_hit_ratio:.0%} "
            f"p50={self.percentile(50):.3f}s p95={self.percentile(95):.3f}s "
            f"p99={self.percentile(99):.3f}s"
        )

"""Bounded priority queue with request coalescing and admission control.

The queue is the service's single point of truth for job state.  Three
properties matter:

**Coalescing.**  Jobs are keyed by their content-addressed store key; a
submit whose key matches an execution already *in flight* (queued or
running) does not enqueue a second execution — it attaches a follower
record to the primary, and the primary's completion fans out to every
follower.  Eight concurrent identical requests cost one simulation.

**Admission control.**  The number of queued primaries is bounded by
``max_depth``; a submit that would exceed it is rejected with a retryable
:class:`~repro.errors.ServiceOverloadedError` (coalescing submits are
always admitted — they add no work).  In-flight jobs are never shed.

**Drain.**  :meth:`JobQueue.drain` flips the queue into draining mode
(submissions rejected) and waits until every accepted job has finished, so
a SIGTERM never loses admitted work.

All mutation happens on the service's event loop thread; the asyncio
condition only sequences scheduler wake-ups and drain waits, not
cross-thread access.
"""

from __future__ import annotations

import asyncio
import collections
import heapq
import itertools
import time
from typing import Any

from repro.errors import JobNotFoundError, ServiceOverloadedError
from repro.service.jobs import JobRecord, JobRequest
from repro.service.metrics import ServiceMetrics

__all__ = ["JobQueue"]


class JobQueue:
    """Priority job queue with coalescing, admission control and drain.

    ``max_depth`` bounds *queued primaries* (running jobs and coalesced
    followers are not counted: the former are already paid for, the latter
    are free).  ``retain_finished`` bounds how many terminal records stay
    addressable via :meth:`get` before the oldest are evicted.
    """

    def __init__(
        self,
        metrics: ServiceMetrics | None = None,
        max_depth: int = 64,
        retain_finished: int = 1024,
    ) -> None:
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.max_depth = max_depth
        self.retain_finished = retain_finished
        self.draining = False
        self._closed = False
        self._seq = itertools.count()
        self._heap: list[tuple[int, int, str]] = []  # (-priority, seq, job_id)
        self._records: dict[str, JobRecord] = {}
        self._queued: set[str] = set()
        self._running: set[str] = set()
        self._primaries: dict[str, str] = {}  # store key -> primary job id
        self._followers: dict[str, list[str]] = {}  # primary id -> follower ids
        self._finished: collections.deque[str] = collections.deque()
        self._cond = asyncio.Condition()

    # -- gauges ------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Queued primary executions (the admission-controlled quantity)."""
        return len(self._queued)

    @property
    def in_flight(self) -> int:
        """Primary executions currently dispatched to the scheduler."""
        return len(self._running)

    @property
    def idle(self) -> bool:
        """Whether no accepted work remains queued or running."""
        return not self._queued and not self._running

    # -- submission --------------------------------------------------------

    async def submit(
        self, request: JobRequest, key: str
    ) -> tuple[JobRecord, bool]:
        """Admit one request; returns ``(record, coalesced)``.

        Raises :class:`ServiceOverloadedError` when draining or when the
        queue is at ``max_depth`` and the request cannot coalesce.
        """
        async with self._cond:
            if self.draining or self._closed:
                self.metrics.rejected += 1
                raise ServiceOverloadedError(
                    "service is draining; resubmit to the next instance"
                )
            primary_id = self._primaries.get(key)
            if primary_id is not None:
                primary = self._records[primary_id]
                record = JobRecord(
                    request=request,
                    key=key,
                    state=primary.state,
                    coalesced_into=primary_id,
                    served_from="coalesced",
                )
                self._records[record.job_id] = record
                self._followers.setdefault(primary_id, []).append(record.job_id)
                self.metrics.coalesced += 1
                return record, True
            if self.depth >= self.max_depth:
                self.metrics.rejected += 1
                raise ServiceOverloadedError(
                    f"queue is full ({self.depth}/{self.max_depth} jobs); "
                    f"retry after a backoff"
                )
            record = JobRecord(request=request, key=key)
            self._records[record.job_id] = record
            self._primaries[key] = record.job_id
            self._queued.add(record.job_id)
            heapq.heappush(
                self._heap, (-request.priority, next(self._seq), record.job_id)
            )
            self.metrics.accepted += 1
            self._cond.notify_all()
            return record, False

    # -- scheduling --------------------------------------------------------

    async def next_batch(
        self, max_batch: int | None = None, window: float = 0.0
    ) -> list[JobRecord]:
        """Block until work is available; pop up to ``max_batch`` primaries.

        ``window`` sleeps briefly after the first job arrives so a burst of
        concurrent submissions lands in one resource-grouped batch instead
        of n single-job dispatches.  Returns ``[]`` only once the queue has
        been closed and emptied — the scheduler's shutdown signal.
        """
        async with self._cond:
            while not self._heap and not self._closed:
                await self._cond.wait()
            if not self._heap:
                return []
        if window > 0:
            await asyncio.sleep(window)
        async with self._cond:
            batch: list[JobRecord] = []
            while self._heap and (max_batch is None or len(batch) < max_batch):
                _, _, job_id = heapq.heappop(self._heap)
                if job_id not in self._queued:
                    continue  # stale heap entry (requeued under a new one)
                record = self._records[job_id]
                self._queued.discard(job_id)
                self._running.add(job_id)
                record.attempts += 1
                self._transition(record, "running")
                if record.started_at is None:
                    record.started_at = time.time()
                batch.append(record)
            return batch

    # -- completion --------------------------------------------------------

    def _transition(self, record: JobRecord, state: str) -> None:
        """Move a primary (and its followers) to ``state``; fan out results."""
        record.state = state
        for follower_id in self._followers.get(record.job_id, ()):
            follower = self._records.get(follower_id)
            if follower is None:
                continue
            follower.state = state
            follower.attempts = record.attempts
            if state in ("done", "failed"):
                follower.result = record.result
                follower.error = record.error
                follower.finished_at = time.time()
                self._retire(follower)

    def _retire(self, record: JobRecord) -> None:
        """Bookkeeping shared by every terminal transition."""
        self._finished.append(record.job_id)
        if record.state == "done":
            self.metrics.completed += 1
        else:
            self.metrics.failed += 1
        if record.latency is not None:
            self.metrics.observe_latency(record.latency)
        while len(self._finished) > self.retain_finished:
            stale = self._finished.popleft()
            self._records.pop(stale, None)

    async def complete(
        self, record: JobRecord, result: dict[str, Any], served_from: str
    ) -> None:
        """Mark a primary done with its serialized result; wake drain waiters."""
        async with self._cond:
            record.result = result
            record.error = None
            record.finished_at = time.time()
            record.served_from = served_from
            self._running.discard(record.job_id)
            self._queued.discard(record.job_id)
            if self._primaries.get(record.key) == record.job_id:
                del self._primaries[record.key]
            self._transition(record, "done")
            self._retire(record)
            self._cond.notify_all()

    async def fail(self, record: JobRecord, error: str) -> None:
        """Mark a primary failed (after its retry budget); wake drain waiters."""
        async with self._cond:
            record.error = error
            record.finished_at = time.time()
            self._running.discard(record.job_id)
            self._queued.discard(record.job_id)
            if self._primaries.get(record.key) == record.job_id:
                del self._primaries[record.key]
            self._transition(record, "failed")
            self._retire(record)
            self._cond.notify_all()

    async def requeue(self, record: JobRecord) -> None:
        """Push a failed attempt back for another try (retry path)."""
        async with self._cond:
            self._running.discard(record.job_id)
            self._queued.add(record.job_id)
            self._transition(record, "queued")
            heapq.heappush(
                self._heap,
                (-record.request.priority, next(self._seq), record.job_id),
            )
            self.metrics.retries += 1
            self._cond.notify_all()

    # -- lookup ------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        """The record for ``job_id``; :class:`JobNotFoundError` if unknown."""
        record = self._records.get(job_id)
        if record is None:
            raise JobNotFoundError(f"unknown job {job_id!r}")
        return record

    # -- drain / shutdown --------------------------------------------------

    async def drain(self) -> None:
        """Reject new submissions and wait until accepted work finishes."""
        async with self._cond:
            self.draining = True
            while not self.idle:
                await self._cond.wait()

    async def close(self) -> None:
        """Wake blocked :meth:`next_batch` callers so they can exit."""
        async with self._cond:
            self._closed = True
            self._cond.notify_all()

"""The scheduler: drains the job queue into process-pool workers.

Batches popped from the :class:`~repro.service.queue.JobQueue` flow through
three tiers, cheapest first:

1. **Store fast path** — a job whose ``run_result_key`` already has a
   verified artifact in the store is answered immediately, touching no
   worker (and no simulation).
2. **Resource-grouped dispatch** — remaining jobs are grouped by the same
   preprocessing-sharing key the PR 3 executor uses
   (:func:`~repro.harness.parallel.resource_group`), so jobs that consume
   one ``GlaResources`` artifact run in one worker and build it once; the
   groups go to :func:`~repro.store.pool.run_tasks` worker processes with
   its crashed-worker retry + jittered backoff machinery.
3. **Per-job timeout/retry** — inside a worker each job runs under a
   ``SIGALRM`` budget; a job that times out or raises is retried (the
   record goes back through the queue) up to ``job_retries`` times before
   it is failed.  Workers return serialized results, so the service works
   with or without a persistent store; with one, workers also fill it.

The blocking ``run_tasks`` call runs in the event loop's default executor,
keeping the HTTP endpoints responsive while simulations execute.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import json
import signal
import threading
import time
from typing import Any

from repro.service.jobs import JobRecord, JobRequest
from repro.service.metrics import ServiceMetrics
from repro.service.queue import JobQueue

__all__ = ["Scheduler", "SchedulerConfig"]


@dataclasses.dataclass(frozen=True)
class SchedulerConfig:
    """Tunables for one :class:`Scheduler` instance."""

    #: Worker processes per dispatch (``None``: one per group, capped at CPUs).
    workers: int | None = None
    #: Per-job wall-clock budget inside a worker (``None``: unbounded).
    job_timeout: float | None = None
    #: Re-dispatches after a failed/timed-out attempt before the job fails.
    job_retries: int = 1
    #: Pool-level retries for crashed/hung workers (see ``run_tasks``).
    pool_retries: int = 1
    #: Backoff base for pool retries, jittered by ``run_tasks``.
    backoff: float = 0.25
    #: Seconds to linger after the first queued job so concurrent
    #: submissions land in one resource-grouped batch.
    batch_window: float = 0.05
    #: Most primaries drained per batch.
    max_batch: int = 32


@dataclasses.dataclass(frozen=True)
class _JobUnit:
    """One job as shipped to a worker process (picklable)."""

    job_id: str
    request: JobRequest


@dataclasses.dataclass(frozen=True)
class _GroupPayload:
    """One resource-sharing group of jobs for one worker."""

    jobs: tuple[_JobUnit, ...]
    cache_dir: str | None
    timeout: float | None


class _JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its SIGALRM budget."""


def _run_with_timeout(
    runner: Any, request: JobRequest, timeout: float | None
) -> Any:
    """Execute one request on ``runner``, under SIGALRM when possible.

    The alarm needs a process main thread; the inline-fallback path (which
    executes in the service's executor thread) runs unbudgeted instead —
    that mirrors the PR 3 executor, where inline is the untimed
    ground-truth tier.
    """
    use_alarm = (
        timeout is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        return runner.run(request.spec)

    def _on_alarm(signum: int, frame: Any) -> None:
        raise _JobTimeout(f"job exceeded {timeout}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return runner.run(request.spec)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_group(payload: _GroupPayload) -> list[dict[str, Any]]:
    """Worker body: run one resource group, one job at a time.

    Returns per-job reports (never raises for a job failure — only a
    worker death loses a group, and the pool machinery retries that).
    Results travel back serialized; with a store configured the runner
    also persists them, which is what makes future fast-path hits.
    """
    from repro.harness.runner import Runner
    from repro.store.serialize import run_result_to_json

    # One runner serves the whole group: every spec carries its own
    # pr_iterations/preprocessing, so nothing varies per job but the spec.
    runner = Runner(cache_dir=payload.cache_dir)
    reports: list[dict[str, Any]] = []
    for unit in payload.jobs:
        request = unit.request
        start = time.perf_counter()
        try:
            result = _run_with_timeout(runner, request, payload.timeout)
            reports.append({
                "job_id": unit.job_id,
                "ok": True,
                "seconds": time.perf_counter() - start,
                "result": run_result_to_json(result),
            })
        except Exception as exc:  # noqa: BLE001 - reported, retried upstream
            reports.append({
                "job_id": unit.job_id,
                "ok": False,
                "seconds": time.perf_counter() - start,
                "error": f"{type(exc).__name__}: {exc}",
            })
    return reports


class Scheduler:
    """Drains a :class:`JobQueue` into simulation workers until closed."""

    def __init__(
        self,
        queue: JobQueue,
        metrics: ServiceMetrics,
        store: Any | None = None,
        config: SchedulerConfig | None = None,
    ) -> None:
        self.queue = queue
        self.metrics = metrics
        #: Optional :class:`~repro.store.ArtifactStore` backing the fast path.
        self.store = store
        self.config = config if config is not None else SchedulerConfig()

    # -- store fast path ---------------------------------------------------

    def _store_lookup(self, key: str) -> dict[str, Any] | None:
        """A verified, decodable result payload for ``key``, or ``None``.

        Rides the store's checksum verification, then additionally proves
        the payload deserializes — a schema-drifted entry must fall back to
        computation, not be served.
        """
        if self.store is None:
            return None
        payload = self.store.get_bytes("results", key)
        if payload is None:
            return None
        from repro.store.serialize import SerializationError, run_result_from_json

        try:
            obj = json.loads(payload.decode("utf-8"))
            run_result_from_json(obj)
        except (ValueError, SerializationError):
            return None
        return obj

    # -- dispatch ----------------------------------------------------------

    def _plan_groups(self, records: list[JobRecord]) -> list[list[JobRecord]]:
        """Group a batch by the PR 3 preprocessing-sharing key, largest
        group first (the LPT-style ordering ``plan_shards`` uses)."""
        from repro.harness.parallel import resource_group

        groups: dict[Any, list[JobRecord]] = {}
        for record in records:
            groups.setdefault(
                resource_group(record.request.spec), []
            ).append(record)
        return [
            members
            for _, members in sorted(
                groups.items(), key=lambda item: (-len(item[1]), repr(item[0]))
            )
        ]

    async def _dispatch(self, records: list[JobRecord]) -> None:
        """Run one batch in worker processes and settle every record."""
        from repro.store.pool import run_tasks

        cache_dir = str(self.store.root) if self.store is not None else None
        groups = self._plan_groups(records)
        payloads = [
            _GroupPayload(
                jobs=tuple(
                    _JobUnit(record.job_id, record.request) for record in group
                ),
                cache_dir=cache_dir,
                timeout=self.config.job_timeout,
            )
            for group in groups
        ]
        parent_timeout = (
            None
            if self.config.job_timeout is None
            else self.config.job_timeout * max(len(g) for g in groups) + 5.0
        )
        loop = asyncio.get_running_loop()
        outcomes = await loop.run_in_executor(
            None,
            functools.partial(
                run_tasks,
                _execute_group,
                payloads,
                workers=self.config.workers,
                timeout=parent_timeout,
                retries=self.config.pool_retries,
                backoff=self.config.backoff,
                inline_fallback=True,
            ),
        )
        by_id = {record.job_id: record for record in records}
        for outcome in outcomes:
            for report in outcome.value or ():
                record = by_id.pop(report["job_id"], None)
                if record is None:
                    continue
                if report["ok"]:
                    self.metrics.computed += 1
                    await self.queue.complete(
                        record,
                        report["result"],
                        "inline" if outcome.inline else "worker",
                    )
                elif record.attempts <= self.config.job_retries:
                    await self.queue.requeue(record)
                else:
                    await self.queue.fail(record, report["error"])
        # A group the pool lost entirely (no reports, no inline value):
        # fail its jobs rather than strand them in `running` forever.
        for record in by_id.values():
            if record.attempts <= self.config.job_retries:
                await self.queue.requeue(record)
            else:
                await self.queue.fail(record, "worker group was lost")

    async def _handle_batch(self, batch: list[JobRecord]) -> None:
        compute: list[JobRecord] = []
        for record in batch:
            # Checked runs must re-execute the simulation under the
            # invariant checker — never answer them from the store (their
            # keys are distinct anyway, and checked results are never
            # persisted; this makes the contract explicit).
            hit = (
                None
                if record.request.spec.check
                else self._store_lookup(record.key)
            )
            if hit is not None:
                self.metrics.store_hits += 1
                await self.queue.complete(record, hit, "store")
            else:
                compute.append(record)
        if compute:
            await self._dispatch(compute)

    async def run(self) -> None:
        """Serve batches until the queue closes; never leaves jobs dangling.

        A batch whose handling raises unexpectedly fails its records (with
        the exception text) instead of leaving them in ``running`` — the
        drain path depends on every popped record reaching a terminal
        state.
        """
        while True:
            batch = await self.queue.next_batch(
                self.config.max_batch, self.config.batch_window
            )
            if not batch:
                return
            try:
                await self._handle_batch(batch)
            except Exception as exc:  # noqa: BLE001 - must settle the records
                for record in batch:
                    if record.state == "running":
                        await self.queue.fail(
                            record, f"scheduler error: {type(exc).__name__}: {exc}"
                        )

"""The HTTP front end: a long-running asyncio simulation service.

Endpoints (JSON over HTTP/1.1, one request per connection):

``POST /jobs``
    Submit a :class:`~repro.service.jobs.JobRequest` body.  ``202`` with
    the job record on admission (``coalesced`` says whether it attached to
    an in-flight execution), ``429`` with ``Retry-After`` when admission
    control rejects, ``400`` on a malformed request.
``GET /jobs/<id>``
    The job's status record, including the serialized result once done.
    ``404`` for unknown/evicted ids.
``GET /healthz``
    Liveness: ``{"status": "ok"|"draining", "version": ...}`` plus queue
    gauges — deployed servers are identifiable by version.
``GET /stats``
    The :class:`~repro.service.metrics.ServiceMetrics` snapshot.

The server is deliberately stdlib-only (``asyncio.start_server`` plus a
minimal HTTP/1.1 reader): the repo's no-new-dependencies rule is a hard
constraint, and the four fixed routes don't justify a framework.

**Graceful drain:** SIGTERM (or SIGINT) stops admission, finishes every
accepted job (status polls keep working throughout, so blocked clients
complete), then closes the listener and returns.  Accepted jobs are never
lost.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import signal
import time
from typing import Any, Callable

from repro.errors import JobNotFoundError, ServiceError, ServiceOverloadedError
from repro.service.jobs import JobRequest
from repro.service.metrics import ServiceMetrics
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler, SchedulerConfig

__all__ = ["DEFAULT_PORT", "ServiceConfig", "SimulationService"]

#: Default TCP port for ``repro serve`` (chosen to be unclaimed by IANA).
DEFAULT_PORT = 8573

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to assemble one service."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    #: Artifact store root (``None``: in-memory service, no fast path).
    cache_dir: str | None = None
    #: Admission bound on queued primaries.
    max_depth: int = 64
    #: Terminal records kept addressable before eviction.
    retain_finished: int = 1024
    scheduler: SchedulerConfig = dataclasses.field(default_factory=SchedulerConfig)
    #: Seconds between stats lines (0: off).
    stats_interval: float = 0.0


class SimulationService:
    """One assembled service: queue + scheduler + HTTP server + metrics.

    Run it with :meth:`run` (blocks until drained) or drive
    :meth:`start` / :meth:`request_drain` / :meth:`drained` directly from
    tests.  ``log`` receives one-line progress messages (default: silent).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.log = log if log is not None else (lambda message: None)
        self.metrics = ServiceMetrics()
        self.queue = JobQueue(
            metrics=self.metrics,
            max_depth=self.config.max_depth,
            retain_finished=self.config.retain_finished,
        )
        self.store = None
        if self.config.cache_dir is not None:
            from repro.store import ArtifactStore

            self.store = ArtifactStore(self.config.cache_dir)
        self.scheduler = Scheduler(
            self.queue, self.metrics, store=self.store,
            config=self.config.scheduler,
        )
        #: Actual bound port, available after :meth:`start` (``port=0`` asks
        #: the OS for a free one).
        self.port: int | None = None
        self.started_at = time.time()
        self._server: asyncio.AbstractServer | None = None
        self._scheduler_task: asyncio.Task[None] | None = None
        self._stats_task: asyncio.Task[None] | None = None
        self._drain_requested: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the scheduler."""
        self._loop = asyncio.get_running_loop()
        self._drain_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler_task = asyncio.create_task(self.scheduler.run())
        if self.config.stats_interval > 0:
            self._stats_task = asyncio.create_task(self._stats_loop())
        from repro import __version__

        store_note = (
            f"store={self.config.cache_dir}" if self.store is not None
            else "no store"
        )
        self.log(
            f"repro-serve v{__version__} listening on "
            f"{self.config.host}:{self.port} ({store_note}, "
            f"max-queue={self.config.max_depth})"
        )

    def request_drain(self) -> None:
        """Ask the service to drain and stop; safe from any thread."""
        if self._loop is None or self._drain_requested is None:
            return
        try:
            running_here = asyncio.get_running_loop() is self._loop
        except RuntimeError:
            running_here = False
        if running_here:
            self._drain_requested.set()
        else:
            # Tolerate a loop that already drained and closed (a second
            # SIGTERM, a test teardown racing the drain): the request is
            # then already satisfied.
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._drain_requested.set)

    async def drained(self) -> None:
        """Finish accepted work, stop the scheduler, close the listener."""
        self.log(
            f"draining: {self.queue.depth} queued, "
            f"{self.queue.in_flight} in flight"
        )
        await self.queue.drain()
        await self.queue.close()
        if self._scheduler_task is not None:
            await self._scheduler_task
        if self._stats_task is not None:
            self._stats_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._stats_task
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.log(
            f"drained: {self.metrics.completed} completed, "
            f"{self.metrics.failed} failed, "
            f"{self.metrics.coalesced} coalesced, "
            f"{self.metrics.rejected} rejected"
        )

    async def run(self, install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT (or :meth:`request_drain`), then drain."""
        await self.start()
        assert self._drain_requested is not None
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError, ValueError):
                    loop.add_signal_handler(signum, self._drain_requested.set)
        try:
            await self._drain_requested.wait()
        finally:
            await self.drained()
            if install_signals:
                loop = asyncio.get_running_loop()
                for signum in (signal.SIGTERM, signal.SIGINT):
                    with contextlib.suppress(
                        NotImplementedError, ValueError, RuntimeError
                    ):
                        loop.remove_signal_handler(signum)

    async def _stats_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.stats_interval)
            self.log(self.metrics.render_line(self.queue.depth, self.queue.in_flight))

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload, headers = 500, {"error": "internal error"}, {}
        try:
            request = await self._read_request(reader)
            if request is None:
                writer.close()
                return
            method, path, body = request
            status, payload, headers = await self._route(method, path, body)
        except ServiceOverloadedError as exc:
            status, payload = 429, {
                "error": str(exc), "retryable": True,
            }
            headers = {"Retry-After": "1"}
        except JobNotFoundError as exc:
            status, payload = 404, {"error": str(exc)}
        except ServiceError as exc:
            status, payload = 500, {"error": str(exc)}
        except (ValueError, KeyError, TypeError) as exc:
            status, payload = 400, {"error": str(exc)}
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - a request must never kill the server
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            self._write_response(writer, status, payload, headers)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, bytes] | None:
        """Parse one HTTP/1.1 request: ``(method, path, body)``."""
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        body = await reader.readexactly(content_length) if content_length else b""
        return method, target.split("?", 1)[0], body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)

    # -- routes ------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        if path == "/jobs":
            if method != "POST":
                return 405, {"error": "POST /jobs"}, {}
            return await self._post_jobs(body)
        if path.startswith("/jobs/"):
            if method != "GET":
                return 405, {"error": "GET /jobs/<id>"}, {}
            record = self.queue.get(path[len("/jobs/"):])
            return 200, {"job": record.status_json(include_result=True)}, {}
        if path == "/healthz" and method == "GET":
            from repro import __version__

            return 200, {
                "status": "draining" if self.queue.draining else "ok",
                "version": __version__,
                "queue_depth": self.queue.depth,
                "in_flight": self.queue.in_flight,
                "uptime_seconds": round(time.time() - self.started_at, 3),
            }, {}
        if path == "/stats" and method == "GET":
            return 200, self.metrics.snapshot(
                self.queue.depth, self.queue.in_flight
            ), {}
        return 404, {"error": f"no route {method} {path}"}, {}

    async def _post_jobs(
        self, body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        try:
            obj = json.loads(body.decode("utf-8")) if body else {}
        except ValueError:
            raise ValueError("request body is not valid JSON") from None
        request = JobRequest.from_json(obj)
        self.metrics.submitted += 1
        # Hashing the dataset can materialize it (first request only);
        # keep that off the event loop so health/status stay responsive.
        loop = asyncio.get_running_loop()
        key = await loop.run_in_executor(None, request.store_key)
        record, coalesced = await self.queue.submit(request, key)
        if coalesced:
            self.log(
                f"coalesced {record.job_id} ({request.label()}) "
                f"onto {record.coalesced_into}"
            )
        else:
            self.log(f"accepted {record.job_id} ({request.label()})")
        return 202, {"job": record.status_json(), "coalesced": coalesced}, {}

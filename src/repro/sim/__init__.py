"""Simulated multi-core memory system (the paper's Table I substrate)."""

from repro.sim.config import SystemConfig, scaled_config, table1_config
from repro.sim.layout import ArrayId, MemoryLayout
from repro.sim.null import NullSystem
from repro.sim.reuse import ReuseProfile, profile_stream
from repro.sim.system import SimulatedSystem
from repro.sim.trace import TracingSystem

__all__ = [
    "ArrayId",
    "MemoryLayout",
    "NullSystem",
    "ReuseProfile",
    "SimulatedSystem",
    "SystemConfig",
    "TracingSystem",
    "profile_stream",
    "scaled_config",
    "table1_config",
]

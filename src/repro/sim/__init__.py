"""Simulated multi-core memory system (the paper's Table I substrate)."""

from repro.sim.config import SystemConfig, scaled_config, table1_config
from repro.sim.layout import ArrayId, MemoryLayout
from repro.sim.null import NullSystem
from repro.sim.observe import (
    InstrumentedSystem,
    IterationTimeline,
    Observer,
    PhaseProfiler,
    TraceObserver,
    instrument,
)
from repro.sim.protocol import EngineEvent, MemorySystem
from repro.sim.reuse import ReuseProfile, profile_stream
from repro.sim.system import SimulatedSystem
from repro.sim.telemetry import (
    IterationProfile,
    PhaseProfile,
    PhaseSample,
    RunTelemetry,
)
from repro.sim.trace import TracingSystem

__all__ = [
    "ArrayId",
    "EngineEvent",
    "InstrumentedSystem",
    "IterationProfile",
    "IterationTimeline",
    "MemoryLayout",
    "MemorySystem",
    "NullSystem",
    "Observer",
    "PhaseProfile",
    "PhaseProfiler",
    "PhaseSample",
    "ReuseProfile",
    "RunTelemetry",
    "SimulatedSystem",
    "SystemConfig",
    "TraceObserver",
    "TracingSystem",
    "instrument",
    "profile_stream",
    "scaled_config",
    "table1_config",
]

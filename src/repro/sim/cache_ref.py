"""The reference LRU cache model: per-set Python lists, O(associativity).

This is the original implementation of :class:`repro.sim.cache.Cache`,
kept verbatim as the behavioural oracle for the O(1) rewrite.  Every probe
walks (and reorders) a plain recency list, which makes the LRU semantics
obvious at the cost of ``list.remove``/``list.pop`` scans on the hot path.
``tests/sim/test_cache_differential.py`` drives randomized probe sequences
through both implementations and asserts identical hits, misses,
evictions, writebacks, victim choices, dirty bits, residency order and
occupancy — the fast model in :mod:`repro.sim.cache` must never diverge
from this one.

Semantics (shared with the fast model): presence only (no data), which is
all that hit/miss accounting needs; MESI state is reduced to a valid/dirty
bit per line because the engines modelled here are synchronous (the paper
notes ChGraph has "no coherency issues" — updates from an iteration are
only read in the next one).
"""

from __future__ import annotations

__all__ = ["Cache", "CacheStats"]


class CacheStats:
    """Hit/miss counters for one cache."""

    __slots__ = ("hits", "misses", "evictions", "writebacks")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.3f})"
        )


class Cache:
    """A set-associative LRU cache over line numbers.

    The cache is indexed by *line number* (byte address / line size); the
    caller is responsible for that translation, which lets one ``Cache``
    instance serve any level of the hierarchy.
    """

    def __init__(self, size_bytes: int, associativity: int, line_size: int) -> None:
        if size_bytes % (associativity * line_size):
            raise ValueError(
                f"cache size {size_bytes} not divisible by way size "
                f"{associativity * line_size}"
            )
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.num_sets = size_bytes // (associativity * line_size)
        if self.num_sets < 1:
            raise ValueError("cache must have at least one set")
        # Each set is an LRU-ordered list of line numbers (MRU at the end),
        # with a parallel dirty-line set.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self._dirty: set[int] = set()
        self.stats = CacheStats()

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def lookup(self, line: int) -> bool:
        """Probe without allocating; promotes to MRU on hit."""
        ways = self._sets[self._set_index(line)]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, line: int, dirty: bool = False) -> int | None:
        """Insert ``line``; returns the evicted line number, if any.

        ``dirty`` marks the incoming line as modified (a write-allocate).
        A dirty victim bumps the writeback counter before being returned.
        """
        ways = self._sets[self._set_index(line)]
        if line in ways:  # refill of a present line: just promote
            ways.remove(line)
            ways.append(line)
            if dirty:
                self._dirty.add(line)
            return None
        victim = None
        if len(ways) >= self.associativity:
            victim = ways.pop(0)
            self.stats.evictions += 1
            if victim in self._dirty:
                self._dirty.discard(victim)
                self.stats.writebacks += 1
        ways.append(line)
        if dirty:
            self._dirty.add(line)
        return victim

    def access(self, line: int, write: bool = False) -> bool:
        """Probe and, on miss, allocate.  Returns hit/miss."""
        hit = self.lookup(line)
        if hit:
            if write:
                self._dirty.add(line)
        else:
            self.fill(line, dirty=write)
        return hit

    def invalidate(self, line: int) -> bool:
        """Drop a line if present (used for inclusive-L3 back-invalidation).

        Discards the line's dirty bit with it: the *caller* is responsible
        for checking :meth:`is_dirty` first and writing the line back down
        the hierarchy — see ``MemoryHierarchy._back_invalidate``.
        """
        ways = self._sets[self._set_index(line)]
        if line in ways:
            ways.remove(line)
            self._dirty.discard(line)
            return True
        return False

    def contains(self, line: int) -> bool:
        """Presence check without touching LRU order or stats."""
        return line in self._sets[self._set_index(line)]

    def victim_of(self, line: int) -> int | None:
        """The line :meth:`fill` would evict for ``line``, without filling.

        ``None`` when the fill would not evict (line already present, or
        the set has a free way).  Touches neither LRU order nor stats, so
        callers can inspect the victim's dirty bit *before* the fill
        discards it.
        """
        ways = self._sets[self._set_index(line)]
        if line in ways or len(ways) < self.associativity:
            return None
        return ways[0]

    def is_dirty(self, line: int) -> bool:
        """Dirty-bit check without touching LRU order or stats."""
        return line in self._dirty

    def mark_dirty(self, line: int) -> bool:
        """Set the dirty bit of a *resident* line without touching LRU order.

        This is how a victim written back from a smaller cache lands here:
        the line's data is already present (the hierarchy fills downward on
        the original miss), so absorbing the writeback updates state only.
        Returns ``False`` (and does nothing) when the line is not resident.
        """
        if not self.contains(line):
            return False
        self._dirty.add(line)
        return True

    def resident_lines(self) -> list[int]:
        """All currently cached line numbers (for tests and invariants)."""
        return [line for ways in self._sets for line in ways]

    def dirty_lines(self) -> list[int]:
        """All currently dirty line numbers (for tests and invariants)."""
        return sorted(self._dirty)

    def max_set_occupancy(self) -> int:
        """Occupancy of the fullest set (invariant: <= associativity)."""
        return max((len(ways) for ways in self._sets), default=0)

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def __repr__(self) -> str:
        return (
            f"Cache({self.size_bytes}B, {self.associativity}-way, "
            f"{self.num_sets} sets)"
        )

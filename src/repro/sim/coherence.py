"""MESI directory coherence model (Table I: "MESI, in-cache directory").

The hierarchy's hit/miss accounting needs only presence and dirty bits for
the synchronous engines (see :mod:`repro.sim.hierarchy`), but Table I
specifies a full MESI protocol with an in-cache directory.  This module
models it: per-line sharer states across the private caches, with the
standard transitions, so that

* protocol invariants can be *checked* (at most one owner in M/E; an owner
  excludes sharers), and
* coherence *traffic* can be measured — invalidations on write-sharing and
  owner downgrades on read-sharing — which quantifies how much cross-core
  value sharing each scheduler causes.

Enable per hierarchy with ``SystemConfig(track_coherence=True)``; tracking
is off by default because the engines' results and timings do not depend on
it (synchronous phases have no intra-phase read-after-remote-write).
"""

from __future__ import annotations

import dataclasses

__all__ = ["MesiDirectory", "CoherenceStats", "MODIFIED", "EXCLUSIVE", "SHARED"]

MODIFIED = "M"
EXCLUSIVE = "E"
SHARED = "S"
# Invalid is represented by absence from the sharer table.


@dataclasses.dataclass
class CoherenceStats:
    """Protocol event counters."""

    invalidations: int = 0  # copies killed by a remote write
    downgrades: int = 0  # M/E owners demoted to S by a remote read
    ownership_transfers: int = 0  # write hits on S (upgrade) or remote M
    read_misses_served_remote: int = 0  # reads that found a remote owner


class MesiDirectory:
    """Directory of per-line sharer states across private caches."""

    def __init__(self) -> None:
        self._sharers: dict[int, dict[int, str]] = {}
        self.stats = CoherenceStats()

    # -- protocol events ----------------------------------------------------

    def on_read(self, core: int, line: int) -> None:
        """Core loads ``line``: join the sharers, demoting any remote owner."""
        sharers = self._sharers.setdefault(line, {})
        if core in sharers:
            return  # read hit on a valid copy: no transition
        remote_owner = any(
            state in (MODIFIED, EXCLUSIVE) and owner != core
            for owner, state in sharers.items()
        )
        if remote_owner:
            self.stats.read_misses_served_remote += 1
            for owner, state in list(sharers.items()):
                if state in (MODIFIED, EXCLUSIVE):
                    sharers[owner] = SHARED
                    self.stats.downgrades += 1
        sharers[core] = EXCLUSIVE if not sharers else SHARED
        if len(sharers) > 1:
            # Everyone holding the line alongside others is a sharer.
            for owner in sharers:
                sharers[owner] = SHARED

    def on_write(self, core: int, line: int) -> None:
        """Core stores to ``line``: invalidate every other copy, own in M."""
        sharers = self._sharers.setdefault(line, {})
        state = sharers.get(core)
        others = [owner for owner in sharers if owner != core]
        if others:
            for owner in others:
                del sharers[owner]
                self.stats.invalidations += 1
            self.stats.ownership_transfers += 1
        elif state == SHARED:
            self.stats.ownership_transfers += 1  # upgrade S -> M
        sharers[core] = MODIFIED

    def on_evict(self, core: int, line: int) -> None:
        """Core drops its copy (capacity eviction or back-invalidation)."""
        sharers = self._sharers.get(line)
        if sharers and core in sharers:
            del sharers[core]
            if not sharers:
                del self._sharers[line]
            elif len(sharers) == 1:
                # A sole surviving sharer silently owns the line again.
                (owner,) = sharers
                if sharers[owner] == SHARED:
                    sharers[owner] = EXCLUSIVE

    # -- inspection ------------------------------------------------------------

    def state(self, core: int, line: int) -> str | None:
        return self._sharers.get(line, {}).get(core)

    def sharers_of(self, line: int) -> dict[int, str]:
        return dict(self._sharers.get(line, {}))

    def check_invariants(self) -> None:
        """Raise AssertionError if any MESI invariant is violated."""
        for line, sharers in self._sharers.items():
            owners = [c for c, s in sharers.items() if s in (MODIFIED, EXCLUSIVE)]
            assert len(owners) <= 1, f"line {line}: multiple owners {owners}"
            if owners:
                assert len(sharers) == 1, (
                    f"line {line}: owner {owners[0]} coexists with sharers "
                    f"{sorted(sharers)}"
                )

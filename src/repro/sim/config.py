"""System configurations.

``table1_config`` reproduces the paper's Table I verbatim.  ``scaled_config``
shrinks the caches proportionally to the scaled-down datasets (DESIGN.md §5)
so that the working-set : cache ratios — which drive every locality result —
stay in the paper's regime while simulations finish in seconds.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError

__all__ = ["SystemConfig", "table1_config", "scaled_config"]


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """Parameters of the simulated multi-core system (Table I).

    Cache sizes are per-core for L1/L2 and total for the shared L3.  Latency
    fields are in core cycles.  ``mlp`` is the effective memory-level
    parallelism of the Haswell-like OOO core: the average number of
    outstanding misses the core overlaps, used to convert summed miss
    latencies into stall cycles.
    """

    name: str
    num_cores: int = 16
    frequency_ghz: float = 2.2
    line_size: int = 64
    l1_size: int = 32 * 1024
    l1_assoc: int = 8
    l1_latency: int = 3
    l2_size: int = 128 * 1024
    l2_assoc: int = 8
    l2_latency: int = 6
    l3_size: int = 32 * 1024 * 1024
    l3_assoc: int = 16
    l3_banks: int = 16
    l3_latency: int = 24
    # Table I's L3 is inclusive.  The scaled-down configs disable inclusion:
    # with a deliberately tiny LLC, inclusive back-invalidation would wipe
    # the private caches on every eviction, which the paper's (huge) L3
    # never does — non-inclusive keeps the scaled hierarchy in the same
    # behavioural regime as the full-size inclusive one.
    inclusive_l3: bool = True
    # Track full MESI directory state (Table I).  Off by default: the
    # synchronous engines' results and timing do not depend on it; enable to
    # measure coherence traffic (see tests/sim/test_coherence.py and the
    # coherence ablation bench).
    track_coherence: bool = False
    # Apply the DRAM bandwidth-contention model at each barrier: per-phase
    # demanded lines (fetches + writebacks) inflate that phase's memory
    # stalls via ``DramModel.contention_factor`` and floor the phase at
    # ``DramModel.drain_cycles``.  Off by default so the published figures
    # stay bit-identical; flip on to study bandwidth-bound regimes.
    dram_contention: bool = False
    noc_router_latency: int = 1
    noc_link_latency: int = 1
    dram_controllers: int = 4
    dram_latency: int = 120
    dram_gbps_per_controller: float = 12.8
    mlp: float = 2.0
    # Per-operation compute costs charged by the engines (cycles).
    apply_cycles: int = 6
    frontier_op_cycles: int = 1
    # Software GLA per-tuple overhead: indirection through the chain queue
    # and tuple packing that Hygra's tight index loop does not pay.
    sw_load_cycles: int = 2
    # Software chain generation: per OAG-edge inspection cost on the core
    # (weight compare + branch + bookkeeping).
    sw_explore_cycles: int = 10
    # Software Algorithm 3 sorts each explored node's active neighbors by
    # weight (Line 7, "SORT(N)") — the "expensive sorting overheads that may
    # outweigh the benefits" (Section I).  Cost per comparison-swap on the
    # core; the HCG avoids this via the weight-pre-sorted OAG rows.
    sw_sort_cycles: float = 8.0
    # CALIBRATED (not derived): total per-element cost of the software
    # Generate phase beyond the modelled loads — recursion, visited/active
    # bookkeeping, queue management.  Chosen so the software GLA slowdowns
    # land in the paper's Figure 14 band (1.13-1.62x slower, PR mildest)
    # and stay stable in the iteration count, as the paper reports; at our
    # scale the OAG is cache-resident, so this cannot emerge from first
    # principles (see DESIGN.md "timing calibration").
    sw_generate_cycles: float = 1000.0
    # ChGraph hardware pipelines (1 GHz engine vs 2.2 GHz core => each engine
    # stage occupies ~2.2 core cycles per element when not memory bound).
    hw_stage_cycles: float = 2.2
    # Outstanding-miss overlap of the pipelined chain-driven prefetcher
    # (bounded by the 32-deep FIFOs, far above a core's demand MLP).
    engine_mlp: float = 8.0
    fifo_pop_cycles: int = 1
    chain_fifo_depth: int = 32
    tuple_fifo_depth: int = 32
    stack_depth: int = 16

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError("num_cores must be >= 1")
        if self.l3_banks < 1:
            raise ConfigurationError("l3_banks must be >= 1")
        for field in ("l1_size", "l2_size", "l3_size"):
            size = getattr(self, field)
            if size < self.line_size:
                raise ConfigurationError(f"{field}={size} smaller than a line")

    @property
    def dram_bytes_per_cycle_per_controller(self) -> float:
        return self.dram_gbps_per_controller / self.frequency_ghz

    def replace(self, **changes: object) -> "SystemConfig":
        return dataclasses.replace(self, **changes)


def table1_config() -> SystemConfig:
    """The paper's simulated system, verbatim from Table I."""
    return SystemConfig(name="table1")


def scaled_config(
    num_cores: int = 16,
    llc_kb: int = 4,
    l1_bytes: int = 1024,
    l2_bytes: int = 8192,
) -> SystemConfig:
    """Caches scaled down ~2000x to match the scaled datasets.

    The scaled datasets' value arrays are tens of KB, so an LLC of 8–32 KB
    reproduces the paper's "value arrays far exceed the LLC" regime, while
    L1/L2 still hold a chain's reuse window (a few KB).
    """
    return SystemConfig(
        name=f"scaled-{num_cores}c-{llc_kb}kb",
        num_cores=num_cores,
        l1_size=l1_bytes,
        l1_assoc=4,
        l2_size=l2_bytes,
        l2_assoc=8,
        l3_size=llc_kb * 1024,
        l3_assoc=16,
        l3_banks=4,
        inclusive_l3=False,
    )

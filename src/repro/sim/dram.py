"""Main-memory controller model (Table I: 4x DDR4-1600, 12.8 GB/s each).

Models average access latency plus a bandwidth-contention term: when the
demanded line rate approaches the channel bandwidth, queueing inflates the
effective latency.  Exact DRAM timing (banks, row buffers) is out of scope —
the paper's results are driven by *how many* DRAM accesses each scheduler
makes, which the cache hierarchy determines.
"""

from __future__ import annotations

__all__ = ["DramModel"]


class DramModel:
    """Latency/bandwidth accounting for the memory controllers."""

    def __init__(
        self,
        num_controllers: int = 4,
        base_latency: int = 120,
        line_size: int = 64,
        bytes_per_cycle_per_controller: float = 5.8,
    ) -> None:
        # 12.8 GB/s per controller at 2.2 GHz core clock ~= 5.8 B/cycle.
        self.num_controllers = num_controllers
        self.base_latency = base_latency
        self.line_size = line_size
        self.bytes_per_cycle_per_controller = bytes_per_cycle_per_controller
        self.accesses = 0
        self.writes = 0

    def record_access(self) -> int:
        """Count one line fetch; returns the uncontended latency."""
        self.accesses += 1
        return self.base_latency

    def record_write(self) -> None:
        """Count one line written back to memory.

        Writebacks are drained by the controllers off the critical path, so
        they add no latency to the access that triggered the eviction; they
        do consume channel bandwidth, which the contention model charges for
        via the combined read+write line count at each barrier.
        """
        self.writes += 1

    @property
    def peak_lines_per_cycle(self) -> float:
        return (
            self.num_controllers * self.bytes_per_cycle_per_controller
        ) / self.line_size

    def contention_factor(self, demanded_lines: int, over_cycles: float) -> float:
        """Latency multiplier given a demand rate over an interval.

        Uses an M/D/1-flavoured inflation: utilisation rho below ~60% is
        nearly free; as rho approaches 1 latency grows sharply, capped to
        keep the model stable when demand exceeds bandwidth.
        """
        if over_cycles <= 0 or demanded_lines <= 0:
            return 1.0
        rho = min((demanded_lines / over_cycles) / self.peak_lines_per_cycle, 0.97)
        return 1.0 + rho * rho / (2.0 * (1.0 - rho))

    def drain_cycles(self, lines: int) -> float:
        """Minimum cycles to transfer ``lines`` at peak bandwidth."""
        return lines / self.peak_lines_per_cycle

    def reset(self) -> None:
        self.accesses = 0
        self.writes = 0

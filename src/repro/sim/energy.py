"""Energy accounting (McPAT / DDR datasheet style constants).

The paper derives chip energy with McPAT and memory energy from Micron
datasheets.  We use representative 65 nm-era per-event energies; as with
timing, only *relative* energy between schedulers is meaningful.
"""

from __future__ import annotations

import dataclasses

from repro.sim.hierarchy import MemoryHierarchy

__all__ = ["EnergyModel", "EnergyReport"]


@dataclasses.dataclass(frozen=True)
class EnergyReport:
    """Energy totals in nanojoules, split by component.

    ``dram_nj`` is the *read* side (line fetches); ``dram_write_nj`` is the
    writeback traffic the hierarchy drains to memory.  Both count toward
    :attr:`memory_fraction` — a write-heavy app spends channel energy on
    lines it never fetches again.
    """

    l1_nj: float
    l2_nj: float
    l3_nj: float
    dram_nj: float
    core_nj: float
    dram_write_nj: float = 0.0

    @property
    def dram_total_nj(self) -> float:
        """DRAM energy over both directions: fetches plus writebacks."""
        return self.dram_nj + self.dram_write_nj

    @property
    def total_nj(self) -> float:
        return (
            self.l1_nj + self.l2_nj + self.l3_nj + self.dram_total_nj
            + self.core_nj
        )

    @property
    def memory_fraction(self) -> float:
        total = self.total_nj
        return (self.dram_total_nj / total) if total else 0.0


class EnergyModel:
    """Per-event energy constants (65 nm class)."""

    L1_ACCESS_NJ = 0.010
    L2_ACCESS_NJ = 0.035
    L3_ACCESS_NJ = 0.180
    DRAM_LINE_NJ = 20.0
    DRAM_WRITE_NJ = 20.0
    CORE_CYCLE_NJ = 0.10

    def report(
        self, hierarchy: MemoryHierarchy, compute_cycles: float
    ) -> EnergyReport:
        """Aggregate energy from hierarchy counters and core busy cycles."""
        l1_accesses = sum(cache.stats.accesses for cache in hierarchy.l1)
        l2_accesses = sum(cache.stats.accesses for cache in hierarchy.l2)
        l3_accesses = hierarchy.l3.stats.accesses
        dram_lines = hierarchy.dram_accesses()
        dram_writebacks = hierarchy.writebacks()
        return EnergyReport(
            l1_nj=l1_accesses * self.L1_ACCESS_NJ,
            l2_nj=l2_accesses * self.L2_ACCESS_NJ,
            l3_nj=l3_accesses * self.L3_ACCESS_NJ,
            dram_nj=dram_lines * self.DRAM_LINE_NJ,
            core_nj=compute_cycles * self.CORE_CYCLE_NJ,
            dram_write_nj=dram_writebacks * self.DRAM_WRITE_NJ,
        )

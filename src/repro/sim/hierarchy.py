"""The three-level cache hierarchy with per-array DRAM attribution.

Private L1/L2 per core, shared banked inclusive L3, and a DRAM model.  Every
access is attributed to one of the :class:`~repro.sim.layout.ArrayId` arrays
so the Figure 15 breakdown can be reproduced exactly.

Simplifications relative to ZSim (documented in DESIGN.md): MESI is reduced
to inclusive presence + dirty bits — the engines are synchronous and
partition writes by chunk, so cross-core write races do not occur; read
sharing is naturally captured by the shared L3.

Write traffic: victim dirty bits thread down the hierarchy (an L1 dirty
victim is absorbed by the L2 copy, an L2 dirty victim by the L3 copy, and
so on), and a line finally written back to memory is counted per array in
``dram_writebacks_by_array`` — a counter *separate* from ``dram_by_array``,
which holds line *fetches* only, so the Figure 2/14/15 read-count ratios
are unaffected by the write path.  OAG lines are never dirty, matching the
paper's "discard rather than write back" rule for OAG entries.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.cache import Cache
from repro.sim.coherence import MesiDirectory
from repro.sim.config import SystemConfig
from repro.sim.dram import DramModel
from repro.sim.layout import ArrayId, MemoryLayout
from repro.sim.noc import MeshNoc

__all__ = ["MemoryHierarchy"]

_NUM_ARRAYS = len(ArrayId)


class MemoryHierarchy:
    """Functional cache hierarchy shared by all execution engines."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.layout = MemoryLayout(config.line_size)
        self.l1 = [
            Cache(config.l1_size, config.l1_assoc, config.line_size)
            for _ in range(config.num_cores)
        ]
        self.l2 = [
            Cache(config.l2_size, config.l2_assoc, config.line_size)
            for _ in range(config.num_cores)
        ]
        self.l3 = Cache(config.l3_size, config.l3_assoc, config.line_size)
        self.noc = MeshNoc(
            max(config.num_cores, config.l3_banks),
            config.noc_router_latency,
            config.noc_link_latency,
        )
        self.dram = DramModel(
            num_controllers=config.dram_controllers,
            base_latency=config.dram_latency,
            line_size=config.line_size,
            bytes_per_cycle_per_controller=config.dram_bytes_per_cycle_per_controller,
        )
        # DRAM line fetches attributed per array (Figure 15) and, separately,
        # DRAM line writebacks per array (write traffic never pollutes the
        # read counts the figures are built from).
        self.dram_by_array = [0] * _NUM_ARRAYS
        self.dram_writebacks_by_array = [0] * _NUM_ARRAYS
        # Probe counters for the invariant checker: every demand/engine call
        # into the hierarchy bumps one of these, so conservation equations
        # hold even for engines that take the ``engine_access`` bound method
        # and bypass any observing facade.
        self.demand_probes = 0
        self.engine_probes = 0
        # Invariant-checker hook: called with the line number whenever a
        # dirty line is retired to memory.  Charges nothing.
        self.on_writeback: Callable[[int], None] | None = None
        # Optional MESI directory (Table I); tracks the L2 level, the larger
        # private cache, as each core's coherence point.
        self.coherence = MesiDirectory() if config.track_coherence else None
        # Which cores may hold a line in a private cache (for inclusive-L3
        # back-invalidation); maintained only when ``inclusive_l3`` is set.
        self._owners: dict[int, set[int]] = {}
        self._l3_latency_cache: dict[int, int] = {}

    # -- internal helpers ---------------------------------------------------

    def _l3_round_trip(self, core: int, line: int) -> int:
        """NoC round trip to the owning L3 bank plus bank latency."""
        bank = line % self.config.l3_banks
        key = core * self.config.l3_banks + bank
        latency = self._l3_latency_cache.get(key)
        if latency is None:
            # Banks are striped across mesh tiles.
            tile = (bank * max(1, self.noc.num_tiles // self.config.l3_banks)) % (
                self.noc.num_tiles
            )
            latency = self.noc.round_trip(core, tile) + self.config.l3_latency
            self._l3_latency_cache[key] = latency
        return latency

    def _writeback_to_dram(self, line: int) -> None:
        """Retire a dirty line to memory, attributed to its owning array."""
        self.dram_writebacks_by_array[self.layout.array_of_line(line)] += 1
        self.dram.record_write()
        if self.on_writeback is not None:
            self.on_writeback(line)

    def _back_invalidate(self, line: int) -> bool:
        """Inclusive L3: an evicted line must leave all private caches.

        Returns whether any invalidated private copy was dirty — the caller
        must then write the line back to memory, since ``Cache.invalidate``
        discards the dirty bit along with the line.
        """
        owners = self._owners.pop(line, None)
        if not owners:
            return False
        dirty = False
        for core in owners:
            dirty = self.l1[core].is_dirty(line) or dirty
            dirty = self.l2[core].is_dirty(line) or dirty
            self.l1[core].invalidate(line)
            self.l2[core].invalidate(line)
            if self.coherence is not None:
                self.coherence.on_evict(core, line)
        return dirty

    def _note_owner(self, line: int, core: int) -> None:
        self._owners.setdefault(line, set()).add(core)

    def _prune_owner(self, line: int, core: int) -> None:
        """Drop ``core`` from a line's owner set once neither private cache
        holds the line, so back-invalidation never targets stale owners."""
        if self.l1[core].contains(line) or self.l2[core].contains(line):
            return
        owners = self._owners.get(line)
        if owners is not None:
            owners.discard(core)
            if not owners:
                del self._owners[line]

    # -- fill helpers (victim dirty-bit propagation) --------------------------

    def _fill_l1(self, core: int, line: int, dirty: bool) -> None:
        """Fill the core's L1; a dirty victim is absorbed by the copy in
        L2, else L3, else written back to memory directly."""
        l1 = self.l1[core]
        victim = l1.victim_of(line)
        victim_dirty = victim is not None and l1.is_dirty(victim)
        l1.fill(line, dirty=dirty)
        if victim is None:
            return
        if victim_dirty:
            if not self.l2[core].mark_dirty(victim) and not self.l3.mark_dirty(
                victim
            ):
                self._writeback_to_dram(victim)
        if self.config.inclusive_l3:
            self._prune_owner(victim, core)

    def _fill_l2(self, core: int, line: int) -> None:
        """Fill the core's L2; a dirty victim is absorbed by the L3 copy or
        written back to memory."""
        l2 = self.l2[core]
        victim = l2.victim_of(line)
        victim_dirty = victim is not None and l2.is_dirty(victim)
        l2.fill(line)
        if victim is None:
            return
        if self.coherence is not None:
            self.coherence.on_evict(core, victim)
        if victim_dirty and not self.l3.mark_dirty(victim):
            self._writeback_to_dram(victim)
        if self.config.inclusive_l3:
            self._prune_owner(victim, core)

    def _fill_l3(self, line: int) -> None:
        """Fill the shared L3; a dirty victim — or one with a dirty private
        copy under inclusion — is written back to memory."""
        victim = self.l3.victim_of(line)
        victim_dirty = victim is not None and self.l3.is_dirty(victim)
        self.l3.fill(line)
        if victim is None:
            return
        if self.config.inclusive_l3:
            victim_dirty = self._back_invalidate(victim) or victim_dirty
        if victim_dirty:
            self._writeback_to_dram(victim)

    # -- the access path ------------------------------------------------------

    def access(self, core: int, array: ArrayId, index: int, write: bool = False) -> int:
        """Perform one element access; returns its latency in core cycles."""
        config = self.config
        line = self.layout.line_of(array, index)
        self.demand_probes += 1

        if self.coherence is not None:
            if write:
                self.coherence.on_write(core, line)
            else:
                self.coherence.on_read(core, line)

        latency = config.l1_latency
        if self.l1[core].lookup(line):
            if write:
                self.l1[core].mark_dirty(line)
            return latency

        latency += config.l2_latency
        if self.l2[core].lookup(line):
            self._fill_l1(core, line, dirty=write)
            if self.config.inclusive_l3:
                self._note_owner(line, core)
            return latency

        latency += self._l3_round_trip(core, line)
        if not self.l3.lookup(line):
            # Miss to DRAM.
            latency += self.dram.record_access()
            self.dram_by_array[array] += 1
            self._fill_l3(line)

        self._fill_l2(core, line)
        self._fill_l1(core, line, dirty=write)
        if self.config.inclusive_l3:
            self._note_owner(line, core)
        return latency

    def engine_access(self, core: int, array: ArrayId, index: int) -> int:
        """An access issued by the per-core ChGraph engine.

        ChGraph sits beside the L1 but "accesses the main memory via the L2
        cache" (§V-A): it probes L2 directly and fills L2 (never the core's
        L1), so prefetched lines land where the core's demand misses will
        find them without polluting the L1.
        """
        config = self.config
        line = self.layout.line_of(array, index)
        self.engine_probes += 1
        latency = config.l2_latency
        if self.l2[core].lookup(line):
            return latency
        latency += self._l3_round_trip(core, line)
        if not self.l3.lookup(line):
            latency += self.dram.record_access()
            self.dram_by_array[array] += 1
            self._fill_l3(line)
        if self.coherence is not None:
            self.coherence.on_read(core, line)
        self._fill_l2(core, line)
        if self.config.inclusive_l3:
            self._note_owner(line, core)
        return latency

    def touch_sequential(
        self, core: int, array: ArrayId, start: int, count: int, write: bool = False
    ) -> int:
        """Access ``count`` consecutive elements; returns total latency.

        Consecutive elements of the same cache line cost one hierarchy probe
        for the line plus an L1 hit for each subsequent element, which is
        exactly what per-element :meth:`access` produces — this helper exists
        to make engine code read naturally, not to shortcut the model.
        """
        total = 0
        for index in range(start, start + count):
            total += self.access(core, array, index, write=write)
        return total

    # -- statistics -----------------------------------------------------------

    def dram_accesses(self) -> int:
        """Total DRAM line fetches (demand misses)."""
        return sum(self.dram_by_array)

    def dram_breakdown(self) -> dict[ArrayId, int]:
        return {ArrayId(i): count for i, count in enumerate(self.dram_by_array)}

    def writebacks(self) -> int:
        """Dirty lines written back from the hierarchy to memory."""
        return sum(self.dram_writebacks_by_array)

    def writeback_breakdown(self) -> dict[ArrayId, int]:
        """Per-array DRAM write traffic (the write-side of Figure 15)."""
        return {
            ArrayId(i): count
            for i, count in enumerate(self.dram_writebacks_by_array)
        }

    def reset_stats(self) -> None:
        for cache in (*self.l1, *self.l2, self.l3):
            cache.reset_stats()
        self.dram.reset()
        self.dram_by_array = [0] * _NUM_ARRAYS
        self.dram_writebacks_by_array = [0] * _NUM_ARRAYS
        self.demand_probes = 0
        self.engine_probes = 0

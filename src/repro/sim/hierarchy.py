"""The three-level cache hierarchy with per-array DRAM attribution.

Private L1/L2 per core, shared banked inclusive L3, and a DRAM model.  Every
access is attributed to one of the :class:`~repro.sim.layout.ArrayId` arrays
so the Figure 15 breakdown can be reproduced exactly.

Simplifications relative to ZSim (documented in DESIGN.md): MESI is reduced
to inclusive presence + dirty bits — the engines are synchronous and
partition writes by chunk, so cross-core write races do not occur; read
sharing is naturally captured by the shared L3.

Write traffic: victim dirty bits thread down the hierarchy (an L1 dirty
victim is absorbed by the L2 copy, an L2 dirty victim by the L3 copy, and
so on), and a line finally written back to memory is counted per array in
``dram_writebacks_by_array`` — a counter *separate* from ``dram_by_array``,
which holds line *fetches* only, so the Figure 2/14/15 read-count ratios
are unaffected by the write path.  OAG lines are never dirty, matching the
paper's "discard rather than write back" rule for OAG entries.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.cache import Cache
from repro.sim.coherence import MesiDirectory
from repro.sim.config import SystemConfig
from repro.sim.dram import DramModel
from repro.sim.layout import ArrayId, MemoryLayout
from repro.sim.noc import MeshNoc

__all__ = ["MemoryHierarchy"]

_NUM_ARRAYS = len(ArrayId)


class MemoryHierarchy:
    """Functional cache hierarchy shared by all execution engines."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.layout = MemoryLayout(config.line_size)
        self.l1 = [
            Cache(config.l1_size, config.l1_assoc, config.line_size)
            for _ in range(config.num_cores)
        ]
        self.l2 = [
            Cache(config.l2_size, config.l2_assoc, config.line_size)
            for _ in range(config.num_cores)
        ]
        self.l3 = Cache(config.l3_size, config.l3_assoc, config.line_size)
        self.noc = MeshNoc(
            max(config.num_cores, config.l3_banks),
            config.noc_router_latency,
            config.noc_link_latency,
        )
        self.dram = DramModel(
            num_controllers=config.dram_controllers,
            base_latency=config.dram_latency,
            line_size=config.line_size,
            bytes_per_cycle_per_controller=config.dram_bytes_per_cycle_per_controller,
        )
        # DRAM line fetches attributed per array (Figure 15) and, separately,
        # DRAM line writebacks per array (write traffic never pollutes the
        # read counts the figures are built from).
        self.dram_by_array = [0] * _NUM_ARRAYS
        self.dram_writebacks_by_array = [0] * _NUM_ARRAYS
        # Probe counters for the invariant checker: every demand/engine call
        # into the hierarchy bumps one of these, so conservation equations
        # hold even for engines that take the ``engine_access`` bound method
        # and bypass any observing facade.
        self.demand_probes = 0
        self.engine_probes = 0
        # Invariant-checker hook: called with the line number whenever a
        # dirty line is retired to memory.  Charges nothing.
        self.on_writeback: Callable[[int], None] | None = None
        # Optional MESI directory (Table I); tracks the L2 level, the larger
        # private cache, as each core's coherence point.
        self.coherence = MesiDirectory() if config.track_coherence else None
        # Which cores may hold a line in a private cache (for inclusive-L3
        # back-invalidation); maintained only when ``inclusive_l3`` is set.
        self._owners: dict[int, set[int]] = {}
        self._l3_latency_cache: dict[int, int] = {}
        # Hot-path constants hoisted out of per-access attribute chains.
        self._l1_latency = config.l1_latency
        self._l2_latency = config.l2_latency
        self._inclusive = config.inclusive_l3

    # -- internal helpers ---------------------------------------------------

    def _l3_round_trip(self, core: int, line: int) -> int:
        """NoC round trip to the owning L3 bank plus bank latency."""
        bank = line % self.config.l3_banks
        key = core * self.config.l3_banks + bank
        latency = self._l3_latency_cache.get(key)
        if latency is None:
            # Banks are striped across mesh tiles.
            tile = (bank * max(1, self.noc.num_tiles // self.config.l3_banks)) % (
                self.noc.num_tiles
            )
            latency = self.noc.round_trip(core, tile) + self.config.l3_latency
            self._l3_latency_cache[key] = latency
        return latency

    def _writeback_to_dram(self, line: int) -> None:
        """Retire a dirty line to memory, attributed to its owning array."""
        self.dram_writebacks_by_array[self.layout.array_of_line(line)] += 1
        self.dram.record_write()
        if self.on_writeback is not None:
            self.on_writeback(line)

    def _back_invalidate(self, line: int) -> bool:
        """Inclusive L3: an evicted line must leave all private caches.

        Returns whether any invalidated private copy was dirty — the caller
        must then write the line back to memory, since ``Cache.invalidate``
        discards the dirty bit along with the line.
        """
        owners = self._owners.pop(line, None)
        if not owners:
            return False
        dirty = False
        for core in owners:
            dirty = self.l1[core].is_dirty(line) or dirty
            dirty = self.l2[core].is_dirty(line) or dirty
            self.l1[core].invalidate(line)
            self.l2[core].invalidate(line)
            if self.coherence is not None:
                self.coherence.on_evict(core, line)
        return dirty

    def _note_owner(self, line: int, core: int) -> None:
        self._owners.setdefault(line, set()).add(core)

    def _prune_owner(self, line: int, core: int) -> None:
        """Drop ``core`` from a line's owner set once neither private cache
        holds the line, so back-invalidation never targets stale owners."""
        if self.l1[core].contains(line) or self.l2[core].contains(line):
            return
        owners = self._owners.get(line)
        if owners is not None:
            owners.discard(core)
            if not owners:
                del self._owners[line]

    # -- fill helpers (victim dirty-bit propagation) --------------------------

    # The fills below manipulate the cache's recency dicts directly rather
    # than composing ``victim_of`` + ``is_dirty`` + ``fill`` — same victim
    # choice, same stats bumps, same dirty-bit handling, three calls fewer
    # on every miss.  They are only ever called with ``line`` absent (the
    # caller just took the miss; back-invalidation can only *remove* lines).

    def _fill_l1(self, core: int, line: int, dirty: bool) -> None:
        """Fill the core's L1; a dirty victim is absorbed by the copy in
        L2, else L3, else written back to memory directly."""
        l1 = self.l1[core]
        ways = l1._sets[line % l1.num_sets]
        dirty_lines = l1._dirty
        victim = None
        victim_dirty = False
        if len(ways) >= l1.associativity:
            victim = next(iter(ways))
            del ways[victim]
            l1.stats.evictions += 1
            if victim in dirty_lines:
                dirty_lines.discard(victim)
                l1.stats.writebacks += 1
                victim_dirty = True
        ways[line] = None
        if dirty:
            dirty_lines.add(line)
        if victim is None:
            return
        if victim_dirty:
            # Inline mark_dirty: absorb the writeback at the first level
            # still holding the victim, else retire it to memory.
            l2 = self.l2[core]
            if victim in l2._sets[victim % l2.num_sets]:
                l2._dirty.add(victim)
            else:
                l3 = self.l3
                if victim in l3._sets[victim % l3.num_sets]:
                    l3._dirty.add(victim)
                else:
                    self._writeback_to_dram(victim)
        if self._inclusive:
            self._prune_owner(victim, core)

    def _fill_l2(self, core: int, line: int) -> None:
        """Fill the core's L2; a dirty victim is absorbed by the L3 copy or
        written back to memory."""
        l2 = self.l2[core]
        ways = l2._sets[line % l2.num_sets]
        victim = None
        victim_dirty = False
        if len(ways) >= l2.associativity:
            victim = next(iter(ways))
            del ways[victim]
            l2.stats.evictions += 1
            if victim in l2._dirty:
                l2._dirty.discard(victim)
                l2.stats.writebacks += 1
                victim_dirty = True
        ways[line] = None
        if victim is None:
            return
        if self.coherence is not None:
            self.coherence.on_evict(core, victim)
        if victim_dirty:
            l3 = self.l3
            if victim in l3._sets[victim % l3.num_sets]:
                l3._dirty.add(victim)
            else:
                self._writeback_to_dram(victim)
        if self._inclusive:
            self._prune_owner(victim, core)

    def _fill_l3(self, line: int) -> None:
        """Fill the shared L3; a dirty victim — or one with a dirty private
        copy under inclusion — is written back to memory."""
        l3 = self.l3
        ways = l3._sets[line % l3.num_sets]
        victim = None
        victim_dirty = False
        if len(ways) >= l3.associativity:
            victim = next(iter(ways))
            del ways[victim]
            l3.stats.evictions += 1
            if victim in l3._dirty:
                l3._dirty.discard(victim)
                l3.stats.writebacks += 1
                victim_dirty = True
        ways[line] = None
        if victim is None:
            return
        if self._inclusive:
            victim_dirty = self._back_invalidate(victim) or victim_dirty
        if victim_dirty:
            self._writeback_to_dram(victim)

    # -- the access path ------------------------------------------------------

    # The L1/L2 *hit* paths below are inlined over the fast cache's dict
    # sets rather than going through ``Cache.lookup``/``mark_dirty`` — same
    # operations (promote to MRU, bump hit counter, set dirty bit), minus
    # two Python calls per probe on the path that serves the vast majority
    # of accesses.  ``tests/sim/test_hierarchy_batched.py`` pins the
    # equivalence against a per-element reference walk.

    def access(self, core: int, array: ArrayId, index: int, write: bool = False) -> int:
        """Perform one element access; returns its latency in core cycles."""
        layout = self.layout
        line = layout._line_base[array] + (
            (index * layout._elem_bytes[array]) >> layout._line_shift
        )
        self.demand_probes += 1

        if self.coherence is not None:
            if write:
                self.coherence.on_write(core, line)
            else:
                self.coherence.on_read(core, line)

        l1 = self.l1[core]
        ways = l1._sets[line % l1.num_sets]
        if line in ways:
            del ways[line]
            ways[line] = None
            l1.stats.hits += 1
            if write:
                l1._dirty.add(line)
            return self._l1_latency
        l1.stats.misses += 1
        return self._demand_miss(core, array, line, write)

    def _demand_miss(self, core: int, array: ArrayId, line: int, write: bool) -> int:
        """The demand path past an L1 miss (shared with the fast closures).

        The trailing L1 fill is :meth:`_fill_l1` spelled inline — this runs
        once per L1 miss, the hottest fill site, and the call overhead is
        measurable.  Any change here must mirror ``_fill_l1`` exactly.
        """
        latency = self._l1_latency + self._l2_latency
        l2 = self.l2[core]
        l2_ways = l2._sets[line % l2.num_sets]
        if line in l2_ways:
            del l2_ways[line]
            l2_ways[line] = None
            l2.stats.hits += 1
        else:
            l2.stats.misses += 1
            latency += self._l3_round_trip(core, line)
            if not self.l3.lookup(line):
                # Miss to DRAM.
                latency += self.dram.record_access()
                self.dram_by_array[array] += 1
                self._fill_l3(line)
            self._fill_l2(core, line)

        l1 = self.l1[core]
        ways = l1._sets[line % l1.num_sets]
        dirty_lines = l1._dirty
        victim = None
        victim_dirty = False
        if len(ways) >= l1.associativity:
            victim = next(iter(ways))
            del ways[victim]
            l1.stats.evictions += 1
            if victim in dirty_lines:
                dirty_lines.discard(victim)
                l1.stats.writebacks += 1
                victim_dirty = True
        ways[line] = None
        if write:
            dirty_lines.add(line)
        if victim is not None:
            if victim_dirty:
                if victim in l2._sets[victim % l2.num_sets]:
                    l2._dirty.add(victim)
                else:
                    l3 = self.l3
                    if victim in l3._sets[victim % l3.num_sets]:
                        l3._dirty.add(victim)
                    else:
                        self._writeback_to_dram(victim)
            if self._inclusive:
                self._prune_owner(victim, core)
        if self._inclusive:
            self._note_owner(line, core)
        return latency

    def engine_access(self, core: int, array: ArrayId, index: int) -> int:
        """An access issued by the per-core ChGraph engine.

        ChGraph sits beside the L1 but "accesses the main memory via the L2
        cache" (§V-A): it probes L2 directly and fills L2 (never the core's
        L1), so prefetched lines land where the core's demand misses will
        find them without polluting the L1.
        """
        layout = self.layout
        line = layout._line_base[array] + (
            (index * layout._elem_bytes[array]) >> layout._line_shift
        )
        self.engine_probes += 1
        l2 = self.l2[core]
        ways = l2._sets[line % l2.num_sets]
        if line in ways:
            del ways[line]
            ways[line] = None
            l2.stats.hits += 1
            return self._l2_latency
        l2.stats.misses += 1
        return self._engine_miss(core, array, line)

    def _engine_miss(self, core: int, array: ArrayId, line: int) -> int:
        """The engine path past an L2 miss (shared with :meth:`engine_prober`).

        The trailing L2 fill is :meth:`_fill_l2` spelled inline (the hottest
        L2-fill site); any change here must mirror ``_fill_l2`` exactly.
        """
        latency = self._l2_latency + self._l3_round_trip(core, line)
        if not self.l3.lookup(line):
            latency += self.dram.record_access()
            self.dram_by_array[array] += 1
            self._fill_l3(line)
        if self.coherence is not None:
            self.coherence.on_read(core, line)

        l2 = self.l2[core]
        ways = l2._sets[line % l2.num_sets]
        victim = None
        victim_dirty = False
        if len(ways) >= l2.associativity:
            victim = next(iter(ways))
            del ways[victim]
            l2.stats.evictions += 1
            if victim in l2._dirty:
                l2._dirty.discard(victim)
                l2.stats.writebacks += 1
                victim_dirty = True
        ways[line] = None
        if victim is not None:
            if self.coherence is not None:
                self.coherence.on_evict(core, victim)
            if victim_dirty:
                l3 = self.l3
                if victim in l3._sets[victim % l3.num_sets]:
                    l3._dirty.add(victim)
                else:
                    self._writeback_to_dram(victim)
            if self._inclusive:
                self._prune_owner(victim, core)
        if self._inclusive:
            self._note_owner(line, core)
        return latency

    # -- pre-bound hot-path closures ------------------------------------------
    #
    # The engines' inner loops probe the same (core, array) pair tens of
    # thousands of times per phase.  These factories return closures with
    # the line arithmetic, set list, stats object and latencies already
    # bound, so each probe is one call with one integer argument — the same
    # state transitions as ``access``/``engine_access``, verified by
    # ``tests/sim/test_hierarchy_batched.py``.

    def engine_prober(self, core: int, array: ArrayId, counted: bool = True):
        """A bound ``probe(index) -> latency`` over :meth:`engine_access`.

        With ``counted=False`` the closure does NOT bump ``engine_probes``
        — the caller takes over that accounting (it knows exactly how many
        probes it issued) and must add the total itself.  The probe counter
        is order-independent, so deferring it is exact.
        """
        layout = self.layout
        base = layout._line_base[array]
        elem_bytes = layout._elem_bytes[array]
        shift = layout._line_shift
        l2 = self.l2[core]
        sets = l2._sets
        num_sets = l2.num_sets
        stats = l2.stats
        l2_latency = self._l2_latency
        engine_miss = self._engine_miss

        if counted:

            def probe(index: int) -> int:
                line = base + ((index * elem_bytes) >> shift)
                self.engine_probes += 1
                ways = sets[line % num_sets]
                if line in ways:
                    del ways[line]
                    ways[line] = None
                    stats.hits += 1
                    return l2_latency
                stats.misses += 1
                return engine_miss(core, array, line)

            return probe

        def probe_uncounted(index: int) -> int:
            line = base + ((index * elem_bytes) >> shift)
            ways = sets[line % num_sets]
            if line in ways:
                del ways[line]
                ways[line] = None
                stats.hits += 1
                return l2_latency
            stats.misses += 1
            return engine_miss(core, array, line)

        return probe_uncounted

    def engine_pair_prober(self, core: int, array: ArrayId):
        """A bound ``probe_pair(start) -> latency`` equal to
        ``engine_access_block(core, array, start, 2)``.

        The offsets-pair fetch (an element's ``[start, end)`` bounds) is the
        engines' commonest block access; this closure specializes the
        two-element case: one probe, plus either a free same-line hit or a
        second probe when the pair straddles a line boundary.
        """
        layout = self.layout
        if layout._elems_per_line[array] <= 1:
            engine_access = self.engine_access

            def probe_pair_wide(start: int) -> int:
                return engine_access(core, array, start) + engine_access(
                    core, array, start + 1
                )

            return probe_pair_wide
        base = layout._line_base[array]
        elem_bytes = layout._elem_bytes[array]
        shift = layout._line_shift
        l2 = self.l2[core]
        sets = l2._sets
        num_sets = l2.num_sets
        stats = l2.stats
        l2_latency = self._l2_latency
        engine_miss = self._engine_miss

        def probe_pair(start: int) -> int:
            line = base + ((start * elem_bytes) >> shift)
            self.engine_probes += 2
            ways = sets[line % num_sets]
            if line in ways:
                del ways[line]
                ways[line] = None
                stats.hits += 1
                total = l2_latency
            else:
                stats.misses += 1
                total = engine_miss(core, array, line)
            line2 = base + (((start + 1) * elem_bytes) >> shift)
            if line2 == line:
                # Same line: charged as an L2 hit without re-probing (the
                # first probe left it resident and MRU).
                stats.hits += 1
                return total + l2_latency
            ways = sets[line2 % num_sets]
            if line2 in ways:
                del ways[line2]
                ways[line2] = None
                stats.hits += 1
                return total + l2_latency
            stats.misses += 1
            return total + engine_miss(core, array, line2)

        return probe_pair

    def demand_prober(self, core: int, array: ArrayId, write: bool = False):
        """A bound ``probe(index) -> latency`` over :meth:`access`.

        With coherence tracking enabled the coherence hook must run before
        the L1 probe, so the closure simply defers to :meth:`access`.
        """
        if self.coherence is not None:
            access = self.access

            def probe_coherent(index: int) -> int:
                return access(core, array, index, write)

            return probe_coherent
        layout = self.layout
        base = layout._line_base[array]
        elem_bytes = layout._elem_bytes[array]
        shift = layout._line_shift
        l1 = self.l1[core]
        sets = l1._sets
        num_sets = l1.num_sets
        stats = l1.stats
        dirty_lines = l1._dirty
        l1_latency = self._l1_latency
        demand_miss = self._demand_miss

        if write:

            def probe_write(index: int) -> int:
                line = base + ((index * elem_bytes) >> shift)
                self.demand_probes += 1
                ways = sets[line % num_sets]
                if line in ways:
                    del ways[line]
                    ways[line] = None
                    stats.hits += 1
                    dirty_lines.add(line)
                    return l1_latency
                stats.misses += 1
                return demand_miss(core, array, line, True)

            return probe_write

        def probe_read(index: int) -> int:
            line = base + ((index * elem_bytes) >> shift)
            self.demand_probes += 1
            ways = sets[line % num_sets]
            if line in ways:
                del ways[line]
                ways[line] = None
                stats.hits += 1
                return l1_latency
            stats.misses += 1
            return demand_miss(core, array, line, False)

        return probe_read

    # -- batched (line-granular) access ---------------------------------------
    #
    # Why batching is *bit-identical* to the per-element loop it replaces:
    # after ``access(core, array, index)`` returns, the touched line is
    # resident (and MRU) in the core's L1 — the hit path promotes it, and
    # every miss path ends in ``_fill_l1``.  A subsequent access to another
    # element of the *same line* therefore always takes the L1-hit path:
    # it bumps ``demand_probes`` and ``l1.stats.hits``, costs exactly
    # ``l1_latency``, promotes an already-MRU line (a no-op on LRU order),
    # re-marks an already-dirty line on writes (a no-op on state), and its
    # coherence call returns without transitions or stats (``on_read`` with
    # the core already a sharer; ``on_write`` with the core already the sole
    # M owner).  So the successors can be charged arithmetically.  The same
    # argument holds for :meth:`engine_access` with L2 in place of L1 —
    # and there the L2-hit path performs no coherence call at all.

    def access_block(
        self, core: int, array: ArrayId, start: int, count: int, write: bool = False
    ) -> int:
        """Access ``count`` consecutive elements; returns total latency.

        Probes the hierarchy once per cache line and charges the remaining
        same-line elements as L1 hits — provably identical to calling
        :meth:`access` once per element (see the note above).
        """
        if count <= 0:
            return 0
        layout = self.layout
        epl = layout._elems_per_line[array]
        if epl <= 1:
            total = 0
            for index in range(start, start + count):
                total += self.access(core, array, index, write=write)
            return total
        l1_latency = self._l1_latency
        l1_stats = self.l1[core].stats
        access = self.access
        total = 0
        index = start
        end = start + count
        while index < end:
            total += access(core, array, index, write=write)
            boundary = (index // epl + 1) * epl  # first element of next line
            if boundary > end:
                boundary = end
            extra = boundary - index - 1
            if extra > 0:
                l1_stats.hits += extra
                self.demand_probes += extra
                total += extra * l1_latency
            index = boundary
        return total

    def engine_access_block(
        self, core: int, array: ArrayId, start: int, count: int
    ) -> int:
        """Engine-side access of ``count`` consecutive elements.

        One L2-side probe per line; same-line successors are charged as L2
        hits — identical to per-element :meth:`engine_access` (see above).
        """
        if count <= 0:
            return 0
        layout = self.layout
        epl = layout._elems_per_line[array]
        if epl <= 1:
            total = 0
            for index in range(start, start + count):
                total += self.engine_access(core, array, index)
            return total
        l2_latency = self._l2_latency
        l2_stats = self.l2[core].stats
        engine_access = self.engine_access
        total = 0
        index = start
        end = start + count
        while index < end:
            total += engine_access(core, array, index)
            boundary = (index // epl + 1) * epl
            if boundary > end:
                boundary = end
            extra = boundary - index - 1
            if extra > 0:
                l2_stats.hits += extra
                self.engine_probes += extra
                total += extra * l2_latency
            index = boundary
        return total

    def touch_sequential(
        self, core: int, array: ArrayId, start: int, count: int, write: bool = False
    ) -> int:
        """Access ``count`` consecutive elements; returns total latency.

        Alias for :meth:`access_block`, kept for readability at call sites
        that walk an array once rather than batching a known-width field.
        """
        return self.access_block(core, array, start, count, write=write)

    # -- statistics -----------------------------------------------------------

    def dram_accesses(self) -> int:
        """Total DRAM line fetches (demand misses)."""
        return sum(self.dram_by_array)

    def dram_breakdown(self) -> dict[ArrayId, int]:
        return {ArrayId(i): count for i, count in enumerate(self.dram_by_array)}

    def writebacks(self) -> int:
        """Dirty lines written back from the hierarchy to memory."""
        return sum(self.dram_writebacks_by_array)

    def writeback_breakdown(self) -> dict[ArrayId, int]:
        """Per-array DRAM write traffic (the write-side of Figure 15)."""
        return {
            ArrayId(i): count
            for i, count in enumerate(self.dram_writebacks_by_array)
        }

    def reset_stats(self) -> None:
        for cache in (*self.l1, *self.l2, self.l3):
            cache.reset_stats()
        self.dram.reset()
        self.dram_by_array = [0] * _NUM_ARRAYS
        self.dram_writebacks_by_array = [0] * _NUM_ARRAYS
        self.demand_probes = 0
        self.engine_probes = 0

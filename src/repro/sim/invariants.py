"""Runtime invariant checking over an instrumented simulation.

:class:`InvariantChecker` is an :class:`~repro.sim.observe.Observer`: attach
it to an :class:`~repro.sim.observe.InstrumentedSystem` and every barrier
audits the hierarchy's books.  Observation charges nothing, so a checked
run's results are bit-identical to an unchecked one — the checker *reads*
cache state through the stat-free probes (``contains``/``is_dirty``/
``victim_of``/``max_set_occupancy``) and never touches LRU order.

What is asserted:

- **Counter conservation.**  Per-level access counts must telescope: L1
  demand accesses equal the hierarchy's demand probes, L2 accesses equal L1
  misses plus engine probes, L3 accesses equal L2 misses, DRAM fetches
  equal L3 misses, and the per-array DRAM attributions must sum to the DRAM
  totals.  The equations are written against the *hierarchy's own*
  counters (``demand_probes``/``engine_probes``), so they hold even for
  engines that take the ``engine_access`` bound method and bypass the
  observing facade (ChGraph, the event prefetcher).
- **Measurement coverage.**  The demand accesses the facade observed must
  equal the hierarchy's demand probes — an engine charging demand traffic
  behind the observers' backs is itself a violation.
- **Dirty-line conservation.**  Every line dirtied by a demand write stays
  dirty-resident in some cache until it is retired by exactly one DRAM
  writeback (the hierarchy's ``on_writeback`` hook).  This is the check
  that catches the "dirty bits silently dropped during fill /
  back-invalidation" bug class.
- **L3 inclusion.**  Under ``inclusive_l3``, every line resident in a
  private cache must be resident in the L3.
- **Structural bounds.**  No cache set exceeds its associativity; watched
  FIFOs stay within ``0 <= occupancy <= depth`` with ``pops <= pushes``.
- **Frontier integrity.**  On every phase event carrying a live
  :class:`~repro.hypergraph.frontier.Frontier`, its memoized count must
  equal an uncached popcount of its bitmap.

Violations accumulate as human-readable strings (capped), surface through
:meth:`~repro.sim.observe.InstrumentedSystem.telemetry` into
:class:`~repro.sim.telemetry.RunTelemetry.violations`, and optionally raise
:class:`InvariantViolationError` immediately (``strict=True``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sim.cache import Cache
from repro.sim.observe import InstrumentedSystem, Observer
from repro.sim.protocol import PHASE_BEGIN, PHASE_END, EngineEvent

if TYPE_CHECKING:
    from repro.chgraph.fifo import BoundedFifo
    from repro.sim.hierarchy import MemoryHierarchy
    from repro.sim.layout import ArrayId

__all__ = ["InvariantChecker", "InvariantViolationError", "check_fifo"]


class InvariantViolationError(AssertionError):
    """A simulation invariant failed (raised only in ``strict`` mode)."""


def check_fifo(fifo: "BoundedFifo", name: str = "fifo") -> list[str]:
    """Structural invariants of one bounded FIFO, as violation strings."""
    violations: list[str] = []
    occupancy = len(fifo)
    if not 0 <= occupancy <= fifo.depth:
        violations.append(
            f"{name}: occupancy {occupancy} outside [0, {fifo.depth}]"
        )
    if fifo.max_occupancy > fifo.depth:
        violations.append(
            f"{name}: max_occupancy {fifo.max_occupancy} > depth {fifo.depth}"
        )
    if fifo.pops > fifo.pushes:
        violations.append(
            f"{name}: pops {fifo.pops} > pushes {fifo.pushes}"
        )
    if fifo.pushes - fifo.pops != occupancy:
        violations.append(
            f"{name}: pushes - pops = {fifo.pushes - fifo.pops} "
            f"!= occupancy {occupancy}"
        )
    return violations


class _CounterBaseline:
    """Counter values at attach time, so a checker can audit a system that
    already has history (deltas, not absolutes)."""

    def __init__(self, hierarchy: "MemoryHierarchy") -> None:
        self.l1_accesses = sum(c.stats.accesses for c in hierarchy.l1)
        self.l1_misses = sum(c.stats.misses for c in hierarchy.l1)
        self.l2_accesses = sum(c.stats.accesses for c in hierarchy.l2)
        self.l2_misses = sum(c.stats.misses for c in hierarchy.l2)
        self.l3_accesses = hierarchy.l3.stats.accesses
        self.l3_misses = hierarchy.l3.stats.misses
        self.dram_accesses = hierarchy.dram.accesses
        self.dram_writes = hierarchy.dram.writes
        self.dram_by_array = sum(hierarchy.dram_by_array)
        self.dram_writebacks_by_array = sum(hierarchy.dram_writebacks_by_array)
        self.demand_probes = hierarchy.demand_probes
        self.engine_probes = hierarchy.engine_probes


class InvariantChecker(Observer):
    """Audits hierarchy bookkeeping at every barrier; charges nothing."""

    def __init__(self, strict: bool = False, max_violations: int = 50) -> None:
        self.strict = strict
        self.max_violations = max_violations
        self.barriers_checked = 0
        self._violations: list[str] = []
        self._truncated = False
        self._hierarchy: "MemoryHierarchy | None" = None
        self._baseline: _CounterBaseline | None = None
        self._observed_demand = 0
        self._fifos: dict[str, "BoundedFifo"] = {}
        # Lines believed dirty in some cache: demand writes add, DRAM
        # writebacks retire.
        self._dirty_shadow: set[int] = set()

    # -- wiring --------------------------------------------------------------

    def on_attach(self, system: "InstrumentedSystem") -> None:
        hierarchy = system.hierarchy
        self._hierarchy = hierarchy
        if hierarchy is None:
            return
        self._baseline = _CounterBaseline(hierarchy)
        for cache in self._caches(hierarchy):
            self._dirty_shadow.update(cache.dirty_lines())
        previous: Callable[[int], None] | None = hierarchy.on_writeback

        def hook(line: int) -> None:
            if previous is not None:
                previous(line)
            self._on_writeback(line)

        hierarchy.on_writeback = hook

    def watch_fifo(self, name: str, fifo: "BoundedFifo") -> None:
        """Include ``fifo`` in the per-barrier structural checks."""
        self._fifos[name] = fifo

    # -- violation plumbing --------------------------------------------------

    def violations(self) -> list[str]:
        found = list(self._violations)
        if self._truncated:
            found.append(
                f"... further violations suppressed "
                f"(cap {self.max_violations})"
            )
        return found

    @property
    def ok(self) -> bool:
        return not self._violations

    def _report(self, message: str) -> None:
        if self.strict:
            raise InvariantViolationError(message)
        if len(self._violations) >= self.max_violations:
            self._truncated = True
            return
        self._violations.append(message)

    @staticmethod
    def _caches(hierarchy: "MemoryHierarchy") -> list[Cache]:
        return [*hierarchy.l1, *hierarchy.l2, hierarchy.l3]

    # -- observer hooks ------------------------------------------------------

    def on_access(
        self, kind: str, core: int, array: "ArrayId", index: int, latency: int
    ) -> None:
        if kind != "engine":
            self._observed_demand += 1
        if latency < 0:
            self._report(
                f"access {kind} core={core} {array.name}[{index}]: "
                f"negative latency {latency}"
            )
        if kind == "write" and self._hierarchy is not None:
            self._dirty_shadow.add(self._hierarchy.layout.line_of(array, index))

    def _on_writeback(self, line: int) -> None:
        if self._hierarchy is None:
            return
        if line not in self._dirty_shadow:
            self._report(
                f"writeback of line {line} that was never dirtied"
            )
            return
        # Retire the line unless another cache level still holds it dirty
        # (e.g. an L3 copy written back while a re-dirtied L1 copy lives on).
        if not any(
            cache.is_dirty(line) for cache in self._caches(self._hierarchy)
        ):
            self._dirty_shadow.discard(line)

    def on_event(self, event: EngineEvent) -> None:
        frontier = event.frontier
        if frontier is None or event.kind not in (PHASE_BEGIN, PHASE_END):
            return
        cached = frontier.cached_count()
        if cached is None:
            return
        actual = frontier.recount()
        if cached != actual:
            self._report(
                f"{event.kind} iter={event.iteration} phase={event.phase}: "
                f"frontier cached count {cached} != popcount {actual}"
            )

    def on_barrier(self, elapsed: float) -> None:
        self.barriers_checked += 1
        if elapsed < 0:
            self._report(f"barrier returned negative phase time {elapsed}")
        hierarchy = self._hierarchy
        if hierarchy is not None:
            self._check_conservation(hierarchy)
            self._check_dirty_residency(hierarchy)
            self._check_inclusion(hierarchy)
            self._check_occupancy(hierarchy)
        for name, fifo in self._fifos.items():
            for message in check_fifo(fifo, name):
                self._report(message)

    # -- barrier checks ------------------------------------------------------

    def _check_conservation(self, hierarchy: "MemoryHierarchy") -> None:
        base = self._baseline
        if base is None:
            return
        now = _CounterBaseline(hierarchy)
        for cache in self._caches(hierarchy):
            stats = cache.stats
            if stats.hits + stats.misses != stats.accesses:
                self._report(
                    f"{cache!r}: hits {stats.hits} + misses {stats.misses} "
                    f"!= accesses {stats.accesses}"
                )
        equations = [
            (
                "L1 demand accesses",
                now.l1_accesses - base.l1_accesses,
                "hierarchy demand probes",
                now.demand_probes - base.demand_probes,
            ),
            (
                "L2 accesses",
                now.l2_accesses - base.l2_accesses,
                "L1 misses + engine probes",
                (now.l1_misses - base.l1_misses)
                + (now.engine_probes - base.engine_probes),
            ),
            (
                "L3 accesses",
                now.l3_accesses - base.l3_accesses,
                "L2 misses",
                now.l2_misses - base.l2_misses,
            ),
            (
                "DRAM fetches",
                now.dram_accesses - base.dram_accesses,
                "L3 misses",
                now.l3_misses - base.l3_misses,
            ),
            (
                "per-array DRAM fetches",
                now.dram_by_array - base.dram_by_array,
                "DRAM fetches",
                now.dram_accesses - base.dram_accesses,
            ),
            (
                "per-array DRAM writebacks",
                now.dram_writebacks_by_array - base.dram_writebacks_by_array,
                "DRAM writes",
                now.dram_writes - base.dram_writes,
            ),
            (
                "observed demand accesses",
                self._observed_demand,
                "hierarchy demand probes",
                now.demand_probes - base.demand_probes,
            ),
        ]
        for left_name, left, right_name, right in equations:
            if left != right:
                self._report(
                    f"conservation: {left_name} ({left}) != "
                    f"{right_name} ({right})"
                )

    def _check_dirty_residency(self, hierarchy: "MemoryHierarchy") -> None:
        caches = self._caches(hierarchy)
        resident_dirty: set[int] = set()
        for cache in caches:
            resident_dirty.update(cache.dirty_lines())
        lost = self._dirty_shadow - resident_dirty
        for line in sorted(lost):
            self._report(
                f"dirty line {line} lost: neither resident in any cache "
                f"nor retired by a DRAM writeback"
            )
        self._dirty_shadow -= lost  # report each loss once
        untracked = resident_dirty - self._dirty_shadow
        for line in sorted(untracked):
            self._report(
                f"cache holds dirty line {line} that no observed demand "
                f"write produced"
            )
        self._dirty_shadow |= untracked

    def _check_inclusion(self, hierarchy: "MemoryHierarchy") -> None:
        if not hierarchy.config.inclusive_l3:
            return
        l3 = hierarchy.l3
        for core in range(hierarchy.config.num_cores):
            for level, cache in (("L1", hierarchy.l1[core]), ("L2", hierarchy.l2[core])):
                for line in cache.resident_lines():
                    if not l3.contains(line):
                        self._report(
                            f"inclusion: core {core} {level} holds line "
                            f"{line} absent from the inclusive L3"
                        )

    def _check_occupancy(self, hierarchy: "MemoryHierarchy") -> None:
        for cache in self._caches(hierarchy):
            occupancy = cache.max_set_occupancy()
            if occupancy > cache.associativity:
                self._report(
                    f"{cache!r}: set occupancy {occupancy} exceeds "
                    f"associativity {cache.associativity}"
                )

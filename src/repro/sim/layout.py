"""Virtual address layout of the named hypergraph arrays.

Figure 13 lists the arrays the core conveys to ChGraph via memory-mapped
registers: the two CSR directions (``hyperedge_offset`` / ``incident_vertex``
and ``vertex_offset`` / ``incident_hyperedge``), the two value arrays, the
activity bitmap, and the three OAG arrays.  The cache simulator attributes
every access to one of these arrays so Figure 15's breakdown can be
reproduced.
"""

from __future__ import annotations

import enum

__all__ = ["ArrayId", "ARRAY_GROUPS", "MemoryLayout"]


class ArrayId(enum.IntEnum):
    """The ten named arrays of Figure 13 (plus the activity bitmap)."""

    HYPEREDGE_OFFSET = 0
    INCIDENT_VERTEX = 1
    HYPEREDGE_VALUE = 2
    VERTEX_OFFSET = 3
    INCIDENT_HYPEREDGE = 4
    VERTEX_VALUE = 5
    BITMAP = 6
    OAG_OFFSET = 7
    OAG_EDGE = 8
    OAG_WEIGHT = 9


#: Figure 15 groups its breakdown into offset / incident / value / OAG / other.
ARRAY_GROUPS: dict[str, tuple[ArrayId, ...]] = {
    "offset": (ArrayId.HYPEREDGE_OFFSET, ArrayId.VERTEX_OFFSET),
    "incident": (ArrayId.INCIDENT_VERTEX, ArrayId.INCIDENT_HYPEREDGE),
    "value": (ArrayId.HYPEREDGE_VALUE, ArrayId.VERTEX_VALUE),
    "oag": (ArrayId.OAG_OFFSET, ArrayId.OAG_EDGE, ArrayId.OAG_WEIGHT),
    "other": (ArrayId.BITMAP,),
}

#: Element width in bytes per array: ids and offsets are 4 B, values 8 B,
#: bitmap entries are modelled at byte granularity.
ELEMENT_BYTES: dict[ArrayId, int] = {
    ArrayId.HYPEREDGE_OFFSET: 4,
    ArrayId.INCIDENT_VERTEX: 4,
    ArrayId.HYPEREDGE_VALUE: 8,
    ArrayId.VERTEX_OFFSET: 4,
    ArrayId.INCIDENT_HYPEREDGE: 4,
    ArrayId.VERTEX_VALUE: 8,
    ArrayId.BITMAP: 1,
    ArrayId.OAG_OFFSET: 4,
    ArrayId.OAG_EDGE: 4,
    ArrayId.OAG_WEIGHT: 4,
}


class MemoryLayout:
    """Maps ``(array, element index)`` to a byte address.

    Arrays live in disjoint 1 GiB-aligned regions so cache lines never
    straddle two arrays and the owning array of any address is recoverable
    from its high bits.
    """

    _REGION_SHIFT = 30  # 1 GiB per array region

    def __init__(self, line_size: int = 64) -> None:
        if line_size & (line_size - 1):
            raise ValueError("line_size must be a power of two")
        self.line_size = line_size
        # Per-array constants, indexed by int(ArrayId), hoisted out of the
        # hot line_of path: the 1 GiB region bases are line-aligned for any
        # power-of-two line size, so
        #   line_of(a, i) == line_base[a] + (i * elem_bytes[a]) >> shift
        # is exact integer arithmetic, not an approximation.
        self._line_shift = line_size.bit_length() - 1
        self._elem_bytes = [ELEMENT_BYTES[a] for a in ArrayId]
        self._line_base = [
            (int(a) << self._REGION_SHIFT) >> self._line_shift for a in ArrayId
        ]
        self._elems_per_line = [line_size // ELEMENT_BYTES[a] for a in ArrayId]

    def address(self, array: ArrayId, index: int) -> int:
        """Byte address of element ``index`` of ``array``."""
        return (int(array) << self._REGION_SHIFT) + index * ELEMENT_BYTES[array]

    def line_of(self, array: ArrayId, index: int) -> int:
        """Cache-line number of element ``index`` of ``array``."""
        return self._line_base[array] + (
            (index * self._elem_bytes[array]) >> self._line_shift
        )

    def lines_of_range(self, array: ArrayId, start: int, count: int) -> range:
        """Cache-line numbers covering elements ``[start, start+count)``.

        Consecutive elements of one array cover a contiguous line range
        (elements never straddle lines: every element width divides the
        line size), so the cover is a plain ``range``.  Empty for
        ``count <= 0``.
        """
        if count <= 0:
            return range(0)
        eb = self._elem_bytes[array]
        base = self._line_base[array]
        shift = self._line_shift
        first = base + ((start * eb) >> shift)
        last = base + (((start + count - 1) * eb) >> shift)
        return range(first, last + 1)

    def array_of_line(self, line: int) -> ArrayId:
        """Recover the owning array of a cache-line number."""
        return ArrayId((line * self.line_size) >> self._REGION_SHIFT)

    def elements_per_line(self, array: ArrayId) -> int:
        return self._elems_per_line[array]

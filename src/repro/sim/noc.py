"""Mesh network-on-chip latency model (Table I: 4x4 mesh, X-Y routing).

L3 banks are distributed across mesh tiles; an L3 access from a core pays
the X-Y hop distance to the owning bank (1-cycle routers + 1-cycle links,
per Table I), both ways.
"""

from __future__ import annotations

import math

__all__ = ["MeshNoc"]


class MeshNoc:
    """An ``n x n`` mesh with X-Y dimension-ordered routing."""

    def __init__(
        self,
        num_tiles: int,
        router_latency: int = 1,
        link_latency: int = 1,
    ) -> None:
        side = int(math.isqrt(num_tiles))
        if side * side != num_tiles:
            side = max(1, side)  # non-square core counts map onto a near-square
            while side * side < num_tiles:
                side += 1
        self.side = side
        self.num_tiles = num_tiles
        self.router_latency = router_latency
        self.link_latency = link_latency

    def coordinates(self, tile: int) -> tuple[int, int]:
        return tile % self.side, tile // self.side

    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop count between two tiles under X-Y routing."""
        sx, sy = self.coordinates(src % self.num_tiles)
        dx, dy = self.coordinates(dst % self.num_tiles)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src: int, dst: int) -> int:
        """One-way latency in cycles: per-hop router + link traversal."""
        hops = self.hops(src, dst)
        return hops * (self.router_latency + self.link_latency)

    def round_trip(self, src: int, dst: int) -> int:
        return 2 * self.latency(src, dst)

    def average_round_trip(self, src: int) -> float:
        """Mean round-trip from ``src`` across all tiles (bank hashing)."""
        total = sum(self.round_trip(src, dst) for dst in range(self.num_tiles))
        return total / self.num_tiles

"""A zero-cost stand-in for :class:`~repro.sim.system.SimulatedSystem`.

Running an engine against a ``NullSystem`` executes the full algorithm
semantics without any cache or timing simulation — the fastest way to get
*answers* (used by correctness tests and by callers who only want results).
It conforms to the :class:`~repro.sim.protocol.MemorySystem` protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.config import SystemConfig, scaled_config
from repro.sim.layout import ArrayId
from repro.sim.timing import TimingBreakdown

if TYPE_CHECKING:
    from repro.sim.hierarchy import MemoryHierarchy
    from repro.sim.protocol import EngineEvent

__all__ = ["NullSystem"]


class NullSystem:
    """Implements the :class:`SimulatedSystem` charging interface as no-ops."""

    #: No cache hierarchy is attached; engines skip raw accesses when None.
    hierarchy: "MemoryHierarchy | None" = None

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or scaled_config()

    def read(self, core: int, array: ArrayId, index: int) -> int:
        return 0

    def read_serial(self, core: int, array: ArrayId, index: int) -> int:
        return 0

    def write(self, core: int, array: ArrayId, index: int) -> int:
        return 0

    def read_block(self, core: int, array: ArrayId, start: int, count: int) -> int:
        return 0

    def read_serial_block(
        self, core: int, array: ArrayId, start: int, count: int
    ) -> int:
        return 0

    def write_block(self, core: int, array: ArrayId, start: int, count: int) -> int:
        return 0

    def engine_read(self, core: int, array: ArrayId, index: int) -> int:
        return 0

    def charge_compute(self, core: int, cycles: float) -> None:
        pass

    def charge_compute_run(self, core: int, cycles: float, count: int) -> None:
        pass

    def demand_writer(self, core: int, array: ArrayId):
        def write_one(index: int) -> int:
            return 0

        return write_one

    def charge_engine(self, core: int, cycles: float) -> None:
        pass

    def barrier(self) -> float:
        return 0.0

    def on_event(self, event: "EngineEvent") -> None:
        pass

    @property
    def breakdown(self) -> TimingBreakdown:
        return TimingBreakdown()

    @property
    def total_cycles(self) -> float:
        return 0.0

    def dram_accesses(self) -> int:
        return 0

    def dram_breakdown(self) -> dict[ArrayId, int]:
        return {array: 0 for array in ArrayId}

    def dram_writebacks(self) -> int:
        return 0

    def dram_writeback_breakdown(self) -> dict[ArrayId, int]:
        return {array: 0 for array in ArrayId}

"""Observability middleware over any :class:`~repro.sim.protocol.MemorySystem`.

:class:`InstrumentedSystem` wraps a conforming system and forwards every
charging call unchanged, notifying a set of pluggable :class:`Observer`
hooks along the way.  Because it conforms to the protocol itself, *no
engine changes* are needed to profile a run — construct the wrapper, pass
it where a system goes, and read the assembled
:class:`~repro.sim.telemetry.RunTelemetry` afterwards.  Observation never
charges cycles, so the simulated results are identical with or without it.

Built-in observers:

- :class:`PhaseProfiler` — per-phase-kind totals: cycles, compute/engine
  cycles, raw demand latency, access counts by kind, DRAM-by-array deltas;
- :class:`IterationTimeline` — one record per iteration: the driving
  frontier's size and density, the phase's cycles and DRAM accesses;
- :class:`TraceObserver` — appends every demand access to a
  :class:`~repro.sim.trace.TraceEvent` list (the trace hook; engine-side
  reads issued directly against the hierarchy bypass it, as they do for
  :class:`~repro.sim.trace.TracingSystem`).
"""

from __future__ import annotations

from repro.sim.config import SystemConfig
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.layout import ArrayId
from repro.sim.protocol import (
    PHASE_BEGIN,
    PHASE_END,
    EngineEvent,
    MemorySystem,
)
from repro.sim.telemetry import (
    IterationProfile,
    PhaseProfile,
    PhaseSample,
    RunTelemetry,
)
from repro.sim.timing import TimingBreakdown
from repro.sim.trace import TraceEvent

__all__ = [
    "InstrumentedSystem",
    "IterationTimeline",
    "Observer",
    "PhaseProfiler",
    "TraceObserver",
    "instrument",
]


class Observer:
    """Base observer: every hook is a no-op; subclasses override a subset."""

    def on_attach(self, system: "InstrumentedSystem") -> None:
        """Called once when added to an :class:`InstrumentedSystem`."""

    def on_access(
        self, kind: str, core: int, array: ArrayId, index: int, latency: int
    ) -> None:
        """One charged access; ``kind`` is read/write/serial/engine."""

    def on_compute(self, core: int, cycles: float) -> None:
        """Compute cycles charged to a core."""

    def on_engine(self, core: int, cycles: float) -> None:
        """Busy cycles charged to a decoupled engine."""

    def on_barrier(self, elapsed: float) -> None:
        """A phase barrier completed, taking ``elapsed`` cycles."""

    def on_event(self, event: EngineEvent) -> None:
        """An iteration/phase boundary event from the engine loop."""

    def violations(self) -> list[str]:
        """Invariant violations this observer detected (none by default).

        Declared on the base class so :meth:`InstrumentedSystem.telemetry`
        can aggregate every observer's findings into
        :class:`~repro.sim.telemetry.RunTelemetry` without knowing about
        the checker types.
        """
        return []


class PhaseProfiler(Observer):
    """Aggregates where cycles and DRAM accesses go, per phase kind."""

    def __init__(self) -> None:
        self.phases: dict[str, PhaseProfile] = {}
        self._system: InstrumentedSystem | None = None
        self._current: PhaseProfile | None = None
        self._dram_before: dict[ArrayId, int] = {}
        self._writebacks_before = 0

    def on_attach(self, system: "InstrumentedSystem") -> None:
        self._system = system

    def on_access(
        self, kind: str, core: int, array: ArrayId, index: int, latency: int
    ) -> None:
        profile = self._current
        if profile is None:
            return
        profile.accesses[kind] = profile.accesses.get(kind, 0) + 1
        if kind != "engine":
            profile.memory_latency += latency

    def on_compute(self, core: int, cycles: float) -> None:
        if self._current is not None:
            self._current.compute_cycles += cycles

    def on_engine(self, core: int, cycles: float) -> None:
        if self._current is not None:
            self._current.engine_cycles += cycles

    def on_barrier(self, elapsed: float) -> None:
        if self._current is not None:
            self._current.cycles += elapsed

    def on_event(self, event: EngineEvent) -> None:
        if self._system is None or event.phase is None:
            return
        if event.kind == PHASE_BEGIN:
            profile = self.phases.setdefault(
                event.phase, PhaseProfile(phase=event.phase)
            )
            profile.activations += 1
            self._current = profile
            self._dram_before = self._system.dram_breakdown()
            self._writebacks_before = self._system.dram_writebacks()
        elif event.kind == PHASE_END and self._current is not None:
            after = self._system.dram_breakdown()
            for array, count in after.items():
                delta = count - self._dram_before.get(array, 0)
                if delta:
                    self._current.dram_by_array[array] = (
                        self._current.dram_by_array.get(array, 0) + delta
                    )
                    self._current.dram_accesses += delta
            self._current.dram_writebacks += (
                self._system.dram_writebacks() - self._writebacks_before
            )
            self._current = None


class IterationTimeline(Observer):
    """Records a per-iteration, per-phase timeline of frontier and cost."""

    def __init__(self) -> None:
        self.iterations: list[IterationProfile] = []
        self._system: InstrumentedSystem | None = None
        self._sample: PhaseSample | None = None
        self._dram_before = 0
        self._cycles = 0.0

    def on_attach(self, system: "InstrumentedSystem") -> None:
        self._system = system

    def on_barrier(self, elapsed: float) -> None:
        self._cycles += elapsed

    def on_event(self, event: EngineEvent) -> None:
        if self._system is None:
            return
        if event.kind == PHASE_BEGIN and event.phase is not None:
            if not self.iterations or (
                self.iterations[-1].iteration != event.iteration
            ):
                self.iterations.append(IterationProfile(iteration=event.iteration))
            self._sample = PhaseSample(
                phase=event.phase,
                frontier_size=event.frontier_size,
                frontier_density=event.frontier_density,
                cycles=0.0,
                dram_accesses=0,
            )
            self._dram_before = self._system.dram_accesses()
            self._cycles = 0.0
        elif event.kind == PHASE_END and self._sample is not None:
            self._sample.cycles = self._cycles
            self._sample.dram_accesses = (
                self._system.dram_accesses() - self._dram_before
            )
            self.iterations[-1].phases.append(self._sample)
            self._sample = None


class TraceObserver(Observer):
    """Collects every demand/engine access charged through the facade."""

    def __init__(self) -> None:
        self.trace: list[TraceEvent] = []

    def on_access(
        self, kind: str, core: int, array: ArrayId, index: int, latency: int
    ) -> None:
        self.trace.append(TraceEvent(kind, core, array, index))


def instrument(
    inner: MemorySystem, observers: "list[Observer] | None" = None
) -> MemorySystem:
    """Wrap ``inner`` for observation — or don't, when nobody is listening.

    With a non-empty observer list this returns an
    :class:`InstrumentedSystem`; with an empty (or ``None``) list it
    returns ``inner`` itself, so unobserved runs pay zero middleware
    dispatch on the access hot path.  Callers that need the telemetry
    accessors should check ``isinstance(system, InstrumentedSystem)``
    (they already must: a bare system has no ``telemetry()``).
    """
    if not observers:
        return inner
    return InstrumentedSystem(inner, observers)


class InstrumentedSystem:
    """A :class:`MemorySystem` that narrates another system's run.

    Composes any number of observers over any conforming inner system —
    engines cannot tell the difference, and the inner system's accounting
    is untouched (the wrapper charges nothing of its own).
    """

    def __init__(
        self, inner: MemorySystem, observers: "list[Observer] | None" = None
    ) -> None:
        self.inner = inner
        self.observers: list[Observer] = []
        for observer in observers or []:
            self.add_observer(observer)

    @classmethod
    def profiled(cls, inner: MemorySystem) -> "InstrumentedSystem":
        """The standard profiling stack: phase profiler + iteration timeline."""
        return cls(inner, [PhaseProfiler(), IterationTimeline()])

    def add_observer(self, observer: Observer) -> Observer:
        self.observers.append(observer)
        observer.on_attach(self)
        return observer

    def observer(self, kind: type) -> "Observer | None":
        """The first attached observer of ``kind``, or ``None``."""
        for observer in self.observers:
            if isinstance(observer, kind):
                return observer
        return None

    # -- identity ------------------------------------------------------------

    @property
    def config(self) -> SystemConfig:
        return self.inner.config

    @property
    def hierarchy(self) -> "MemoryHierarchy | None":
        return self.inner.hierarchy

    # -- charging ------------------------------------------------------------

    def read(self, core: int, array: ArrayId, index: int) -> int:
        latency = self.inner.read(core, array, index)
        for observer in self.observers:
            observer.on_access("read", core, array, index, latency)
        return latency

    def read_serial(self, core: int, array: ArrayId, index: int) -> int:
        latency = self.inner.read_serial(core, array, index)
        for observer in self.observers:
            observer.on_access("serial", core, array, index, latency)
        return latency

    def write(self, core: int, array: ArrayId, index: int) -> int:
        latency = self.inner.write(core, array, index)
        for observer in self.observers:
            observer.on_access("write", core, array, index, latency)
        return latency

    # Batched accesses degrade to the per-element loop here: observers are
    # promised one ``on_access`` per element with that element's latency,
    # and the per-element loop is bit-identical to the batched walk by the
    # batching contract — so an instrumented run observes exactly what an
    # uninstrumented batched run simulates.

    def read_block(self, core: int, array: ArrayId, start: int, count: int) -> int:
        total = 0
        for index in range(start, start + count):
            total += self.read(core, array, index)
        return total

    def write_block(self, core: int, array: ArrayId, start: int, count: int) -> int:
        total = 0
        for index in range(start, start + count):
            total += self.write(core, array, index)
        return total

    def read_serial_block(
        self, core: int, array: ArrayId, start: int, count: int
    ) -> int:
        total = 0
        for index in range(start, start + count):
            total += self.read_serial(core, array, index)
        return total

    def engine_read(self, core: int, array: ArrayId, index: int) -> int:
        latency = self.inner.engine_read(core, array, index)
        for observer in self.observers:
            observer.on_access("engine", core, array, index, latency)
        return latency

    def charge_compute(self, core: int, cycles: float) -> None:
        self.inner.charge_compute(core, cycles)
        for observer in self.observers:
            observer.on_compute(core, cycles)

    def charge_compute_run(self, core: int, cycles: float, count: int) -> None:
        # Observers are promised one on_compute per charge.
        for _ in range(count):
            self.charge_compute(core, cycles)

    def demand_writer(self, core: int, array: ArrayId):
        # Route each write through the observing ``write``.
        def write_one(index: int) -> int:
            return self.write(core, array, index)

        return write_one

    def charge_engine(self, core: int, cycles: float) -> None:
        self.inner.charge_engine(core, cycles)
        for observer in self.observers:
            observer.on_engine(core, cycles)

    # -- phase structure -----------------------------------------------------

    def barrier(self) -> float:
        elapsed = self.inner.barrier()
        for observer in self.observers:
            observer.on_barrier(elapsed)
        return elapsed

    def on_event(self, event: EngineEvent) -> None:
        self.inner.on_event(event)
        for observer in self.observers:
            observer.on_event(event)

    # -- results -------------------------------------------------------------

    @property
    def breakdown(self) -> TimingBreakdown:
        return self.inner.breakdown

    @property
    def total_cycles(self) -> float:
        return self.inner.total_cycles

    def dram_accesses(self) -> int:
        return self.inner.dram_accesses()

    def dram_breakdown(self) -> dict[ArrayId, int]:
        return self.inner.dram_breakdown()

    def dram_writebacks(self) -> int:
        return self.inner.dram_writebacks()

    def dram_writeback_breakdown(self) -> dict[ArrayId, int]:
        return self.inner.dram_writeback_breakdown()

    # -- telemetry assembly --------------------------------------------------

    def violations(self) -> list[str]:
        """Invariant violations reported by any attached observer."""
        found: list[str] = []
        for observer in self.observers:
            found.extend(observer.violations())
        return found

    def telemetry(
        self,
        chain_stats: "dict[str, float] | None" = None,
        fifo: "dict[str, float] | None" = None,
    ) -> RunTelemetry:
        """Assemble what the attached observers learned into one record."""
        profiler = self.observer(PhaseProfiler)
        timeline = self.observer(IterationTimeline)
        return RunTelemetry(
            phases=dict(profiler.phases) if isinstance(profiler, PhaseProfiler) else {},
            iterations=(
                list(timeline.iterations)
                if isinstance(timeline, IterationTimeline)
                else []
            ),
            chain_stats=dict(chain_stats or {}),
            fifo=dict(fifo or {}),
            violations=self.violations(),
        )

"""The typed engine↔simulator boundary: the :class:`MemorySystem` protocol.

Every execution engine talks to the simulated platform exclusively through
this charging interface — demand reads/writes, dependency-chained reads,
engine-side reads, compute/engine cycle charges, and the phase barrier —
plus the result accessors the harness consumes.  Declaring it as a
``runtime_checkable`` :class:`typing.Protocol` makes the boundary a real
contract: :class:`~repro.sim.system.SimulatedSystem`,
:class:`~repro.sim.null.NullSystem`, the trace recorder and the
:class:`~repro.sim.observe.InstrumentedSystem` middleware all conform, and
``tests/sim/test_protocol.py`` asserts it with ``isinstance``.

The engine loop additionally narrates its progress through
:meth:`MemorySystem.on_event` — a single hook point receiving
:class:`EngineEvent` records at iteration and phase boundaries.  The plain
systems ignore the events (a no-op method call per phase, charging
nothing), so simulation results are bit-identical whether or not anyone is
listening; the instrumented middleware fans them out to its observers.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.sim.config import SystemConfig
from repro.sim.layout import ArrayId
from repro.sim.timing import TimingBreakdown

if TYPE_CHECKING:
    from repro.hypergraph.frontier import Frontier
    from repro.sim.hierarchy import MemoryHierarchy

__all__ = [
    "ITERATION_BEGIN",
    "ITERATION_END",
    "PHASE_BEGIN",
    "PHASE_END",
    "EngineEvent",
    "MemorySystem",
]

#: Event kinds emitted by the engine loop (:class:`EngineEvent.kind`).
ITERATION_BEGIN = "iteration_begin"
ITERATION_END = "iteration_end"
PHASE_BEGIN = "phase_begin"
PHASE_END = "phase_end"


@dataclasses.dataclass(frozen=True)
class EngineEvent:
    """One iteration/phase boundary crossing in the engine loop.

    ``frontier_size``/``frontier_density`` describe the frontier *driving*
    a phase on ``PHASE_BEGIN`` and the frontier *produced* by it on
    ``PHASE_END``; they are zero on iteration events.  ``frontier`` is the
    live :class:`~repro.hypergraph.frontier.Frontier` those numbers were
    read from, when the emitting engine has one — observers such as the
    invariant checker may inspect it (read-only) but must not mutate it.
    """

    kind: str
    iteration: int
    phase: str | None = None
    frontier_size: int = 0
    frontier_density: float = 0.0
    frontier: "Frontier | None" = None


@runtime_checkable
class MemorySystem(Protocol):
    """What an execution engine may do to the platform beneath it.

    Methods charge costs (reads/writes return the access latency in
    cycles); the properties and ``dram_*`` accessors are how results are
    read back.  ``hierarchy`` is the raw cache hierarchy for engines that
    model a decoupled access engine beside the core (``None`` on systems
    without one, e.g. :class:`~repro.sim.null.NullSystem`).
    """

    # -- identity ------------------------------------------------------------

    @property
    def config(self) -> SystemConfig: ...

    @property
    def hierarchy(self) -> "MemoryHierarchy | None": ...

    # -- demand-side charging (the general-purpose core) ---------------------

    def read(self, core: int, array: ArrayId, index: int) -> int: ...

    def read_serial(self, core: int, array: ArrayId, index: int) -> int: ...

    def write(self, core: int, array: ArrayId, index: int) -> int: ...

    # Batched (line-granular) variants over ``count`` consecutive elements.
    # Contract: bit-identical to the equivalent per-element loop — see
    # ``MemoryHierarchy.access_block`` for the proof sketch.

    def read_block(self, core: int, array: ArrayId, start: int, count: int) -> int: ...

    def read_serial_block(
        self, core: int, array: ArrayId, start: int, count: int
    ) -> int: ...

    def write_block(self, core: int, array: ArrayId, start: int, count: int) -> int: ...

    def charge_compute(self, core: int, cycles: float) -> None: ...

    # A run of ``count`` identical compute charges in one call.  Contract:
    # the accumulators receive the same sequence of float additions as
    # ``count`` separate ``charge_compute`` calls (per-tuple cycle costs
    # are non-integer floats, so the sum must not be regrouped).
    def charge_compute_run(self, core: int, cycles: float, count: int) -> None: ...

    # A pre-bound per-(core, array) write closure for per-tuple hot loops.
    # Contract: each ``write_one(index)`` call is equivalent to
    # ``write(core, array, index)``.
    def demand_writer(
        self, core: int, array: ArrayId
    ) -> Callable[[int], int]: ...

    # -- engine-side charging (decoupled access engines) ---------------------

    def engine_read(self, core: int, array: ArrayId, index: int) -> int: ...

    def charge_engine(self, core: int, cycles: float) -> None: ...

    # -- phase structure -----------------------------------------------------

    def barrier(self) -> float: ...

    def on_event(self, event: EngineEvent) -> None: ...

    # -- results -------------------------------------------------------------

    @property
    def breakdown(self) -> TimingBreakdown: ...

    @property
    def total_cycles(self) -> float: ...

    def dram_accesses(self) -> int: ...

    def dram_breakdown(self) -> dict[ArrayId, int]: ...

    def dram_writebacks(self) -> int: ...

    def dram_writeback_breakdown(self) -> dict[ArrayId, int]: ...

"""Reuse-distance analysis of access streams.

The paper's locality argument (Figures 6 and 9) is a reuse-distance
argument: index order makes re-touches of ``vertex_value`` lines far apart
(beyond cache reach), chain order pulls them together.  This module measures
that directly: given a cache-line access stream, it computes each access's
*LRU stack distance* (the number of distinct lines touched since the last
access to the same line) and summarizes the distribution.

For a fully-associative LRU cache of capacity ``C``, an access hits iff its
reuse distance is < ``C`` — so the histogram's CDF *is* the hit-rate curve
across all cache sizes at once, which is how the analysis example explains
the scheduler gap without running the full hierarchy.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator

from repro.hypergraph.hypergraph import Hypergraph
from repro.sim.layout import ArrayId, MemoryLayout

__all__ = ["ReuseProfile", "reuse_distances", "profile_stream", "dst_value_stream"]

#: Stack distance reported for a line's first-ever access.
COLD = -1


def reuse_distances(lines: Iterable[int]) -> Iterator[int]:
    """Yield each access's LRU stack distance (:data:`COLD` on first touch).

    Maintains the LRU stack as an ordered dict keyed by line; the stack
    distance is the number of *distinct* lines above the touched line.
    O(stack depth) per access — fine for the 10^5-10^6-access streams the
    analyses use.
    """
    stack: dict[int, None] = {}
    for line in lines:
        if line in stack:
            distance = 0
            for resident in reversed(stack):
                if resident == line:
                    break
                distance += 1
            del stack[line]
            yield distance
        else:
            yield COLD
        stack[line] = None


@dataclasses.dataclass(frozen=True)
class ReuseProfile:
    """Summary of a stream's reuse-distance distribution."""

    accesses: int
    cold: int
    histogram: dict[int, int]  # power-of-two bucket lower bound -> count

    @property
    def reuses(self) -> int:
        return self.accesses - self.cold

    def hit_rate(self, capacity_lines: int) -> float:
        """Hit rate of a fully-associative LRU cache of that capacity."""
        if self.accesses == 0:
            return 0.0
        # Buckets are coarse (powers of two): bucket ``b`` covers distances
        # [b, 2b), so it hits outright only when 2b <= capacity — i.e. the
        # whole bucket lies below the capacity.  For a capacity inside a
        # bucket the estimate is conservative (those accesses count as
        # misses); the distance-0 bucket hits in any non-empty cache.  At
        # power-of-two capacities the bound is exact.
        hits = sum(
            count
            for bucket, count in self.histogram.items()
            if (bucket == 0 and capacity_lines >= 1)
            or (bucket > 0 and bucket * 2 <= capacity_lines)
        )
        return hits / self.accesses

    def mean_distance(self) -> float:
        """Mean bucketed distance over re-touches (cold misses excluded)."""
        if self.reuses == 0:
            return 0.0
        total = sum(bucket * count for bucket, count in self.histogram.items())
        return total / self.reuses


def _bucket(distance: int) -> int:
    bucket = 1
    while bucket * 2 <= distance:
        bucket *= 2
    return bucket if distance > 0 else 0


def profile_stream(lines: Iterable[int]) -> ReuseProfile:
    """Profile a line stream into a :class:`ReuseProfile`."""
    histogram: dict[int, int] = {}
    accesses = 0
    cold = 0
    for distance in reuse_distances(lines):
        accesses += 1
        if distance == COLD:
            cold += 1
            continue
        bucket = _bucket(distance)
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return ReuseProfile(accesses=accesses, cold=cold, histogram=histogram)


def dst_value_stream(
    hypergraph: Hypergraph,
    order: Iterable[int],
    side: str = "hyperedge",
    line_size: int = 64,
) -> Iterator[int]:
    """The destination-value line stream a schedule produces.

    ``side`` is the scheduled side; for ``"hyperedge"`` this is the
    ``vertex_value`` access stream of vertex computation — the stream
    Figures 6 and 9 draw.
    """
    layout = MemoryLayout(line_size)
    csr = hypergraph.side(side)
    array = ArrayId.VERTEX_VALUE if side == "hyperedge" else ArrayId.HYPEREDGE_VALUE
    for element in order:
        for neighbor in csr.neighbors(element):
            yield layout.line_of(array, int(neighbor))

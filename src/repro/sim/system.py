"""The simulated system facade used by all execution engines.

Bundles the cache hierarchy, the phase timer and the energy model behind
three operations engines actually use: ``read``, ``write`` and
``charge_compute``, plus ``barrier`` at phase ends.  Reads/writes charge
their latency to the issuing core's *demand* stream; engines modelling a
decoupled access engine (ChGraph) use ``engine_read`` instead, which charges
the engine-side accumulator so the core and engine overlap.

This is the reference implementation of the
:class:`~repro.sim.protocol.MemorySystem` protocol — the typed boundary
every execution engine is written against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.config import SystemConfig
from repro.sim.energy import EnergyModel, EnergyReport
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.layout import ArrayId
from repro.sim.timing import PhaseTimer, TimingBreakdown

if TYPE_CHECKING:
    from repro.sim.protocol import EngineEvent

__all__ = ["SimulatedSystem"]


class SimulatedSystem:
    """One simulation instance: config + hierarchy + timing + energy."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.hierarchy = MemoryHierarchy(config)
        self.timer = PhaseTimer(config)
        self.energy_model = EnergyModel()
        self.total_compute_cycles = 0.0
        # DRAM line count (fetches + writebacks) at the last barrier, for
        # per-phase bandwidth-contention accounting.
        self._phase_dram_mark = 0

    # -- demand-side accesses (the general-purpose core) --------------------

    def read(self, core: int, array: ArrayId, index: int) -> int:
        latency = self.hierarchy.access(core, array, index, write=False)
        self.timer.charge_memory(core, latency)
        return latency

    def write(self, core: int, array: ArrayId, index: int) -> int:
        latency = self.hierarchy.access(core, array, index, write=True)
        self.timer.charge_memory(core, latency)
        return latency

    def read_serial(self, core: int, array: ArrayId, index: int) -> int:
        """A dependency-chained read (pointer chasing): the core cannot
        overlap it with other misses, so its full latency is serial time."""
        latency = self.hierarchy.access(core, array, index, write=False)
        self.timer.charge_compute(core, latency)
        return latency

    def charge_compute(self, core: int, cycles: float) -> None:
        self.timer.charge_compute(core, cycles)
        self.total_compute_cycles += cycles

    # -- engine-side accesses (ChGraph's HCG / CP) --------------------------

    def engine_read(self, core: int, array: ArrayId, index: int) -> int:
        """A read issued by the per-core accelerator, off the demand path."""
        latency = self.hierarchy.access(core, array, index, write=False)
        self.timer.charge_engine(core, latency)
        return latency

    def charge_engine(self, core: int, cycles: float) -> None:
        self.timer.charge_engine(core, cycles)

    # -- phases ---------------------------------------------------------------

    def barrier(self) -> float:
        dram = self.hierarchy.dram
        if not self.config.dram_contention:
            self._phase_dram_mark = dram.accesses + dram.writes
            return self.timer.barrier()
        lines = dram.accesses + dram.writes
        phase_lines = lines - self._phase_dram_mark
        self._phase_dram_mark = lines
        return self.timer.barrier(dram=dram, dram_lines=phase_lines)

    def on_event(self, event: "EngineEvent") -> None:
        """Engine-loop boundary events charge nothing on a plain system."""

    # -- results ----------------------------------------------------------------

    @property
    def breakdown(self) -> TimingBreakdown:
        return self.timer.breakdown

    @property
    def total_cycles(self) -> float:
        return self.timer.breakdown.total_cycles

    def dram_accesses(self) -> int:
        return self.hierarchy.dram_accesses()

    def dram_breakdown(self) -> dict[ArrayId, int]:
        return self.hierarchy.dram_breakdown()

    def dram_writebacks(self) -> int:
        return self.hierarchy.writebacks()

    def dram_writeback_breakdown(self) -> dict[ArrayId, int]:
        return self.hierarchy.writeback_breakdown()

    def energy(self) -> EnergyReport:
        return self.energy_model.report(self.hierarchy, self.total_compute_cycles)

"""The simulated system facade used by all execution engines.

Bundles the cache hierarchy, the phase timer and the energy model behind
three operations engines actually use: ``read``, ``write`` and
``charge_compute``, plus ``barrier`` at phase ends.  Reads/writes charge
their latency to the issuing core's *demand* stream; engines modelling a
decoupled access engine (ChGraph) use ``engine_read`` instead, which charges
the engine-side accumulator so the core and engine overlap.

This is the reference implementation of the
:class:`~repro.sim.protocol.MemorySystem` protocol — the typed boundary
every execution engine is written against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.config import SystemConfig
from repro.sim.energy import EnergyModel, EnergyReport
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.layout import ArrayId
from repro.sim.timing import PhaseTimer, TimingBreakdown

if TYPE_CHECKING:
    from repro.sim.protocol import EngineEvent

__all__ = ["SimulatedSystem"]


class SimulatedSystem:
    """One simulation instance: config + hierarchy + timing + energy."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.hierarchy = MemoryHierarchy(config)
        self.timer = PhaseTimer(config)
        self.energy_model = EnergyModel()
        self.total_compute_cycles = 0.0
        # DRAM line count (fetches + writebacks) at the last barrier, for
        # per-phase bandwidth-contention accounting.
        self._phase_dram_mark = 0
        # Charging fast path: the timer's per-core accumulator lists are
        # reset *in place* at barriers, so these references stay valid for
        # the whole run and each charge is one indexed add, not a method
        # call into the timer.
        self._memory_acc = self.timer._memory
        self._compute_acc = self.timer._compute
        self._engine_acc = self.timer._engine

    # -- demand-side accesses (the general-purpose core) --------------------

    def read(self, core: int, array: ArrayId, index: int) -> int:
        latency = self.hierarchy.access(core, array, index, write=False)
        self._memory_acc[core] += latency
        return latency

    def write(self, core: int, array: ArrayId, index: int) -> int:
        latency = self.hierarchy.access(core, array, index, write=True)
        self._memory_acc[core] += latency
        return latency

    def read_serial(self, core: int, array: ArrayId, index: int) -> int:
        """A dependency-chained read (pointer chasing): the core cannot
        overlap it with other misses, so its full latency is serial time."""
        latency = self.hierarchy.access(core, array, index, write=False)
        self._compute_acc[core] += latency
        return latency

    # -- batched demand accesses ---------------------------------------------
    #
    # ``read_block``/``write_block`` fold the per-element charges into one
    # ``charge_memory`` call.  That grouping is exact, not approximate:
    # hierarchy latencies are ints, and the timer's float accumulator adds
    # integer-valued floats, which is associative below 2**53.
    # ``read_serial_block`` must NOT fold: serial reads charge the *compute*
    # accumulator, which also receives arbitrary float costs from the
    # engines, so per-element addition order is part of the bit-identity
    # contract — it stays a plain loop over :meth:`read_serial`.

    def read_block(self, core: int, array: ArrayId, start: int, count: int) -> int:
        latency = self.hierarchy.access_block(core, array, start, count, write=False)
        self._memory_acc[core] += latency
        return latency

    def write_block(self, core: int, array: ArrayId, start: int, count: int) -> int:
        latency = self.hierarchy.access_block(core, array, start, count, write=True)
        self._memory_acc[core] += latency
        return latency

    def read_serial_block(
        self, core: int, array: ArrayId, start: int, count: int
    ) -> int:
        total = 0
        for index in range(start, start + count):
            total += self.read_serial(core, array, index)
        return total

    def charge_compute(self, core: int, cycles: float) -> None:
        self._compute_acc[core] += cycles
        self.total_compute_cycles += cycles

    def charge_compute_run(self, core: int, cycles: float, count: int) -> None:
        """Charge ``cycles`` to ``core`` ``count`` times in a row.

        Engines use this to batch a run of identical per-tuple charges into
        one call.  The accumulators still receive the same *sequence* of
        float additions as ``count`` separate ``charge_compute`` calls —
        per-tuple costs are non-integer floats (e.g. 6·1.3 + 1), so the sum
        may NOT be regrouped as ``count * cycles`` — only the Python call
        overhead is batched away.
        """
        acc = self._compute_acc[core]
        total = self.total_compute_cycles
        for _ in range(count):
            acc += cycles
            total += cycles
        self._compute_acc[core] = acc
        self.total_compute_cycles = total

    def demand_writer(self, core: int, array: ArrayId):
        """A bound ``write_one(index) -> latency`` for one (core, array).

        Same accounting as :meth:`write`, with the hierarchy's L1 write-hit
        path and the timer charge fused into one closure — the engines'
        per-tuple destination-value write is the single hottest demand
        access.  Coherence-tracking configs defer to :meth:`write` (the
        coherence hook must run before the L1 probe).
        """
        hierarchy = self.hierarchy
        acc = self._memory_acc
        if hierarchy.coherence is not None:
            access = hierarchy.access

            def write_coherent(index: int) -> int:
                latency = access(core, array, index, True)
                acc[core] += latency
                return latency

            return write_coherent
        layout = hierarchy.layout
        base = layout._line_base[array]
        elem_bytes = layout._elem_bytes[array]
        shift = layout._line_shift
        l1 = hierarchy.l1[core]
        sets = l1._sets
        num_sets = l1.num_sets
        stats = l1.stats
        dirty_lines = l1._dirty
        l1_latency = hierarchy._l1_latency
        demand_miss = hierarchy._demand_miss

        def write_one(index: int) -> int:
            line = base + ((index * elem_bytes) >> shift)
            hierarchy.demand_probes += 1
            ways = sets[line % num_sets]
            if line in ways:
                del ways[line]
                ways[line] = None
                stats.hits += 1
                dirty_lines.add(line)
                acc[core] += l1_latency
                return l1_latency
            stats.misses += 1
            latency = demand_miss(core, array, line, True)
            acc[core] += latency
            return latency

        return write_one

    # -- engine-side accesses (ChGraph's HCG / CP) --------------------------

    def engine_read(self, core: int, array: ArrayId, index: int) -> int:
        """A read issued by the per-core accelerator, off the demand path."""
        latency = self.hierarchy.access(core, array, index, write=False)
        self._engine_acc[core] += latency
        return latency

    def charge_engine(self, core: int, cycles: float) -> None:
        self._engine_acc[core] += cycles

    # -- phases ---------------------------------------------------------------

    def barrier(self) -> float:
        dram = self.hierarchy.dram
        if not self.config.dram_contention:
            self._phase_dram_mark = dram.accesses + dram.writes
            return self.timer.barrier()
        lines = dram.accesses + dram.writes
        phase_lines = lines - self._phase_dram_mark
        self._phase_dram_mark = lines
        return self.timer.barrier(dram=dram, dram_lines=phase_lines)

    def on_event(self, event: "EngineEvent") -> None:
        """Engine-loop boundary events charge nothing on a plain system."""

    # -- results ----------------------------------------------------------------

    @property
    def breakdown(self) -> TimingBreakdown:
        return self.timer.breakdown

    @property
    def total_cycles(self) -> float:
        return self.timer.breakdown.total_cycles

    def dram_accesses(self) -> int:
        return self.hierarchy.dram_accesses()

    def dram_breakdown(self) -> dict[ArrayId, int]:
        return self.hierarchy.dram_breakdown()

    def dram_writebacks(self) -> int:
        return self.hierarchy.writebacks()

    def dram_writeback_breakdown(self) -> dict[ArrayId, int]:
        return self.hierarchy.writeback_breakdown()

    def energy(self) -> EnergyReport:
        return self.energy_model.report(self.hierarchy, self.total_compute_cycles)

"""Structured run telemetry: where the cycles and DRAM accesses went.

A profiled run (one wrapped in
:class:`~repro.sim.observe.InstrumentedSystem`) yields a
:class:`RunTelemetry` record on its
:class:`~repro.engine.result.RunResult`: per-phase cycle and DRAM-by-array
totals, a per-iteration timeline of frontier size/density and phase cost,
the engine's chain statistics, and (for ChGraph) FIFO occupancy.  This is
the data behind the paper's *why* figures — phase breakdowns (Fig 15/16),
frontier evolution, and the locality story of chain scheduling.

The record is plain data: JSON round-trippable (``to_json``/``from_json``)
so it persists through the artifact store with the rest of the run.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.sim.layout import ArrayId

__all__ = [
    "IterationProfile",
    "PhaseProfile",
    "PhaseSample",
    "RunTelemetry",
]


@dataclasses.dataclass
class PhaseProfile:
    """Aggregate cost of every execution of one phase kind in a run."""

    phase: str
    activations: int = 0
    cycles: float = 0.0
    compute_cycles: float = 0.0
    memory_latency: float = 0.0
    engine_cycles: float = 0.0
    accesses: dict[str, int] = dataclasses.field(default_factory=dict)
    dram_accesses: int = 0
    dram_by_array: dict[ArrayId, int] = dataclasses.field(default_factory=dict)
    dram_writebacks: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "phase": self.phase,
            "activations": self.activations,
            "cycles": self.cycles,
            "compute_cycles": self.compute_cycles,
            "memory_latency": self.memory_latency,
            "engine_cycles": self.engine_cycles,
            "accesses": dict(self.accesses),
            "dram_accesses": self.dram_accesses,
            "dram_by_array": {
                str(int(array)): int(count)
                for array, count in self.dram_by_array.items()
            },
            "dram_writebacks": self.dram_writebacks,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "PhaseProfile":
        return cls(
            phase=payload["phase"],
            activations=payload["activations"],
            cycles=payload["cycles"],
            compute_cycles=payload["compute_cycles"],
            memory_latency=payload["memory_latency"],
            engine_cycles=payload["engine_cycles"],
            accesses={str(k): int(v) for k, v in payload["accesses"].items()},
            dram_accesses=payload["dram_accesses"],
            dram_by_array={
                ArrayId(int(key)): int(count)
                for key, count in payload["dram_by_array"].items()
            },
            dram_writebacks=int(payload.get("dram_writebacks", 0)),
        )


@dataclasses.dataclass
class PhaseSample:
    """One phase execution inside one iteration of the timeline."""

    phase: str
    frontier_size: int
    frontier_density: float
    cycles: float
    dram_accesses: int

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "PhaseSample":
        return cls(
            phase=payload["phase"],
            frontier_size=payload["frontier_size"],
            frontier_density=payload["frontier_density"],
            cycles=payload["cycles"],
            dram_accesses=payload["dram_accesses"],
        )


@dataclasses.dataclass
class IterationProfile:
    """The phases one iteration executed, in order."""

    iteration: int
    phases: list[PhaseSample] = dataclasses.field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "iteration": self.iteration,
            "phases": [sample.to_json() for sample in self.phases],
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "IterationProfile":
        return cls(
            iteration=payload["iteration"],
            phases=[PhaseSample.from_json(p) for p in payload["phases"]],
        )


@dataclasses.dataclass
class RunTelemetry:
    """Everything the observers learned about one profiled run."""

    phases: dict[str, PhaseProfile] = dataclasses.field(default_factory=dict)
    iterations: list[IterationProfile] = dataclasses.field(default_factory=list)
    chain_stats: dict[str, float] = dataclasses.field(default_factory=dict)
    fifo: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Invariant violations observed during the run (empty on a clean run,
    #: and on unchecked runs).
    violations: list[str] = dataclasses.field(default_factory=list)

    @property
    def mean_frontier_density(self) -> float:
        """Mean driving-frontier density over all phase executions."""
        samples = [s for it in self.iterations for s in it.phases]
        if not samples:
            return 0.0
        return sum(s.frontier_density for s in samples) / len(samples)

    def to_json(self) -> dict[str, Any]:
        return {
            "phases": {
                phase: profile.to_json() for phase, profile in self.phases.items()
            },
            "iterations": [it.to_json() for it in self.iterations],
            "chain_stats": dict(self.chain_stats),
            "fifo": dict(self.fifo),
            "violations": list(self.violations),
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "RunTelemetry":
        return cls(
            phases={
                phase: PhaseProfile.from_json(profile)
                for phase, profile in payload["phases"].items()
            },
            iterations=[
                IterationProfile.from_json(it) for it in payload["iterations"]
            ],
            chain_stats={
                str(k): float(v) for k, v in payload["chain_stats"].items()
            },
            fifo={str(k): float(v) for k, v in payload["fifo"].items()},
            violations=[str(v) for v in payload.get("violations", [])],
        )

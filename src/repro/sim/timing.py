"""Cycle accounting for parallel phases.

Engines attribute two kinds of cost to each core during a phase (one
computation kernel of one iteration): *compute* cycles (apply functions,
frontier updates, software chain generation) and *memory* latency (the sum
of latencies returned by the hierarchy).  An OOO core overlaps misses, so
stall cycles are the summed latency divided by the effective MLP; a phase
ends at a barrier, so phase time is the maximum over cores.

This mirrors how the paper extracts "percentage of cycles stalled on main
memory accesses" (Figure 5) from its simulator.
"""

from __future__ import annotations

import dataclasses

from repro.sim.config import SystemConfig
from repro.sim.dram import DramModel

__all__ = ["PhaseTimer", "TimingBreakdown"]


@dataclasses.dataclass
class TimingBreakdown:
    """Accumulated cycle totals for a whole run."""

    total_cycles: float = 0.0
    compute_cycles: float = 0.0
    memory_stall_cycles: float = 0.0
    engine_cycles: float = 0.0
    barriers: int = 0

    @property
    def memory_stall_fraction(self) -> float:
        """Fraction of total time stalled on memory (Figure 5's metric)."""
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.memory_stall_cycles / self.total_cycles)


class PhaseTimer:
    """Per-core compute/memory accumulators with barrier semantics."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.num_cores = config.num_cores
        self.breakdown = TimingBreakdown()
        self._compute = [0.0] * self.num_cores
        self._memory = [0.0] * self.num_cores
        self._engine = [0.0] * self.num_cores

    # -- per-core charging -----------------------------------------------

    def charge_compute(self, core: int, cycles: float) -> None:
        self._compute[core] += cycles

    def charge_memory(self, core: int, latency: float) -> None:
        """Add demand-miss latency (overlapped by MLP at the barrier)."""
        self._memory[core] += latency

    def charge_engine(self, core: int, cycles: float) -> None:
        """Add decoupled-engine busy time (overlapped with the core)."""
        self._engine[core] += cycles

    def core_time(self, core: int) -> float:
        """Current phase time of one core: compute + MLP-overlapped stalls."""
        stall = self._memory[core] / self.config.mlp
        demand_side = self._compute[core] + stall
        # A decoupled access engine (ChGraph) runs concurrently with the
        # core; the phase is bound by whichever side is slower.
        return max(demand_side, self._engine[core])

    # -- barriers -----------------------------------------------------------

    def _contended_core_time(self, core: int, factor: float) -> float:
        """Phase time of one core with memory stalls inflated by queueing."""
        stall = (self._memory[core] * factor) / self.config.mlp
        return max(self._compute[core] + stall, self._engine[core])

    def barrier(
        self,
        sync_overhead: float = 50.0,
        dram: DramModel | None = None,
        dram_lines: int = 0,
    ) -> float:
        """Close the phase: elapsed = max over cores (+ sync cost).

        Returns the phase duration and folds per-core totals into the run
        breakdown.  Per-core accumulators reset for the next phase.

        When ``dram`` is given (the ``dram_contention`` config flag), the
        phase's demanded line count inflates every core's memory stalls by
        ``DramModel.contention_factor`` — utilisation is measured against
        the *uncontended* phase length — and the phase is floored at the
        channel drain time for those lines.  Cycles the floor adds beyond
        the busiest core's contended time are pure waiting-for-memory and
        are attributed to ``memory_stall_cycles`` (Figure 5's numerator)
        on that core.  With ``dram=None`` (or zero lines, where the factor
        is exactly 1.0 and the floor never binds) the arithmetic below
        reduces to the historical path, keeping default-config figures
        bit-identical.
        """
        if self.num_cores == 0:
            return 0.0
        uncontended = max(self.core_time(core) for core in range(self.num_cores))
        factor = 1.0
        if dram is not None:
            factor = dram.contention_factor(dram_lines, uncontended)
        phase = max(
            self._contended_core_time(core, factor)
            for core in range(self.num_cores)
        )
        drain_delta = 0.0
        if dram is not None:
            drain = dram.drain_cycles(dram_lines)
            if drain > phase:
                # The channel cannot drain the phase's lines any faster:
                # every cycle of the floor beyond the busiest core's own
                # time is a memory stall, not compute.
                drain_delta = drain - phase
                phase = drain
        phase += sync_overhead
        busiest = max(
            range(self.num_cores),
            key=lambda core: self._contended_core_time(core, factor),
        )
        self.breakdown.total_cycles += phase
        self.breakdown.compute_cycles += self._compute[busiest]
        self.breakdown.memory_stall_cycles += (
            self._memory[busiest] * factor / self.config.mlp + drain_delta
        )
        self.breakdown.engine_cycles += self._engine[busiest]
        self.breakdown.barriers += 1
        # Reset in place: SimulatedSystem holds direct references to these
        # lists as its charging fast path.
        self._compute[:] = [0.0] * self.num_cores
        self._memory[:] = [0.0] * self.num_cores
        self._engine[:] = [0.0] * self.num_cores
        return phase

"""Memory-trace recording and replay.

Wraps a :class:`~repro.sim.system.SimulatedSystem` so every demand and
engine access an engine issues is appended to an in-memory trace (and
optionally streamed to a file as ``kind core array index`` lines).  Traces
decouple *what a scheduler accesses* from *what a hierarchy does with it*:
record once, then replay the same stream through differently-sized
hierarchies, or feed it to :mod:`repro.sim.reuse` for stack-distance
analysis.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterable

from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.layout import ArrayId
from repro.sim.config import SystemConfig
from repro.sim.system import SimulatedSystem

__all__ = ["TraceEvent", "TracingSystem", "replay", "save_trace", "load_trace"]

#: Event kinds, matching the charging channel the access used.
KINDS = ("read", "write", "serial", "engine")


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One recorded memory access."""

    kind: str  # one of KINDS
    core: int
    array: ArrayId
    index: int


class TracingSystem(SimulatedSystem):
    """A SimulatedSystem that records every access it simulates.

    Conforms to :class:`~repro.sim.protocol.MemorySystem` by inheritance;
    for recording on top of an *arbitrary* conforming system (including
    :class:`~repro.sim.null.NullSystem`), attach a
    :class:`~repro.sim.observe.TraceObserver` to an
    :class:`~repro.sim.observe.InstrumentedSystem` instead.
    """

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        self.trace: list[TraceEvent] = []

    def read(self, core: int, array: ArrayId, index: int) -> int:
        self.trace.append(TraceEvent("read", core, array, index))
        return super().read(core, array, index)

    def write(self, core: int, array: ArrayId, index: int) -> int:
        self.trace.append(TraceEvent("write", core, array, index))
        return super().write(core, array, index)

    def read_serial(self, core: int, array: ArrayId, index: int) -> int:
        self.trace.append(TraceEvent("serial", core, array, index))
        return super().read_serial(core, array, index)

    def engine_read(self, core: int, array: ArrayId, index: int) -> int:
        self.trace.append(TraceEvent("engine", core, array, index))
        return super().engine_read(core, array, index)

    # Batched accesses record one event per *element* so a recorded trace is
    # independent of whether the engine used the batched or per-element API
    # (replaying a per-element stream through a hierarchy is bit-identical
    # to the batched walk — that is the batching contract).

    def read_block(self, core: int, array: ArrayId, start: int, count: int) -> int:
        append = self.trace.append
        for index in range(start, start + count):
            append(TraceEvent("read", core, array, index))
        return super().read_block(core, array, start, count)

    def write_block(self, core: int, array: ArrayId, start: int, count: int) -> int:
        append = self.trace.append
        for index in range(start, start + count):
            append(TraceEvent("write", core, array, index))
        return super().write_block(core, array, start, count)

    # read_serial_block needs no override: the base implementation loops
    # over ``self.read_serial`` (it must — serial reads charge the compute
    # accumulator per element), which dispatches to the recording override.

    def demand_writer(self, core: int, array: ArrayId):
        # The base class's fast closure would bypass recording; route each
        # write through the overridden ``write`` instead.
        def write_one(index: int) -> int:
            return self.write(core, array, index)

        return write_one


# The ChGraph engine reaches the hierarchy directly (hierarchy.engine_access)
# rather than through the system facade, so tracing is complete for the
# demand-path engines (Hygra / software GLA / event prefetcher); the
# chain-driven prefetch stream can be reconstructed from the schedule.


def replay(
    trace: Iterable[TraceEvent], config: SystemConfig
) -> MemoryHierarchy:
    """Replay a trace through a fresh hierarchy; returns it for inspection."""
    hierarchy = MemoryHierarchy(config)
    for event in trace:
        if event.kind == "engine":
            hierarchy.engine_access(event.core, event.array, event.index)
        else:
            hierarchy.access(
                event.core, event.array, event.index, write=event.kind == "write"
            )
    return hierarchy


def save_trace(trace: Iterable[TraceEvent], path: str | Path) -> None:
    """Write a trace as ``kind core array index`` lines."""
    with Path(path).open("w", encoding="utf-8") as handle:
        for event in trace:
            handle.write(
                f"{event.kind} {event.core} {event.array.name} {event.index}\n"
            )


def load_trace(path: str | Path) -> list[TraceEvent]:
    """Read a trace written by :func:`save_trace`."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            kind, core, array, index = line.split()
            events.append(
                TraceEvent(kind, int(core), ArrayId[array], int(index))
            )
    return events

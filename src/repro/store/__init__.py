"""Persistent content-addressed artifact store (preprocessing-as-a-service).

The paper amortizes OAG/chain preprocessing across algorithms; this package
amortizes it across *processes*: ``GlaResources`` (per-chunk OAG CSRs) and
memoized ``RunResult``s are persisted under content-derived keys, verified
by checksum on load, and rebuilt transparently on any corruption or schema
drift.  See :mod:`repro.store.store` for the disk format,
:mod:`repro.store.keys` for key derivation, and
:mod:`repro.store.prewarm` for the parallel prewarming pipeline.

Opt in by passing ``cache_dir=`` to :class:`~repro.harness.runner.Runner`
or by setting ``$REPRO_CACHE_DIR``; manage the store with
``python -m repro prewarm`` and ``python -m repro cache {stats,ls,gc,clear}``.
"""

from repro.store.keys import (
    STORE_SCHEMA_VERSION,
    hypergraph_content_hash,
    resources_key,
    run_result_key,
)
from repro.store.pool import TaskOutcome, backoff_delays, run_tasks
from repro.store.prewarm import PrewarmJob, PrewarmReport, prewarm, prewarm_jobs
from repro.store.serialize import SerializationError
from repro.store.store import (
    ArtifactStore,
    StoreEntry,
    StoreStats,
    resolve_cache_dir,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "ArtifactStore",
    "PrewarmJob",
    "PrewarmReport",
    "SerializationError",
    "StoreEntry",
    "StoreStats",
    "TaskOutcome",
    "backoff_delays",
    "hypergraph_content_hash",
    "prewarm",
    "prewarm_jobs",
    "resolve_cache_dir",
    "resources_key",
    "run_result_key",
    "run_tasks",
]

"""Content-addressed cache keys for persisted preprocessing artifacts.

Every artifact in the store is addressed by a stable hash of *what produced
it*, never by dataset name: the hypergraph payload (both bipartite CSR
directions, byte-exact), the preprocessing record (``w_min``, ``d_max``,
and the ordered stage list of the
:class:`~repro.hypergraph.pipeline.PreprocessSpec`), and a schema version.
Renaming a dataset keeps its cache entries valid; regenerating it with
different structure invalidates them automatically.

This module is the **only** place key components are concatenated:
``resources_key`` and ``run_result_key`` both derive from a spec here, so
the CLI, runner, parallel executor, and service can never disagree about
what key one simulation hashes to.

``fast`` is deliberately *not* part of any key: the vectorized and scalar
builders are parity-tested to produce bit-identical artifacts
(``tests/core/test_fast_parity.py``), so either may serve the other's cache
entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING

import numpy as np

from repro.hypergraph.pipeline import PreprocessSpec

if TYPE_CHECKING:  # imported lazily to avoid a store <-> harness cycle
    from repro.harness.spec import RunSpec

__all__ = [
    "STORE_SCHEMA_VERSION",
    "hypergraph_content_hash",
    "resources_key",
    "run_result_key",
]

#: Bump when the on-disk artifact layout changes; old entries are then
#: invisible (they live under a different schema directory) and simply
#: rebuilt, never misread.
#:
#: v2: ``RunResult`` payloads carry an optional ``telemetry`` record and
#: run keys distinguish profiled from plain runs.
#:
#: v3: ``RunResult`` payloads carry DRAM write traffic
#: (``dram_writebacks`` and the per-array breakdown) now that the
#: hierarchy drains dirty evictions to memory instead of dropping them.
#:
#: v4: both keys derive from a ``RunSpec``/``PreprocessSpec`` and hash the
#: full preprocessing record (``w_min``/``d_max``/stage list) — run keys
#: previously ignored ``w_min``/``d_max`` entirely, so runs under
#: non-default OAG parameters could alias default entries.
STORE_SCHEMA_VERSION = 4


def _hash_arrays(h: "hashlib._Hash", *arrays: np.ndarray) -> None:
    """Feed arrays into ``h`` with dtype/shape framing so that e.g. an
    empty-offsets/indices swap cannot collide."""
    for a in arrays:
        a = np.ascontiguousarray(a)
        frame = f"{a.dtype.str}:{a.shape}".encode()
        h.update(len(frame).to_bytes(4, "little"))
        h.update(frame)
        h.update(a.tobytes())


def hypergraph_content_hash(hypergraph) -> str:
    """The sha256 hex digest of a hypergraph's structural payload.

    Covers both CSR directions plus the ``directed`` flag; excludes the
    display ``name``.  Two hypergraphs share a hash iff their bipartite
    structures are byte-identical.
    """
    h = hashlib.sha256(b"repro/hypergraph/v1")
    h.update(b"directed" if hypergraph.directed else b"undirected")
    _hash_arrays(
        h,
        hypergraph.hyperedges.offsets,
        hypergraph.hyperedges.indices,
        hypergraph.vertices.offsets,
        hypergraph.vertices.indices,
    )
    return h.hexdigest()


def _preprocess_token(preprocessing: PreprocessSpec | None) -> str:
    """Canonical string form of a preprocessing record for key hashing.

    Uses the sorted-key JSON dump of the spec's canonical serialization so
    stage order is preserved but parameter order is not significant.
    """
    if preprocessing is None:
        preprocessing = PreprocessSpec()
    return json.dumps(preprocessing.to_json(), sort_keys=True)


def resources_key(
    content_hash: str,
    num_cores: int,
    preprocessing: PreprocessSpec | None = None,
) -> str:
    """Store key for the :class:`~repro.engine.resources.GlaResources` built
    from the hypergraph with ``content_hash`` under the given preprocessing
    record (``None`` means the default :class:`PreprocessSpec`)."""
    h = hashlib.sha256(b"repro/resources/")
    h.update(
        f"v{STORE_SCHEMA_VERSION}:{content_hash}:"
        f"cores={num_cores}:".encode()
    )
    h.update(_preprocess_token(preprocessing).encode())
    return h.hexdigest()[:32]


def run_result_key(spec: "RunSpec", dataset_hash: str) -> str:
    """Store key for one memoized simulation run, derived from its
    :class:`~repro.harness.spec.RunSpec`.

    ``dataset_hash`` is the content hash of the dataset *as loaded* —
    before any preprocessing stage runs — so callers (notably the service's
    coalescing layer) can key a run without executing its pipeline; the
    stage list is hashed in via the preprocessing token instead.  The
    spec's full resolved config is hashed (via a sorted-key JSON dump) so
    modified copies get distinct entries, mirroring the in-process memo.
    ``profile`` is part of the key (a profiled run carries telemetry a
    plain entry lacks) and so is ``check``: a checked run re-executes the
    simulation under the invariant checker and must never be answered by —
    or coalesced onto — an unchecked entry.
    """
    if spec.pr_iterations is None:
        raise ValueError(
            "run_result_key needs a spec with concrete pr_iterations; "
            "call RunSpec.normalized() first"
        )
    config_json = json.dumps(
        dataclasses.asdict(spec.resolved_config()), sort_keys=True
    )
    profile = spec.profile or spec.check
    h = hashlib.sha256(b"repro/run/")
    h.update(
        f"v{STORE_SCHEMA_VERSION}:{spec.engine}:{spec.algorithm}:"
        f"{dataset_hash}:pr={spec.pr_iterations}:"
        f"profile={int(profile)}:check={int(spec.check)}:".encode()
    )
    h.update(_preprocess_token(spec.resolved_preprocessing()).encode())
    h.update(b":")
    h.update(config_json.encode())
    return h.hexdigest()[:32]

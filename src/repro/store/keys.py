"""Content-addressed cache keys for persisted preprocessing artifacts.

Every artifact in the store is addressed by a stable hash of *what produced
it*, never by dataset name: the hypergraph payload (both bipartite CSR
directions, byte-exact), the preprocessing parameters (``num_cores``,
``w_min``, ``d_max``), and a schema version.  Renaming a dataset keeps its
cache entries valid; regenerating it with different structure invalidates
them automatically.

``fast`` is deliberately *not* part of any key: the vectorized and scalar
builders are parity-tested to produce bit-identical artifacts
(``tests/core/test_fast_parity.py``), so either may serve the other's cache
entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

__all__ = [
    "STORE_SCHEMA_VERSION",
    "hypergraph_content_hash",
    "resources_key",
    "run_result_key",
]

#: Bump when the on-disk artifact layout changes; old entries are then
#: invisible (they live under a different schema directory) and simply
#: rebuilt, never misread.
#:
#: v2: ``RunResult`` payloads carry an optional ``telemetry`` record and
#: run keys distinguish profiled from plain runs.
#:
#: v3: ``RunResult`` payloads carry DRAM write traffic
#: (``dram_writebacks`` and the per-array breakdown) now that the
#: hierarchy drains dirty evictions to memory instead of dropping them.
STORE_SCHEMA_VERSION = 3


def _hash_arrays(h: "hashlib._Hash", *arrays: np.ndarray) -> None:
    """Feed arrays into ``h`` with dtype/shape framing so that e.g. an
    empty-offsets/indices swap cannot collide."""
    for a in arrays:
        a = np.ascontiguousarray(a)
        frame = f"{a.dtype.str}:{a.shape}".encode()
        h.update(len(frame).to_bytes(4, "little"))
        h.update(frame)
        h.update(a.tobytes())


def hypergraph_content_hash(hypergraph) -> str:
    """The sha256 hex digest of a hypergraph's structural payload.

    Covers both CSR directions plus the ``directed`` flag; excludes the
    display ``name``.  Two hypergraphs share a hash iff their bipartite
    structures are byte-identical.
    """
    h = hashlib.sha256(b"repro/hypergraph/v1")
    h.update(b"directed" if hypergraph.directed else b"undirected")
    _hash_arrays(
        h,
        hypergraph.hyperedges.offsets,
        hypergraph.hyperedges.indices,
        hypergraph.vertices.offsets,
        hypergraph.vertices.indices,
    )
    return h.hexdigest()


def resources_key(
    content_hash: str, num_cores: int, w_min: int, d_max: int
) -> str:
    """Store key for the :class:`~repro.engine.resources.GlaResources` built
    from the hypergraph with ``content_hash`` under the given parameters."""
    h = hashlib.sha256(b"repro/resources/")
    h.update(
        f"v{STORE_SCHEMA_VERSION}:{content_hash}:"
        f"cores={num_cores}:w_min={w_min}:d_max={d_max}".encode()
    )
    return h.hexdigest()[:32]


def run_result_key(
    engine: str,
    algorithm: str,
    dataset_hash: str,
    config,
    pr_iterations: int,
    profile: bool = False,
) -> str:
    """Store key for one memoized simulation run.

    ``config`` is a frozen :class:`~repro.sim.config.SystemConfig`; its full
    field set is hashed (via a sorted-key JSON dump) so modified copies get
    distinct entries, mirroring the in-process memo.  ``profile`` is part of
    the key: a profiled run carries telemetry a plain entry lacks, so the
    two must not serve each other's lookups.
    """
    config_json = json.dumps(dataclasses.asdict(config), sort_keys=True)
    h = hashlib.sha256(b"repro/run/")
    h.update(
        f"v{STORE_SCHEMA_VERSION}:{engine}:{algorithm}:{dataset_hash}:"
        f"pr={pr_iterations}:profile={int(profile)}:".encode()
    )
    h.update(config_json.encode())
    return h.hexdigest()[:32]

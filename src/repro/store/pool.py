"""Resilient process-pool plumbing shared by prewarming and the parallel
experiment executor.

:func:`run_tasks` maps a picklable function over payloads in worker
*processes* with the robustness the callers need and should not each
re-implement:

- a fresh :class:`~concurrent.futures.ProcessPoolExecutor` per attempt, so
  a crashed worker (``BrokenProcessPool``) never poisons the retry;
- bounded retry with exponential backoff for tasks that crashed, raised,
  or missed the parent-side deadline;
- a final **inline** attempt in the calling process (the ground-truth
  path: no pool, no timeout), so a deterministic failure surfaces as the
  original exception rather than a pool artifact.

Workers that hang past ``timeout`` seconds per task are abandoned — the
pool is shut down without waiting — and their tasks retried; the worst
case is an orphan worker finishing into the void (store writes are atomic,
so a late write is harmless).
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any

__all__ = ["TaskOutcome", "backoff_delays", "run_tasks"]

#: Default jitter fraction: each retry sleep is stretched by up to 25%.
DEFAULT_JITTER = 0.25


def backoff_delays(
    retries: int,
    backoff: float,
    jitter: float = DEFAULT_JITTER,
    seed: int | None = None,
) -> list[float]:
    """The full retry sleep schedule: jittered exponential backoff.

    Attempt ``i`` (1-based) sleeps ``backoff * 2**(i-1) * (1 + jitter*u_i)``
    with ``u_i`` drawn from ``random.Random(seed)`` — *deterministic* given
    the seed, so tests can pin the exact schedule, yet different seeds
    (``seed=None`` derives one from the pid) desynchronize concurrent
    clients retrying against shared resources: without jitter every client
    of a wedged store/service sleeps in lockstep and stampedes back at the
    same instant (a thundering herd).
    """
    if retries <= 0 or backoff <= 0:
        return [0.0] * max(0, retries)
    rng = random.Random(os.getpid() if seed is None else seed)
    return [
        backoff * 2 ** attempt * (1.0 + max(0.0, jitter) * rng.random())
        for attempt in range(retries)
    ]


@dataclasses.dataclass(frozen=True)
class TaskOutcome:
    """How one payload fared: its value plus retry/fallback bookkeeping."""

    index: int
    value: Any
    attempts: int
    inline: bool
    errors: tuple[str, ...] = ()


def _resolve_workers(workers: int | None, num_tasks: int) -> int:
    if workers is None:
        workers = min(num_tasks, os.cpu_count() or 1)
    return max(1, workers)


def _run_inline(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    indices: Sequence[int],
    outcomes: dict[int, TaskOutcome],
    attempts: dict[int, int],
    errors: dict[int, list[str]],
) -> None:
    """Ground-truth execution in the parent; exceptions propagate."""
    for index in indices:
        attempts[index] += 1
        value = fn(payloads[index])
        outcomes[index] = TaskOutcome(
            index=index,
            value=value,
            attempts=attempts[index],
            inline=True,
            errors=tuple(errors[index]),
        )


def _pool_attempt(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    indices: list[int],
    workers: int,
    timeout: float | None,
    outcomes: dict[int, TaskOutcome],
    attempts: dict[int, int],
    errors: dict[int, list[str]],
) -> list[int]:
    """One pool round over ``indices``; returns the indices still failed."""
    pool = ProcessPoolExecutor(max_workers=min(workers, len(indices)))
    futures: dict[Future, int] = {}
    for index in indices:
        attempts[index] += 1
        futures[pool.submit(fn, payloads[index])] = index
    # Parent-side backstop deadline: every worker gets ``timeout`` seconds
    # per task it could be serialized behind.  (Workers enforce their own
    # finer-grained timeouts; this only catches hard hangs.)
    rounds = -(-len(indices) // min(workers, len(indices)))
    deadline = (
        time.monotonic() + timeout * rounds + 5.0 if timeout is not None else None
    )
    failed: list[int] = []
    pending = set(futures)
    timed_out = False
    while pending:
        remaining = None if deadline is None else deadline - time.monotonic()
        if remaining is not None and remaining <= 0:
            break
        done, pending = wait(pending, timeout=remaining, return_when=FIRST_COMPLETED)
        if not done:
            break
        for future in done:
            index = futures[future]
            try:
                value = future.result()
            except BrokenProcessPool:
                errors[index].append("worker process died")
                failed.append(index)
                continue
            except Exception as exc:  # noqa: BLE001 - retried, then re-raised inline
                errors[index].append(f"{type(exc).__name__}: {exc}")
                failed.append(index)
                continue
            outcomes[index] = TaskOutcome(
                index=index,
                value=value,
                attempts=attempts[index],
                inline=False,
                errors=tuple(errors[index]),
            )
    for future in pending:  # deadline expired: abandon the stragglers
        timed_out = True
        index = futures[future]
        future.cancel()
        errors[index].append(f"timed out after {timeout}s")
        failed.append(index)
    # A hung worker would make a waiting shutdown block forever.
    pool.shutdown(wait=not timed_out, cancel_futures=True)
    return sorted(failed)


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int | None = None,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.5,
    inline_fallback: bool = True,
    jitter: float = DEFAULT_JITTER,
    jitter_seed: int | None = None,
) -> list[TaskOutcome]:
    """Map ``fn`` over ``payloads`` in worker processes; outcomes in order.

    ``workers=None`` picks ``min(len(payloads), cpu_count)``; ``workers<=1``
    (or a single payload) runs everything inline.  Tasks whose worker
    crashed, raised, or exceeded ``timeout`` are retried in a fresh pool up
    to ``retries`` times with exponential ``backoff``, jittered by up to a
    ``jitter`` fraction per sleep (see :func:`backoff_delays`;
    ``jitter_seed`` pins the schedule, ``None`` derives it from the pid so
    concurrent clients retry out of lockstep); whatever still fails
    then runs inline in the calling process when ``inline_fallback`` is
    set (exceptions propagate from there), else is reported via
    :attr:`TaskOutcome.errors` with ``value=None``.
    """
    if not payloads:
        return []
    workers = _resolve_workers(workers, len(payloads))
    outcomes: dict[int, TaskOutcome] = {}
    attempts = {index: 0 for index in range(len(payloads))}
    errors: dict[int, list[str]] = {index: [] for index in range(len(payloads))}
    pending = list(range(len(payloads)))
    if workers > 1 and len(payloads) > 1:
        delays = backoff_delays(max(0, retries), backoff, jitter, jitter_seed)
        for attempt in range(1 + max(0, retries)):
            if attempt and backoff:
                time.sleep(delays[attempt - 1])
            pending = _pool_attempt(
                fn, payloads, pending, workers, timeout,
                outcomes, attempts, errors,
            )
            if not pending:
                break
    if pending:
        if inline_fallback:
            _run_inline(fn, payloads, pending, outcomes, attempts, errors)
        else:
            for index in pending:
                outcomes[index] = TaskOutcome(
                    index=index,
                    value=None,
                    attempts=attempts[index],
                    inline=False,
                    errors=tuple(errors[index]),
                )
    return [outcomes[index] for index in range(len(payloads))]

"""Parallel cache prewarming: build GlaResources for many combos up front.

The paper's amortization argument (Fig 21/22) assumes OAG preprocessing is
paid once and reused across algorithms; this module makes that literal by
building ``GlaResources`` for a set of (dataset, num_cores) combinations in
parallel worker *processes* and writing each into one shared
:class:`~repro.store.store.ArtifactStore`.  Atomic store writes make
concurrent workers targeting the same directory safe; a worker that finds
its artifact already present reports a skip instead of rebuilding.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path

from repro.core.chain import DEFAULT_D_MAX
from repro.core.oag import DEFAULT_W_MIN
from repro.engine.resources import GlaResources
from repro.harness.datasets import GRAPH_DATASETS, graph_dataset, hypergraph_dataset
from repro.hypergraph.pipeline import PreprocessSpec
from repro.store.keys import hypergraph_content_hash, resources_key
from repro.store.pool import run_tasks
from repro.store.store import ArtifactStore

__all__ = ["PrewarmJob", "PrewarmReport", "prewarm", "prewarm_jobs"]


@dataclasses.dataclass(frozen=True)
class PrewarmJob:
    """One (dataset, parameters) combination to materialize in the store."""

    dataset: str
    num_cores: int
    w_min: int = DEFAULT_W_MIN
    d_max: int = DEFAULT_D_MAX


@dataclasses.dataclass(frozen=True)
class PrewarmReport:
    """What one prewarm worker did."""

    job: PrewarmJob
    key: str
    built: bool
    seconds: float
    payload_bytes: int


def prewarm_jobs(
    datasets: list[str],
    core_counts: list[int],
    w_min: int = DEFAULT_W_MIN,
    d_max: int = DEFAULT_D_MAX,
) -> list[PrewarmJob]:
    """The cross product of datasets × core counts as prewarm jobs."""
    return [
        PrewarmJob(dataset=d, num_cores=c, w_min=w_min, d_max=d_max)
        for d in datasets
        for c in core_counts
    ]


def _resolve_dataset(key: str):
    if key in GRAPH_DATASETS:
        return graph_dataset(key)
    return hypergraph_dataset(key)


def _run_job(payload: tuple[str, PrewarmJob, bool]) -> PrewarmReport:
    """Worker body: build (or find) one artifact in the store.

    Top-level so the process pool can pickle it; each worker opens its own
    store handle on the shared directory.
    """
    store_dir, job, fast = payload
    store = ArtifactStore(store_dir)
    hypergraph = _resolve_dataset(job.dataset)
    preprocessing = PreprocessSpec(w_min=job.w_min, d_max=job.d_max)
    key = resources_key(
        hypergraph_content_hash(hypergraph), job.num_cores, preprocessing
    )
    start = time.perf_counter()
    GlaResources.build_or_load(
        hypergraph,
        job.num_cores,
        fast=fast,
        store=store,
        preprocessing=preprocessing,
    )
    built = store.stats.writes > 0
    path = store._payload_path("resources", key)
    try:
        payload_bytes = path.stat().st_size
    except OSError:
        payload_bytes = 0
    return PrewarmReport(
        job=job,
        key=key,
        built=built,
        seconds=time.perf_counter() - start,
        payload_bytes=payload_bytes,
    )


def prewarm(
    store_dir: str | os.PathLike,
    jobs: list[PrewarmJob],
    workers: int | None = None,
    fast: bool = True,
) -> list[PrewarmReport]:
    """Materialize every job's artifact in ``store_dir``; reports in job order.

    ``workers=None`` picks ``min(len(jobs), cpu_count)``; ``workers<=1``
    runs inline (no process pool), which is also the fallback for
    single-job calls.  Pool failures are absorbed by the shared
    :func:`~repro.store.pool.run_tasks` machinery: a crashed worker's jobs
    are retried and, as a last resort, built inline in this process.
    """
    store_dir = str(Path(store_dir))
    if not jobs:
        return []
    payloads = [(store_dir, job, fast) for job in jobs]
    outcomes = run_tasks(_run_job, payloads, workers=workers)
    return [outcome.value for outcome in outcomes]

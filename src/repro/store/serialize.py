"""Artifact (de)serialization: ``GlaResources`` ↔ npz, ``RunResult`` ↔ JSON.

The npz payload is self-describing: a ``meta`` JSON blob records the
schema version, build parameters and per-OAG metadata, and the CSR arrays
are stored verbatim so a load reproduces the in-memory artifact
bit-identically (the parity the warm-speedup benchmark asserts).  Each
side's per-chunk CSRs are concatenated into three flat arrays with extents
in the metadata — one zip member per *side*, not per chunk, because the
per-member overhead of ``np.load`` would otherwise dominate warm loads on
many-core resource sets.

``RunResult`` payloads are JSON: the value arrays at this repo's scale are
thousands of elements, so ``tolist`` round-tripping is cheap and keeps the
entries greppable on disk.  Non-JSON-serializable ``extra`` entries are
dropped (and recorded) rather than failing the save.
"""

from __future__ import annotations

import io
import json

import numpy as np

from repro.engine.resources import GlaResources
from repro.engine.result import RunResult
from repro.hypergraph.csr import Csr
from repro.core.oag import Oag
from repro.sim.layout import ArrayId
from repro.sim.telemetry import RunTelemetry
from repro.store.keys import STORE_SCHEMA_VERSION

__all__ = [
    "resources_to_bytes",
    "resources_from_bytes",
    "run_result_to_json",
    "run_result_from_json",
    "SerializationError",
]


class SerializationError(ValueError):
    """Raised when an artifact payload cannot be decoded (schema mismatch,
    missing arrays, malformed JSON); the store treats it as a cache miss."""


def _oag_meta(oag: Oag) -> dict:
    return {
        "side": oag.side,
        "w_min": oag.w_min,
        "first_id": oag.first_id,
        "build_seconds": oag.build_seconds,
        "build_operations": oag.build_operations,
        "has_weights": oag.csr.weights is not None,
        "num_nodes": oag.num_nodes,
        "num_edges": oag.num_edges,
    }


def _pack_side(arrays: dict, prefix: str, oags: list[Oag]) -> None:
    """Concatenate one side's chunk CSRs into three flat zip members."""
    empty = np.zeros(0, dtype=np.int64)
    arrays[f"{prefix}_offsets"] = (
        np.concatenate([o.csr.offsets for o in oags]) if oags else empty
    )
    arrays[f"{prefix}_indices"] = (
        np.concatenate([o.csr.indices for o in oags]) if oags else empty
    )
    weight_parts = [
        o.csr.weights for o in oags if o.csr.weights is not None
    ]
    arrays[f"{prefix}_weights"] = (
        np.concatenate(weight_parts) if weight_parts else empty
    )


def resources_to_bytes(resources: GlaResources) -> bytes:
    """Serialize to an in-memory npz payload (compressed)."""
    arrays: dict[str, np.ndarray] = {}
    meta = {
        "schema": STORE_SCHEMA_VERSION,
        "kind": "gla_resources",
        "num_cores": resources.num_cores,
        "w_min": resources.w_min,
        "d_max": resources.d_max,
        "build_seconds": resources.build_seconds,
        "build_operations": resources.build_operations,
        "fast": resources.fast,
        "vertex_oags": [_oag_meta(o) for o in resources.vertex_oags],
        "hyperedge_oags": [_oag_meta(o) for o in resources.hyperedge_oags],
    }
    _pack_side(arrays, "v", resources.vertex_oags)
    _pack_side(arrays, "h", resources.hyperedge_oags)
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def _unpack_side(npz, prefix: str, oag_metas: list[dict]) -> list[Oag]:
    try:
        offsets_all = npz[f"{prefix}_offsets"]
        indices_all = npz[f"{prefix}_indices"]
        weights_all = npz[f"{prefix}_weights"]
    except KeyError as exc:
        raise SerializationError(f"missing CSR arrays for side {prefix!r}") from exc
    oags = []
    off_pos = idx_pos = 0
    for meta in oag_metas:
        rows, edges = meta["num_nodes"], meta["num_edges"]
        offsets = offsets_all[off_pos : off_pos + rows + 1]
        indices = indices_all[idx_pos : idx_pos + edges]
        weights = (
            weights_all[idx_pos : idx_pos + edges] if meta["has_weights"] else None
        )
        if offsets.size != rows + 1 or indices.size != edges:
            raise SerializationError("CSR extents exceed packed arrays")
        off_pos += rows + 1
        idx_pos += edges
        oags.append(
            Oag(
                side=meta["side"],
                csr=Csr(offsets, indices, weights),
                w_min=meta["w_min"],
                first_id=meta["first_id"],
                build_seconds=meta["build_seconds"],
                build_operations=meta["build_operations"],
            )
        )
    if off_pos != offsets_all.size or idx_pos != indices_all.size:
        raise SerializationError("packed arrays longer than CSR extents")
    return oags


def resources_from_bytes(payload: bytes) -> GlaResources:
    """Decode :func:`resources_to_bytes` output; raises
    :class:`SerializationError` on any malformed or mismatched payload."""
    try:
        npz = np.load(io.BytesIO(payload), allow_pickle=False)
        meta = json.loads(bytes(npz["meta"]).decode("utf-8"))
    except (OSError, ValueError, KeyError) as exc:
        raise SerializationError("unreadable resources payload") from exc
    if meta.get("schema") != STORE_SCHEMA_VERSION or meta.get("kind") != "gla_resources":
        raise SerializationError(
            f"schema mismatch: {meta.get('kind')}/{meta.get('schema')}"
        )
    try:
        vertex_oags = _unpack_side(npz, "v", meta["vertex_oags"])
        hyperedge_oags = _unpack_side(npz, "h", meta["hyperedge_oags"])
        return GlaResources(
            num_cores=meta["num_cores"],
            w_min=meta["w_min"],
            d_max=meta["d_max"],
            vertex_oags=vertex_oags,
            hyperedge_oags=hyperedge_oags,
            build_seconds=meta["build_seconds"],
            build_operations=meta["build_operations"],
            fast=meta["fast"],
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError("malformed resources metadata") from exc


def _array_to_json(a: np.ndarray) -> dict:
    return {"dtype": str(a.dtype), "data": np.asarray(a).tolist()}


def _array_from_json(d: dict) -> np.ndarray:
    return np.asarray(d["data"], dtype=np.dtype(d["dtype"]))


def run_result_to_json(result: RunResult) -> dict:
    """A JSON-serializable dict for one memoized run."""
    extra, dropped = {}, []
    for key, value in result.extra.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            dropped.append(key)
        else:
            extra[key] = value
    return {
        "schema": STORE_SCHEMA_VERSION,
        "kind": "run_result",
        "engine": result.engine,
        "algorithm": result.algorithm,
        "dataset": result.dataset,
        "result": _array_to_json(result.result),
        "vertex_values": _array_to_json(result.vertex_values),
        "hyperedge_values": _array_to_json(result.hyperedge_values),
        "iterations": result.iterations,
        "cycles": result.cycles,
        "compute_cycles": result.compute_cycles,
        "memory_stall_cycles": result.memory_stall_cycles,
        "dram_accesses": result.dram_accesses,
        "dram_by_array": {str(int(k)): int(v) for k, v in result.dram_by_array.items()},
        "dram_writebacks": result.dram_writebacks,
        "dram_writebacks_by_array": {
            str(int(k)): int(v)
            for k, v in result.dram_writebacks_by_array.items()
        },
        "chain_stats": result.chain_stats,
        "extra": extra,
        "extra_dropped": dropped,
        "telemetry": (
            result.telemetry.to_json() if result.telemetry is not None else None
        ),
    }


def run_result_from_json(payload: dict) -> RunResult:
    """Inverse of :func:`run_result_to_json`; raises
    :class:`SerializationError` on schema or shape mismatch."""
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != STORE_SCHEMA_VERSION
        or payload.get("kind") != "run_result"
    ):
        raise SerializationError("not a run_result payload of this schema")
    telemetry_json = payload.get("telemetry")
    try:
        return RunResult(
            engine=payload["engine"],
            algorithm=payload["algorithm"],
            dataset=payload["dataset"],
            result=_array_from_json(payload["result"]),
            vertex_values=_array_from_json(payload["vertex_values"]),
            hyperedge_values=_array_from_json(payload["hyperedge_values"]),
            iterations=payload["iterations"],
            cycles=payload["cycles"],
            compute_cycles=payload["compute_cycles"],
            memory_stall_cycles=payload["memory_stall_cycles"],
            dram_accesses=payload["dram_accesses"],
            dram_by_array={
                ArrayId(int(k)): v for k, v in payload["dram_by_array"].items()
            },
            dram_writebacks=payload["dram_writebacks"],
            dram_writebacks_by_array={
                ArrayId(int(k)): v
                for k, v in payload["dram_writebacks_by_array"].items()
            },
            chain_stats=payload["chain_stats"],
            extra=payload["extra"],
            telemetry=(
                RunTelemetry.from_json(telemetry_json)
                if telemetry_json is not None
                else None
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed run_result payload") from exc

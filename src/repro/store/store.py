"""The persistent, content-addressed artifact store.

Disk layout (all under one root directory, e.g. ``$REPRO_CACHE_DIR``)::

    <root>/v1/resources/<key>.npz            GlaResources payload
    <root>/v1/resources/<key>.npz.manifest   checksum + size sidecar
    <root>/v1/results/<key>.json             RunResult payload
    <root>/v1/results/<key>.json.manifest

Writes are atomic: payloads land in a temp file in the destination
directory and are ``os.replace``-d into place, then the manifest follows —
so concurrent writers (the parallel prewarm pipeline) can target one store
directory safely; the worst case is one writer's identical bytes winning
the rename race.  Loads verify the manifest checksum over the full payload
and treat any mismatch, truncation or schema drift as a *miss*: the corrupt
entry is deleted, a counter is bumped, and the caller rebuilds.

The schema version is part of the path, so a layout change simply makes old
entries invisible rather than misread.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.store.keys import STORE_SCHEMA_VERSION
from repro.store.serialize import (
    SerializationError,
    resources_from_bytes,
    resources_to_bytes,
    run_result_from_json,
    run_result_to_json,
)

__all__ = ["ArtifactStore", "StoreStats", "StoreEntry", "resolve_cache_dir"]

#: Environment variable that opts the harness into persistent caching.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_KIND_SUFFIX = {"resources": ".npz", "results": ".json"}


def resolve_cache_dir(explicit: str | os.PathLike | None = None) -> Path | None:
    """The store root: an explicit argument wins, else ``$REPRO_CACHE_DIR``,
    else ``None`` (caching disabled)."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(CACHE_DIR_ENV, "")
    return Path(env) if env else None


@dataclasses.dataclass
class StoreStats:
    """Per-instance cache counters (process lifetime, not persisted)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corruptions: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    def __str__(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, {self.writes} writes, "
            f"{self.evictions} evictions, {self.corruptions} corruptions"
        )


@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """One listed artifact (``ls``/``gc`` bookkeeping)."""

    kind: str
    key: str
    path: Path
    size_bytes: int
    mtime: float


class ArtifactStore:
    """Content-addressed on-disk cache for preprocessing artifacts.

    Parameters
    ----------
    root:
        Store directory; created on first write.
    max_bytes:
        Optional size bound.  When set, every write triggers an
        oldest-first (by payload mtime; hits refresh it) eviction pass that
        keeps total payload+manifest bytes at or under the bound.
    """

    def __init__(
        self, root: str | os.PathLike, max_bytes: int | None = None
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.stats = StoreStats()

    # -- paths -------------------------------------------------------------

    @property
    def schema_dir(self) -> Path:
        return self.root / f"v{STORE_SCHEMA_VERSION}"

    def _payload_path(self, kind: str, key: str) -> Path:
        if kind not in _KIND_SUFFIX:
            raise ValueError(f"unknown artifact kind {kind!r}")
        return self.schema_dir / kind / f"{key}{_KIND_SUFFIX[kind]}"

    @staticmethod
    def _manifest_path(payload: Path) -> Path:
        return payload.with_name(payload.name + ".manifest")

    # -- generic blob layer ------------------------------------------------

    @staticmethod
    def _checksum(payload: bytes) -> str:
        return "sha256:" + hashlib.sha256(payload).hexdigest()

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put_bytes(self, kind: str, key: str, payload: bytes) -> Path:
        """Atomically persist one artifact (payload, then manifest)."""
        path = self._payload_path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, payload)
        manifest = {
            "schema": STORE_SCHEMA_VERSION,
            "kind": kind,
            "key": key,
            "checksum": self._checksum(payload),
            "size": len(payload),
        }
        self._atomic_write(
            self._manifest_path(path), json.dumps(manifest).encode("utf-8")
        )
        self.stats.writes += 1
        if self.max_bytes is not None:
            self.gc(self.max_bytes)
        return path

    def _discard(self, path: Path) -> None:
        for victim in (path, self._manifest_path(path)):
            try:
                victim.unlink()
            except OSError:
                pass

    def get_bytes(self, kind: str, key: str) -> bytes | None:
        """Load and checksum-verify one artifact; ``None`` on miss.

        A corrupt or truncated entry (manifest/payload mismatch) is deleted
        and reported as a miss so callers transparently rebuild.
        """
        path = self._payload_path(kind, key)
        manifest_path = self._manifest_path(path)
        try:
            manifest = json.loads(manifest_path.read_bytes())
            payload = path.read_bytes()
        except (OSError, ValueError):
            if path.exists() or manifest_path.exists():
                # Orphan payload or unreadable manifest: junk, not a clean miss.
                self._discard(path)
                self.stats.corruptions += 1
            self.stats.misses += 1
            return None
        if (
            manifest.get("schema") != STORE_SCHEMA_VERSION
            or manifest.get("checksum") != self._checksum(payload)
        ):
            self._discard(path)
            self.stats.corruptions += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        try:
            os.utime(path)  # LRU touch: keep hot entries out of gc's way
        except OSError:
            pass
        return payload

    # -- typed helpers -----------------------------------------------------

    def put_resources(self, key: str, resources) -> Path:
        return self.put_bytes("resources", key, resources_to_bytes(resources))

    def get_resources(self, key: str):
        payload = self.get_bytes("resources", key)
        if payload is None:
            return None
        try:
            return resources_from_bytes(payload)
        except SerializationError:
            self._corrupt_after_hit("resources", key)
            return None

    def put_run_result(self, key: str, result) -> Path:
        payload = json.dumps(run_result_to_json(result)).encode("utf-8")
        return self.put_bytes("results", key, payload)

    def get_run_result(self, key: str):
        payload = self.get_bytes("results", key)
        if payload is None:
            return None
        try:
            return run_result_from_json(json.loads(payload.decode("utf-8")))
        except (ValueError, SerializationError):
            self._corrupt_after_hit("results", key)
            return None

    def _corrupt_after_hit(self, kind: str, key: str) -> None:
        """Checksum passed but decoding failed: reclassify the hit."""
        self._discard(self._payload_path(kind, key))
        self.stats.hits -= 1
        self.stats.misses += 1
        self.stats.corruptions += 1

    # -- maintenance -------------------------------------------------------

    def ls(self) -> list[StoreEntry]:
        """All intact entries, oldest first."""
        entries = []
        for kind, suffix in _KIND_SUFFIX.items():
            directory = self.schema_dir / kind
            if not directory.is_dir():
                continue
            for path in directory.glob(f"*{suffix}"):
                try:
                    stat = path.stat()
                    size = stat.st_size + self._manifest_path(path).stat().st_size
                except OSError:
                    continue
                entries.append(
                    StoreEntry(
                        kind=kind,
                        key=path.name[: -len(suffix)],
                        path=path,
                        size_bytes=size,
                        mtime=stat.st_mtime,
                    )
                )
        return sorted(entries, key=lambda e: (e.mtime, e.key))

    def disk_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.ls())

    def gc(self, max_bytes: int | None = None) -> int:
        """Evict oldest entries until the store fits ``max_bytes``.

        Returns the number of entries evicted.  ``max_bytes=None`` falls
        back to the instance bound; with neither set this is a no-op.
        """
        bound = self.max_bytes if max_bytes is None else max_bytes
        if bound is None:
            return 0
        entries = self.ls()
        total = sum(entry.size_bytes for entry in entries)
        evicted = 0
        for entry in entries:
            if total <= bound:
                break
            self._discard(entry.path)
            total -= entry.size_bytes
            evicted += 1
        self.stats.evictions += evicted
        return evicted

    def clear(self) -> int:
        """Delete every entry of the current schema; returns the count."""
        entries = self.ls()
        for entry in entries:
            self._discard(entry.path)
        return len(entries)

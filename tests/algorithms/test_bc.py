"""Betweenness centrality against an independent Brandes implementation."""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from repro.algorithms.bc import BetweennessCentrality
from repro.engine.hygra import HygraEngine
from repro.hypergraph.hypergraph import Hypergraph


def reference_dependencies(hypergraph, source: int) -> np.ndarray:
    """Brandes on the bipartite graph; hyperedge nodes are not endpoints.

    Nodes are ('v', id) and ('h', id).  delta flows back as
    delta[pred] += sigma[pred]/sigma[w] * (endpoint(w) + delta[w]) where
    endpoint(w) is 1 for vertex nodes and 0 for hyperedge nodes.
    """
    def neighbors(node):
        kind, idx = node
        if kind == "v":
            return [("h", int(h)) for h in hypergraph.incident_hyperedges(idx)]
        return [("v", int(v)) for v in hypergraph.incident_vertices(idx)]

    start = ("v", source)
    dist = {start: 0}
    sigma = {start: 1.0}
    order = []
    queue = deque([start])
    while queue:
        node = queue.popleft()
        order.append(node)
        for nxt in neighbors(node):
            if nxt not in dist:
                dist[nxt] = dist[node] + 1
                sigma[nxt] = 0.0
                queue.append(nxt)
            if dist[nxt] == dist[node] + 1:
                sigma[nxt] += sigma[node]
    delta = {node: 0.0 for node in order}
    for node in reversed(order):
        for nxt in neighbors(node):
            if nxt in dist and dist[nxt] == dist[node] + 1:
                endpoint = 1.0 if nxt[0] == "v" else 0.0
                delta[node] += sigma[node] / sigma[nxt] * (endpoint + delta[nxt])
    result = np.zeros(hypergraph.num_vertices)
    for (kind, idx), value in delta.items():
        if kind == "v":
            result[idx] = value
    return result


@pytest.mark.parametrize("source", [0, 2, 5])
def test_figure1_matches_reference(figure1, source):
    run = HygraEngine().run(BetweennessCentrality(source=source), figure1)
    expected = reference_dependencies(figure1, source)
    assert np.allclose(run.result, expected)


def test_small_hypergraph_matches_reference(small_hypergraph):
    run = HygraEngine().run(BetweennessCentrality(source=1), small_hypergraph)
    expected = reference_dependencies(small_hypergraph, 1)
    assert np.allclose(run.result, expected)


def test_path_hypergraph_center_dominates():
    """On a path v0-h0-v1-h1-v2, the middle vertex carries all dependency."""
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1], [1, 2]])
    run = HygraEngine().run(BetweennessCentrality(source=0), hypergraph)
    assert run.result[1] > run.result[2] >= 0


def test_isolated_source():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1]], num_vertices=3)
    run = HygraEngine().run(BetweennessCentrality(source=2), hypergraph)
    assert np.allclose(run.result, 0.0)


def test_unreachable_vertices_zero():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1], [2, 3]])
    run = HygraEngine().run(BetweennessCentrality(source=0), hypergraph)
    assert run.result[2] == 0.0
    assert run.result[3] == 0.0

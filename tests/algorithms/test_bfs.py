"""BFS correctness against networkx on the bipartite representation."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.bfs import Bfs
from repro.engine.hygra import HygraEngine


def bipartite_graph(hypergraph) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(f"v{v}" for v in range(hypergraph.num_vertices))
    graph.add_nodes_from(f"h{h}" for h in range(hypergraph.num_hyperedges))
    for h in range(hypergraph.num_hyperedges):
        for v in hypergraph.incident_vertices(h):
            graph.add_edge(f"h{h}", f"v{int(v)}")
    return graph


def reference_distances(hypergraph, source: int) -> np.ndarray:
    lengths = nx.single_source_shortest_path_length(
        bipartite_graph(hypergraph), f"v{source}"
    )
    distances = np.full(hypergraph.num_vertices, np.inf)
    for node, dist in lengths.items():
        if node.startswith("v"):
            distances[int(node[1:])] = dist
    return distances


def test_figure1_distances(figure1):
    result = HygraEngine().run(Bfs(source=0), figure1)
    assert np.array_equal(result.result, reference_distances(figure1, 0))


def test_small_hypergraph_distances(small_hypergraph):
    result = HygraEngine().run(Bfs(source=3), small_hypergraph)
    assert np.array_equal(result.result, reference_distances(small_hypergraph, 3))


def test_unreached_vertices_infinite(figure1):
    # v5 is only in h1; from v0 it is reachable, but an isolated vertex in a
    # padded hypergraph is not.
    from repro.hypergraph.hypergraph import Hypergraph

    padded = Hypergraph.from_hyperedge_lists([[0, 1]], num_vertices=4)
    result = HygraEngine().run(Bfs(source=0), padded)
    assert result.result[0] == 0
    assert result.result[1] == 2  # one hyperedge hop = two bipartite hops
    assert np.isinf(result.result[2])
    assert np.isinf(result.result[3])


def test_source_distance_zero(small_hypergraph):
    result = HygraEngine().run(Bfs(source=0), small_hypergraph)
    assert result.result[0] == 0


def test_distances_even(small_hypergraph):
    """Vertex distances count bipartite hops, so they are always even."""
    result = HygraEngine().run(Bfs(source=0), small_hypergraph)
    finite = result.result[np.isfinite(result.result)]
    assert np.all(finite % 2 == 0)


def test_hyperedge_distances_odd(figure1):
    result = HygraEngine().run(Bfs(source=0), figure1)
    finite = result.hyperedge_values[np.isfinite(result.hyperedge_values)]
    assert np.all(finite % 2 == 1)


@pytest.mark.parametrize("source", [0, 1, 5])
def test_multiple_sources(figure1, source):
    result = HygraEngine().run(Bfs(source=source), figure1)
    assert np.array_equal(result.result, reference_distances(figure1, source))

"""Connected components against networkx on the clique expansion."""

from __future__ import annotations

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.cc import ConnectedComponents
from repro.engine.hygra import HygraEngine
from repro.hypergraph.hypergraph import Hypergraph


def components_match_networkx(hypergraph) -> bool:
    result = HygraEngine().run(ConnectedComponents(), hypergraph)
    graph = nx.Graph()
    graph.add_nodes_from(range(hypergraph.num_vertices))
    graph.add_edges_from(hypergraph.clique_expansion())
    for component in nx.connected_components(graph):
        labels = {result.result[v] for v in component}
        if len(labels) != 1:
            return False
        # The label is the component's minimum vertex id.
        if labels != {float(min(component))}:
            return False
    return True


def test_figure1_single_component(figure1):
    assert components_match_networkx(figure1)
    result = HygraEngine().run(ConnectedComponents(), figure1)
    assert np.all(result.result == 0.0)


def test_two_components():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1, 2], [3, 4]])
    result = HygraEngine().run(ConnectedComponents(), hypergraph)
    assert list(result.result) == [0, 0, 0, 3, 3]


def test_isolated_vertex_own_component():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1]], num_vertices=3)
    result = HygraEngine().run(ConnectedComponents(), hypergraph)
    assert result.result[2] == 2.0


def test_small_hypergraph(small_hypergraph):
    assert components_match_networkx(small_hypergraph)


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=24), min_size=1, max_size=5),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=30, deadline=None)
def test_random_hypergraphs_match_networkx(hyperedges):
    hypergraph = Hypergraph.from_hyperedge_lists(hyperedges, num_vertices=25)
    assert components_match_networkx(hypergraph)

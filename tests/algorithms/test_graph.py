"""Ordinary-graph applications (SSSP and Adsorption, §VI-I)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.graph import Adsorption, Sssp
from repro.engine.hygra import HygraEngine
from repro.hypergraph.generators import two_uniform_graph


EDGES = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]


@pytest.fixture
def ring_graph():
    return two_uniform_graph(EDGES, num_vertices=5)


def test_sssp_matches_networkx(ring_graph):
    run = HygraEngine().run(Sssp(source=0), ring_graph)
    graph = nx.Graph(EDGES)
    lengths = nx.single_source_shortest_path_length(graph, 0)
    # Crossing one hyperedge (= one graph edge) costs 1.
    for v, expected in lengths.items():
        assert run.result[v] == expected


def test_sssp_unreachable():
    graph = two_uniform_graph([(0, 1)], num_vertices=3)
    run = HygraEngine().run(Sssp(source=0), graph)
    assert np.isinf(run.result[2])


def test_sssp_on_general_hypergraph(figure1):
    """SSSP generalizes to non-2-uniform hypergraphs (distance through any
    hyperedge costs one hop per bipartite edge)."""
    run = HygraEngine().run(Sssp(source=0), figure1)
    assert run.result[0] == 0
    assert run.result[4] == 1  # shares h0 with v0


def test_adsorption_converges_and_bounded(ring_graph):
    run = HygraEngine().run(Adsorption(iterations=8, beta=0.2, seed=1), ring_graph)
    assert np.all(np.isfinite(run.result))
    assert np.all(run.result >= 0)
    assert run.iterations == 8


def test_adsorption_deterministic(ring_graph):
    a = HygraEngine().run(Adsorption(iterations=4, seed=3), ring_graph)
    b = HygraEngine().run(Adsorption(iterations=4, seed=3), ring_graph)
    assert np.array_equal(a.result, b.result)


def test_adsorption_beta_one_keeps_seeds(ring_graph):
    """With beta=1 every vertex keeps exactly its injected seed score."""
    algo = Adsorption(iterations=3, beta=1.0, seed=5)
    run = HygraEngine().run(algo, ring_graph)
    seeds = np.random.default_rng(5).random(ring_graph.num_vertices)
    assert np.allclose(run.result, seeds)


def test_adsorption_isolated_vertex_keeps_seed():
    graph = two_uniform_graph([(0, 1)], num_vertices=3)
    run = HygraEngine().run(Adsorption(iterations=3, beta=0.2, seed=4), graph)
    seeds = np.random.default_rng(4).random(3)
    assert run.result[2] == pytest.approx(seeds[2])


def test_adsorption_dense_flag():
    assert Adsorption().dense_frontier is True


def test_weighted_sssp_matches_dijkstra():
    """Weighted SSSP against networkx Dijkstra on a weighted graph."""
    edges = [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)]
    weights = [1.0, 2.0, 5.0, 1.0, 7.0]
    graph = two_uniform_graph(edges, num_vertices=4)
    run = HygraEngine().run(Sssp(source=0, weights=weights), graph)
    nx_graph = nx.Graph()
    for (u, v), w in zip(edges, weights):
        nx_graph.add_edge(u, v, weight=w)
    lengths = nx.single_source_dijkstra_path_length(nx_graph, 0)
    for v, expected in lengths.items():
        assert run.result[v] == pytest.approx(expected)


def test_weighted_sssp_rejects_negative():
    with pytest.raises(ValueError):
        Sssp(weights=[1.0, -2.0])


def test_weighted_sssp_rejects_wrong_length():
    graph = two_uniform_graph([(0, 1), (1, 2)])
    with pytest.raises(ValueError):
        HygraEngine().run(Sssp(source=0, weights=[1.0]), graph)


def test_weighted_sssp_on_hypergraph(figure1):
    """Weights generalise to real hypergraphs: cheap h0 vs expensive h2."""
    weights = np.array([0.5, 1.0, 10.0, 1.0])
    run = HygraEngine().run(Sssp(source=0, weights=weights), figure1)
    # v4 is in both h0 (0.5) and h2 (10.0): the cheap hyperedge wins.
    assert run.result[4] == pytest.approx(0.5)

"""k-core decomposition against an independent peeling implementation."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.kcore import KCore
from repro.engine.hygra import HygraEngine
from repro.hypergraph.hypergraph import Hypergraph


def reference_coreness(hypergraph) -> np.ndarray:
    """Straightforward peeling: same rules, direct implementation.

    A hyperedge connects only while >= 2 members survive; a vertex's degree
    counts surviving connecting hyperedges; round k removes (cascading)
    every vertex with degree < k, assigning coreness k - 1.
    """
    nv, nh = hypergraph.num_vertices, hypergraph.num_hyperedges
    members = {h: set(map(int, hypergraph.incident_vertices(h))) for h in range(nh)}
    alive_e = {h for h in range(nh) if len(members[h]) >= 2}
    degree = np.zeros(nv)
    for h in alive_e:
        for v in members[h]:
            degree[v] += 1
    alive_v = set(range(nv))
    coreness = np.full(nv, -1.0)
    k = 1
    while alive_v:
        doomed = [v for v in alive_v if degree[v] < k]
        if not doomed:
            k = max(k + 1, int(min(degree[v] for v in alive_v)) + 1)
            continue
        while doomed:
            v = doomed.pop()
            if v not in alive_v:
                continue
            alive_v.discard(v)
            coreness[v] = k - 1
            for h in list(map(int, hypergraph.incident_hyperedges(v))):
                if h not in alive_e:
                    continue
                members[h].discard(v)
                if len(members[h]) < 2:
                    alive_e.discard(h)
                    for u in members[h]:
                        if u in alive_v:
                            degree[u] -= 1
                            if degree[u] < k:
                                doomed.append(u)
    return coreness


def test_figure1_coreness(figure1):
    run = HygraEngine().run(KCore(), figure1)
    assert np.array_equal(run.result, reference_coreness(figure1))


def test_small_hypergraph_coreness(small_hypergraph):
    run = HygraEngine().run(KCore(), small_hypergraph)
    assert np.array_equal(run.result, reference_coreness(small_hypergraph))


def test_isolated_vertex_coreness_zero():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1]], num_vertices=3)
    run = HygraEngine().run(KCore(), hypergraph)
    assert run.result[2] == 0.0


def test_all_vertices_assigned(small_hypergraph):
    run = HygraEngine().run(KCore(), small_hypergraph)
    assert np.all(run.result >= 0)


def test_dense_core_has_higher_coreness():
    # A 4-clique of hyperedges plus a pendant vertex.
    hypergraph = Hypergraph.from_hyperedge_lists(
        [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3], [3, 4]]
    )
    run = HygraEngine().run(KCore(), hypergraph)
    assert run.result[4] < run.result[0]


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=14), min_size=2, max_size=4),
        min_size=1,
        max_size=14,
    )
)
@settings(max_examples=30, deadline=None)
def test_random_hypergraphs_match_reference(hyperedges):
    hypergraph = Hypergraph.from_hyperedge_lists(hyperedges, num_vertices=15)
    run = HygraEngine().run(KCore(), hypergraph)
    assert np.array_equal(run.result, reference_coreness(hypergraph))

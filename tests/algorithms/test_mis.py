"""Maximal independent set: independence and maximality invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.mis import EXCLUDED, IN_SET, MaximalIndependentSet, UNDECIDED
from repro.engine.hygra import HygraEngine
from repro.hypergraph.hypergraph import Hypergraph


def check_mis(hypergraph, result) -> None:
    """Independence + maximality over the clique expansion."""
    in_set = {int(v) for v in np.flatnonzero(result.result == IN_SET)}
    adjacency = {v: set() for v in range(hypergraph.num_vertices)}
    for u, w in hypergraph.clique_expansion():
        adjacency[u].add(w)
        adjacency[w].add(u)
    # Independence: no two set members are clique-adjacent.
    for v in in_set:
        assert not (adjacency[v] & in_set), f"vertex {v} conflicts"
    # Maximality: every non-member has a member neighbor.
    for v in range(hypergraph.num_vertices):
        if v not in in_set:
            assert adjacency[v] & in_set, f"vertex {v} could be added"
    # Nothing left undecided.
    assert not np.any(result.result == UNDECIDED)


def test_figure1_mis(figure1):
    result = HygraEngine().run(MaximalIndependentSet(seed=1), figure1)
    check_mis(figure1, result)


def test_small_hypergraph_mis(small_hypergraph):
    result = HygraEngine().run(MaximalIndependentSet(seed=7), small_hypergraph)
    check_mis(small_hypergraph, result)


def test_isolated_vertices_always_in_set():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1]], num_vertices=4)
    result = HygraEngine().run(MaximalIndependentSet(seed=2), hypergraph)
    assert result.result[2] == IN_SET
    assert result.result[3] == IN_SET


def test_deterministic_given_seed(figure1):
    a = HygraEngine().run(MaximalIndependentSet(seed=5), figure1)
    b = HygraEngine().run(MaximalIndependentSet(seed=5), figure1)
    assert np.array_equal(a.result, b.result)


def test_different_seeds_may_differ(small_hypergraph):
    results = set()
    for seed in range(6):
        run = HygraEngine().run(MaximalIndependentSet(seed=seed), small_hypergraph)
        results.add(tuple(run.result))
    assert len(results) > 1  # the set genuinely depends on priorities


def test_status_values_partition(figure1):
    result = HygraEngine().run(MaximalIndependentSet(seed=3), figure1)
    assert set(np.unique(result.result)) <= {IN_SET, EXCLUDED}


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=19), min_size=2, max_size=5),
        min_size=1,
        max_size=10,
    ),
    st.integers(min_value=0, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_random_hypergraphs_valid_mis(hyperedges, seed):
    hypergraph = Hypergraph.from_hyperedge_lists(hyperedges, num_vertices=20)
    result = HygraEngine().run(MaximalIndependentSet(seed=seed), hypergraph)
    check_mis(hypergraph, result)

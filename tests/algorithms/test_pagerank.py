"""PageRank semantics tests (Algorithm 1, Lines 15-21)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRank
from repro.engine.hygra import HygraEngine
from repro.hypergraph.hypergraph import Hypergraph


def test_single_iteration_hand_computed():
    """Two vertices, one hyperedge: exact closed form for one iteration.

    HF: h.val = v0/1 + v1/1 = 1.0 (initial values are 1/|V| = 0.5 each).
    VF: v.val = (1-a)/(2*1) + a*h.val/2 for each vertex.
    """
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1]])
    result = HygraEngine().run(PageRank(iterations=1, alpha=0.85), hypergraph)
    expected_h = 1.0
    expected_v = (1 - 0.85) / 2 + 0.85 * expected_h / 2
    assert result.hyperedge_values[0] == pytest.approx(expected_h)
    assert np.allclose(result.result, expected_v)


def test_symmetry(figure1):
    """Vertices with identical incidence get identical ranks."""
    # v1 and v3 are both in exactly h1 and h3.
    result = HygraEngine().run(PageRank(iterations=5), figure1)
    assert result.result[1] == pytest.approx(result.result[3])


def test_ranks_positive_and_finite(small_hypergraph):
    result = HygraEngine().run(PageRank(iterations=4), small_hypergraph)
    assert np.all(np.isfinite(result.result))
    assert np.all(result.result > 0)


def test_iterations_respected(figure1):
    result = HygraEngine().run(PageRank(iterations=3), figure1)
    assert result.iterations == 3


def test_invalid_iterations():
    with pytest.raises(ValueError):
        PageRank(iterations=0)


def test_higher_degree_vertices_rank_higher(figure1):
    """v5 (degree 1) should rank below the degree-2 vertices it neighbors."""
    result = HygraEngine().run(PageRank(iterations=10), figure1)
    assert result.result[5] < result.result[1]


def test_isolated_vertex_keeps_mass():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1]], num_vertices=3)
    result = HygraEngine().run(PageRank(iterations=3), hypergraph)
    assert result.result[2] == pytest.approx(1.0 / 3.0)


def test_dense_frontier_flag():
    assert PageRank().dense_frontier is True


def test_matches_matrix_power_iteration(small_hypergraph):
    """The HF/VF formulation equals the closed matrix recurrence.

    One iteration in matrix form, with B the |H| x |V| incidence matrix
    and D the degree diagonals: h = B D_v^{-1} v, then
    v' = deg_v * (1-a)/(|V| deg_v) + a * B^T D_h^{-1} h — the addend is
    applied once per VF call, i.e. deg_v times per vertex.  Running the
    recurrence directly with numpy must reproduce the engine's vector.
    """
    hg = small_hypergraph
    nv, nh = hg.num_vertices, hg.num_hyperedges
    alpha = 0.85
    incidence = np.zeros((nh, nv))
    for h in range(nh):
        incidence[h, hg.incident_vertices(h)] = 1.0
    deg_v = incidence.sum(axis=0)
    deg_h = incidence.sum(axis=1)
    v = np.full(nv, 1.0 / nv)
    iterations = 4
    for _ in range(iterations):
        h_val = incidence @ (v / np.where(deg_v > 0, deg_v, 1.0))
        addend = (1 - alpha) / (nv * np.where(deg_v > 0, deg_v, 1.0))
        gather = incidence.T @ (h_val / np.where(deg_h > 0, deg_h, 1.0))
        v_new = deg_v * addend + alpha * gather
        v = np.where(deg_v > 0, v_new, v)
    run = HygraEngine().run(PageRank(iterations=iterations), hg)
    assert np.allclose(run.result, v)

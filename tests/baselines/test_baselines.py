"""Tests for the HATS-V, event-prefetcher and Ligra baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRank
from repro.algorithms.graph import Sssp
from repro.baselines import EventPrefetcherEngine, HatsVEngine, LigraEngine
from repro.baselines.hats import bdfs_order
from repro.engine import ChGraphEngine, GlaResources, HygraEngine
from repro.errors import EngineError
from repro.hypergraph.generators import two_uniform_graph
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem


def test_bdfs_order_covers_active(small_hypergraph):
    active = np.ones(small_hypergraph.num_hyperedges, dtype=bool)
    order, traversed = bdfs_order(small_hypergraph, "hyperedge", active, 0)
    assert sorted(order) == list(range(small_hypergraph.num_hyperedges))
    assert traversed > 0


def test_bdfs_order_respects_inactive(small_hypergraph):
    active = np.zeros(small_hypergraph.num_hyperedges, dtype=bool)
    active[:10] = True
    order, _ = bdfs_order(small_hypergraph, "hyperedge", active, 0)
    assert sorted(order) == list(range(10))


def test_bdfs_chunk_offset(small_hypergraph):
    active = np.ones(20, dtype=bool)
    order, _ = bdfs_order(small_hypergraph, "hyperedge", active, first_id=30)
    assert sorted(order) == list(range(30, 50))


def test_hats_v_slower_than_chgraph(small_hypergraph):
    """Figure 7's shape: ChGraph outperforms HATS-V."""
    config = scaled_config(num_cores=4, llc_kb=2)
    resources = GlaResources.build(small_hypergraph, config.num_cores)
    hats = HatsVEngine(resources).run(
        PageRank(iterations=2), small_hypergraph, SimulatedSystem(config)
    )
    chg = ChGraphEngine(resources).run(
        PageRank(iterations=2), small_hypergraph, SimulatedSystem(config)
    )
    assert chg.cycles < hats.cycles


def test_prefetcher_matches_hygra_dram(small_hypergraph):
    """§VI-H: the prefetcher hides latency but fetches the same lines."""
    config = scaled_config(num_cores=4, llc_kb=2)
    hygra = HygraEngine().run(
        PageRank(iterations=2), small_hypergraph, SimulatedSystem(config)
    )
    pref = EventPrefetcherEngine().run(
        PageRank(iterations=2), small_hypergraph, SimulatedSystem(config)
    )
    # Same access stream, same DRAM traffic (within a small tolerance for
    # the L1-bypass fill level difference).
    assert pref.dram_accesses == pytest.approx(hygra.dram_accesses, rel=0.1)
    # But it runs faster: latency hidden behind the engine.
    assert pref.cycles < hygra.cycles


def test_prefetcher_results_match(small_hypergraph):
    hygra = HygraEngine().run(PageRank(iterations=2), small_hypergraph)
    pref = EventPrefetcherEngine().run(PageRank(iterations=2), small_hypergraph)
    assert np.allclose(hygra.result, pref.result)


def test_ligra_accepts_graphs():
    graph = two_uniform_graph([(0, 1), (1, 2), (2, 0)])
    run = LigraEngine().run(Sssp(source=0), graph)
    assert run.result[2] == 1.0


def test_ligra_rejects_hypergraphs(figure1):
    with pytest.raises(EngineError):
        LigraEngine().run(Sssp(source=0), figure1)

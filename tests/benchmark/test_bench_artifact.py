"""BENCH_*.json artifacts: atomic writes, manifests, schema checks."""

from __future__ import annotations

import json

import pytest

from repro.benchmark.artifact import (
    BENCH_SCHEMA_VERSION,
    build_report,
    host_class,
    load_report,
    report_filename,
    scale_report,
    write_report,
)
from repro.benchmark.measure import Measurement
from repro.errors import BenchmarkError


def _measurement(name: str = "probe", base: float = 0.1) -> Measurement:
    return Measurement(
        name=name,
        description=f"the {name} probe",
        samples_s=(base * 1.2, base, base * 1.1),
        warmup_s=base,
        ci_lower_s=base,
        ci_upper_s=base * 1.1,
    )


def test_host_class_shape():
    host = host_class()
    assert host.count("-") >= 3
    assert "py" in host
    assert host.endswith("cpu")
    assert report_filename() == f"BENCH_{host}.json"
    assert report_filename("linux-x86_64-py3.11-8cpu") == (
        "BENCH_linux-x86_64-py3.11-8cpu.json"
    )


def test_build_report_carries_schema_and_probes():
    report = build_report([_measurement("a"), _measurement("b")], 3, 1)
    assert report["schema"] == BENCH_SCHEMA_VERSION
    assert report["kind"] == "bench-report"
    assert report["host_class"] == host_class()
    assert report["repeats"] == 3
    assert report["warmup"] == 1
    assert set(report["probes"]) == {"a", "b"}


def test_write_then_load_round_trips(tmp_path):
    report = build_report([_measurement()], 3, 1)
    path = write_report(report, tmp_path)
    assert path.name == report_filename()
    assert path.with_name(path.name + ".manifest").exists()
    loaded = load_report(path)
    assert loaded == json.loads(json.dumps(report))


def test_write_report_honors_explicit_filename(tmp_path):
    report = build_report([_measurement()], 1, 0)
    path = write_report(report, tmp_path, filename="custom.json")
    assert path == tmp_path / "custom.json"
    assert load_report(path)["probes"].keys() == {"probe"}


def test_load_detects_manifest_checksum_mismatch(tmp_path):
    path = write_report(build_report([_measurement()], 3, 1), tmp_path)
    # Corrupt the payload without touching the manifest.
    payload = json.loads(path.read_text())
    payload["repeats"] = 999
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    with pytest.raises(BenchmarkError, match="checksum"):
        load_report(path)
    # Verification can be bypassed explicitly (hand-edited baselines).
    assert load_report(path, verify=False)["repeats"] == 999


def test_load_tolerates_missing_manifest(tmp_path):
    path = write_report(build_report([_measurement()], 3, 1), tmp_path)
    path.with_name(path.name + ".manifest").unlink()
    assert load_report(path)["kind"] == "bench-report"


def test_load_rejects_wrong_kind_and_schema(tmp_path):
    not_bench = tmp_path / "other.json"
    not_bench.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(BenchmarkError, match="not a bench report"):
        load_report(not_bench)

    future = build_report([_measurement()], 3, 1)
    future["schema"] = BENCH_SCHEMA_VERSION + 1
    path = tmp_path / "future.json"
    path.write_text(json.dumps(future))
    with pytest.raises(BenchmarkError, match="schema"):
        load_report(path)


def test_load_rejects_truncated_json(tmp_path):
    path = write_report(build_report([_measurement()], 3, 1), tmp_path)
    path.with_name(path.name + ".manifest").unlink()
    path.write_bytes(path.read_bytes()[:40])
    with pytest.raises(BenchmarkError, match="corrupt"):
        load_report(path)


def test_scale_report_scales_every_timing_field():
    report = build_report([_measurement(base=0.2)], 3, 1)
    scaled = scale_report(report, 0.5)
    probe = scaled["probes"]["probe"]
    original = report["probes"]["probe"]
    for field in ("best_s", "mean_s", "ci_lower_s", "ci_upper_s"):
        assert probe[field] == pytest.approx(original[field] * 0.5)
    assert probe["samples_s"] == pytest.approx(
        [s * 0.5 for s in original["samples_s"]]
    )
    # The original is untouched and non-timing fields survive.
    assert report["probes"]["probe"]["best_s"] == original["best_s"]
    assert scaled["host_class"] == report["host_class"]


def test_scale_report_rejects_non_positive_factor():
    report = build_report([_measurement()], 3, 1)
    with pytest.raises(BenchmarkError):
        scale_report(report, 0.0)

"""Noise-aware comparison and gating logic."""

from __future__ import annotations

import pytest

from repro.benchmark.compare import (
    DEFAULT_GATE_THRESHOLD,
    compare_reports,
    gate_failures,
)
from repro.errors import BenchmarkError

HOST = "linux-x86_64-py3.11-8cpu"


def _probe(best: float, lower: float | None = None, upper: float | None = None):
    return {
        "best_s": best,
        "mean_s": best * 1.1,
        "ci_lower_s": best if lower is None else lower,
        "ci_upper_s": best * 1.05 if upper is None else upper,
        "samples_s": [best, best * 1.1],
        "warmup_s": best,
        "description": "",
    }


def _report(probes: dict, host: str = HOST):
    return {
        "schema": 1,
        "kind": "bench-report",
        "host_class": host,
        "repeats": 2,
        "warmup": 1,
        "probes": probes,
    }


def test_identical_reports_all_ok():
    report = _report({"a": _probe(0.1), "b": _probe(0.2)})
    comparisons = compare_reports(report, report)
    assert [c.verdict for c in comparisons] == ["ok", "ok"]
    assert gate_failures(comparisons) == []
    assert all(c.ratio == pytest.approx(1.0) for c in comparisons)


def test_injected_2x_slowdown_gates():
    baseline = _report({"a": _probe(0.1, lower=0.1, upper=0.105)})
    current = _report({"a": _probe(0.2, lower=0.2, upper=0.21)})
    (comparison,) = compare_reports(baseline=baseline, current=current)
    assert comparison.verdict == "regression"
    assert comparison.ratio == pytest.approx(2.0)
    assert gate_failures([comparison]) == [comparison]


def test_slowdown_with_overlapping_cis_is_noise_not_regression():
    # 2x over baseline, but the intervals overlap: repetition noise.
    baseline = _report({"a": _probe(0.1, lower=0.08, upper=0.5)})
    current = _report({"a": _probe(0.2, lower=0.15, upper=0.6)})
    (comparison,) = compare_reports(baseline=baseline, current=current)
    assert comparison.verdict == "noise"
    assert not comparison.gated
    assert gate_failures([comparison]) == []


def test_slowdown_under_threshold_is_ok_even_when_separated():
    baseline = _report({"a": _probe(0.1, lower=0.1, upper=0.101)})
    current = _report({"a": _probe(0.13, lower=0.13, upper=0.131)})
    (comparison,) = compare_reports(baseline=baseline, current=current)
    assert comparison.verdict == "ok"


def test_custom_threshold_tightens_the_gate():
    baseline = _report({"a": _probe(0.1, lower=0.1, upper=0.101)})
    current = _report({"a": _probe(0.13, lower=0.13, upper=0.131)})
    (comparison,) = compare_reports(
        baseline=baseline, current=current, threshold=0.2
    )
    assert comparison.verdict == "regression"


def test_probe_missing_from_current_fails_the_gate():
    baseline = _report({"a": _probe(0.1), "dropped": _probe(0.2)})
    current = _report({"a": _probe(0.1)})
    comparisons = compare_reports(baseline=baseline, current=current)
    by_name = {c.name: c for c in comparisons}
    assert by_name["dropped"].verdict == "missing"
    assert by_name["dropped"].gated
    assert gate_failures(comparisons) == [by_name["dropped"]]


def test_new_probe_reported_but_never_gated():
    baseline = _report({"a": _probe(0.1)})
    current = _report({"a": _probe(0.1), "fresh": _probe(5.0)})
    comparisons = compare_reports(baseline=baseline, current=current)
    by_name = {c.name: c for c in comparisons}
    assert by_name["fresh"].verdict == "new"
    assert not by_name["fresh"].gated
    assert comparisons[-1].name == "fresh"  # new probes sort last


def test_host_class_mismatch_is_an_error():
    baseline = _report({"a": _probe(0.1)}, host="linux-x86_64-py3.11-8cpu")
    current = _report({"a": _probe(0.1)}, host="linux-x86_64-py3.11-1cpu")
    with pytest.raises(BenchmarkError, match="host-class"):
        compare_reports(baseline=baseline, current=current)


def test_non_positive_baseline_time_is_an_error():
    baseline = _report({"a": _probe(0.0)})
    current = _report({"a": _probe(0.1)})
    with pytest.raises(BenchmarkError, match="non-positive"):
        compare_reports(baseline=baseline, current=current)


def test_invalid_threshold_is_an_error():
    report = _report({"a": _probe(0.1)})
    with pytest.raises(BenchmarkError):
        compare_reports(report, report, threshold=0.0)


def test_default_threshold_is_fifty_percent():
    assert DEFAULT_GATE_THRESHOLD == 0.5

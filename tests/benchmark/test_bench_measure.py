"""The measurement core: timing, bootstrap CIs, probe lifecycle."""

from __future__ import annotations

import pytest

from repro.benchmark.measure import (
    Measurement,
    bootstrap_ci,
    measure_probe,
    timed,
)
from repro.benchmark.registry import BenchProbe
from repro.errors import BenchmarkError


def test_timed_returns_result_and_nonnegative_elapsed():
    result, elapsed = timed(lambda: "payload")
    assert result == "payload"
    assert elapsed >= 0.0


def test_timed_propagates_exceptions():
    with pytest.raises(ValueError):
        timed(lambda: (_ for _ in ()).throw(ValueError("boom")))


def test_bootstrap_ci_is_deterministic():
    samples = [0.5, 0.7, 0.6, 0.9, 0.4]
    assert bootstrap_ci(samples) == bootstrap_ci(samples)
    # Rendering a report twice from the same samples must agree exactly.
    assert bootstrap_ci(samples, seed=7) == bootstrap_ci(samples, seed=7)


def test_bootstrap_ci_brackets_the_statistic():
    samples = [0.5, 0.7, 0.6, 0.9, 0.4]
    lower, upper = bootstrap_ci(samples)
    assert lower <= upper
    # The min statistic over resamples can never leave the sample range.
    assert min(samples) <= lower or lower <= min(samples) <= upper
    assert upper <= max(samples)


def test_bootstrap_ci_single_sample_degenerates():
    assert bootstrap_ci([0.25]) == (0.25, 0.25)


def test_bootstrap_ci_rejects_empty():
    with pytest.raises(BenchmarkError):
        bootstrap_ci([])


def _counting_probe(counts: dict, cleanup_calls: list | None = None):
    def factory():
        counts["setups"] = counts.get("setups", 0) + 1

        def thunk():
            counts["calls"] = counts.get("calls", 0) + 1

        if cleanup_calls is None:
            return thunk
        return thunk, lambda: cleanup_calls.append("done")

    return BenchProbe(name="counting", description="counts", factory=factory)


def test_measure_probe_runs_setup_once_and_warmup_plus_repeats():
    counts: dict = {}
    m = measure_probe(_counting_probe(counts), repeats=3, warmup=2)
    assert counts == {"setups": 1, "calls": 5}
    assert isinstance(m, Measurement)
    assert len(m.samples_s) == 3
    assert m.best_s == min(m.samples_s)
    assert m.ci_lower_s <= m.best_s <= m.ci_upper_s


def test_measure_probe_zero_warmup_records_zero_warmup_time():
    counts: dict = {}
    m = measure_probe(_counting_probe(counts), repeats=1, warmup=0)
    assert counts == {"setups": 1, "calls": 1}
    assert m.warmup_s == 0.0


def test_measure_probe_rejects_zero_repeats():
    with pytest.raises(BenchmarkError):
        measure_probe(_counting_probe({}), repeats=0)


def test_measure_probe_cleanup_runs_on_success_and_failure():
    cleanups: list = []
    measure_probe(_counting_probe({}, cleanups), repeats=2)
    assert cleanups == ["done"]

    failing = BenchProbe(
        name="failing",
        description="",
        factory=lambda: (
            lambda: (_ for _ in ()).throw(RuntimeError("rep died")),
            lambda: cleanups.append("after-failure"),
        ),
    )
    with pytest.raises(RuntimeError):
        measure_probe(failing, repeats=1, warmup=0)
    assert cleanups == ["done", "after-failure"]


def test_measurement_as_json_round_trips_the_fields():
    m = Measurement(
        name="p",
        description="d",
        samples_s=(0.2, 0.1, 0.3),
        warmup_s=0.05,
        ci_lower_s=0.1,
        ci_upper_s=0.2,
    )
    blob = m.as_json()
    assert blob["best_s"] == 0.1
    assert blob["mean_s"] == pytest.approx(0.2)
    assert blob["samples_s"] == [0.2, 0.1, 0.3]
    assert blob["warmup_s"] == 0.05
    assert blob["ci_lower_s"] == 0.1
    assert blob["ci_upper_s"] == 0.2
    assert blob["description"] == "d"

"""The probe registry: registration, lookup, setup normalization."""

from __future__ import annotations

import pytest

from repro.benchmark.registry import (
    PROBE_REGISTRY,
    BenchProbe,
    bench,
    get_probe,
    load_default_probes,
    probe_names,
)
from repro.errors import BenchmarkError, ReproError


@pytest.fixture
def clean_registry(monkeypatch):
    """An empty registry the test may populate freely."""
    monkeypatch.setattr(
        "repro.benchmark.registry.PROBE_REGISTRY", {}, raising=True
    )
    from repro.benchmark import registry

    return registry.PROBE_REGISTRY


def test_bench_registers_in_order(clean_registry):
    @bench("b-probe", "second")
    def _b():
        return lambda: None

    @bench("a-probe", "first")
    def _a():
        return lambda: None

    assert probe_names() == ("b-probe", "a-probe")
    assert get_probe("a-probe").description == "first"


def test_duplicate_name_is_an_error(clean_registry):
    @bench("dup")
    def _one():
        return lambda: None

    with pytest.raises(BenchmarkError, match="duplicate"):

        @bench("dup")
        def _two():
            return lambda: None


def test_unknown_probe_names_the_known_ones(clean_registry):
    @bench("known")
    def _known():
        return lambda: None

    with pytest.raises(BenchmarkError, match="known"):
        get_probe("missing")


def test_description_falls_back_to_docstring(clean_registry):
    @bench("documented")
    def _documented():
        """Docstring description."""
        return lambda: None

    assert get_probe("documented").description == "Docstring description."


def test_setup_normalizes_bare_thunk():
    thunk = lambda: 42  # noqa: E731
    probe = BenchProbe(name="p", description="", factory=lambda: thunk)
    got_thunk, cleanup = probe.setup()
    assert got_thunk is thunk
    assert cleanup is None


def test_setup_passes_cleanup_through():
    calls = []
    probe = BenchProbe(
        name="p",
        description="",
        factory=lambda: (lambda: 42, lambda: calls.append("cleanup")),
    )
    thunk, cleanup = probe.setup()
    assert thunk() == 42
    cleanup()
    assert calls == ["cleanup"]


def test_default_suite_registers_the_documented_probes():
    load_default_probes()
    expected = {
        "oag-build-fast",
        "chain-generation",
        "store-warm-load",
        "run-many-jobs2",
        "serve-roundtrip",
        "sim-inner-loop",
    }
    assert expected <= set(PROBE_REGISTRY)


def test_benchmark_error_is_a_repro_error_with_data_exit_code():
    assert issubclass(BenchmarkError, ReproError)
    assert BenchmarkError.exit_code == 65

"""End-to-end ``repro benchmark`` CLI flows over synthetic cheap probes.

The real probe suite is minutes of simulation; these tests monkeypatch
the registry with microsecond-scale probes so the full run → baseline →
gate loop (including the injected-2x-regression drill the CI smoke job
performs) is exercised in well under a second.
"""

from __future__ import annotations

import json

import pytest

from repro import benchmark
from repro.benchmark.registry import BenchProbe
from repro.cli import main
from repro.errors import BenchmarkError


@pytest.fixture
def synthetic_suite(monkeypatch):
    """Two trivial probes standing in for the real suite."""
    registry = {
        "fast-noop": BenchProbe(
            name="fast-noop",
            description="does nothing",
            factory=lambda: (lambda: None),
        ),
        "fast-sum": BenchProbe(
            name="fast-sum",
            description="sums a small range",
            factory=lambda: (lambda: sum(range(256))),
        ),
    }
    monkeypatch.setattr(
        "repro.benchmark.registry.PROBE_REGISTRY", registry, raising=True
    )
    # ``run`` would import the real probe module; keep it out of the way.
    monkeypatch.setattr(benchmark, "load_default_probes", lambda: None)
    return registry


def _run(out_dir) -> str:
    code = main([
        "benchmark", "run", "--repeats", "3", "--warmup", "1",
        "--out-dir", str(out_dir),
    ])
    assert code == 0
    return str(out_dir / benchmark.report_filename())


def test_run_emits_report_and_manifest(synthetic_suite, tmp_path, capsys):
    path = _run(tmp_path)
    out = capsys.readouterr().out
    assert "Benchmark suite" in out
    assert "fast-noop" in out and "fast-sum" in out

    report = json.loads((tmp_path / benchmark.report_filename()).read_text())
    assert report["schema"] == benchmark.BENCH_SCHEMA_VERSION
    assert set(report["probes"]) == {"fast-noop", "fast-sum"}
    for probe in report["probes"].values():
        assert len(probe["samples_s"]) == 3
        assert probe["ci_lower_s"] <= probe["best_s"] <= probe["ci_upper_s"]
    assert (tmp_path / (benchmark.report_filename() + ".manifest")).exists()
    assert path.endswith(".json")


def test_probe_subset_selection(synthetic_suite, tmp_path):
    assert main([
        "benchmark", "run", "--repeats", "2", "--probes", "fast-sum",
        "--out-dir", str(tmp_path),
    ]) == 0
    report = json.loads((tmp_path / benchmark.report_filename()).read_text())
    assert set(report["probes"]) == {"fast-sum"}


def test_unknown_probe_exits_with_data_error(synthetic_suite, tmp_path):
    code = main([
        "benchmark", "run", "--probes", "no-such-probe",
        "--out-dir", str(tmp_path),
    ])
    assert code == BenchmarkError.exit_code


def test_gate_passes_on_clean_rerun_and_fails_on_injected_2x(
    synthetic_suite, tmp_path, capsys
):
    """The acceptance drill: same report gates clean; 0.5x baseline fails."""
    current = _run(tmp_path / "run")

    clean = tmp_path / "clean-baseline.json"
    assert main([
        "benchmark", "baseline", "--from", current, "--out", str(clean),
    ]) == 0
    assert main([
        "benchmark", "gate", "--current", current, "--baseline", str(clean),
    ]) == 0

    slowed = tmp_path / "slowed-baseline.json"
    assert main([
        "benchmark", "baseline", "--from", current, "--out", str(slowed),
        "--scale", "0.5",
    ]) == 0
    capsys.readouterr()
    code = main([
        "benchmark", "gate", "--current", current, "--baseline", str(slowed),
    ])
    assert code == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    assert "regression(s)" in captured.err


def test_compare_reports_regressions_without_failing(
    synthetic_suite, tmp_path, capsys
):
    current = _run(tmp_path / "run")
    slowed = tmp_path / "slowed.json"
    main([
        "benchmark", "baseline", "--from", current, "--out", str(slowed),
        "--scale", "0.5",
    ])
    capsys.readouterr()
    assert main([
        "benchmark", "compare", "--current", current,
        "--baseline", str(slowed),
    ]) == 0
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    assert "would fail the gate" in captured.err


def test_gate_without_baseline_is_a_data_error(
    synthetic_suite, tmp_path, monkeypatch
):
    current = _run(tmp_path)
    monkeypatch.chdir(tmp_path)  # no benchmarks/baselines/ here
    code = main(["benchmark", "gate", "--current", current])
    assert code == BenchmarkError.exit_code


def test_gate_rejects_host_class_mismatch(synthetic_suite, tmp_path):
    current = _run(tmp_path)
    other = json.loads((tmp_path / benchmark.report_filename()).read_text())
    other["host_class"] = "other-arch-py0.0-999cpu"
    foreign = tmp_path / "foreign.json"
    foreign.write_text(json.dumps(other))
    code = main([
        "benchmark", "gate", "--current", current, "--baseline", str(foreign),
    ])
    assert code == BenchmarkError.exit_code


def test_committed_baseline_matches_this_host_when_present(synthetic_suite):
    """If a baseline for this host class is committed, it must load clean."""
    from repro.cli import _default_baseline_path

    path = _default_baseline_path()
    if not path.exists():
        pytest.skip(f"no committed baseline for this host class ({path.name})")
    report = benchmark.load_report(path)
    assert report["host_class"] == benchmark.host_class()
    assert len(report["probes"]) >= 6

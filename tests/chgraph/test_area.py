"""Tests for the §VI-E area/power accounting."""

from __future__ import annotations

import pytest

from repro.chgraph.area import area_report
from repro.sim.config import scaled_config


def test_buffer_sizes_match_paper():
    report = area_report()
    # Stack: 16 x (4 + 4 + 4 + 64) B = 1216 B = 1.19 KB.
    assert report.stack_bytes == 1216
    # Chain FIFO: 32 x 4 B = 128 B = 0.13 KB.
    assert report.chain_fifo_bytes == 128
    # Bipartite-edge FIFO: 32 x 24 B = 768 B = 0.75 KB.
    assert report.tuple_fifo_bytes == 768
    assert report.register_bytes == 84


def test_headline_area_and_power():
    report = area_report()
    # Paper: 0.094 mm2 and 61 mW at 65 nm.
    assert report.total_mm2 == pytest.approx(0.094, abs=0.004)
    assert report.total_mw == pytest.approx(61.0, abs=2.0)


def test_fractions_match_paper():
    report = area_report()
    assert report.area_fraction_of_core == pytest.approx(0.0026, abs=0.0002)
    assert report.power_fraction_of_core == pytest.approx(0.0019, abs=0.0002)


def test_area_scales_with_buffers():
    small = area_report(scaled_config().replace(stack_depth=8))
    default = area_report(scaled_config())
    assert small.stack_bytes < default.stack_bytes
    assert small.total_mm2 < default.total_mm2


def test_buffer_total():
    report = area_report()
    assert report.buffer_bytes == 1216 + 128 + 768 + 84

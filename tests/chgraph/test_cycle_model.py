"""Tests for the cycle-level ChGraph timing model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chgraph.cycle_model import (
    ChainMicroOp,
    SELECT,
    record_hcg_microops,
    simulate_phase,
)
from repro.core.oag import build_oag
from repro.sim.config import scaled_config


@pytest.fixture
def setup(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    ops = record_hcg_microops(np.ones(4, dtype=bool), oag)
    return figure1, ops


def test_microops_cover_schedule(setup):
    _, ops = setup
    selects = [op for op in ops if op.kind == SELECT]
    assert [op.element for op in selects] == [0, 2, 1, 3]  # the paper chain


def test_all_tuples_delivered(setup):
    figure1, ops = setup
    stats = simulate_phase(
        ops, figure1, "hyperedge", scaled_config(),
        hcg_latency=lambda: 5.0, cp_latency=lambda: 20.0,
    )
    assert stats.tuples == figure1.num_bipartite_edges


def test_total_bounds_components(setup):
    figure1, ops = setup
    stats = simulate_phase(
        ops, figure1, "hyperedge", scaled_config(),
        hcg_latency=lambda: 5.0, cp_latency=lambda: 20.0,
    )
    assert stats.total_cycles >= stats.hcg_busy_until
    assert stats.total_cycles >= stats.cp_busy_until
    assert stats.total_cycles >= stats.core_busy_cycles
    assert stats.core_stalled_cycles >= 0


def test_fifo_peaks_bounded(setup):
    figure1, ops = setup
    config = scaled_config()
    stats = simulate_phase(
        ops, figure1, "hyperedge", config,
        hcg_latency=lambda: 5.0, cp_latency=lambda: 20.0,
    )
    assert stats.chain_fifo_peak <= config.chain_fifo_depth
    assert stats.tuple_fifo_peak <= config.tuple_fifo_depth


def test_tiny_tuple_fifo_throttles_cp(setup):
    """A 1-deep tuple FIFO serializes CP and core: runtime grows."""
    figure1, ops = setup
    wide = simulate_phase(
        ops, figure1, "hyperedge", scaled_config(),
        hcg_latency=lambda: 5.0, cp_latency=lambda: 40.0,
    )
    narrow = simulate_phase(
        ops, figure1, "hyperedge",
        scaled_config().replace(tuple_fifo_depth=1, chain_fifo_depth=1),
        hcg_latency=lambda: 5.0, cp_latency=lambda: 40.0,
    )
    assert narrow.total_cycles >= wide.total_cycles
    assert narrow.tuple_fifo_peak == 1


def test_slow_memory_stalls_core(setup):
    figure1, ops = setup
    fast = simulate_phase(
        ops, figure1, "hyperedge", scaled_config(),
        hcg_latency=lambda: 1.0, cp_latency=lambda: 1.0,
    )
    slow = simulate_phase(
        ops, figure1, "hyperedge", scaled_config(),
        hcg_latency=lambda: 1.0, cp_latency=lambda: 300.0,
    )
    assert slow.core_stalled_cycles > fast.core_stalled_cycles
    assert slow.total_cycles > fast.total_cycles


def test_mlp_slots_matter(setup):
    """More MSHR slots overlap more prefetch latency."""
    figure1, ops = setup
    few = simulate_phase(
        ops, figure1, "hyperedge", scaled_config().replace(engine_mlp=1.0),
        hcg_latency=lambda: 1.0, cp_latency=lambda: 100.0,
    )
    many = simulate_phase(
        ops, figure1, "hyperedge", scaled_config().replace(engine_mlp=16.0),
        hcg_latency=lambda: 1.0, cp_latency=lambda: 100.0,
    )
    assert many.total_cycles < few.total_cycles


def test_core_bound_when_memory_free(setup):
    """With ~zero memory latency the phase is Apply-throughput bound."""
    figure1, ops = setup
    config = scaled_config()
    stats = simulate_phase(
        ops, figure1, "hyperedge", config,
        hcg_latency=lambda: 0.0, cp_latency=lambda: 0.0,
    )
    floor = stats.tuples * (config.apply_cycles + config.fifo_pop_cycles)
    assert stats.total_cycles >= floor
    assert stats.core_utilization > 0.5


def test_empty_schedule():
    from repro.hypergraph.hypergraph import Hypergraph

    empty = Hypergraph.from_hyperedge_lists([], num_vertices=0)
    stats = simulate_phase(
        [], empty, "hyperedge", scaled_config(),
        hcg_latency=lambda: 1.0, cp_latency=lambda: 1.0,
    )
    assert stats.tuples == 0
    assert stats.total_cycles == 0.0


def test_dense_root_scans_skip_memory():
    op_dense = ChainMicroOp("root_scan", 0)
    op_sparse = ChainMicroOp("root_scan", 1)
    assert op_dense.memory_accesses == 0
    assert op_sparse.memory_accesses == 1

"""Tests for the programmer-visible ChGraph device (ISA shims)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chgraph.engine import ChGraphConfigRegisters, ChGraphDevice
from repro.core.oag import build_oag
from repro.core.tuples import END_OF_CHAINS
from repro.errors import ConfigurationError
from repro.sim.config import scaled_config


def make_registers(figure1, phase_label=0):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    return ChGraphConfigRegisters(
        phase_label=phase_label,
        hypergraph=figure1,
        bitmap=np.ones(4, dtype=bool),
        chunk_first=0,
        chunk_last=4,
        oag=oag,
    )


def test_fetch_before_configure_raises():
    device = ChGraphDevice(scaled_config())
    with pytest.raises(ConfigurationError):
        device.ch_fetch_bipartite_edge()


def test_tuple_stream_follows_chain_order(figure1):
    device = ChGraphDevice(scaled_config())
    device.ch_configure(make_registers(figure1))
    tuples = device.drain()
    # Vertex computation: hyperedges scheduled in chain order <h0,h2,h1,h3>.
    sources = []
    for entry in tuples:
        if not sources or sources[-1] != entry.src:
            sources.append(entry.src)
    assert sources == [0, 2, 1, 3]
    assert len(tuples) == figure1.num_bipartite_edges


def test_sentinel_after_drain(figure1):
    device = ChGraphDevice(scaled_config())
    device.ch_configure(make_registers(figure1))
    device.drain()
    assert device.ch_fetch_bipartite_edge() == END_OF_CHAINS


def test_hyperedge_phase_schedules_vertices(figure1):
    oag = build_oag(figure1, "vertex", w_min=1)
    registers = ChGraphConfigRegisters(
        phase_label=1,
        hypergraph=figure1,
        bitmap=np.ones(7, dtype=bool),
        chunk_first=0,
        chunk_last=7,
        oag=oag,
    )
    device = ChGraphDevice(scaled_config())
    device.ch_configure(registers)
    tuples = device.drain()
    assert len(tuples) == figure1.num_bipartite_edges
    assert {t.src for t in tuples} == set(range(7))


def test_inactive_elements_not_streamed(figure1):
    registers = make_registers(figure1)
    registers.bitmap[1] = False  # h1 inactive
    device = ChGraphDevice(scaled_config())
    device.ch_configure(registers)
    tuples = device.drain()
    assert 1 not in {t.src for t in tuples}


def test_register_validation(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    with pytest.raises(ConfigurationError):
        ChGraphConfigRegisters(
            phase_label=2,  # invalid label
            hypergraph=figure1,
            bitmap=np.ones(4, dtype=bool),
            chunk_first=0,
            chunk_last=4,
            oag=oag,
        )
    with pytest.raises(ConfigurationError):
        ChGraphConfigRegisters(
            phase_label=0,
            hypergraph=figure1,
            bitmap=np.ones(3, dtype=bool),  # wrong bitmap size
            chunk_first=0,
            chunk_last=4,
            oag=oag,
        )


def test_fresh_src_flags(figure1):
    device = ChGraphDevice(scaled_config())
    device.ch_configure(make_registers(figure1))
    tuples = device.drain()
    fresh = [t for t in tuples if t.fresh_src]
    assert len(fresh) == 4  # one per scheduled hyperedge


def test_fifo_occupancy_bounded(figure1):
    device = ChGraphDevice(scaled_config())
    device.ch_configure(make_registers(figure1))
    device.drain()
    assert device.tuple_fifo.max_occupancy <= device.tuple_fifo.depth

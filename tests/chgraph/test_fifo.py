"""Tests for the bounded hardware FIFO."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chgraph.fifo import BoundedFifo
from repro.errors import FifoError


def test_push_pop_fifo_order():
    fifo = BoundedFifo(4)
    fifo.push(1)
    fifo.push(2)
    assert fifo.pop() == 1
    assert fifo.pop() == 2


def test_full_and_empty_flags():
    fifo = BoundedFifo(2)
    assert fifo.is_empty
    fifo.push("a")
    fifo.push("b")
    assert fifo.is_full
    assert len(fifo) == 2


def test_try_push_stalls_when_full():
    fifo = BoundedFifo(1)
    assert fifo.try_push(1)
    assert not fifo.try_push(2)
    assert fifo.push_stalls == 1
    assert len(fifo) == 1


def test_push_raises_on_overflow():
    fifo = BoundedFifo(1)
    fifo.push(1)
    with pytest.raises(FifoError):
        fifo.push(2)


def test_push_on_full_counts_stall_exactly_once():
    """Regression: ``push`` delegates to ``try_push``, which already counts
    the stall — the failed push must record exactly one, not two."""
    fifo = BoundedFifo(2)
    fifo.push("a")
    fifo.push("b")
    with pytest.raises(FifoError):
        fifo.push("c")
    assert fifo.push_stalls == 1
    assert fifo.pushes == 2  # the overflowing entry was never admitted
    assert len(fifo) == 2


def test_try_pop_stalls_when_empty():
    fifo = BoundedFifo(2)
    ok, entry = fifo.try_pop()
    assert not ok and entry is None
    assert fifo.pop_stalls == 1


def test_pop_raises_on_empty():
    with pytest.raises(FifoError):
        BoundedFifo(2).pop()


def test_peek():
    fifo = BoundedFifo(2)
    fifo.push(7)
    assert fifo.peek() == 7
    assert len(fifo) == 1
    with pytest.raises(FifoError):
        BoundedFifo(2).peek()


def test_max_occupancy_tracked():
    fifo = BoundedFifo(4)
    fifo.push(1)
    fifo.push(2)
    fifo.pop()
    fifo.push(3)
    assert fifo.max_occupancy == 2


def test_storage_bytes():
    # The paper's chain FIFO: 32 x 4 B = 128 B; tuple FIFO: 32 x 24 B.
    assert BoundedFifo(32, entry_bytes=4).storage_bytes() == 128
    assert BoundedFifo(32, entry_bytes=24).storage_bytes() == 768


def test_zero_depth_rejected():
    with pytest.raises(FifoError):
        BoundedFifo(0)


@given(st.lists(st.sampled_from(["push", "pop"]), max_size=200))
@settings(max_examples=50, deadline=None)
def test_fifo_matches_reference_queue(operations):
    from collections import deque

    fifo = BoundedFifo(8)
    reference: deque[int] = deque()
    counter = 0
    for op in operations:
        if op == "push":
            expected = len(reference) < 8
            pushed = fifo.try_push(counter)
            assert pushed == expected
            if pushed:
                reference.append(counter)
            counter += 1
        else:
            ok, entry = fifo.try_pop()
            if reference:
                assert ok and entry == reference.popleft()
            else:
                assert not ok
        assert len(fifo) == len(reference) <= 8

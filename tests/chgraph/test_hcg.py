"""Tests for the hardware chain generator cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chgraph.hcg import HardwareChainGenerator, HcgCost
from repro.core.chain import ChainGenerator
from repro.core.oag import build_oag
from repro.sim.config import scaled_config
from repro.sim.hierarchy import MemoryHierarchy


def _null_access(core, array, index):
    return 0


def test_hcg_chains_match_software_generator(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    config = scaled_config()
    hcg = HardwareChainGenerator(config, d_max=16)
    active = np.ones(4, dtype=bool)
    chains, _ = hcg.generate(active, oag, core=0, access=_null_access)
    reference = ChainGenerator(d_max=16).generate(active, oag)
    assert chains.chains == reference.chains


def test_hcg_d_max_capped_by_stack(figure1):
    config = scaled_config().replace(stack_depth=8)
    hcg = HardwareChainGenerator(config, d_max=64)
    assert hcg.d_max == 8


def test_hcg_cost_counts(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    config = scaled_config()
    hcg = HardwareChainGenerator(config, d_max=16)
    chains, cost = hcg.generate(
        np.ones(4, dtype=bool), oag, core=0, access=_null_access
    )
    # One beat per root scan + per offsets fetch + per inspection + per select.
    expected_beats = (
        chains.root_scans
        + chains.offsets_fetches
        + chains.neighbor_inspections
        + chains.num_elements
    )
    assert cost.beats == expected_beats
    # Sparse mode: a bitmap probe per root scan, two OAG_offset reads per
    # offsets fetch, one OAG_edge read per inspection.
    assert cost.requests == (
        chains.root_scans + 2 * chains.offsets_fetches + chains.neighbor_inspections
    )


def test_hcg_dense_skips_bitmap(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    config = scaled_config()
    hcg = HardwareChainGenerator(config, d_max=16)
    _, sparse_cost = hcg.generate(
        np.ones(4, dtype=bool), oag, core=0, access=_null_access, dense=False
    )
    _, dense_cost = hcg.generate(
        np.ones(4, dtype=bool), oag, core=0, access=_null_access, dense=True
    )
    assert dense_cost.requests == sparse_cost.requests - 4  # 4 root scans


def test_hcg_engine_cycles(figure1):
    cost = HcgCost(beats=10, serial_latency=100.0)
    assert cost.engine_cycles(stage_cycles=2.0) == pytest.approx(120.0)


def test_hcg_issues_engine_accesses(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    config = scaled_config(num_cores=2, llc_kb=2)
    hierarchy = MemoryHierarchy(config)
    hcg = HardwareChainGenerator(config, d_max=16)
    _, cost = hcg.generate(
        np.ones(4, dtype=bool), oag, core=0, access=hierarchy.engine_access
    )
    assert cost.serial_latency > 0
    # OAG data landed in the L2 (engine fill level), not the L1.
    assert hierarchy.l2[0].stats.accesses > 0
    assert hierarchy.l1[0].stats.accesses == 0

"""Tests for the chain-driven prefetcher cost model."""

from __future__ import annotations

import pytest

from repro.chgraph.prefetcher import ChainPrefetcher, CpCost
from repro.engine.base import PHASE_SPECS
from repro.sim.config import scaled_config
from repro.sim.hierarchy import MemoryHierarchy


def _null_access(core, array, index):
    return 0


def test_prefetch_request_counts(figure1):
    cp = ChainPrefetcher(scaled_config())
    spec = PHASE_SPECS["vertex"]  # scheduled side: hyperedges
    cost = cp.prefetch([0, 2], figure1, spec, core=0, access=_null_access)
    # Per element: 2 offset + 1 src value; per edge: incident + dst value.
    edges = figure1.hyperedge_degree(0) + figure1.hyperedge_degree(2)
    assert cost.tuples == edges
    assert cost.requests == 2 * 3 + 2 * edges
    # One beat per element acquisition plus one per tuple.
    assert cost.beats == 2 + edges


def test_prefetch_element_accumulates(figure1):
    cp = ChainPrefetcher(scaled_config())
    spec = PHASE_SPECS["vertex"]
    cost = CpCost()
    cp.prefetch_element(0, figure1, spec, 0, _null_access, cost)
    first = cost.requests
    cp.prefetch_element(2, figure1, spec, 0, _null_access, cost)
    assert cost.requests > first


def test_engine_cycles_formula():
    cost = CpCost(beats=10, overlapped_latency=80.0)
    assert cost.engine_cycles(stage_cycles=2.0, engine_mlp=8.0) == pytest.approx(30.0)


def test_prefetch_fills_l2(figure1):
    config = scaled_config(num_cores=2, llc_kb=2)
    hierarchy = MemoryHierarchy(config)
    cp = ChainPrefetcher(config)
    spec = PHASE_SPECS["vertex"]
    cost = cp.prefetch([0], figure1, spec, core=0, access=hierarchy.engine_access)
    assert cost.overlapped_latency > 0
    assert hierarchy.dram_accesses() > 0
    assert hierarchy.l1[0].stats.accesses == 0  # CP never touches the L1


def test_hyperedge_phase_spec(figure1):
    """During hyperedge computation the scheduled side is vertices."""
    cp = ChainPrefetcher(scaled_config())
    spec = PHASE_SPECS["hyperedge"]
    cost = cp.prefetch([0], figure1, spec, core=0, access=_null_access)
    assert cost.tuples == figure1.vertex_degree(0)

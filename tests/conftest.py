"""Shared fixtures: the paper's running example and small test systems."""

from __future__ import annotations

import pytest

from repro.hypergraph.generators import AffiliationConfig, generate_affiliation_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem


@pytest.fixture
def figure1() -> Hypergraph:
    """The paper's Figure 1 hypergraph: 7 vertices, 4 hyperedges.

    h0 = {v0, v4, v6}, h1 = {v1, v2, v3, v5}, h2 = {v0, v2, v4},
    h3 = {v1, v3, v6}.  Its H-OAG (Figure 11) and maximal-overlap chain
    <h0, h2, h1, h3> (Figure 1(b)) are worked examples in the paper.
    """
    return Hypergraph.from_hyperedge_lists(
        [
            [0, 4, 6],
            [1, 2, 3, 5],
            [0, 2, 4],
            [1, 3, 6],
        ],
        num_vertices=7,
        name="figure1",
    )


@pytest.fixture
def small_hypergraph() -> Hypergraph:
    """A deterministic ~200-element hypergraph with real overlap structure."""
    config = AffiliationConfig(
        num_vertices=160,
        num_hyperedges=120,
        mean_hyperedge_degree=10.0,
        min_hyperedge_degree=4,
        num_communities=8,
        overlap_bias=0.9,
        vertex_run=8,
        seed=5,
    )
    return generate_affiliation_hypergraph(config, name="small")


@pytest.fixture
def tiny_system() -> SimulatedSystem:
    """A 4-core scaled system: fast to simulate, small enough to miss."""
    return SimulatedSystem(scaled_config(num_cores=4, llc_kb=2))


def make_system(num_cores: int = 4, llc_kb: int = 2) -> SimulatedSystem:
    """Helper for tests needing several fresh systems."""
    return SimulatedSystem(scaled_config(num_cores=num_cores, llc_kb=llc_kb))

"""Tests for chain generation (Algorithm 3), anchored on Figure 1(b)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import ChainGenerator, ChainProbe, DEFAULT_D_MAX
from repro.core.oag import build_oag
from repro.hypergraph.generators import (
    AffiliationConfig,
    generate_affiliation_hypergraph,
    planted_chain_hypergraph,
)


def test_paper_chain_figure1(figure1):
    """The worked example: the chain rooted at h0 is <h0, h2, h1, h3>."""
    oag = build_oag(figure1, "hyperedge", w_min=1)
    chains = ChainGenerator().generate(np.ones(4, dtype=bool), oag)
    assert chains.chains[0] == [0, 2, 1, 3]
    assert chains.num_chains == 1


def test_paper_vertex_chain_figure1(figure1):
    """Figure 1(b)'s vertex chain: <v5, v1, v3, v6, v0, v4, v2>.

    Our generator roots at the minimal active index (v0) rather than v5, so
    the chain differs from the figure's rooting, but the greedy
    maximal-weight stepping is the same; verify the weights decrease along
    each generated chain's steps where alternatives existed.
    """
    oag = build_oag(figure1, "vertex", w_min=1)
    chains = ChainGenerator().generate(np.ones(7, dtype=bool), oag)
    assert chains.num_elements == 7


def test_planted_chain_recovered():
    hypergraph = planted_chain_hypergraph(8, overlap=3, fresh=2)
    oag = build_oag(hypergraph, "hyperedge", w_min=1)
    chains = ChainGenerator().generate(np.ones(8, dtype=bool), oag)
    assert chains.chains[0] == list(range(8))


def test_coverage_with_partial_frontier(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    active = np.array([True, False, True, False])
    chains = ChainGenerator().generate(active, oag)
    scheduled = [e for chain in chains for e in chain]
    assert sorted(scheduled) == [0, 2]
    # h0 -> h2 still chains (their overlap edge survives).
    assert chains.chains[0] == [0, 2]


def test_inactive_neighbors_skipped(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    active = np.array([True, True, False, True])  # h2 inactive
    chains = ChainGenerator().generate(active, oag)
    scheduled = [e for chain in chains for e in chain]
    assert sorted(scheduled) == [0, 1, 3]
    # h0's best active neighbor is now h3 (weight 1); then h3 -> h1.
    assert chains.chains[0] == [0, 3, 1]


def test_d_max_bounds_chain_length():
    hypergraph = planted_chain_hypergraph(10, overlap=3, fresh=2)
    oag = build_oag(hypergraph, "hyperedge", w_min=1)
    chains = ChainGenerator(d_max=4).generate(np.ones(10, dtype=bool), oag)
    assert max(len(chain) for chain in chains) == 4
    assert chains.num_elements == 10


def test_d_max_must_be_positive():
    with pytest.raises(ValueError):
        ChainGenerator(d_max=0)


def test_default_d_max_is_paper_value():
    assert DEFAULT_D_MAX == 16
    assert ChainGenerator().d_max == 16


def test_bitmap_size_mismatch(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    with pytest.raises(ValueError):
        ChainGenerator().generate(np.ones(5, dtype=bool), oag)


def test_input_bitmap_not_mutated(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    active = np.ones(4, dtype=bool)
    ChainGenerator().generate(active, oag)
    assert active.all()


def test_chunk_offset_ids(figure1):
    from repro.hypergraph.partition import Chunk

    chunk = Chunk(core=0, first=2, last=4)
    oag = build_oag(figure1, "hyperedge", w_min=1, chunk=chunk)
    chains = ChainGenerator().generate(np.ones(2, dtype=bool), oag)
    scheduled = [e for chain in chains for e in chain]
    assert sorted(scheduled) == [2, 3]  # global ids, not chunk-local


class _CountingProbe(ChainProbe):
    def __init__(self):
        self.roots = 0
        self.offsets = 0
        self.inspections = 0
        self.selections = 0

    def on_root_scan(self, element):
        self.roots += 1

    def on_offsets_fetch(self, node):
        self.offsets += 1

    def on_neighbor_inspect(self, node, position):
        self.inspections += 1

    def on_select(self, element):
        self.selections += 1


def test_probe_counts_match_stats(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    probe = _CountingProbe()
    chains = ChainGenerator().generate(np.ones(4, dtype=bool), oag, probe=probe)
    assert probe.roots == chains.root_scans == 4
    assert probe.offsets == chains.offsets_fetches
    assert probe.inspections == chains.neighbor_inspections
    assert probe.selections == chains.num_elements == 4


def test_stats_mean_length(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    chains = ChainGenerator().generate(np.ones(4, dtype=bool), oag)
    assert chains.mean_length == pytest.approx(4.0)
    assert list(chains.order()) == [0, 2, 1, 3]


@given(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=2, max_value=32),
)
@settings(max_examples=25, deadline=None)
def test_chain_coverage_property(seed, w_min, d_max):
    """Every active element is scheduled exactly once; inactive never."""
    config = AffiliationConfig(
        num_vertices=48,
        num_hyperedges=36,
        mean_hyperedge_degree=6.0,
        num_communities=4,
        seed=seed,
    )
    hypergraph = generate_affiliation_hypergraph(config)
    oag = build_oag(hypergraph, "hyperedge", w_min=w_min)
    rng = np.random.default_rng(seed)
    active = rng.random(36) < 0.6
    chains = ChainGenerator(d_max=d_max).generate(active, oag)
    scheduled = [e for chain in chains for e in chain]
    assert sorted(scheduled) == sorted(np.flatnonzero(active))
    assert all(len(chain) <= d_max for chain in chains)


@given(st.integers(min_value=0, max_value=30))
@settings(max_examples=20, deadline=None)
def test_greedy_steps_are_weight_maximal(seed):
    """Each chain step takes the highest-weight eligible neighbor."""
    config = AffiliationConfig(
        num_vertices=40,
        num_hyperedges=24,
        mean_hyperedge_degree=6.0,
        num_communities=3,
        seed=seed,
    )
    hypergraph = generate_affiliation_hypergraph(config)
    oag = build_oag(hypergraph, "hyperedge", w_min=1)
    chains = ChainGenerator().generate(np.ones(24, dtype=bool), oag)

    visited: set[int] = set()
    for chain in chains:
        for current, successor in zip(chain, chain[1:]):
            visited.add(current)
            weights = dict(
                zip(map(int, oag.neighbors(current)), map(int, oag.weights(current)))
            )
            eligible = {n: w for n, w in weights.items() if n not in visited}
            assert eligible[successor] == max(eligible.values())
        visited.add(chain[-1])

"""Scalar vs. vectorized parity for OAG construction and chain generation.

The fast paths must be drop-in: bit-identical CSR payloads (offsets,
indices, weights — values *and* dtypes), identical ``build_operations``
(Figure 21(a) accounting), identical chain sets, and identical generation
counters.  Both fast backends are covered — the SpGEMM path (scipy, when
available) and the pure-NumPy fallback (forced by nulling the module's
``_sparse`` handle).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.oag as oag_module
from repro.core.chain import ChainGenerator
from repro.core.oag import build_chunk_oags, build_oag
from repro.hypergraph.generators import (
    AffiliationConfig,
    generate_affiliation_hypergraph,
    generate_rmat_bipartite,
    generate_uniform_random_hypergraph,
)
from repro.hypergraph.partition import contiguous_chunks

W_MINS = [1, 3, 8]
D_MAXES = [1, 4, 16]


def _hypergraphs():
    affiliation = generate_affiliation_hypergraph(
        AffiliationConfig(
            num_vertices=180,
            num_hyperedges=140,
            mean_hyperedge_degree=9.0,
            min_hyperedge_degree=3,
            num_communities=7,
            overlap_bias=0.85,
            vertex_run=6,
            seed=11,
        ),
        name="parity-affiliation",
    )
    uniform = generate_uniform_random_hypergraph(
        num_vertices=150, num_hyperedges=110, hyperedge_degree=6, seed=3
    )
    rmat = generate_rmat_bipartite(
        num_vertices=128, num_hyperedges=96, num_bipartite_edges=700, seed=9
    )
    return [affiliation, uniform, rmat]


@pytest.fixture(params=["affiliation", "uniform", "rmat"])
def hypergraph(request):
    by_name = dict(zip(["affiliation", "uniform", "rmat"], _hypergraphs()))
    return by_name[request.param]


@pytest.fixture(params=["scipy", "numpy"])
def backend(request, monkeypatch):
    """Run each parity test against both fast backends."""
    if request.param == "numpy":
        monkeypatch.setattr(oag_module, "_sparse", None)
    elif oag_module._sparse is None:  # pragma: no cover - scipy missing
        pytest.skip("scipy not installed")
    return request.param


def assert_identical_oags(scalar, fast):
    assert np.array_equal(scalar.csr.offsets, fast.csr.offsets)
    assert np.array_equal(scalar.csr.indices, fast.csr.indices)
    assert np.array_equal(scalar.csr.weights, fast.csr.weights)
    assert scalar.csr.offsets.dtype == fast.csr.offsets.dtype
    assert scalar.csr.indices.dtype == fast.csr.indices.dtype
    assert scalar.csr.weights.dtype == fast.csr.weights.dtype
    assert scalar.first_id == fast.first_id
    assert scalar.build_operations == fast.build_operations


@pytest.mark.parametrize("w_min", W_MINS)
@pytest.mark.parametrize("side", ["hyperedge", "vertex"])
def test_build_oag_parity(hypergraph, backend, side, w_min):
    scalar = build_oag(hypergraph, side, w_min=w_min, fast=False)
    fast = build_oag(hypergraph, side, w_min=w_min, fast=True)
    assert_identical_oags(scalar, fast)


@pytest.mark.parametrize("w_min", W_MINS)
def test_build_oag_chunk_parity(hypergraph, backend, w_min):
    """A chunk restriction (first_id != 0) must survive vectorization."""
    universe = hypergraph.num_hyperedges
    chunk = contiguous_chunks(universe, 3)[1]
    assert chunk.first != 0
    scalar = build_oag(hypergraph, "hyperedge", w_min=w_min, chunk=chunk, fast=False)
    fast = build_oag(hypergraph, "hyperedge", w_min=w_min, chunk=chunk, fast=True)
    assert_identical_oags(scalar, fast)


@pytest.mark.parametrize("w_min", W_MINS)
@pytest.mark.parametrize("side", ["hyperedge", "vertex"])
def test_build_chunk_oags_parity(hypergraph, backend, side, w_min):
    universe = (
        hypergraph.num_hyperedges if side == "hyperedge" else hypergraph.num_vertices
    )
    chunks = contiguous_chunks(universe, 4)
    scalars = build_chunk_oags(hypergraph, side, chunks, w_min, fast=False)
    fasts = build_chunk_oags(hypergraph, side, chunks, w_min, fast=True)
    assert len(scalars) == len(fasts) == len(chunks)
    for scalar, fast in zip(scalars, fasts):
        assert_identical_oags(scalar, fast)


def _active_patterns(size, seed=17):
    rng = np.random.default_rng(seed)
    return {
        "all": np.ones(size, dtype=bool),
        "none": np.zeros(size, dtype=bool),
        "random": rng.random(size) < 0.5,
        "every-third": np.arange(size) % 3 == 0,
    }


def assert_identical_chain_sets(scalar, fast):
    assert scalar.chains == fast.chains
    assert all(
        isinstance(element, int) for chain in fast.chains for element in chain
    )
    assert scalar.root_scans == fast.root_scans
    assert scalar.offsets_fetches == fast.offsets_fetches
    assert scalar.neighbor_inspections == fast.neighbor_inspections


@pytest.mark.parametrize("d_max", D_MAXES)
@pytest.mark.parametrize("w_min", W_MINS)
def test_chain_generation_parity(hypergraph, d_max, w_min):
    oag = build_oag(hypergraph, "hyperedge", w_min=w_min)
    scalar_gen = ChainGenerator(d_max=d_max, fast=False)
    fast_gen = ChainGenerator(d_max=d_max, fast=True)
    for active in _active_patterns(oag.num_nodes).values():
        scalar = scalar_gen.generate(active, oag)
        fast = fast_gen.generate(active, oag)
        assert_identical_chain_sets(scalar, fast)


@pytest.mark.parametrize("d_max", D_MAXES)
def test_chain_generation_parity_chunked(hypergraph, d_max):
    """Chunk OAGs (global ids = first_id + local) keep parity too."""
    universe = hypergraph.num_hyperedges
    chunks = contiguous_chunks(universe, 3)
    oags = build_chunk_oags(hypergraph, "hyperedge", chunks, w_min=1)
    scalar_gen = ChainGenerator(d_max=d_max, fast=False)
    fast_gen = ChainGenerator(d_max=d_max, fast=True)
    for chunk, oag in zip(chunks, oags):
        assert oag.first_id == chunk.first
        for active in _active_patterns(oag.num_nodes, seed=chunk.core).values():
            scalar = scalar_gen.generate(active, oag)
            fast = fast_gen.generate(active, oag)
            assert_identical_chain_sets(scalar, fast)


def test_probe_forces_scalar_path(hypergraph):
    """Attaching a probe must route through the instrumented scalar walk."""
    from repro.core.chain import ChainProbe

    class CountingProbe(ChainProbe):
        def __init__(self):
            self.root_scans = 0
            self.inspections = 0

        def on_root_scan(self, element):
            self.root_scans += 1

        def on_neighbor_inspect(self, node, position):
            self.inspections += 1

    oag = build_oag(hypergraph, "hyperedge", w_min=1)
    active = np.ones(oag.num_nodes, dtype=bool)
    probe = CountingProbe()
    result = ChainGenerator(fast=True).generate(active, oag, probe=probe)
    # Probe hooks fired once per counter increment — proof the scalar
    # instrumented walk ran despite fast=True.
    assert probe.root_scans == result.root_scans == oag.num_nodes
    assert probe.inspections == result.neighbor_inspections > 0

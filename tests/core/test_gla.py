"""Tests for the GLA schedule-generation layer (Algorithm 2's Generate)."""

from __future__ import annotations

import pytest

from repro.core.chain import ChainGenerator
from repro.core.gla import ChunkSchedule, generate_schedules, index_order_schedule
from repro.core.oag import build_chunk_oags
from repro.hypergraph.frontier import Frontier
from repro.hypergraph.partition import Chunk, contiguous_chunks


def test_index_order_schedule_respects_chunk():
    frontier = Frontier(10, [1, 3, 5, 7, 9])
    chunk = Chunk(core=0, first=3, last=8)
    assert index_order_schedule(frontier, chunk) == [3, 5, 7]


def test_index_order_schedule_empty_frontier():
    frontier = Frontier(10)
    chunk = Chunk(core=0, first=0, last=10)
    assert index_order_schedule(frontier, chunk) == []


def test_generate_schedules_partitions_frontier(figure1):
    chunks = contiguous_chunks(figure1.num_hyperedges, 2)
    oags = build_chunk_oags(figure1, "hyperedge", chunks, w_min=1)
    frontier = Frontier.all_active(figure1.num_hyperedges)
    schedules = generate_schedules(frontier, chunks, oags, ChainGenerator())
    assert len(schedules) == 2
    all_scheduled = sorted(e for s in schedules for e in s.order())
    assert all_scheduled == [0, 1, 2, 3]
    for schedule, chunk in zip(schedules, chunks):
        assert all(e in chunk for e in schedule.order())


def test_generate_schedules_mismatched_lists(figure1):
    chunks = contiguous_chunks(figure1.num_hyperedges, 2)
    oags = build_chunk_oags(figure1, "hyperedge", chunks, w_min=1)
    frontier = Frontier.all_active(figure1.num_hyperedges)
    with pytest.raises(ValueError):
        generate_schedules(frontier, chunks[:1], oags, ChainGenerator())


def test_chunk_schedule_order(figure1):
    chunks = contiguous_chunks(figure1.num_hyperedges, 1)
    oags = build_chunk_oags(figure1, "hyperedge", chunks, w_min=1)
    frontier = Frontier.all_active(figure1.num_hyperedges)
    (schedule,) = generate_schedules(frontier, chunks, oags, ChainGenerator())
    assert isinstance(schedule, ChunkSchedule)
    assert schedule.order() == [0, 2, 1, 3]  # the Figure 1(b) chain

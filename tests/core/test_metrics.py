"""Tests for chain-quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chain import ChainGenerator
from repro.core.metrics import chain_quality, schedule_affinity
from repro.core.oag import build_oag
from repro.hypergraph.generators import planted_chain_hypergraph


def test_perfect_chain_captures_everything():
    hypergraph = planted_chain_hypergraph(6, overlap=2, fresh=2)
    oag = build_oag(hypergraph, "hyperedge", w_min=1)
    chains = ChainGenerator().generate(np.ones(6, dtype=bool), oag)
    quality = chain_quality(chains, oag)
    assert quality.num_chains == 1
    assert quality.capture_ratio == 1.0
    assert quality.singleton_fraction == 0.0
    assert quality.max_length == 6


def test_figure1_chain_quality(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    chains = ChainGenerator().generate(np.ones(4, dtype=bool), oag)
    quality = chain_quality(chains, oag)
    # The chain <h0,h2,h1,h3> walks edges of weight 2, 1, 2 out of an
    # available total of 2+1+1+2 = 6.
    assert quality.captured_weight == 5
    assert quality.available_weight == 6
    assert quality.capture_ratio == pytest.approx(5 / 6)


def test_empty_oag_quality(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=10)
    chains = ChainGenerator().generate(np.ones(4, dtype=bool), oag)
    quality = chain_quality(chains, oag)
    assert quality.capture_ratio == 0.0
    assert quality.singleton_fraction == 1.0


def test_affinity_prefers_chain_order(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    chains = ChainGenerator().generate(np.ones(4, dtype=bool), oag)
    chain_affinity = schedule_affinity(figure1, list(chains.order()))
    index_affinity = schedule_affinity(figure1, [0, 1, 2, 3])
    assert chain_affinity > index_affinity
    # Exact values: chain pairs share 2+1+2=5 over 3 pairs; index pairs
    # share 0+1+0=1 over 3 pairs.
    assert chain_affinity == pytest.approx(5 / 3)
    assert index_affinity == pytest.approx(1 / 3)


def test_affinity_degenerate_orders(figure1):
    assert schedule_affinity(figure1, []) == 0.0
    assert schedule_affinity(figure1, [2]) == 0.0


def test_affinity_vertex_side(figure1):
    # v0 and v4 share h0 and h2.
    assert schedule_affinity(figure1, [0, 4], side="vertex") == pytest.approx(2.0)

"""Tests for OAG construction, anchored on the paper's Figure 11."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oag import DEFAULT_W_MIN, build_chunk_oags, build_oag
from repro.hypergraph.csr import Csr
from repro.hypergraph.generators import generate_affiliation_hypergraph, AffiliationConfig
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partition import contiguous_chunks


def test_figure11_h_oag(figure1):
    """Figure 11(b): the H-OAG of the running example.

    Overlaps: |N(h0) ∩ N(h2)| = 2 (v0, v4), |N(h0) ∩ N(h3)| = 1 (v6),
    |N(h1) ∩ N(h2)| = 1 (v2), |N(h1) ∩ N(h3)| = 2 (v1, v3).
    """
    oag = build_oag(figure1, "hyperedge", w_min=1)
    edges = {
        (node, int(n)): int(w)
        for node in range(oag.num_nodes)
        for n, w in zip(oag.neighbors(node), oag.weights(node))
    }
    assert edges[(0, 2)] == 2 and edges[(2, 0)] == 2
    assert edges[(0, 3)] == 1 and edges[(3, 0)] == 1
    assert edges[(1, 2)] == 1 and edges[(2, 1)] == 1
    assert edges[(1, 3)] == 2 and edges[(3, 1)] == 2
    assert (0, 1) not in edges  # h0 and h1 do not overlap
    assert oag.num_edges == 8  # four undirected overlaps


def test_figure11_weight_descending_order(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    # h0's strongest neighbor is h2 (weight 2), before h3 (weight 1) —
    # exactly why the chain from h0 goes to h2 first (§IV-B).
    assert list(oag.neighbors(0)) == [2, 3]
    assert list(oag.weights(0)) == [2, 1]
    assert oag.is_weight_descending()


def test_w_min_prunes(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=2)
    edges = {
        (node, int(n))
        for node in range(oag.num_nodes)
        for n in oag.neighbors(node)
    }
    assert edges == {(0, 2), (2, 0), (1, 3), (3, 1)}


def test_w_min_high_empties(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=10)
    assert oag.num_edges == 0
    assert oag.num_nodes == figure1.num_hyperedges


def test_vertex_side_oag(figure1):
    oag = build_oag(figure1, "vertex", w_min=1)
    # v0 and v4 are both in h0 and h2: weight 2.
    weights = dict(zip(map(int, oag.neighbors(0)), map(int, oag.weights(0))))
    assert weights[4] == 2


def test_invalid_side(figure1):
    with pytest.raises(ValueError):
        build_oag(figure1, "nope")


def test_storage_bytes(figure1):
    oag = build_oag(figure1, "hyperedge", w_min=1)
    expected = 4 * (oag.csr.offsets.size + 2 * oag.csr.indices.size)
    assert oag.storage_bytes() == expected


def test_chunked_matches_per_chunk_build(small_hypergraph):
    """The one-pass chunked builder equals chunk-by-chunk build_oag."""
    chunks = contiguous_chunks(small_hypergraph.num_hyperedges, 4)
    fast = build_chunk_oags(small_hypergraph, "hyperedge", chunks, w_min=2)
    for chunk, oag in zip(chunks, fast):
        slow = build_oag(small_hypergraph, "hyperedge", w_min=2, chunk=chunk)
        assert oag.csr == slow.csr
        assert oag.first_id == slow.first_id


def test_chunked_vertex_side_matches(small_hypergraph):
    chunks = contiguous_chunks(small_hypergraph.num_vertices, 3)
    fast = build_chunk_oags(small_hypergraph, "vertex", chunks, w_min=1)
    for chunk, oag in zip(chunks, fast):
        slow = build_oag(small_hypergraph, "vertex", w_min=1, chunk=chunk)
        assert oag.csr == slow.csr


def test_chunk_oag_excludes_cross_chunk_edges(figure1):
    chunks = contiguous_chunks(figure1.num_hyperedges, 2)
    oags = build_chunk_oags(figure1, "hyperedge", chunks, w_min=1)
    # Chunk 0 holds {h0, h1} which do not overlap; chunk 1 holds {h2, h3}.
    assert oags[0].num_edges == 0
    assert oags[1].num_edges == 0  # h2 ∩ h3 = {} (members {0,2,4} vs {1,3,6})


def test_default_w_min_is_paper_value():
    assert DEFAULT_W_MIN == 3


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=9))
@settings(max_examples=20, deadline=None)
def test_oag_symmetry_property(w_min, seed):
    config = AffiliationConfig(
        num_vertices=40,
        num_hyperedges=30,
        mean_hyperedge_degree=6.0,
        num_communities=4,
        seed=seed,
    )
    hypergraph = generate_affiliation_hypergraph(config)
    oag = build_oag(hypergraph, "hyperedge", w_min=w_min)
    edges = {}
    for node in range(oag.num_nodes):
        for n, w in zip(oag.neighbors(node), oag.weights(node)):
            edges[(node, int(n))] = int(w)
    for (a, b), w in edges.items():
        assert edges[(b, a)] == w
        assert w >= w_min
        # Weight equals the true intersection size.
        na = set(map(int, hypergraph.incident_vertices(a)))
        nb = set(map(int, hypergraph.incident_vertices(b)))
        assert w == len(na & nb)


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=29), min_size=2, max_size=6),
        min_size=2,
        max_size=24,
    ),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_chunked_builder_matches_reference_property(hyperedges, w_min, num_chunks):
    """The one-pass chunked builder equals per-chunk build_oag on any input."""
    hypergraph = Hypergraph.from_hyperedge_lists(hyperedges, num_vertices=30)
    chunks = contiguous_chunks(hypergraph.num_hyperedges, num_chunks)
    fast = build_chunk_oags(hypergraph, "hyperedge", chunks, w_min=w_min)
    for chunk, oag in zip(chunks, fast):
        slow = build_oag(hypergraph, "hyperedge", w_min=w_min, chunk=chunk)
        assert oag.csr == slow.csr


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=19), min_size=2, max_size=5),
        min_size=1,
        max_size=16,
    )
)
@settings(max_examples=25, deadline=None)
def test_oag_vertex_side_weights_property(hyperedges):
    """V-OAG weights equal true shared-hyperedge counts on any input."""
    hypergraph = Hypergraph.from_hyperedge_lists(hyperedges, num_vertices=20)
    oag = build_oag(hypergraph, "vertex", w_min=1)
    for node in range(oag.num_nodes):
        for neighbor, weight in zip(oag.neighbors(node), oag.weights(node)):
            mine = set(map(int, hypergraph.incident_hyperedges(node)))
            theirs = set(map(int, hypergraph.incident_hyperedges(int(neighbor))))
            assert int(weight) == len(mine & theirs)


def test_is_weight_descending_rejects_weightless_csr(figure1):
    """A weight-less CSR is not a valid OAG payload, so the invariant fails.

    This is intentional (not vacuous truth): every builder emits weights,
    and a missing weights array means the structure cannot drive the
    greedy maximal-overlap selection at all.
    """
    from repro.core.oag import Oag

    oag = build_oag(figure1, "hyperedge", w_min=1)
    stripped = Oag(
        csr=Csr(oag.csr.offsets, oag.csr.indices, None),
        side=oag.side,
        w_min=oag.w_min,
        first_id=oag.first_id,
    )
    assert oag.is_weight_descending()
    assert not stripped.is_weight_descending()


def test_is_weight_descending_allows_rise_across_row_boundary():
    """Only within-row rises violate the invariant; row starts may jump up."""
    from repro.core.oag import Oag

    csr = Csr.from_lists([[1], [0, 2], [1]], weights=[[1], [9, 3], [9]])
    assert Oag(csr=csr, side="hyperedge", w_min=1).is_weight_descending()
    bad = Csr.from_lists([[1, 2], [0], [0]], weights=[[3, 9], [3], [9]])
    assert not Oag(csr=bad, side="hyperedge", w_min=1).is_weight_descending()

"""Tests for bipartite-edge tuple loading (§IV-B)."""

from __future__ import annotations

from repro.core.tuples import END_OF_CHAINS, BipartiteTuple, TupleLoader


def test_edges_of_marks_first_fresh(figure1):
    loader = TupleLoader(figure1, "hyperedge")
    tuples = list(loader.edges_of(0))
    assert [t.dst for t in tuples] == [0, 4, 6]
    assert [t.fresh_src for t in tuples] == [True, False, False]
    assert all(t.src == 0 for t in tuples)


def test_vertex_side_loader(figure1):
    loader = TupleLoader(figure1, "vertex")
    tuples = list(loader.edges_of(0))
    assert [t.dst for t in tuples] == [0, 2]  # v0's hyperedges


def test_chain_tuples_terminates_with_sentinel(figure1):
    loader = TupleLoader(figure1, "hyperedge")
    stream = list(loader.chain_tuples(iter([0, 2])))
    assert stream[-1] == END_OF_CHAINS
    # h0 has 3 edges, h2 has 3 edges.
    assert len(stream) == 7


def test_sentinel_value():
    assert END_OF_CHAINS.src == -1
    assert END_OF_CHAINS.dst == -1


def test_tuple_reuse_structure(figure1):
    """The paper's point: only the first edge of an element loads src data."""
    loader = TupleLoader(figure1, "hyperedge")
    stream = [t for t in loader.chain_tuples(iter([0, 2, 1, 3])) if t != END_OF_CHAINS]
    fresh_loads = sum(1 for t in stream if t.fresh_src)
    assert fresh_loads == 4  # one per chain element, not per edge
    assert len(stream) == figure1.num_bipartite_edges


def test_tuples_are_hashable_and_comparable():
    a = BipartiteTuple(src=1, dst=2, fresh_src=True)
    b = BipartiteTuple(src=1, dst=2, fresh_src=True)
    assert a == b
    assert hash(a) == hash(b)

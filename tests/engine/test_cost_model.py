"""Tests for the engines' cost-charging behaviour (the timing story)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import Bfs
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.pagerank import PageRank
from repro.engine import ChGraphEngine, GlaResources, HygraEngine, SoftwareGlaEngine
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem


@pytest.fixture(scope="module")
def workload():
    from repro.hypergraph.generators import AffiliationConfig, generate_affiliation_hypergraph

    hypergraph = generate_affiliation_hypergraph(
        AffiliationConfig(
            num_vertices=320,
            num_hyperedges=320,
            mean_hyperedge_degree=20.0,
            min_hyperedge_degree=8,
            num_communities=8,
            overlap_bias=0.97,
            seed=4,
        ),
        name="cost",
    )
    config = scaled_config(num_cores=4, llc_kb=2)
    return hypergraph, config, GlaResources.build(hypergraph, 4)


def test_gla_charges_generation_compute(workload):
    """Software GLA's compute (chain generation) exceeds Hygra's."""
    hypergraph, config, resources = workload
    hygra = HygraEngine().run(
        PageRank(iterations=1), hypergraph, SimulatedSystem(config)
    )
    gla = SoftwareGlaEngine(resources).run(
        PageRank(iterations=1), hypergraph, SimulatedSystem(config)
    )
    assert gla.compute_cycles > hygra.compute_cycles


def test_chgraph_core_compute_below_gla(workload):
    """ChGraph moves Generate/Load off the core: less core compute than GLA."""
    hypergraph, config, resources = workload
    gla = SoftwareGlaEngine(resources).run(
        PageRank(iterations=1), hypergraph, SimulatedSystem(config)
    )
    chg = ChGraphEngine(resources).run(
        PageRank(iterations=1), hypergraph, SimulatedSystem(config)
    )
    assert chg.compute_cycles < gla.compute_cycles


def test_apply_cost_factor_scales_compute(workload):
    """BC's heavier updates cost more core compute than BFS's on the same
    access volume (per tuple)."""
    hypergraph, config, _ = workload
    bfs = HygraEngine().run(Bfs(source=0), hypergraph, SimulatedSystem(config))
    assert Bfs.apply_cost_factor < ConnectedComponents.apply_cost_factor < 1.5
    assert bfs.compute_cycles > 0


def test_memory_stall_dominates_hygra(workload):
    """The Figure 5 premise: Hygra is memory-bound on overlapping inputs."""
    hypergraph, config, _ = workload
    run = HygraEngine().run(
        PageRank(iterations=1), hypergraph, SimulatedSystem(config)
    )
    assert run.memory_stall_fraction > 0.5


def test_chgraph_reduces_stall_fraction(workload):
    """Decoupling converts demand stalls into overlapped engine time."""
    hypergraph, config, resources = workload
    hygra = HygraEngine().run(
        PageRank(iterations=1), hypergraph, SimulatedSystem(config)
    )
    chg = ChGraphEngine(resources).run(
        PageRank(iterations=1), hypergraph, SimulatedSystem(config)
    )
    assert chg.memory_stall_fraction < hygra.memory_stall_fraction


def test_cycles_scale_with_iterations(workload):
    hypergraph, config, _ = workload
    one = HygraEngine().run(
        PageRank(iterations=1), hypergraph, SimulatedSystem(config)
    )
    three = HygraEngine().run(
        PageRank(iterations=3), hypergraph, SimulatedSystem(config)
    )
    assert 2.0 < three.cycles / one.cycles < 4.0


def test_results_independent_of_cost_constants(workload):
    """Timing knobs must never leak into algorithm results."""
    hypergraph, _, resources = workload
    a = SoftwareGlaEngine(resources).run(
        PageRank(iterations=2),
        hypergraph,
        SimulatedSystem(scaled_config(num_cores=4).replace(sw_generate_cycles=1.0)),
    )
    b = SoftwareGlaEngine(resources).run(
        PageRank(iterations=2),
        hypergraph,
        SimulatedSystem(
            scaled_config(num_cores=4).replace(sw_generate_cycles=9999.0)
        ),
    )
    assert np.array_equal(a.result, b.result)
    assert a.cycles < b.cycles

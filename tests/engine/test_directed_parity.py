"""Directed-hypergraph workloads through every engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import Bfs
from repro.engine import ChGraphEngine, GlaResources, HygraEngine, SoftwareGlaEngine
from repro.hypergraph.directed import DirectedHypergraph
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem


@pytest.fixture(scope="module")
def directed_workload():
    import random

    rng = random.Random(77)
    hyperedges = []
    for _ in range(160):
        sources = rng.sample(range(200), rng.randint(1, 4))
        destinations = rng.sample(range(200), rng.randint(1, 4))
        hyperedges.append((sources, destinations))
    return DirectedHypergraph.from_lists(hyperedges, num_vertices=200)


@pytest.mark.parametrize("orientation", ["forward", "backward"])
def test_all_engines_agree_on_directed(directed_workload, orientation):
    projection = getattr(directed_workload, orientation)()
    config = scaled_config(num_cores=4, llc_kb=2)
    resources = GlaResources.build(projection, config.num_cores)
    reference = HygraEngine().run(
        Bfs(source=5), projection, SimulatedSystem(config)
    )
    for engine in (SoftwareGlaEngine(resources), ChGraphEngine(resources)):
        run = engine.run(Bfs(source=5), projection, SimulatedSystem(config))
        assert np.allclose(run.result, reference.result, equal_nan=True)


def test_forward_backward_differ(directed_workload):
    forward = HygraEngine().run(Bfs(source=5), directed_workload.forward())
    backward = HygraEngine().run(Bfs(source=5), directed_workload.backward())
    assert not np.array_equal(forward.result, backward.result)

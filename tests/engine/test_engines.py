"""Engine-specific behaviour: scheduling, charging, caching, ablations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import Bfs
from repro.algorithms.pagerank import PageRank
from repro.engine import ChGraphEngine, GlaResources, HygraEngine, SoftwareGlaEngine
from repro.engine.result import group_dram_breakdown
from repro.sim.config import scaled_config
from repro.sim.layout import ArrayId
from repro.sim.system import SimulatedSystem


@pytest.fixture
def setup(small_hypergraph):
    config = scaled_config(num_cores=4, llc_kb=2)
    resources = GlaResources.build(small_hypergraph, config.num_cores)
    return small_hypergraph, config, resources


def test_hygra_never_touches_oag(setup):
    hypergraph, config, _ = setup
    run = HygraEngine().run(PageRank(iterations=2), hypergraph, SimulatedSystem(config))
    assert run.dram_by_group["oag"] == 0


def test_gla_touches_oag(setup):
    hypergraph, config, resources = setup
    run = SoftwareGlaEngine(resources).run(
        PageRank(iterations=2), hypergraph, SimulatedSystem(config)
    )
    assert run.dram_by_group["oag"] > 0


def test_dense_algorithm_skips_bitmap(setup):
    hypergraph, config, _ = setup
    run = HygraEngine().run(PageRank(iterations=2), hypergraph, SimulatedSystem(config))
    # §VI-C: "there is no need to access the bitmap" for PageRank.
    assert run.dram_by_array[ArrayId.BITMAP] == 0


def test_sparse_algorithm_uses_bitmap(setup):
    hypergraph, config, _ = setup
    run = HygraEngine().run(Bfs(), hypergraph, SimulatedSystem(config))
    assert run.dram_by_array[ArrayId.BITMAP] > 0


def test_gla_generates_once_for_dense_when_cached(setup):
    """With the cache enabled, PR chains are generated once per phase kind
    (the §VI-B observation); the default engine regenerates (see the module
    docstring for why)."""
    hypergraph, config, resources = setup
    cached = SoftwareGlaEngine(resources, cache_dense_chains=True)
    run = cached.run(PageRank(iterations=4), hypergraph, SimulatedSystem(config))
    assert run.chain_stats["generations"] == 2
    default = SoftwareGlaEngine(resources)
    run = default.run(PageRank(iterations=4), hypergraph, SimulatedSystem(config))
    assert run.chain_stats["generations"] == 8  # 2 phases x 4 iterations


def test_gla_regenerates_for_sparse(setup):
    hypergraph, config, resources = setup
    engine = SoftwareGlaEngine(resources)
    run = engine.run(Bfs(), hypergraph, SimulatedSystem(config))
    assert run.chain_stats["generations"] > 2


def test_chgraph_engine_cycles_charged(setup):
    hypergraph, config, resources = setup
    run = ChGraphEngine(resources).run(
        PageRank(iterations=2), hypergraph, SimulatedSystem(config)
    )
    system_breakdown = run.extra  # noqa: F841 - breakdown is on the result
    assert run.cycles > 0


def test_chgraph_decoupling_beats_software_gla(setup):
    hypergraph, config, resources = setup
    gla = SoftwareGlaEngine(resources).run(
        PageRank(iterations=2), hypergraph, SimulatedSystem(config)
    )
    chg = ChGraphEngine(resources).run(
        PageRank(iterations=2), hypergraph, SimulatedSystem(config)
    )
    assert chg.cycles < gla.cycles


def test_ablation_names():
    assert ChGraphEngine(use_hcg=True, use_cp=False).name == "ChGraph-HCGonly"
    assert ChGraphEngine(use_hcg=False, use_cp=True).name == "ChGraph-CPonly"
    assert ChGraphEngine().name == "ChGraph"


def test_hcg_only_still_runs(setup):
    hypergraph, config, resources = setup
    run = ChGraphEngine(resources, use_hcg=True, use_cp=False).run(
        PageRank(iterations=1), hypergraph, SimulatedSystem(config)
    )
    assert run.cycles > 0


def test_resources_rebuilt_on_core_mismatch(setup):
    hypergraph, _, resources = setup
    engine = SoftwareGlaEngine(resources)
    other_config = scaled_config(num_cores=2)
    engine.run(PageRank(iterations=1), hypergraph, SimulatedSystem(other_config))
    assert engine.resources.num_cores == 2


def test_run_result_fields(setup):
    hypergraph, config, _ = setup
    run = HygraEngine().run(PageRank(iterations=2), hypergraph, SimulatedSystem(config))
    assert run.engine == "Hygra"
    assert run.algorithm == "PR"
    assert run.dataset == hypergraph.name
    assert run.iterations == 2
    assert run.dram_accesses == sum(run.dram_by_array.values())
    assert 0.0 <= run.memory_stall_fraction <= 1.0


def test_group_breakdown_sums():
    by_array = {array: 1 for array in ArrayId}
    groups = group_dram_breakdown(by_array)
    assert sum(groups.values()) == len(ArrayId)


def test_speedup_and_reduction_math(setup):
    hypergraph, config, resources = setup
    hygra = HygraEngine().run(
        PageRank(iterations=1), hypergraph, SimulatedSystem(config)
    )
    chg = ChGraphEngine(resources).run(
        PageRank(iterations=1), hypergraph, SimulatedSystem(config)
    )
    assert chg.speedup_over(hygra) == pytest.approx(hygra.cycles / chg.cycles)
    assert chg.dram_reduction_over(hygra) == pytest.approx(
        hygra.dram_accesses / chg.dram_accesses
    )


def test_engine_rejects_unknown_iterations_guard(setup):
    """The runaway guard exists and is far above practical iteration counts."""
    from repro.engine.base import MAX_ENGINE_ITERATIONS

    assert MAX_ENGINE_ITERATIONS >= 10_000


def test_interleaved_engine_matches_serial(setup):
    from repro.engine.interleaved import InterleavedHygraEngine

    hypergraph, config, _ = setup
    serial = HygraEngine().run(
        PageRank(iterations=2), hypergraph, SimulatedSystem(config)
    )
    interleaved = InterleavedHygraEngine().run(
        PageRank(iterations=2), hypergraph, SimulatedSystem(config)
    )
    assert np.allclose(serial.result, interleaved.result)
    # Same access volume; only cache interleaving differs.
    assert interleaved.dram_accesses == pytest.approx(
        serial.dram_accesses, rel=0.35
    )

"""Interleaved-core Hygra must compute exactly what chunk-serial Hygra does.

Interleaving reorders the access *stream* (shared-LLC fidelity check), but
the algorithm semantics — values, iteration counts, per-core work — are
untouched, so the results must be identical across algorithms and datasets.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.algorithms import Bfs, ConnectedComponents, PageRank
from repro.engine import HygraEngine
from repro.engine.interleaved import InterleavedHygraEngine
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem
from repro.sim.trace import TracingSystem


def make_system() -> SimulatedSystem:
    return SimulatedSystem(scaled_config(num_cores=4, llc_kb=2))


@pytest.mark.parametrize(
    "algorithm_factory",
    [lambda: PageRank(iterations=2), lambda: Bfs(source=1), ConnectedComponents],
    ids=["PR", "BFS", "CC"],
)
def test_interleaved_matches_serial_on_affiliation(
    algorithm_factory, small_hypergraph
):
    serial = HygraEngine().run(
        algorithm_factory(), small_hypergraph, make_system()
    )
    interleaved = InterleavedHygraEngine().run(
        algorithm_factory(), small_hypergraph, make_system()
    )
    assert np.allclose(serial.result, interleaved.result, equal_nan=True)
    assert interleaved.iterations == serial.iterations


@pytest.mark.parametrize(
    "algorithm_factory",
    [lambda: PageRank(iterations=3), lambda: Bfs(source=0)],
    ids=["PR", "BFS"],
)
def test_interleaved_matches_serial_on_figure1(algorithm_factory, figure1):
    serial = HygraEngine().run(algorithm_factory(), figure1, make_system())
    interleaved = InterleavedHygraEngine().run(
        algorithm_factory(), figure1, make_system()
    )
    assert np.allclose(serial.result, interleaved.result, equal_nan=True)
    assert interleaved.iterations == serial.iterations


def test_interleaving_permutes_but_preserves_the_access_stream(
    small_hypergraph,
):
    """Same accesses as a multiset, different order."""
    serial_system = TracingSystem(scaled_config(num_cores=4, llc_kb=2))
    HygraEngine().run(PageRank(iterations=2), small_hypergraph, serial_system)
    inter_system = TracingSystem(scaled_config(num_cores=4, llc_kb=2))
    InterleavedHygraEngine().run(
        PageRank(iterations=2), small_hypergraph, inter_system
    )
    assert inter_system.trace != serial_system.trace
    assert Counter(inter_system.trace) == Counter(serial_system.trace)
    # The stream order does change what the shared LLC absorbs, so cycle
    # and DRAM totals may differ — but the work still hits DRAM.
    assert inter_system.dram_accesses() > 0

"""THE core invariant: every engine computes identical results.

The paper's correctness argument for chain scheduling (and for W_min
pruning) is that reordering a synchronous phase cannot change its outcome.
Every algorithm must therefore produce the same answers under Hygra's index
order, software GLA, ChGraph, both ChGraph ablations, HATS-V, and the
event-driven prefetcher.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    Adsorption,
    BetweennessCentrality,
    Bfs,
    ConnectedComponents,
    KCore,
    MaximalIndependentSet,
    PageRank,
    Sssp,
)
from repro.baselines import EventPrefetcherEngine, HatsVEngine
from repro.engine import ChGraphEngine, GlaResources, HygraEngine, SoftwareGlaEngine
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem

ALGORITHMS = [
    lambda: Bfs(source=0),
    lambda: PageRank(iterations=3),
    lambda: MaximalIndependentSet(seed=9),
    lambda: BetweennessCentrality(source=0),
    lambda: ConnectedComponents(),
    lambda: KCore(),
    lambda: Sssp(source=0),
    lambda: Adsorption(iterations=3, seed=2),
]

ALGO_IDS = ["BFS", "PR", "MIS", "BC", "CC", "k-core", "SSSP", "Adsorption"]


def engines(resources):
    return [
        SoftwareGlaEngine(resources),
        ChGraphEngine(resources),
        ChGraphEngine(resources, use_hcg=True, use_cp=False),
        ChGraphEngine(resources, use_hcg=False, use_cp=True),
        HatsVEngine(resources),
        EventPrefetcherEngine(),
    ]


@pytest.mark.parametrize("algorithm_factory", ALGORITHMS, ids=ALGO_IDS)
def test_all_engines_agree_semantically(algorithm_factory, small_hypergraph):
    """Pure (null-system) runs: exact scheduling-independence check."""
    config = scaled_config(num_cores=4)
    resources = GlaResources.build(small_hypergraph, config.num_cores)
    reference = HygraEngine().run(algorithm_factory(), small_hypergraph)
    for engine in engines(resources):
        run = engine.run(algorithm_factory(), small_hypergraph)
        assert np.allclose(
            run.result, reference.result, equal_nan=True
        ), f"{engine.name} diverged from Hygra"
        assert np.allclose(
            run.hyperedge_values, reference.hyperedge_values, equal_nan=True
        ), f"{engine.name} hyperedge values diverged"


@pytest.mark.parametrize(
    "algorithm_factory", ALGORITHMS[:4], ids=ALGO_IDS[:4]
)
def test_parity_holds_under_full_simulation(algorithm_factory, small_hypergraph):
    """The cache/timing simulation must not perturb algorithm results."""
    config = scaled_config(num_cores=4, llc_kb=2)
    resources = GlaResources.build(small_hypergraph, config.num_cores)
    reference = HygraEngine().run(
        algorithm_factory(), small_hypergraph, SimulatedSystem(config)
    )
    for engine in (SoftwareGlaEngine(resources), ChGraphEngine(resources)):
        run = engine.run(algorithm_factory(), small_hypergraph, SimulatedSystem(config))
        assert np.allclose(run.result, reference.result, equal_nan=True)


def test_simulated_and_pure_runs_agree(small_hypergraph):
    """A NullSystem run and a simulated run compute the same answers."""
    config = scaled_config(num_cores=4)
    pure = HygraEngine().run(PageRank(iterations=3), small_hypergraph)
    simulated = HygraEngine().run(
        PageRank(iterations=3), small_hypergraph, SimulatedSystem(config)
    )
    assert np.allclose(pure.result, simulated.result)

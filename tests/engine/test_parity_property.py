"""Property-based scheduling-independence: random hypergraphs, random seeds.

Complements the fixed-workload parity suite with hypothesis-generated
structures, including degenerate shapes the fixed fixtures never produce.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bfs import Bfs
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.kcore import KCore
from repro.algorithms.pagerank import PageRank
from repro.engine import ChGraphEngine, GlaResources, HygraEngine, SoftwareGlaEngine

hyperedges_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=23), min_size=1, max_size=6),
    min_size=1,
    max_size=20,
)


def _engines(hypergraph):
    resources = GlaResources.build(hypergraph, num_cores=3)
    return HygraEngine(), SoftwareGlaEngine(resources), ChGraphEngine(resources)


@given(hyperedges_strategy)
@settings(max_examples=20, deadline=None)
def test_cc_parity_random(hyperedges):
    from repro.hypergraph.hypergraph import Hypergraph
    from repro.sim.config import scaled_config
    from repro.sim.system import SimulatedSystem

    hypergraph = Hypergraph.from_hyperedge_lists(hyperedges, num_vertices=24)
    reference = None
    for engine in _engines(hypergraph):
        run = engine.run(
            ConnectedComponents(),
            hypergraph,
            SimulatedSystem(scaled_config(num_cores=3, llc_kb=2)),
        )
        if reference is None:
            reference = run.result
        assert np.array_equal(run.result, reference)


@given(hyperedges_strategy, st.integers(min_value=0, max_value=23))
@settings(max_examples=20, deadline=None)
def test_bfs_parity_random(hyperedges, source):
    from repro.hypergraph.hypergraph import Hypergraph

    hypergraph = Hypergraph.from_hyperedge_lists(hyperedges, num_vertices=24)
    reference = None
    for engine in _engines(hypergraph):
        run = engine.run(Bfs(source=source), hypergraph)
        if reference is None:
            reference = run.result
        assert np.array_equal(run.result, reference)


@given(hyperedges_strategy)
@settings(max_examples=15, deadline=None)
def test_kcore_parity_random(hyperedges):
    from repro.hypergraph.hypergraph import Hypergraph

    hypergraph = Hypergraph.from_hyperedge_lists(hyperedges, num_vertices=24)
    reference = None
    for engine in _engines(hypergraph):
        run = engine.run(KCore(), hypergraph)
        if reference is None:
            reference = run.result
        assert np.array_equal(run.result, reference)


@given(hyperedges_strategy)
@settings(max_examples=15, deadline=None)
def test_pagerank_parity_random(hyperedges):
    from repro.hypergraph.hypergraph import Hypergraph

    hypergraph = Hypergraph.from_hyperedge_lists(hyperedges, num_vertices=24)
    reference = None
    for engine in _engines(hypergraph):
        run = engine.run(PageRank(iterations=2), hypergraph)
        if reference is None:
            reference = run.result
        assert np.allclose(run.result, reference)

"""Tests for the pull-direction engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    Bfs,
    ConnectedComponents,
    KCore,
    MaximalIndependentSet,
    PageRank,
)
from repro.engine import HygraEngine
from repro.engine.pull import PullHygraEngine
from repro.sim.config import scaled_config
from repro.sim.layout import ArrayId
from repro.sim.system import SimulatedSystem


@pytest.mark.parametrize(
    "algorithm_factory",
    [
        lambda: PageRank(iterations=2),
        lambda: Bfs(source=1),
        ConnectedComponents,
        lambda: MaximalIndependentSet(seed=3),
        KCore,
    ],
    ids=["PR", "BFS", "CC", "MIS", "k-core"],
)
def test_pull_matches_push(algorithm_factory, small_hypergraph):
    push = HygraEngine().run(algorithm_factory(), small_hypergraph)
    pull = PullHygraEngine().run(algorithm_factory(), small_hypergraph)
    assert np.allclose(push.result, pull.result, equal_nan=True)


def test_pull_writes_destinations_once(small_hypergraph):
    """Pull's payoff: at most one dst-value write per destination per phase."""
    config = scaled_config(num_cores=2, llc_kb=2)
    system = SimulatedSystem(config)
    PullHygraEngine().run(PageRank(iterations=1), small_hypergraph, system)
    # Bound check via DRAM attribution: dst writes can't exceed one line
    # fetch per value line per phase-pair plus reads (loose sanity bound).
    assert system.dram_accesses() > 0


def test_pull_pays_bitmap_tax_when_sparse(small_hypergraph):
    config = scaled_config(num_cores=2, llc_kb=2)
    push_system = SimulatedSystem(config)
    HygraEngine().run(Bfs(source=0), small_hypergraph, push_system)
    pull_system = SimulatedSystem(config)
    PullHygraEngine().run(Bfs(source=0), small_hypergraph, pull_system)
    # Pull probes every incident source's activity bit, push only writes
    # activations: pull's bitmap traffic must be higher.
    push_bitmap = push_system.hierarchy.dram_breakdown()[ArrayId.BITMAP]
    pull_bitmap = pull_system.hierarchy.dram_breakdown()[ArrayId.BITMAP]
    assert pull_bitmap >= push_bitmap


def test_pull_slower_when_sparse_faster_when_dense(small_hypergraph):
    config = scaled_config(num_cores=2, llc_kb=2)

    def cycles(engine, algorithm):
        return engine.run(algorithm, small_hypergraph, SimulatedSystem(config)).cycles

    sparse_ratio = cycles(PullHygraEngine(), Bfs(source=0)) / cycles(
        HygraEngine(), Bfs(source=0)
    )
    dense_ratio = cycles(PullHygraEngine(), PageRank(iterations=2)) / cycles(
        HygraEngine(), PageRank(iterations=2)
    )
    # The direction trade-off: pull is relatively better for dense work.
    assert dense_ratio < sparse_ratio

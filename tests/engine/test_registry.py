"""The declarative engine registry: names, construction, resource gating."""

from __future__ import annotations

import pytest

from repro.engine import (
    ENGINE_REGISTRY,
    ChGraphEngine,
    GlaResources,
    HygraEngine,
    create_engine,
    engine_names,
)
from repro.engine.interleaved import InterleavedHygraEngine
from repro.engine.pull import PullHygraEngine


def test_registry_covers_every_engine_in_order():
    assert engine_names() == (
        "Hygra", "Hygra-pull", "Hygra-interleaved", "GLA", "ChGraph",
        "ChGraph-HCGonly", "ChGraph-CPonly", "Ligra", "EventPrefetcher",
        "HATS-V",
    )
    # Spec names agree with the keys they are registered under, and with
    # the name each constructed engine reports.
    for name, spec in ENGINE_REGISTRY.items():
        assert spec.name == name


def test_create_engine_builds_the_right_classes(small_hypergraph):
    assert isinstance(create_engine("Hygra"), HygraEngine)
    assert isinstance(create_engine("Hygra-pull"), PullHygraEngine)
    assert isinstance(create_engine("Hygra-interleaved"), InterleavedHygraEngine)
    resources = GlaResources.build(small_hypergraph, 2)
    engine = create_engine("ChGraph", resources)
    assert isinstance(engine, ChGraphEngine)
    assert engine.resources is resources
    assert engine.use_hcg and engine.use_cp


def test_ablation_specs_set_their_switches(small_hypergraph):
    resources = GlaResources.build(small_hypergraph, 2)
    hcg_only = create_engine("ChGraph-HCGonly", resources)
    assert hcg_only.use_hcg and not hcg_only.use_cp
    cp_only = create_engine("ChGraph-CPonly", resources)
    assert not cp_only.use_hcg and cp_only.use_cp


def test_engine_name_matches_registry_key(small_hypergraph):
    resources = GlaResources.build(small_hypergraph, 2)
    for name, spec in ENGINE_REGISTRY.items():
        if name == "Ligra":
            continue  # only constructs meaningfully on 2-uniform inputs
        engine = create_engine(name, resources if spec.needs_resources else None)
        assert engine.name == name


def test_unknown_engine_lists_the_known_ones():
    with pytest.raises(KeyError, match="Hygra.*ChGraph"):
        create_engine("nope")


def test_resource_engines_refuse_to_build_bare():
    with pytest.raises(ValueError, match="requires GlaResources"):
        create_engine("ChGraph")
    # Demand-path engines ignore the resources argument entirely.
    assert isinstance(create_engine("Hygra", None), HygraEngine)

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import ENGINES, EXPERIMENTS, build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_engine():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--engine", "nope"])


def test_experiment_registry_covers_all_figures():
    expected = {
        "table1", "table2", "vi_e", "summary",
        *{f"fig{n:02d}" for n in (2, 3, 5, 7, 8, 14, 15, 16, 17, 18, 19,
                                   20, 21, 22, 23, 24, 25)},
    }
    assert set(EXPERIMENTS) == expected


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    for key in ("FS", "OK", "LJ", "WEB", "OG"):
        assert key in out


def test_area_command(capsys):
    assert main(["area"]) == 0
    out = capsys.readouterr().out
    assert "0.095 mm2" in out
    assert "0.26%" in out


def test_run_command_small(capsys):
    code = main([
        "run", "--engine", "Hygra", "--algorithm", "BFS", "--dataset", "FS",
        "--cores", "4", "--llc-kb", "2", "--pr-iterations", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Run summary" in out
    assert "DRAM accesses" in out


def test_compare_command_small(capsys):
    code = main([
        "compare", "--algorithm", "BFS", "--dataset", "FS",
        "--cores", "4", "--llc-kb", "2", "--pr-iterations", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Hygra" in out and "ChGraph" in out and "Speedup" in out


def test_experiment_command_cheap(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out
    assert main(["experiment", "vi_e"]) == 0
    assert "area" in capsys.readouterr().out.lower()


def test_bench_rejects_unknown_figures(capsys):
    assert main(["bench", "--figures", "fig99", "--jobs", "1"]) == 2
    assert "fig99" in capsys.readouterr().err


def test_bench_without_store_warns_and_degrades(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert main(["bench", "--figures", "table1,vi_e"]) == 0
    captured = capsys.readouterr()
    assert "executing serially in-process" in captured.err
    assert "Table I" in captured.out
    assert "area" in captured.out.lower()


def test_bench_parallel_smoke(capsys, tmp_path, monkeypatch):
    """A tiny two-job bench run completes and reports its shard plan."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    # fig02's matrix is three PR-on-WEB runs: small enough for a test,
    # real enough to cross the executor's parallel path.
    code = main([
        "bench", "--figures", "fig02", "--jobs", "2", "--timeout", "300",
        "--cache-dir", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "bench:" in out and "parallel=yes" in out
    assert "cache:" in out


def test_cache_commands_require_a_store(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert main(["cache", "stats"]) == 2
    assert "REPRO_CACHE_DIR" in capsys.readouterr().err


def test_prewarm_and_cache_lifecycle(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    code = main([
        "prewarm", "--cache-dir", cache,
        "--datasets", "WEB", "--cores", "4", "--workers", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "built" in out

    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "entries" in out and "resources" in out

    assert main(["cache", "ls", "--cache-dir", cache]) == 0
    assert "resources" in capsys.readouterr().out

    assert main(["cache", "gc", "--cache-dir", cache]) == 2  # needs --max-mb
    capsys.readouterr()
    assert main(["cache", "gc", "--cache-dir", cache, "--max-mb", "0"]) == 0
    assert "evicted 1" in capsys.readouterr().out

    assert main(["cache", "clear", "--cache-dir", cache]) == 0
    assert "removed 0" in capsys.readouterr().out


def test_experiment_reports_cache_stats_when_enabled(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["experiment", "fig21"]) == 0
    cold = capsys.readouterr().out
    assert "cache:" in cold and "5 writes" in cold
    assert main(["experiment", "fig21"]) == 0
    warm = capsys.readouterr().out
    assert "5 hits" in warm and "0 misses" in warm


def test_parser_lists_registry_engines():
    from repro.engine import engine_names

    assert ENGINES == engine_names()
    for name in ("Hygra-pull", "Hygra-interleaved"):
        args = build_parser().parse_args(["run", "--engine", name])
        assert args.engine == name


def test_profile_command_small(capsys):
    code = main([
        "profile", "--algorithm", "BFS", "--dataset", "FS",
        "--cores", "4", "--llc-kb", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    for engine in ("Hygra", "GLA", "ChGraph"):
        assert f"{engine} — BFS on FS: per-phase breakdown" in out
        assert f"{engine} — BFS on FS: iteration timeline" in out
    assert "hyperedge" in out and "vertex" in out
    assert "chains:" in out  # GLA/ChGraph chain statistics
    assert "fifo: chain_fifo_depth=" in out  # ChGraph FIFO occupancy


def test_profile_command_rejects_unknown_engine(capsys):
    assert main([
        "profile", "--engines", "NotAnEngine",
        "--algorithm", "BFS", "--dataset", "FS",
    ]) == 2
    assert "unknown engine" in capsys.readouterr().err


def test_bench_profile_summary(capsys, tmp_path):
    code = main([
        "bench", "--figures", "fig21", "--profile",
        "--cache-dir", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Profile summary" in out
    assert "mean density" in out


def test_check_command_clean(capsys):
    code = main([
        "check", "--graphs", "1", "--engines", "Hygra,GLA,ChGraph",
        "--algorithms", "CC", "--no-ordering", "--quiet",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "differential: OK" in out


def test_check_command_detects_injected_fault(capsys):
    code = main([
        "check", "--graphs", "1", "--engines", "Hygra,ChGraph",
        "--algorithms", "CC", "--no-ordering", "--quiet",
        "--inject-fault", "lost-writeback",
    ])
    captured = capsys.readouterr()
    assert code == 1
    assert "differential: FAIL" in captured.out
    assert "VIOLATION" in captured.err


def test_check_command_rejects_unknown_names(capsys):
    assert main(["check", "--engines", "NoSuchEngine", "--quiet"]) == 2
    assert main(["check", "--algorithms", "NoSuchAlgo", "--quiet"]) == 2


def test_profile_check_flag_clean(capsys):
    code = main([
        "profile", "--engines", "Hygra", "--algorithm", "BFS",
        "--dataset", "OG", "--cores", "2", "--llc-kb", "2", "--check",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "check: all invariants held" in out

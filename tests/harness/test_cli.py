"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_engine():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--engine", "nope"])


def test_experiment_registry_covers_all_figures():
    expected = {
        "table1", "table2", "vi_e", "summary",
        *{f"fig{n:02d}" for n in (2, 3, 5, 7, 8, 14, 15, 16, 17, 18, 19,
                                   20, 21, 22, 23, 24, 25)},
    }
    assert set(EXPERIMENTS) == expected


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    for key in ("FS", "OK", "LJ", "WEB", "OG"):
        assert key in out


def test_area_command(capsys):
    assert main(["area"]) == 0
    out = capsys.readouterr().out
    assert "0.095 mm2" in out
    assert "0.26%" in out


def test_run_command_small(capsys):
    code = main([
        "run", "--engine", "Hygra", "--algorithm", "BFS", "--dataset", "FS",
        "--cores", "4", "--llc-kb", "2", "--pr-iterations", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Run summary" in out
    assert "DRAM accesses" in out


def test_compare_command_small(capsys):
    code = main([
        "compare", "--algorithm", "BFS", "--dataset", "FS",
        "--cores", "4", "--llc-kb", "2", "--pr-iterations", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Hygra" in out and "ChGraph" in out and "Speedup" in out


def test_experiment_command_cheap(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out
    assert main(["experiment", "vi_e"]) == 0
    assert "area" in capsys.readouterr().out.lower()

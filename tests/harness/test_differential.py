"""Tests for the cross-engine differential harness."""

from __future__ import annotations

import os

import pytest

from repro.harness import differential
from repro.sim.config import scaled_config


def test_seeded_graphs_are_deterministic():
    a = differential.seeded_graphs(count=2, base_seed=101)
    b = differential.seeded_graphs(count=2, base_seed=101)
    assert [g.name for g in a] == ["diff-101", "diff-102"]
    for x, y in zip(a, b):
        assert x.content_hash() == y.content_hash()
    shifted = differential.seeded_graphs(count=1, base_seed=202)[0]
    assert shifted.content_hash() != a[0].content_hash()


def test_five_graph_differential_smoke():
    # The ISSUE's acceptance smoke: five seeded graphs, identical results
    # across engines, zero invariant violations.  Restricted to the three
    # headline engines so the sweep stays test-suite fast; the full
    # registry is exercised by `repro check` in CI.
    report = differential.run_differential(
        engines=["Hygra", "GLA", "ChGraph"],
        algorithms=("PR", "BFS"),
        graph_count=5,
        ordering=False,
    )
    assert report.ok, report.summary() + "\n" + "\n".join(
        report.failures + report.violations
    )
    assert report.runs == 30  # 3 engines x 2 algorithms x 5 graphs
    assert report.comparisons == 20  # 2 non-reference engines x 2 x 5
    assert report.skipped == []


def test_full_registry_single_graph():
    report = differential.run_differential(
        graph_count=1, algorithms=("CC",), ordering=False
    )
    assert report.ok, report.summary()
    # Ligra structurally skips non-2-uniform hypergraphs: a skip, not a fail.
    assert any("Ligra" in s for s in report.skipped)


def test_lost_writeback_fault_fails_the_sweep():
    with differential.inject_fault("lost-writeback"):
        report = differential.run_differential(
            engines=["Hygra", "ChGraph"],
            algorithms=("CC",),
            graph_count=1,
            ordering=False,
        )
    assert not report.ok
    assert report.violations


def test_skewed_attribution_fault_fails_the_sweep():
    with differential.inject_fault("skewed-attribution"):
        report = differential.run_differential(
            engines=["Hygra"],
            algorithms=("BFS",),
            graph_count=1,
            ordering=False,
        )
    assert not report.ok
    assert any("per-array DRAM fetches" in v for v in report.violations)


def test_unknown_fault_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        with differential.inject_fault("no-such-fault"):
            pass


def test_fault_patch_is_restored_after_context():
    from repro.sim.hierarchy import MemoryHierarchy

    original = MemoryHierarchy._writeback_to_dram
    with differential.inject_fault("lost-writeback"):
        assert MemoryHierarchy._writeback_to_dram is not original
    assert MemoryHierarchy._writeback_to_dram is original


def test_report_summary_shape():
    report = differential.DifferentialReport(runs=3, comparisons=2)
    assert report.ok
    assert "OK" in report.summary()
    report.failures.append("x diverged")
    assert not report.ok
    assert "FAIL" in report.summary()


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_FULL", "") in ("", "0"),
    reason="full-scale ordering sweep is minutes long; REPRO_BENCH_FULL=1 "
    "enables it (also exercised by `repro check` without --no-ordering)",
)
def test_overlap_heavy_ordering_holds():
    # Full-scale reseeded paper presets: ChGraph's chain schedule must not
    # fetch more DRAM lines than Hygra's index order (the paper's headline
    # ordering).
    config = scaled_config(num_cores=4, llc_kb=2)
    report = differential.run_differential(
        engines=["Hygra", "ChGraph"],
        algorithms=(),
        graph_count=0,
        config=config,
        ordering=True,
    )
    assert report.ok, report.summary() + "\n" + "\n".join(report.failures)
    assert report.comparisons >= 2  # one per overlap-heavy preset

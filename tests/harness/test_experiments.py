"""Smoke tests for the experiment registry on tiny datasets.

Full-size experiment tables are exercised by the benchmark suite; here a
scaled-down runner verifies every experiment function produces well-formed
rows and preserves the paper's qualitative direction where it is cheap to
check.
"""

from __future__ import annotations

import pytest

from repro.harness import experiments
from repro.harness.datasets import graph_dataset
from repro.harness.runner import Runner
from repro.hypergraph.generators import paper_dataset


class TinyRunner(Runner):
    """Routes the paper datasets to ~20%-scale stand-ins."""

    def __init__(self):
        super().__init__(pr_iterations=1)
        self._tiny = {}

    def dataset(self, key):
        if key in ("AZ", "PK"):
            return graph_dataset(key)
        if key not in self._tiny:
            self._tiny[key] = paper_dataset(key, scale=0.12)
        return self._tiny[key]


@pytest.fixture(scope="module")
def runner():
    return TinyRunner()


def test_table1_rows():
    title, headers, rows = experiments.table1_rows()
    assert "Table I" in title
    assert len(rows) == 7


def test_table2_rows(runner):
    _, headers, rows = experiments.table2_rows(runner)
    assert len(rows) == 5
    assert headers[0] == "Dataset"


def test_fig02_and_fig03(runner):
    _, _, rows02 = experiments.fig02_memory_accesses(runner)
    assert [row[0] for row in rows02] == ["Hygra", "GLA", "ChGraph"]
    _, _, rows03 = experiments.fig03_performance(runner)
    chgraph_speedup = rows03[2][2]
    assert chgraph_speedup > 1.0  # ChGraph beats Hygra even at tiny scale


def test_fig05(runner):
    _, headers, rows = experiments.fig05_memory_stalls(runner, apps=("PR",))
    assert len(rows) == 1
    assert all(0.0 <= value <= 1.0 for value in rows[0][1:])


def test_fig08(runner):
    _, _, rows = experiments.fig08_overlap(runner)
    assert len(rows) == 10  # 2 sides x 5 datasets
    for row in rows:
        ratios = row[2:]
        assert ratios == sorted(ratios, reverse=True)


def test_fig14_subset(runner):
    _, _, rows = experiments.fig14_performance(runner, apps=("PR",))
    assert len(rows) == 5
    for row in rows:
        assert row[3] > 1.0  # ChGraph speedup


def test_fig16(runner):
    _, _, rows = experiments.fig16_hw_breakdown(runner, apps=("PR",))
    assert rows[0][3] > 1.0  # full ChGraph beats software GLA


def test_fig17_and_fig18(runner):
    _, _, rows17 = experiments.fig17_dmax_sweep(runner, depths=(2, 16))
    assert len(rows17) == 2
    _, _, rows18 = experiments.fig18_wmin_sweep(runner, thresholds=(1, 9))
    assert len(rows18) == 2


def test_fig19(runner):
    _, _, rows = experiments.fig19_llc_sweep(runner, llc_kbs=(2, 4))
    assert len(rows) == 2


def test_fig21(runner):
    _, _, rows = experiments.fig21_preprocessing(runner)
    assert len(rows) == 5
    for row in rows:
        assert row[1] > 0  # OAG construction always costs something
        assert row[2] > 0  # and takes extra space


def test_fig24(runner):
    _, _, rows = experiments.fig24_reordering(runner, dataset="OK")
    assert [row[0] for row in rows] == [
        "Hygra", "Hygra+Reorder", "ChGraph", "ChGraph+Reorder",
    ]


def test_fig25(runner):
    _, _, rows = experiments.fig25_graph_apps(runner)
    assert len(rows) == 4
    for row in rows:
        assert row[2] > 0  # finite speedups


def test_vi_e():
    _, _, rows = experiments.vi_e_area_power()
    values = dict((row[0], row[1]) for row in rows)
    assert values["Total area"].endswith("mm2")


def test_fig15_tiny(runner):
    _, _, rows = experiments.fig15_breakdown(runner, apps=("PR",))
    assert len(rows) == 10  # 5 datasets x {Hygra, ChGraph}
    hygra_rows = [row for row in rows if row[2] == "H"]
    assert all(row[7] == 0 for row in hygra_rows)  # no OAG traffic


def test_fig20_tiny(runner):
    _, _, rows = experiments.fig20_core_scaling(runner, cores=(2, 4))
    assert len(rows) == 2
    assert rows[0][1] > rows[1][1]  # more cores, fewer Hygra cycles


def test_fig22_tiny(runner):
    _, _, rows = experiments.fig22_total_time(runner, apps=("PR",))
    assert len(rows) == 5
    assert all(row[2] > 0 for row in rows)


def test_fig23_tiny(runner):
    _, _, rows = experiments.fig23_prefetcher(runner, apps=("PR",))
    assert len(rows) == 5


def test_headline_summary_tiny(runner):
    _, _, rows = experiments.headline_summary(runner, apps=("PR",))
    assert len(rows) == 1
    assert rows[0][1] > 1.0  # min ChGraph speedup

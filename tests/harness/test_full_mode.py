"""Tests for the REPRO_BENCH_FULL environment switch."""

from __future__ import annotations

from repro.harness.runner import Runner, _full_mode


def test_quick_mode_default(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
    assert not _full_mode()
    assert Runner().pr_iterations == 2


def test_full_mode_enables_paper_iterations(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FULL", "1")
    assert _full_mode()
    assert Runner().pr_iterations == 10


def test_zero_disables_full_mode(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FULL", "0")
    assert not _full_mode()


def test_explicit_iterations_override_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_FULL", "1")
    assert Runner(pr_iterations=3).pr_iterations == 3

"""Tests for the experiment harness: runner, datasets, report rendering."""

from __future__ import annotations

import pytest

from repro.harness.datasets import GRAPH_DATASETS, graph_dataset, hypergraph_dataset
from repro.harness.report import format_value, render_table
from repro.harness.runner import PAPER_APPS, Runner, get_runner


def test_paper_apps_order():
    assert PAPER_APPS == ("BFS", "PR", "MIS", "BC", "CC", "k-core")


def test_runner_algorithm_factory():
    runner = Runner(pr_iterations=3)
    assert runner.algorithm("BFS").name == "BFS"
    pr = runner.algorithm("PR")
    assert pr.max_iterations == 3
    with pytest.raises(KeyError):
        runner.algorithm("nope")


def test_runner_engine_factory(small_hypergraph):
    runner = Runner()
    from repro.sim.config import scaled_config

    config = scaled_config(num_cores=4)
    for name in (
        "Hygra", "GLA", "ChGraph", "ChGraph-HCGonly", "ChGraph-CPonly",
        "HATS-V", "EventPrefetcher", "Ligra",
    ):
        engine = runner.engine(name, small_hypergraph, config)
        assert engine.name == name
    with pytest.raises(KeyError):
        runner.engine("nope", small_hypergraph, config)


def test_runner_memoizes(monkeypatch):
    runner = Runner(pr_iterations=1)
    # Route the dataset to a tiny stand-in so the test is fast.
    small = hypergraph_dataset("FS", scale=0.15)
    monkeypatch.setattr(runner, "dataset", lambda key: small)
    first = runner.run("Hygra", "BFS", "FS")
    second = runner.run("Hygra", "BFS", "FS")
    assert first is second


def test_graph_datasets_2_uniform():
    for key in GRAPH_DATASETS:
        graph = graph_dataset(key)
        assert all(
            graph.hyperedge_degree(h) == 2 for h in range(graph.num_hyperedges)
        )


def test_graph_dataset_cached():
    assert graph_dataset("AZ") is graph_dataset("AZ")
    with pytest.raises(KeyError):
        graph_dataset("XX")


def test_hypergraph_dataset_cached():
    assert hypergraph_dataset("OK") is hypergraph_dataset("OK")


def test_get_runner_singleton():
    assert get_runner() is get_runner()


def test_format_value():
    assert format_value(True) == "yes"
    assert format_value(3.14159) == "3.14"
    assert format_value(0.001234) == "0.001"
    assert format_value(12345) == "12,345"
    assert format_value(1234.5) == "1,234"
    assert format_value("x") == "x"
    assert format_value(0.0) == "0"


def test_render_table_alignment():
    text = render_table(
        ["Name", "Value"], [["a", 1], ["bb", 22]], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "Name" in lines[1]
    assert "-" in lines[2]
    assert len(lines) == 5


def test_runner_distinguishes_modified_configs(monkeypatch):
    """Two configs sharing a name but differing in fields must not collide."""
    from repro.sim.config import scaled_config

    runner = Runner(pr_iterations=1)
    small = hypergraph_dataset("FS", scale=0.15)
    monkeypatch.setattr(runner, "dataset", lambda key: small)
    base = scaled_config(num_cores=4)
    tweaked = base.replace(mlp=base.mlp * 4)
    first = runner.run("Hygra", "BFS", "FS", base)
    second = runner.run("Hygra", "BFS", "FS", tweaked)
    assert first is not second
    assert first.cycles != second.cycles


def test_runner_speedup_helper(monkeypatch):
    runner = Runner(pr_iterations=1)
    small = hypergraph_dataset("FS", scale=0.15)
    monkeypatch.setattr(runner, "dataset", lambda key: small)
    speedup = runner.speedup("ChGraph", "Hygra", "BFS", "FS")
    hygra = runner.run("Hygra", "BFS", "FS")
    chgraph = runner.run("ChGraph", "BFS", "FS")
    assert speedup == pytest.approx(hygra.cycles / chgraph.cycles)


def test_with_bars_scaling():
    from repro.harness.report import with_bars

    rows = with_bars([["a", 10], ["b", 5], ["c", 0]], value_index=1, width=10)
    assert rows[0][-1] == "#" * 10
    assert rows[1][-1] == "#" * 5
    assert len(rows[2][-1]) <= 1
    # Original cells untouched.
    assert rows[0][:2] == ["a", 10]


def test_with_bars_empty_and_zero():
    from repro.harness.report import with_bars

    assert with_bars([], 0) == []
    rows = with_bars([["x", 0.0]], 1)
    assert rows[0][-1] == ""


def test_with_bars_zero_row_renders_empty_bar():
    """A zero value next to nonzero peers must not get a 1-char bar —
    '0 accesses' has to *look* like zero in the regenerated figure."""
    from repro.harness.report import with_bars

    rows = with_bars([["a", 10], ["b", 0], ["c", 0.0]], 1, width=10)
    assert rows[0][-1] == "#" * 10
    assert rows[1][-1] == ""
    assert rows[2][-1] == ""


def test_with_bars_negative_rows_render_empty_bar():
    from repro.harness.report import with_bars

    rows = with_bars([["a", 5], ["b", -3]], 1, width=10)
    assert rows[0][-1] == "#" * 10
    assert rows[1][-1] == ""
    # All-negative rows: no positive peak, every bar empty.
    rows = with_bars([["a", -5], ["b", -3]], 1, width=10)
    assert [row[-1] for row in rows] == ["", ""]


def test_with_bars_tiny_positive_values_stay_visible():
    from repro.harness.report import with_bars

    rows = with_bars([["a", 1000], ["b", 1]], 1, width=10)
    assert rows[1][-1] == "#"


def test_runner_loads_dataset_once_per_store_miss(tmp_path, monkeypatch):
    """The store-enabled miss path used to call ``dataset()`` twice (once
    for the content hash, once for the simulation)."""
    from repro.sim.config import scaled_config

    small = hypergraph_dataset("FS", scale=0.15)
    calls = {"n": 0}

    def counting_dataset(key):
        calls["n"] += 1
        return small

    config = scaled_config(num_cores=4, llc_kb=2)
    cold = Runner(pr_iterations=1, cache_dir=tmp_path)
    monkeypatch.setattr(cold, "dataset", counting_dataset)
    cold.run("Hygra", "BFS", "FS", config)
    assert calls["n"] == 1
    # Memo hit: no dataset resolution at all.
    cold.run("Hygra", "BFS", "FS", config)
    assert calls["n"] == 1

    # Warm store hit in a fresh runner: one load (for the content hash).
    warm = Runner(pr_iterations=1, cache_dir=tmp_path)
    monkeypatch.setattr(warm, "dataset", counting_dataset)
    warm.run("Hygra", "BFS", "FS", config)
    assert calls["n"] == 2
    assert warm.store.stats.hits >= 1


def test_get_runner_tracks_environment_changes(tmp_path, monkeypatch):
    """Setting $REPRO_CACHE_DIR or $REPRO_BENCH_FULL after the first call
    must not be silently ignored by a frozen singleton."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
    plain = get_runner()
    assert plain.store is None
    assert plain is get_runner()  # stable under an unchanged environment

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cached = get_runner()
    assert cached is not plain
    assert cached.store is not None and cached.store.root == tmp_path

    monkeypatch.setenv("REPRO_BENCH_FULL", "1")
    full = get_runner()
    assert full is not cached
    assert full.pr_iterations == 10

    # Reverting the environment returns the matching runner, memo intact.
    monkeypatch.delenv("REPRO_BENCH_FULL")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert get_runner() is plain

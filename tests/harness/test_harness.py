"""Tests for the experiment harness: runner, datasets, report rendering."""

from __future__ import annotations

import pytest

from repro.harness.datasets import GRAPH_DATASETS, graph_dataset, hypergraph_dataset
from repro.harness.report import format_value, render_table
from repro.harness.runner import PAPER_APPS, Runner, get_runner


def test_paper_apps_order():
    assert PAPER_APPS == ("BFS", "PR", "MIS", "BC", "CC", "k-core")


def test_runner_algorithm_factory():
    runner = Runner(pr_iterations=3)
    assert runner.algorithm("BFS").name == "BFS"
    pr = runner.algorithm("PR")
    assert pr.max_iterations == 3
    with pytest.raises(KeyError):
        runner.algorithm("nope")


def test_runner_engine_factory(small_hypergraph):
    runner = Runner()
    from repro.sim.config import scaled_config

    config = scaled_config(num_cores=4)
    for name in (
        "Hygra", "GLA", "ChGraph", "ChGraph-HCGonly", "ChGraph-CPonly",
        "HATS-V", "EventPrefetcher", "Ligra",
    ):
        engine = runner.engine(name, small_hypergraph, config)
        assert engine.name == name
    with pytest.raises(KeyError):
        runner.engine("nope", small_hypergraph, config)


def test_runner_memoizes(monkeypatch):
    runner = Runner(pr_iterations=1)
    # Route the dataset to a tiny stand-in so the test is fast.
    small = hypergraph_dataset("FS", scale=0.15)
    monkeypatch.setattr(runner, "dataset", lambda key: small)
    first = runner.run("Hygra", "BFS", "FS")
    second = runner.run("Hygra", "BFS", "FS")
    assert first is second


def test_graph_datasets_2_uniform():
    for key in GRAPH_DATASETS:
        graph = graph_dataset(key)
        assert all(
            graph.hyperedge_degree(h) == 2 for h in range(graph.num_hyperedges)
        )


def test_graph_dataset_cached():
    assert graph_dataset("AZ") is graph_dataset("AZ")
    with pytest.raises(KeyError):
        graph_dataset("XX")


def test_hypergraph_dataset_cached():
    assert hypergraph_dataset("OK") is hypergraph_dataset("OK")


def test_get_runner_singleton():
    assert get_runner() is get_runner()


def test_format_value():
    assert format_value(True) == "yes"
    assert format_value(3.14159) == "3.14"
    assert format_value(0.001234) == "0.001"
    assert format_value(12345) == "12,345"
    assert format_value(1234.5) == "1,234"
    assert format_value("x") == "x"
    assert format_value(0.0) == "0"


def test_render_table_alignment():
    text = render_table(
        ["Name", "Value"], [["a", 1], ["bb", 22]], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "Name" in lines[1]
    assert "-" in lines[2]
    assert len(lines) == 5


def test_runner_distinguishes_modified_configs(monkeypatch):
    """Two configs sharing a name but differing in fields must not collide."""
    from repro.sim.config import scaled_config

    runner = Runner(pr_iterations=1)
    small = hypergraph_dataset("FS", scale=0.15)
    monkeypatch.setattr(runner, "dataset", lambda key: small)
    base = scaled_config(num_cores=4)
    tweaked = base.replace(mlp=base.mlp * 4)
    first = runner.run("Hygra", "BFS", "FS", base)
    second = runner.run("Hygra", "BFS", "FS", tweaked)
    assert first is not second
    assert first.cycles != second.cycles


def test_runner_speedup_helper(monkeypatch):
    runner = Runner(pr_iterations=1)
    small = hypergraph_dataset("FS", scale=0.15)
    monkeypatch.setattr(runner, "dataset", lambda key: small)
    speedup = runner.speedup("ChGraph", "Hygra", "BFS", "FS")
    hygra = runner.run("Hygra", "BFS", "FS")
    chgraph = runner.run("ChGraph", "BFS", "FS")
    assert speedup == pytest.approx(hygra.cycles / chgraph.cycles)


def test_with_bars_scaling():
    from repro.harness.report import with_bars

    rows = with_bars([["a", 10], ["b", 5], ["c", 0]], value_index=1, width=10)
    assert rows[0][-1] == "#" * 10
    assert rows[1][-1] == "#" * 5
    assert len(rows[2][-1]) <= 1
    # Original cells untouched.
    assert rows[0][:2] == ["a", 10]


def test_with_bars_empty_and_zero():
    from repro.harness.report import with_bars

    assert with_bars([], 0) == []
    rows = with_bars([["x", 0.0]], 1)
    assert rows[0][-1] == ""

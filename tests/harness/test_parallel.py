"""The sharded parallel experiment executor: plan determinism, serial
parity, and graceful degradation when workers crash, hang, or there is no
store to act as the cross-process result bus."""

from __future__ import annotations

import pytest

from repro.harness.parallel import (
    RESOURCE_ENGINES,
    RunSpec,
    execute_runs,
    plan_shards,
    resource_group,
)
from repro.harness.runner import Runner
from repro.sim.config import scaled_config

SMALL = scaled_config(num_cores=4, llc_kb=2)


def _specs(engines=("Hygra", "ChGraph"), apps=("BFS",), datasets=("FS",)):
    return [
        RunSpec(e, a, d, SMALL) for e in engines for a in apps for d in datasets
    ]


# -- shard planning ----------------------------------------------------------


def test_resource_group_keys_on_artifact_identity():
    from repro.hypergraph.pipeline import PreprocessSpec

    default = PreprocessSpec()
    assert resource_group(RunSpec("ChGraph", "PR", "WEB", SMALL)) == \
        ("WEB", 4, default)
    assert resource_group(RunSpec("GLA", "BFS", "WEB", SMALL)) == \
        ("WEB", 4, default)
    # Engines without GlaResources group only by dataset (and pipeline).
    assert resource_group(RunSpec("Hygra", "PR", "WEB", SMALL)) == \
        ("WEB", None, default)
    # Sweep points with different OAG parameters must not share a shard's
    # GlaResources artifact.
    sweep = RunSpec(
        "ChGraph", "PR", "WEB", SMALL, preprocessing=PreprocessSpec(w_min=9)
    )
    assert resource_group(sweep) == ("WEB", 4, PreprocessSpec(w_min=9))
    assert resource_group(sweep) != resource_group(
        RunSpec("ChGraph", "PR", "WEB", SMALL)
    )


def test_plan_shards_is_deterministic_and_complete():
    specs = _specs(
        engines=("Hygra", "GLA", "ChGraph", "HATS-V"),
        apps=("BFS", "PR"),
        datasets=("FS", "OK", "WEB"),
    )
    first = plan_shards(specs, 4)
    assert first == plan_shards(list(specs), 4)
    flat = [spec for shard in first for spec in shard]
    assert sorted(flat, key=repr) == sorted(set(specs), key=repr)
    # Runs sharing one GlaResources artifact never straddle two shards.
    for group in {resource_group(s) for s in specs}:
        owners = {
            i
            for i, shard in enumerate(first)
            for spec in shard
            if resource_group(spec) == group
        }
        assert len(owners) == 1, group


def test_plan_shards_dedupes_and_handles_trivial_inputs():
    spec = RunSpec("Hygra", "BFS", "FS", SMALL)
    assert plan_shards([spec, spec], 4) == [[spec]]
    assert plan_shards([], 4) == []
    assert plan_shards([spec], 1) == [[spec]]


def test_resource_engines_cover_the_oag_consumers():
    assert RESOURCE_ENGINES == {
        "GLA", "ChGraph", "ChGraph-HCGonly", "ChGraph-CPonly", "HATS-V",
    }


# -- serial parity -----------------------------------------------------------


def test_run_many_parallel_is_bit_identical_to_serial(tmp_path):
    specs = _specs(engines=("Hygra", "ChGraph"), datasets=("FS", "OK"))
    parallel = Runner(pr_iterations=1, cache_dir=tmp_path)
    results = parallel.run_many(specs, jobs=2, timeout=120)
    report = parallel.last_execution_report
    assert report is not None and report.parallel and report.ok
    assert all(r.where == "worker" for r in report.reports)

    serial = Runner(pr_iterations=1)
    for spec, result in results.items():
        expected = serial.run(spec.engine, spec.algorithm, spec.dataset, spec.config)
        assert result.cycles == expected.cycles
        assert result.dram_accesses == expected.dram_accesses
        assert result.dram_by_group == expected.dram_by_group
        assert result.memory_stall_fraction == expected.memory_stall_fraction


def test_run_many_without_store_degrades_to_serial_loop():
    runner = Runner(pr_iterations=1)
    specs = _specs(engines=("Hygra",), apps=("BFS", "CC"))
    results = runner.run_many(specs, jobs=4)
    assert runner.last_execution_report is None
    for spec in specs:
        assert results[spec] is runner.run(
            spec.engine, spec.algorithm, spec.dataset, spec.config
        )


def test_run_many_skips_executor_when_memo_is_warm(tmp_path):
    runner = Runner(pr_iterations=1, cache_dir=tmp_path)
    specs = _specs(engines=("Hygra",), apps=("BFS", "CC"))
    first = runner.run_many(specs, jobs=2, timeout=120)
    again = runner.run_many(specs, jobs=2, timeout=120)
    assert runner.last_execution_report is None  # everything memo-resident
    for spec in specs:
        assert again[spec] is first[spec]


# -- graceful degradation ----------------------------------------------------


def test_execute_runs_without_cache_dir_runs_inline():
    report = execute_runs(
        _specs(engines=("Hygra",), apps=("BFS", "CC")),
        cache_dir=None,
        jobs=4,
        pr_iterations=1,
    )
    assert not report.parallel
    assert report.jobs == 1
    assert report.ok
    assert all(r.where == "inline" for r in report.reports)


def test_worker_crash_is_retried_and_suite_completes(tmp_path):
    """A worker killed mid-run (os._exit) must not lose its shard."""
    specs = _specs(engines=("Hygra", "ChGraph"), apps=("BFS", "CC"))
    report = execute_runs(
        specs,
        cache_dir=tmp_path,
        jobs=2,
        timeout=120,
        retries=2,
        pr_iterations=1,
        fault="crash:BFS",
    )
    assert report.parallel
    assert report.ok
    assert (tmp_path / "fault-crash.marker").exists()  # the kill fired
    # The retried shard's artifacts are real: a warm runner reuses them.
    warm = Runner(pr_iterations=1, cache_dir=tmp_path)
    warm.run("Hygra", "BFS", "FS", SMALL)
    assert warm.store.stats.hits >= 1


def test_worker_timeout_degrades_to_inline_execution(tmp_path):
    """A run hung past its SIGALRM budget is re-run inline, untimed."""
    specs = _specs(engines=("Hygra", "ChGraph"), apps=("BFS", "CC"))
    report = execute_runs(
        specs,
        cache_dir=tmp_path,
        jobs=2,
        timeout=3.0,
        retries=1,
        pr_iterations=1,
        fault="hang:BFS",
    )
    assert report.parallel
    assert report.ok
    assert (tmp_path / "fault-hang.marker").exists()  # the hang fired
    inline = [r for r in report.reports if r.where == "inline"]
    assert any(r.spec.algorithm == "BFS" for r in inline)


def test_parallel_pool_generic_machinery_retries_crashes(tmp_path):
    from repro.store.pool import run_tasks

    marker = tmp_path / "pool-crash.marker"
    outcomes = run_tasks(
        _crash_once_then_square, [(3, str(marker)), (4, str(marker))], workers=2
    )
    assert [o.value for o in outcomes] == [9, 16]
    assert marker.exists()
    assert any(o.attempts > 1 or o.inline for o in outcomes)


def _crash_once_then_square(payload):
    """Top-level (picklable) pool task that kills its first worker."""
    import os

    value, marker = payload
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
        os._exit(1)
    except FileExistsError:
        pass
    return value * value


def test_pool_inline_mode_propagates_errors():
    from repro.store.pool import run_tasks

    with pytest.raises(ZeroDivisionError):
        run_tasks(_reciprocal, [0], workers=1)


def _reciprocal(value):
    return 1 / value

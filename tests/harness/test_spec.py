"""RunSpec: normalization, JSON round trip, and golden store keys."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.harness.spec import RunSpec
from repro.hypergraph.pipeline import PreprocessSpec, StageSpec
from repro.sim.config import scaled_config
from repro.store.keys import resources_key, run_result_key

#: Pinned v4 keys for the fully-default spec against an all-zero dataset
#: hash.  These change ONLY on a deliberate schema bump (update them and
#: ``STORE_SCHEMA_VERSION`` together) — an accidental drift here would
#: silently orphan every cached artifact in existing stores.
GOLDEN_RUN_KEY = "7b9c85a76c14f09e3a0fcf0f888fd76e"
GOLDEN_RESOURCES_KEY = "201f094d184de6e723bbdd7a83154e89"


class TestNormalization:
    def test_none_fields_resolve_to_runner_defaults(self):
        spec = RunSpec("ChGraph", "PR", "WEB").normalized(
            pr_iterations=7, preprocessing=PreprocessSpec(w_min=5)
        )
        assert spec.config == scaled_config()
        assert spec.pr_iterations == 7
        assert spec.preprocessing == PreprocessSpec(w_min=5)

    def test_explicit_fields_beat_runner_defaults(self):
        spec = RunSpec(
            "ChGraph", "PR", "WEB",
            pr_iterations=3,
            preprocessing=PreprocessSpec(d_max=8),
        ).normalized(pr_iterations=7, preprocessing=PreprocessSpec(w_min=5))
        assert spec.pr_iterations == 3
        assert spec.preprocessing == PreprocessSpec(d_max=8)

    def test_check_implies_profile(self):
        spec = RunSpec("ChGraph", "PR", "WEB", check=True).normalized()
        assert spec.profile and spec.check
        assert RunSpec("ChGraph", "PR", "WEB").normalized(check=True).profile

    def test_normalized_is_idempotent(self):
        spec = RunSpec("ChGraph", "PR", "WEB").normalized()
        assert spec.normalized() == spec

    @pytest.mark.parametrize(
        "fields",
        [
            {"engine": ""},
            {"algorithm": ""},
            {"dataset": ""},
            {"pr_iterations": 0},
        ],
    )
    def test_bad_fields_rejected(self, fields):
        base = dict(engine="ChGraph", algorithm="PR", dataset="WEB")
        with pytest.raises(ConfigurationError):
            RunSpec(**{**base, **fields}).validate()


class TestJson:
    def test_round_trip_preserves_none_fields(self):
        spec = RunSpec("ChGraph", "PR", "WEB")
        back = RunSpec.from_json(spec.to_json())
        assert back == spec
        assert back.config is None and back.pr_iterations is None
        assert back.preprocessing is None

    def test_round_trip_full_spec(self):
        spec = RunSpec(
            "Hygra", "BFS", "FS",
            config=scaled_config(num_cores=4, llc_kb=2),
            pr_iterations=1,
            profile=True,
            check=True,
            preprocessing=PreprocessSpec(
                w_min=5, d_max=8,
                stages=(StageSpec.make("locality-reorder"),),
            ),
        )
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="turbo"):
            RunSpec.from_json(
                {"engine": "Hygra", "algorithm": "BFS", "dataset": "FS",
                 "turbo": True}
            )

    def test_unknown_stage_name_rejected(self):
        payload = RunSpec(
            "Hygra", "BFS", "FS",
            preprocessing=PreprocessSpec(stages=(StageSpec("identity"),)),
        ).to_json()
        payload["preprocessing"]["stages"][0]["name"] = "warp-speed"
        with pytest.raises(ConfigurationError, match="warp-speed"):
            RunSpec.from_json(payload)

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError, match="config"):
            RunSpec.from_json(
                {"engine": "Hygra", "algorithm": "BFS", "dataset": "FS",
                 "config": {"no_such_field": 1}}
            )


class TestGoldenKeys:
    def test_default_run_key_is_pinned(self):
        spec = RunSpec("ChGraph", "PR", "WEB").normalized()
        assert run_result_key(spec, "0" * 64) == GOLDEN_RUN_KEY

    def test_default_resources_key_is_pinned(self):
        assert resources_key("0" * 64, 16) == GOLDEN_RESOURCES_KEY

    def test_json_round_trip_preserves_the_key(self):
        spec = RunSpec(
            "ChGraph", "PR", "WEB",
            preprocessing=PreprocessSpec(
                w_min=5, stages=(StageSpec.make("locality-reorder"),)
            ),
        ).normalized()
        back = RunSpec.from_json(spec.to_json())
        assert run_result_key(back, "0" * 64) == run_result_key(spec, "0" * 64)

    def test_key_is_dataset_name_blind(self):
        # Keys address *content*: renaming a dataset (same structure, same
        # content hash) must keep its cache entries valid.
        a = RunSpec("ChGraph", "PR", "WEB").normalized()
        b = RunSpec("ChGraph", "PR", "renamed").normalized()
        hash_ = "ab" * 32
        assert run_result_key(a, hash_) == run_result_key(b, hash_)


class TestRunnerShim:
    def test_legacy_positional_form_still_runs(self):
        from repro.harness.runner import Runner

        runner = Runner(pr_iterations=1, cache_dir=None)
        legacy = runner.run("Hygra", "BFS", "FS")
        spec = runner.run(RunSpec("Hygra", "BFS", "FS"))
        assert legacy is spec  # one memo entry — the shim builds the spec

    def test_incomplete_legacy_form_raises(self):
        from repro.harness.runner import Runner

        with pytest.raises(TypeError, match="RunSpec"):
            Runner(cache_dir=None).run("Hygra", "BFS")

"""Tests for overlap-aware partitioning (renumbering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRank
from repro.core.chain import ChainGenerator
from repro.core.oag import build_chunk_oags
from repro.engine.hygra import HygraEngine
from repro.hypergraph.community_partition import overlap_aware_renumber
from repro.hypergraph.partition import contiguous_chunks


def test_permutations_are_bijections(small_hypergraph):
    part = overlap_aware_renumber(small_hypergraph, side="both")
    assert sorted(part.hyperedge_perm) == list(range(small_hypergraph.num_hyperedges))
    assert sorted(part.vertex_perm) == list(range(small_hypergraph.num_vertices))


def test_structure_preserved(small_hypergraph):
    part = overlap_aware_renumber(small_hypergraph, side="both")
    renamed = part.hypergraph
    assert renamed.num_vertices == small_hypergraph.num_vertices
    assert renamed.num_hyperedges == small_hypergraph.num_hyperedges
    assert renamed.num_bipartite_edges == small_hypergraph.num_bipartite_edges
    # Hyperedge h maps to hyperedge_perm[h] with permuted members.
    for old_h in range(small_hypergraph.num_hyperedges):
        new_h = int(part.hyperedge_perm[old_h])
        expected = sorted(
            int(part.vertex_perm[v])
            for v in small_hypergraph.incident_vertices(old_h)
        )
        assert expected == list(renamed.incident_vertices(new_h))


def test_hyperedge_only_keeps_vertices(small_hypergraph):
    part = overlap_aware_renumber(small_hypergraph, side="hyperedge")
    assert np.array_equal(
        part.vertex_perm, np.arange(small_hypergraph.num_vertices)
    )


def test_unknown_side(small_hypergraph):
    with pytest.raises(ValueError):
        overlap_aware_renumber(small_hypergraph, side="nope")


def test_restore_vertex_order(small_hypergraph):
    part = overlap_aware_renumber(small_hypergraph, side="both")
    original = HygraEngine().run(PageRank(iterations=3), small_hypergraph)
    renamed = HygraEngine().run(PageRank(iterations=3), part.hypergraph)
    assert np.allclose(
        part.restore_vertex_order(renamed.result), original.result
    )


def test_renumbering_densifies_chunk_oags(small_hypergraph):
    """The point of the exercise: per-chunk OAGs keep more overlap edges."""
    num_chunks = 8

    def chunk_edge_total(hypergraph):
        chunks = contiguous_chunks(hypergraph.num_hyperedges, num_chunks)
        oags = build_chunk_oags(hypergraph, "hyperedge", chunks, w_min=1)
        return sum(oag.num_edges for oag in oags)

    part = overlap_aware_renumber(small_hypergraph, side="hyperedge")
    assert chunk_edge_total(part.hypergraph) >= chunk_edge_total(small_hypergraph)


def test_renumbering_lengthens_chunk_chains(small_hypergraph):
    num_chunks = 8
    generator = ChainGenerator()

    def mean_chain_length(hypergraph):
        chunks = contiguous_chunks(hypergraph.num_hyperedges, num_chunks)
        oags = build_chunk_oags(hypergraph, "hyperedge", chunks, w_min=1)
        lengths = []
        for chunk, oag in zip(chunks, oags):
            chains = generator.generate(np.ones(len(chunk), dtype=bool), oag)
            lengths.append(chains.mean_length)
        return float(np.mean(lengths))

    part = overlap_aware_renumber(small_hypergraph, side="hyperedge")
    assert mean_chain_length(part.hypergraph) >= mean_chain_length(small_hypergraph)

"""Unit and property tests for the CSR adjacency structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HypergraphFormatError
from repro.hypergraph.csr import Csr


def test_from_lists_basic():
    csr = Csr.from_lists([[1, 2], [], [0]])
    assert csr.num_rows == 3
    assert csr.num_entries == 3
    assert list(csr.neighbors(0)) == [1, 2]
    assert list(csr.neighbors(1)) == []
    assert csr.degree(0) == 2
    assert csr.degree(1) == 0


def test_row_slice_matches_offsets():
    csr = Csr.from_lists([[5], [6, 7], []])
    assert csr.row_slice(0) == (0, 1)
    assert csr.row_slice(1) == (1, 3)
    assert csr.row_slice(2) == (3, 3)


def test_weights_parallel_to_indices():
    csr = Csr.from_lists([[1, 2], [0]], weights=[[10, 20], [30]])
    assert list(csr.neighbor_weights(0)) == [10, 20]
    assert list(csr.neighbor_weights(1)) == [30]


def test_weights_missing_raises():
    csr = Csr.from_lists([[1]])
    with pytest.raises(HypergraphFormatError):
        csr.neighbor_weights(0)


def test_weights_shape_mismatch_raises():
    with pytest.raises(HypergraphFormatError):
        Csr.from_lists([[1, 2]], weights=[[10]])


def test_invalid_offsets_rejected():
    with pytest.raises(HypergraphFormatError):
        Csr(np.array([1, 2]), np.array([0, 1]))  # does not start at 0
    with pytest.raises(HypergraphFormatError):
        Csr(np.array([0, 3]), np.array([0, 1]))  # does not end at len(indices)
    with pytest.raises(HypergraphFormatError):
        Csr(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))  # decreasing


def test_empty_offsets_rejected():
    with pytest.raises(HypergraphFormatError):
        Csr(np.array([], dtype=np.int64), np.array([], dtype=np.int64))


def test_transpose_simple():
    csr = Csr.from_lists([[0, 1], [1]])
    transposed = csr.transpose()
    assert transposed.to_lists() == [[0], [0, 1]]


def test_transpose_with_explicit_columns():
    csr = Csr.from_lists([[0]])
    transposed = csr.transpose(num_cols=3)
    assert transposed.num_rows == 3
    assert transposed.to_lists() == [[0], [], []]


def test_equality_includes_weights():
    a = Csr.from_lists([[1]], weights=[[5]])
    b = Csr.from_lists([[1]], weights=[[5]])
    c = Csr.from_lists([[1]], weights=[[6]])
    d = Csr.from_lists([[1]])
    assert a == b
    assert a != c
    assert a != d


adjacency_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=30), max_size=8),
    min_size=1,
    max_size=12,
)


@given(adjacency_strategy)
@settings(max_examples=60, deadline=None)
def test_roundtrip_from_lists_to_lists(rows):
    csr = Csr.from_lists(rows)
    assert csr.to_lists() == [list(row) for row in rows]


@given(adjacency_strategy)
@settings(max_examples=60, deadline=None)
def test_transpose_is_involution(rows):
    csr = Csr.from_lists(rows)
    num_cols = 31
    back = csr.transpose(num_cols=num_cols).transpose(num_cols=csr.num_rows)
    # Transposing twice restores each row as a multiset (CSR sorts columns).
    for row in range(csr.num_rows):
        assert sorted(csr.neighbors(row)) == sorted(back.neighbors(row))


@given(adjacency_strategy)
@settings(max_examples=60, deadline=None)
def test_transpose_preserves_entry_count(rows):
    csr = Csr.from_lists(rows)
    assert csr.transpose(num_cols=31).num_entries == csr.num_entries

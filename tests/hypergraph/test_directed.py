"""Tests for directed hypergraphs (§II-A) and their projections."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import Bfs
from repro.algorithms.graph import Sssp
from repro.engine.hygra import HygraEngine
from repro.errors import HypergraphFormatError
from repro.hypergraph.directed import DirectedHypergraph


@pytest.fixture
def triangle():
    """v0 -[h0]-> {v1, v2}; v1 -[h1]-> {v3}; v3 -[h2]-> {v0}."""
    return DirectedHypergraph.from_lists(
        [([0], [1, 2]), ([1], [3]), ([3], [0])], num_vertices=4
    )


def test_basic_queries(triangle):
    assert triangle.num_hyperedges == 3
    assert triangle.num_vertices == 4
    assert list(triangle.source_vertices(0)) == [0]
    assert list(triangle.destination_vertices(0)) == [1, 2]


def test_forward_bfs_follows_direction(triangle):
    run = HygraEngine().run(Bfs(source=0), triangle.forward())
    # Bipartite hops: v0=0, v1=v2=2 (through h0), v3=4 (through h1).
    assert list(run.result) == [0.0, 2.0, 2.0, 4.0]


def test_backward_bfs_is_reverse_reachability(triangle):
    run = HygraEngine().run(Bfs(source=0), triangle.backward())
    # Who reaches v0: v3 directly (h2), v1 through v3; v2 reaches nothing.
    assert run.result[3] == 2.0
    assert run.result[1] == 4.0
    assert np.isinf(run.result[2])


def test_direction_matters(triangle):
    forward = HygraEngine().run(Sssp(source=1), triangle.forward())
    # v1 -> v3 -> v0 -> {v1, v2}: all reachable going forward...
    assert np.all(np.isfinite(forward.result))
    backward = HygraEngine().run(Sssp(source=1), triangle.backward())
    # ...but only v0 (via h0) reaches v1 going backward... and v3, v1 via cycle.
    assert np.isinf(backward.result[2])


def test_as_undirected_unions_sets(triangle):
    undirected = triangle.as_undirected()
    assert list(undirected.incident_vertices(0)) == [0, 1, 2]
    assert undirected.num_bipartite_edges == 7
    assert undirected.directed is False


def test_reverse_swaps_sets(triangle):
    reversed_ = triangle.reverse()
    assert list(reversed_.source_vertices(0)) == [1, 2]
    assert list(reversed_.destination_vertices(0)) == [0]
    # Reverse of reverse restores forward semantics.
    double = reversed_.reverse()
    run_a = HygraEngine().run(Bfs(source=0), triangle.forward())
    run_b = HygraEngine().run(Bfs(source=0), double.forward())
    assert np.array_equal(run_a.result, run_b.result)


def test_backward_equals_reverse_forward(triangle):
    a = HygraEngine().run(Bfs(source=0), triangle.backward())
    b = HygraEngine().run(Bfs(source=0), triangle.reverse().forward())
    assert np.array_equal(a.result, b.result)


def test_projections_marked_directed(triangle):
    assert triangle.forward().directed is True
    assert triangle.backward().directed is True


def test_vertex_in_both_sets_allowed():
    dh = DirectedHypergraph.from_lists([([0, 1], [1, 2])])
    assert list(dh.source_vertices(0)) == [0, 1]
    assert list(dh.destination_vertices(0)) == [1, 2]


def test_validation_errors():
    with pytest.raises(HypergraphFormatError):
        DirectedHypergraph.from_lists([([0], [-1])])
    with pytest.raises(HypergraphFormatError):
        DirectedHypergraph.from_lists([([0], [5])], num_vertices=3)
    from repro.hypergraph.csr import Csr

    with pytest.raises(HypergraphFormatError):
        DirectedHypergraph(Csr.from_lists([[0]]), Csr.from_lists([[0], [1]]), 2)


def test_empty_source_set_allowed():
    """A hyperedge with no sources is a pure sink-side fact (never fires)."""
    dh = DirectedHypergraph.from_lists([([], [0, 1])], num_vertices=2)
    run = HygraEngine().run(Bfs(source=0), dh.forward())
    assert run.result[0] == 0.0
    assert np.isinf(run.result[1])

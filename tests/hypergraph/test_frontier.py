"""Tests for the activity frontier (bitmap + sparse views)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph.frontier import Frontier


def test_empty_frontier():
    frontier = Frontier(10)
    assert frontier.is_empty()
    assert len(frontier) == 0
    assert list(frontier) == []


def test_add_discard_contains():
    frontier = Frontier(10)
    frontier.add(3)
    assert 3 in frontier
    assert len(frontier) == 1
    frontier.discard(3)
    assert 3 not in frontier
    assert frontier.is_empty()


def test_iteration_is_index_ordered():
    frontier = Frontier(10, [7, 2, 5])
    assert list(frontier) == [2, 5, 7]


def test_all_active():
    frontier = Frontier.all_active(5)
    assert len(frontier) == 5
    assert frontier.density() == 1.0


def test_from_bitmap_copies():
    bitmap = np.array([True, False, True])
    frontier = Frontier.from_bitmap(bitmap)
    bitmap[1] = True
    assert 1 not in frontier


def test_copy_is_independent():
    frontier = Frontier(5, [1])
    other = frontier.copy()
    other.add(2)
    assert 2 not in frontier
    assert 2 in other


def test_copy_preserves_exact_count():
    """Copying an unescaped frontier must carry the cached popcount over
    instead of forcing an O(n) recount of an exactly-known frontier."""
    frontier = Frontier(64, [1, 5, 9])
    assert len(frontier) == 3  # count is exact before the copy
    clone = frontier.copy()
    assert clone._count == 3
    assert len(clone) == 3
    # The clone's count stays live through its own mutations.
    clone.add(10)
    assert clone._count == 4 and len(frontier) == 3


def test_copy_of_escaped_frontier_recounts():
    """Once the source bitmap escaped, its count may be stale: the copy
    must recount rather than inherit it."""
    frontier = Frontier(8, [0, 1])
    frontier.bitmap[5] = True  # escape + mutate through the alias
    clone = frontier.copy()
    assert clone._count is None
    assert len(clone) == 3
    # The clone owns a fresh bitmap, so *its* cache works normally.
    assert clone._count == 3


def test_clear():
    frontier = Frontier.all_active(4)
    frontier.clear()
    assert frontier.is_empty()


def test_density_empty_universe():
    assert Frontier(0).density() == 0.0


@given(st.sets(st.integers(min_value=0, max_value=63)))
@settings(max_examples=60, deadline=None)
def test_ids_match_membership(active):
    frontier = Frontier(64, active)
    assert set(frontier.ids()) == active
    assert len(frontier) == len(active)


@given(
    st.sets(st.integers(min_value=0, max_value=31)),
    st.sets(st.integers(min_value=0, max_value=31)),
)
@settings(max_examples=40, deadline=None)
def test_add_then_discard_yields_difference(first, second):
    frontier = Frontier(32, first)
    for i in second:
        frontier.discard(i)
    assert set(frontier.ids()) == first - second


def test_len_cache_tracks_direct_bitmap_mutation():
    """Engines write through .bitmap in place; len() must stay correct."""
    frontier = Frontier(8, [0, 1])
    assert len(frontier) == 2
    bitmap = frontier.bitmap  # hardware-style alias, mutated below
    bitmap[5] = True
    assert len(frontier) == 3
    bitmap[0] = False
    bitmap[1] = False
    assert len(frontier) == 1


def test_len_cache_tracks_add_discard_interleaved():
    frontier = Frontier(16)
    for i in range(10):
        frontier.add(i)
    assert len(frontier) == 10
    frontier.add(3)  # duplicate add must not double-count
    assert len(frontier) == 10
    frontier.discard(3)
    frontier.discard(3)  # duplicate discard must not double-subtract
    assert len(frontier) == 9
    frontier.clear()
    assert len(frontier) == 0
    frontier.add(15)
    assert len(frontier) == 1


def test_bitmap_setter_invalidates_count():
    frontier = Frontier.all_active(6)
    assert len(frontier) == 6
    frontier.bitmap = np.zeros(6, dtype=bool)
    assert len(frontier) == 0

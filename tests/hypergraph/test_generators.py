"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import pytest

from repro.hypergraph.generators import (
    AffiliationConfig,
    PAPER_DATASETS,
    generate_affiliation_hypergraph,
    generate_uniform_random_hypergraph,
    paper_dataset,
    planted_chain_hypergraph,
    two_uniform_graph,
)


def _config(**overrides):
    base = dict(
        num_vertices=200,
        num_hyperedges=100,
        mean_hyperedge_degree=8.0,
        num_communities=10,
        seed=3,
    )
    base.update(overrides)
    return AffiliationConfig(**base)


def test_affiliation_dimensions():
    hypergraph = generate_affiliation_hypergraph(_config())
    assert hypergraph.num_vertices == 200
    assert hypergraph.num_hyperedges == 100


def test_affiliation_deterministic():
    a = generate_affiliation_hypergraph(_config())
    b = generate_affiliation_hypergraph(_config())
    assert a.hyperedges == b.hyperedges


def test_affiliation_seed_changes_structure():
    a = generate_affiliation_hypergraph(_config(seed=3))
    b = generate_affiliation_hypergraph(_config(seed=4))
    assert a.hyperedges != b.hyperedges


def test_min_hyperedge_degree_respected():
    hypergraph = generate_affiliation_hypergraph(_config(min_hyperedge_degree=2))
    for h in range(hypergraph.num_hyperedges):
        assert hypergraph.hyperedge_degree(h) >= 2


def test_vertex_run_colocates_communities():
    # With vertex_run=8, each run of 8 consecutive ids belongs to exactly one
    # community, so hyperedges predominantly touch few 8-aligned blocks.
    config = _config(vertex_run=8, overlap_bias=1.0, num_communities=5)
    hypergraph = generate_affiliation_hypergraph(config)
    blocks_per_hyperedge = [
        len({int(v) // 8 for v in hypergraph.incident_vertices(h)})
        for h in range(hypergraph.num_hyperedges)
    ]
    degrees = [hypergraph.hyperedge_degree(h) for h in range(hypergraph.num_hyperedges)]
    # Far fewer blocks than members on average (co-location).
    assert sum(blocks_per_hyperedge) < 0.9 * sum(degrees)


def test_hub_bias_creates_hot_vertices():
    config = _config(hubs_per_community=2, hub_bias=0.6)
    hypergraph = generate_affiliation_hypergraph(config)
    degrees = sorted(
        (hypergraph.vertex_degree(v) for v in range(hypergraph.num_vertices)),
        reverse=True,
    )
    # The hottest vertices dominate the median by a wide margin.
    median = degrees[len(degrees) // 2]
    assert degrees[0] >= max(4, 3 * max(median, 1))


def test_uniform_random_is_k_uniform():
    hypergraph = generate_uniform_random_hypergraph(50, 20, hyperedge_degree=5)
    for h in range(20):
        assert hypergraph.hyperedge_degree(h) == 5


def test_planted_chain_structure():
    hypergraph = planted_chain_hypergraph(5, overlap=2, fresh=2)
    # Consecutive hyperedges share exactly `overlap` vertices.
    for h in range(4):
        a = set(map(int, hypergraph.incident_vertices(h)))
        b = set(map(int, hypergraph.incident_vertices(h + 1)))
        assert len(a & b) == 2
    # Non-consecutive hyperedges share nothing.
    a = set(map(int, hypergraph.incident_vertices(0)))
    c = set(map(int, hypergraph.incident_vertices(2)))
    assert not (a & c)


def test_two_uniform_graph():
    graph = two_uniform_graph([(0, 1), (1, 2)])
    assert graph.num_hyperedges == 2
    assert all(graph.hyperedge_degree(h) == 2 for h in range(2))


def test_paper_dataset_names_and_order():
    assert PAPER_DATASETS == ("FS", "OK", "LJ", "WEB", "OG")
    for key in PAPER_DATASETS:
        hypergraph = paper_dataset(key, scale=0.1)
        assert hypergraph.name == key
        assert hypergraph.num_hyperedges > 0


def test_paper_dataset_unknown_key():
    with pytest.raises(KeyError):
        paper_dataset("nope")


def test_paper_dataset_ratio_ordering():
    """FS and WEB keep |V| > |H|; OK, LJ, OG keep |H| > |V| (Table II)."""
    shapes = {key: paper_dataset(key, scale=0.2) for key in PAPER_DATASETS}
    for key in ("FS", "WEB"):
        assert shapes[key].num_vertices > shapes[key].num_hyperedges
    for key in ("OK", "LJ", "OG"):
        assert shapes[key].num_hyperedges > shapes[key].num_vertices


def test_paper_dataset_scale_shrinks():
    full = paper_dataset("FS")
    small = paper_dataset("FS", scale=0.25)
    assert small.num_vertices < full.num_vertices
    assert small.num_hyperedges < full.num_hyperedges


def test_rmat_bipartite_shape_and_skew():
    from repro.hypergraph.generators import generate_rmat_bipartite
    import numpy as np

    hypergraph = generate_rmat_bipartite(256, 128, 2000, seed=5)
    assert hypergraph.num_vertices == 256
    assert hypergraph.num_hyperedges == 128
    degrees = np.diff(hypergraph.vertices.offsets)
    # R-MAT skew: the hottest vertex far exceeds the median.
    assert degrees.max() >= 5 * max(int(np.median(degrees)), 1)


def test_rmat_deterministic():
    from repro.hypergraph.generators import generate_rmat_bipartite

    a = generate_rmat_bipartite(64, 32, 400, seed=9)
    b = generate_rmat_bipartite(64, 32, 400, seed=9)
    assert a.hyperedges == b.hyperedges

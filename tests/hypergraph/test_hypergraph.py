"""Tests for the Hypergraph container, anchored on the paper's Figure 1."""

from __future__ import annotations

import pytest

from repro.errors import HypergraphFormatError
from repro.hypergraph.csr import Csr
from repro.hypergraph.hypergraph import Hypergraph


def test_figure1_dimensions(figure1):
    assert figure1.num_vertices == 7
    assert figure1.num_hyperedges == 4
    assert figure1.num_bipartite_edges == 13


def test_figure1_degrees(figure1):
    # §II-A: deg(h0) = 3 because h0 contains v0, v4, v6.
    assert figure1.hyperedge_degree(0) == 3
    # deg(v0) = 2 because v0 is contained in h0 and h2.
    assert figure1.vertex_degree(0) == 2


def test_figure1_incidence(figure1):
    assert list(figure1.incident_vertices(0)) == [0, 4, 6]
    assert list(figure1.incident_hyperedges(0)) == [0, 2]


def test_figure1_overlap(figure1):
    # §II-A: h0 and h2 are overlapped since N(h0) ∩ N(h2) = {v0, v4}.
    assert figure1.hyperedges_overlap(0, 2)
    assert not figure1.hyperedges_overlap(0, 1)
    # v0 and v2 are both in h2, hence overlapped.
    assert figure1.vertices_overlap(0, 2)
    assert not figure1.vertices_overlap(5, 6)


def test_vertex_side_is_transpose(figure1):
    rebuilt = figure1.hyperedges.transpose(num_cols=figure1.num_vertices)
    assert rebuilt == figure1.vertices


def test_side_selector(figure1):
    assert figure1.side("hyperedge") is figure1.hyperedges
    assert figure1.side("vertex") is figure1.vertices
    with pytest.raises(ValueError):
        figure1.side("bogus")


def test_clique_expansion(figure1):
    edges = figure1.clique_expansion()
    # Every pair within a hyperedge must be present exactly once.
    assert (0, 4) in edges
    assert (1, 3) in edges
    assert len(edges) == len(set(edges))
    # Non-co-members absent.
    assert (5, 6) not in edges


def test_from_hyperedge_lists_dedups_and_sorts():
    hypergraph = Hypergraph.from_hyperedge_lists([[3, 1, 3, 2]])
    assert list(hypergraph.incident_vertices(0)) == [1, 2, 3]


def test_from_hyperedge_lists_rejects_negative():
    with pytest.raises(HypergraphFormatError):
        Hypergraph.from_hyperedge_lists([[-1, 2]])


def test_from_hyperedge_lists_rejects_small_num_vertices():
    with pytest.raises(HypergraphFormatError):
        Hypergraph.from_hyperedge_lists([[0, 5]], num_vertices=3)


def test_mismatched_sides_rejected():
    hyperedges = Csr.from_lists([[0, 1]])
    vertices = Csr.from_lists([[0]])  # one bipartite edge instead of two
    with pytest.raises(HypergraphFormatError):
        Hypergraph(hyperedges, vertices)


def test_size_bytes_scales_with_structure(figure1):
    base = figure1.size_bytes()
    bigger = Hypergraph.from_hyperedge_lists(
        [[0, 4, 6], [1, 2, 3, 5], [0, 2, 4], [1, 3, 6], [0, 1, 2, 3]],
        num_vertices=7,
    )
    assert bigger.size_bytes() > base


def test_isolated_vertices_allowed():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1]], num_vertices=5)
    assert hypergraph.num_vertices == 5
    assert hypergraph.vertex_degree(4) == 0


def test_repr_mentions_counts(figure1):
    text = repr(figure1)
    assert "|V|=7" in text
    assert "|H|=4" in text

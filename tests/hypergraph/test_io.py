"""Round-trip and error tests for hypergraph I/O."""

from __future__ import annotations

import pytest

from repro.errors import HypergraphFormatError
from repro.hypergraph.io import (
    load_bipartite_edges,
    load_hyperedge_list,
    load_json,
    save_bipartite_edges,
    save_hyperedge_list,
    save_json,
)


def test_hyperedge_list_roundtrip(figure1, tmp_path):
    path = tmp_path / "fig1.hgr"
    save_hyperedge_list(figure1, path)
    loaded = load_hyperedge_list(path, num_vertices=7)
    assert loaded.hyperedges == figure1.hyperedges
    assert loaded.vertices == figure1.vertices


def test_hyperedge_list_skips_comments(tmp_path):
    path = tmp_path / "commented.hgr"
    path.write_text("# header\n\n0 1\n% also a comment\n1 2\n")
    loaded = load_hyperedge_list(path)
    assert loaded.num_hyperedges == 2


def test_hyperedge_list_bad_token(tmp_path):
    path = tmp_path / "bad.hgr"
    path.write_text("0 x 2\n")
    with pytest.raises(HypergraphFormatError) as excinfo:
        load_hyperedge_list(path)
    assert "bad.hgr:1" in str(excinfo.value)


def test_bipartite_roundtrip(figure1, tmp_path):
    path = tmp_path / "fig1.bip"
    save_bipartite_edges(figure1, path)
    loaded = load_bipartite_edges(path)
    assert loaded.hyperedges == figure1.hyperedges


def test_bipartite_requires_pairs(tmp_path):
    path = tmp_path / "bad.bip"
    path.write_text("3\n")
    with pytest.raises(HypergraphFormatError):
        load_bipartite_edges(path)


def test_bipartite_empty_rejected(tmp_path):
    path = tmp_path / "empty.bip"
    path.write_text("% nothing\n")
    with pytest.raises(HypergraphFormatError):
        load_bipartite_edges(path)


def test_json_roundtrip(figure1, tmp_path):
    path = tmp_path / "fig1.json"
    save_json(figure1, path)
    loaded = load_json(path)
    assert loaded.hyperedges == figure1.hyperedges
    assert loaded.num_vertices == figure1.num_vertices
    assert loaded.name == "figure1"


def test_json_missing_key(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text('{"name": "x"}')
    with pytest.raises(HypergraphFormatError):
        load_json(path)


def test_loaded_name_defaults_to_stem(figure1, tmp_path):
    path = tmp_path / "mygraph.hgr"
    save_hyperedge_list(figure1, path)
    assert load_hyperedge_list(path).name == "mygraph"


def test_matrix_market_roundtrip(figure1, tmp_path):
    from repro.hypergraph.io import load_matrix_market, save_matrix_market

    path = tmp_path / "fig1.mtx"
    save_matrix_market(figure1, path)
    loaded = load_matrix_market(path)
    assert loaded.hyperedges == figure1.hyperedges
    assert loaded.num_vertices == figure1.num_vertices


def test_matrix_market_reads_scipy_output(figure1, tmp_path):
    """Interop: scipy.io.mmwrite output loads back identically."""
    import numpy as np
    import scipy.io
    import scipy.sparse

    from repro.hypergraph.io import load_matrix_market

    rows, cols = [], []
    for h in range(figure1.num_hyperedges):
        for v in figure1.incident_vertices(h):
            rows.append(h)
            cols.append(int(v))
    matrix = scipy.sparse.coo_matrix(
        (np.ones(len(rows)), (rows, cols)),
        shape=(figure1.num_hyperedges, figure1.num_vertices),
    )
    path = tmp_path / "scipy.mtx"
    scipy.io.mmwrite(str(path), matrix)
    loaded = load_matrix_market(path)
    assert loaded.hyperedges == figure1.hyperedges


def test_matrix_market_errors(tmp_path):
    from repro.hypergraph.io import load_matrix_market

    bad = tmp_path / "bad.mtx"
    bad.write_text("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n9 1\n")
    with pytest.raises(HypergraphFormatError):
        load_matrix_market(bad)
    empty = tmp_path / "empty.mtx"
    empty.write_text("")
    with pytest.raises(HypergraphFormatError):
        load_matrix_market(empty)


def test_hyperedge_list_roundtrip_trailing_isolated_vertex(tmp_path):
    """The size header must preserve isolated vertices past the max seen id."""
    from repro.hypergraph.hypergraph import Hypergraph

    hypergraph = Hypergraph.from_hyperedge_lists(
        [[0, 1], [1, 2]], num_vertices=6, name="isolated-tail"
    )
    path = tmp_path / "isolated.hgr"
    save_hyperedge_list(hypergraph, path)
    loaded = load_hyperedge_list(path)
    assert loaded.num_vertices == 6
    assert loaded.hyperedges == hypergraph.hyperedges
    assert loaded.vertices == hypergraph.vertices


def test_hyperedge_list_explicit_num_vertices_beats_header(tmp_path):
    from repro.hypergraph.hypergraph import Hypergraph

    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1]], num_vertices=4)
    path = tmp_path / "override.hgr"
    save_hyperedge_list(hypergraph, path)
    loaded = load_hyperedge_list(path, num_vertices=9)
    assert loaded.num_vertices == 9


def test_hyperedge_list_headerless_infers_from_ids(tmp_path):
    path = tmp_path / "bare.hgr"
    path.write_text("# free-form comment, not a size header\n0 3\n1 2\n")
    loaded = load_hyperedge_list(path)
    assert loaded.num_vertices == 4

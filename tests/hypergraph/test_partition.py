"""Tests for chunk partitioning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph.partition import Chunk, balanced_chunks, contiguous_chunks


def test_chunk_basics():
    chunk = Chunk(core=0, first=3, last=7)
    assert len(chunk) == 4
    assert 3 in chunk and 6 in chunk
    assert 7 not in chunk
    assert list(chunk.ids()) == [3, 4, 5, 6]


def test_chunk_reversed_range_rejected():
    with pytest.raises(ValueError):
        Chunk(core=0, first=5, last=2)


def test_contiguous_even_split():
    chunks = contiguous_chunks(8, 4)
    assert [len(c) for c in chunks] == [2, 2, 2, 2]
    assert chunks[0].first == 0
    assert chunks[-1].last == 8


def test_contiguous_uneven_split_front_loads_remainder():
    chunks = contiguous_chunks(10, 4)
    assert [len(c) for c in chunks] == [3, 3, 2, 2]


def test_contiguous_more_cores_than_items():
    chunks = contiguous_chunks(2, 4)
    assert sum(len(c) for c in chunks) == 2
    assert len(chunks) == 4


def test_contiguous_rejects_zero_cores():
    with pytest.raises(ValueError):
        contiguous_chunks(4, 0)


@given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=32))
@settings(max_examples=80, deadline=None)
def test_contiguous_cover_and_disjoint(universe, cores):
    chunks = contiguous_chunks(universe, cores)
    assert len(chunks) == cores
    covered = []
    for chunk in chunks:
        covered.extend(chunk.ids())
    assert covered == list(range(universe))
    assert [c.core for c in chunks] == list(range(cores))


def test_balanced_chunks_balances_degree():
    # One heavy element followed by light ones: the heavy element should be
    # alone in its chunk.
    degrees = [100, 1, 1, 1, 1, 1]
    chunks = balanced_chunks(degrees, 2)
    assert len(chunks[0]) == 1
    assert sum(len(c) for c in chunks) == 6


def test_balanced_chunks_pads_empty_cores():
    chunks = balanced_chunks([1, 1], 4)
    assert len(chunks) == 4
    assert sum(len(c) for c in chunks) == 2


@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_balanced_cover_and_contiguity(degrees, cores):
    chunks = balanced_chunks(degrees, cores)
    covered = []
    for chunk in chunks:
        covered.extend(chunk.ids())
    assert covered == list(range(len(degrees)))

"""The preprocessing-stage registry and pipeline composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hypergraph.pipeline import (
    PreprocessSpec,
    StageSpec,
    apply_pipeline,
    stage_names,
)


class TestStageSpec:
    def test_make_sorts_params_canonically(self):
        a = StageSpec.make("identity", b=2, a=1)
        b = StageSpec.make("identity", a=1, b=2)
        assert a == b
        assert a.params == (("a", 1), ("b", 2))

    def test_unknown_stage_rejected_with_known_names(self):
        with pytest.raises(ConfigurationError, match="no-such-stage"):
            StageSpec.make("no-such-stage").validate()
        with pytest.raises(ConfigurationError, match="locality-reorder"):
            StageSpec.make("no-such-stage").validate()

    def test_json_round_trip(self):
        spec = StageSpec.make("identity")
        assert StageSpec.from_json(spec.to_json()) == spec

    def test_json_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="turbo"):
            StageSpec.from_json({"name": "identity", "turbo": True})


class TestPreprocessSpec:
    def test_defaults_match_oag_and_chain(self):
        from repro.core.chain import DEFAULT_D_MAX
        from repro.core.oag import DEFAULT_W_MIN

        spec = PreprocessSpec()
        assert spec.w_min == DEFAULT_W_MIN
        assert spec.d_max == DEFAULT_D_MAX
        assert spec.stages == ()

    def test_json_round_trip_with_stages(self):
        spec = PreprocessSpec(
            w_min=5, d_max=8,
            stages=(StageSpec.make("locality-reorder"),
                    StageSpec.make("identity")),
        )
        assert PreprocessSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("overrides", [{"w_min": 0}, {"d_max": -1}])
    def test_bad_parameters_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            PreprocessSpec(**overrides).validate()

    def test_unknown_stage_in_list_rejected(self):
        spec = PreprocessSpec(stages=(StageSpec("bogus"),))
        with pytest.raises(ConfigurationError, match="bogus"):
            spec.validate()


class TestRegistry:
    def test_builtin_stages_registered(self):
        names = stage_names()
        assert "identity" in names
        assert "locality-reorder" in names
        assert names == tuple(sorted(names))


class TestApplyPipeline:
    def test_empty_pipeline_is_the_input(self, small_hypergraph):
        result = apply_pipeline(small_hypergraph, PreprocessSpec())
        assert result.hypergraph is small_hypergraph
        assert result.vertex_perm is None
        assert result.cost_accesses == 0

    def test_identity_stage_is_free(self, small_hypergraph):
        spec = PreprocessSpec(stages=(StageSpec.make("identity"),))
        result = apply_pipeline(small_hypergraph, spec)
        assert result.hypergraph is small_hypergraph
        assert result.vertex_perm is None
        assert result.cost_accesses == 0

    def test_locality_reorder_matches_direct_call(self, small_hypergraph):
        from repro.hypergraph.reorder import locality_reorder

        spec = PreprocessSpec(stages=(StageSpec.make("locality-reorder"),))
        result = apply_pipeline(small_hypergraph, spec)
        direct = locality_reorder(small_hypergraph)
        assert np.array_equal(result.vertex_perm, direct.vertex_perm)
        assert result.cost_accesses == direct.cost_accesses
        assert result.hypergraph.hyperedges == direct.hypergraph.hyperedges

    def test_permutations_compose_across_stages(self, small_hypergraph):
        """Running the reorder twice must compose old->new in one gather."""
        spec = PreprocessSpec(
            stages=(StageSpec.make("locality-reorder"),) * 2
        )
        result = apply_pipeline(small_hypergraph, spec)
        n = small_hypergraph.num_vertices
        perm = result.vertex_perm
        assert sorted(perm) == list(range(n))
        # Composed permutation maps each original vertex's degree onto the
        # final hypergraph's degree at its new id.
        for old in range(n):
            assert small_hypergraph.vertex_degree(old) == \
                result.hypergraph.vertex_degree(int(perm[old]))

    def test_stage_params_rejected_for_parameterless_stage(
        self, small_hypergraph
    ):
        spec = PreprocessSpec(
            stages=(StageSpec.make("identity", level=3),)
        )
        with pytest.raises(ConfigurationError, match="no parameters"):
            apply_pipeline(small_hypergraph, spec)

    def test_unknown_stage_raises_before_running(self, small_hypergraph):
        spec = PreprocessSpec(stages=(StageSpec("bogus"),))
        with pytest.raises(ConfigurationError, match="bogus"):
            apply_pipeline(small_hypergraph, spec)

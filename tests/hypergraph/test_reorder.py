"""Tests for the spatial reordering technique (§VI-H)."""

from __future__ import annotations

import numpy as np

from repro.hypergraph.reorder import apply_vertex_permutation, locality_reorder


def test_permutation_is_bijection(small_hypergraph):
    reordering = locality_reorder(small_hypergraph)
    perm = reordering.vertex_perm
    assert sorted(perm) == list(range(small_hypergraph.num_vertices))


def test_reorder_preserves_structure(small_hypergraph):
    reordering = locality_reorder(small_hypergraph)
    original = small_hypergraph
    renamed = reordering.hypergraph
    assert renamed.num_vertices == original.num_vertices
    assert renamed.num_hyperedges == original.num_hyperedges
    assert renamed.num_bipartite_edges == original.num_bipartite_edges
    # Hyperedge h's members map exactly through the permutation.
    for h in range(original.num_hyperedges):
        mapped = sorted(
            int(reordering.vertex_perm[v]) for v in original.incident_vertices(h)
        )
        assert mapped == list(renamed.incident_vertices(h))


def test_reorder_preserves_degree_multiset(small_hypergraph):
    reordering = locality_reorder(small_hypergraph)
    original_degrees = sorted(
        small_hypergraph.vertex_degree(v)
        for v in range(small_hypergraph.num_vertices)
    )
    renamed_degrees = sorted(
        reordering.hypergraph.vertex_degree(v)
        for v in range(small_hypergraph.num_vertices)
    )
    assert original_degrees == renamed_degrees


def test_reorder_improves_member_contiguity(small_hypergraph):
    """The technique's goal: incident vertices get close-by ids."""
    def mean_span(hypergraph):
        spans = []
        for h in range(hypergraph.num_hyperedges):
            members = hypergraph.incident_vertices(h)
            spans.append(int(members.max() - members.min()))
        return float(np.mean(spans))

    reordering = locality_reorder(small_hypergraph)
    assert mean_span(reordering.hypergraph) <= mean_span(small_hypergraph)


def test_reorder_cost_positive(small_hypergraph):
    reordering = locality_reorder(small_hypergraph)
    assert reordering.cost_accesses > small_hypergraph.num_bipartite_edges


def test_original_vertex_inverts(small_hypergraph):
    reordering = locality_reorder(small_hypergraph)
    for new_id in (0, 1, 5):
        old = reordering.original_vertex(new_id)
        assert int(reordering.vertex_perm[old]) == new_id


def test_inverse_perm_round_trips_every_vertex(small_hypergraph):
    """The precomputed inverse is a full round trip in both directions."""
    reordering = locality_reorder(small_hypergraph)
    perm = reordering.vertex_perm
    inverse = reordering.inverse_perm
    n = small_hypergraph.num_vertices
    assert np.array_equal(inverse[perm], np.arange(n))
    assert np.array_equal(perm[inverse], np.arange(n))
    for new_id in range(n):
        assert reordering.original_vertex(new_id) == int(inverse[new_id])


def test_apply_identity_permutation(figure1):
    identity = np.arange(figure1.num_vertices)
    renamed = apply_vertex_permutation(figure1, identity)
    assert renamed.hyperedges == figure1.hyperedges

"""Tests for Table II statistics and Figure 8 overlap curves."""

from __future__ import annotations

import pytest

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.stats import (
    dataset_stats,
    overlap_curve,
    shared_hyperedge_ratio,
    shared_vertex_ratio,
)


def test_dataset_stats_figure1(figure1):
    stats = dataset_stats(figure1)
    assert stats.name == "figure1"
    assert stats.num_vertices == 7
    assert stats.num_hyperedges == 4
    assert stats.num_bipartite_edges == 13
    assert stats.size_bytes == figure1.size_bytes()
    assert stats.size_mb == pytest.approx(stats.size_bytes / (1024 * 1024))


def test_shared_vertex_ratio_figure1(figure1):
    # Degrees: v0..v6 = 2,2,2,2,2,1,2 -> 6 of 7 vertices shared by >= 2.
    assert shared_vertex_ratio(figure1, 2) == pytest.approx(6 / 7)
    assert shared_vertex_ratio(figure1, 1) == 1.0
    assert shared_vertex_ratio(figure1, 3) == 0.0


def test_shared_hyperedge_ratio_figure1(figure1):
    # Every hyperedge of figure1 has at least two members shared with some
    # other hyperedge except via v5 (degree 1): h1 = {v1,v2,v3,v5} has three
    # shared members.
    assert shared_hyperedge_ratio(figure1, 2) == 1.0
    # No hyperedge has 4 members all shared.
    assert shared_hyperedge_ratio(figure1, 4) == 0.0


def test_overlap_curve_monotone(figure1, small_hypergraph):
    for hypergraph in (figure1, small_hypergraph):
        for side in ("vertex", "hyperedge"):
            curve = overlap_curve(hypergraph, side, thresholds=(1, 2, 3, 5))
            values = [curve[t] for t in (1, 2, 3, 5)]
            assert values == sorted(values, reverse=True)
            assert all(0.0 <= v <= 1.0 for v in values)


def test_overlap_curve_unknown_side(figure1):
    with pytest.raises(ValueError):
        overlap_curve(figure1, "nope")


def test_empty_hypergraph_ratios():
    empty = Hypergraph.from_hyperedge_lists([], num_vertices=0)
    assert shared_vertex_ratio(empty, 2) == 0.0
    assert shared_hyperedge_ratio(empty, 2) == 0.0

"""Tests for the structural audit utility."""

from __future__ import annotations

import pytest

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.validate import audit


def test_clean_hypergraph_passes(small_hypergraph):
    report = audit(small_hypergraph)
    assert report.ok
    assert report.num_vertices == small_hypergraph.num_vertices
    assert report.mean_hyperedge_degree > 0


def test_figure1_report(figure1):
    report = audit(figure1)
    assert report.ok
    assert report.num_bipartite_edges == 13
    assert report.max_hyperedge_degree == 4
    assert report.sharable_vertex_ratio == pytest.approx(6 / 7)


def test_singleton_hyperedges_flagged():
    hypergraph = Hypergraph.from_hyperedge_lists([[0], [1, 2]])
    report = audit(hypergraph)
    assert report.singleton_hyperedges == 1
    assert any("singleton" in w for w in report.warnings)
    assert not report.ok


def test_isolated_vertices_flagged():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1]], num_vertices=10)
    report = audit(hypergraph)
    assert report.isolated_vertices == 8
    assert any("isolated" in w for w in report.warnings)


def test_duplicates_counted_and_flagged():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1]] * 6 + [[1, 2]])
    report = audit(hypergraph)
    assert report.duplicate_hyperedges == 5
    assert any("duplicate" in w for w in report.warnings)


def test_low_overlap_flagged():
    # Disjoint hyperedges: nothing shared.
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1], [2, 3], [4, 5]])
    report = audit(hypergraph)
    assert report.sharable_vertex_ratio == 0.0
    assert any("little overlap" in w for w in report.warnings)


def test_empty_hypergraph():
    report = audit(Hypergraph.from_hyperedge_lists([], num_vertices=0))
    assert report.num_bipartite_edges == 0
    assert report.mean_vertex_degree == 0.0

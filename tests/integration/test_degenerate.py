"""Degenerate and adversarial inputs: the system must not fall over.

Empty hypergraphs, isolated elements, singleton hyperedges, self-contained
components, pathological frontiers — every engine and algorithm must handle
them gracefully (correct results, no crashes, no infinite loops).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    Bfs,
    ConnectedComponents,
    KCore,
    MaximalIndependentSet,
    PageRank,
)
from repro.engine import ChGraphEngine, GlaResources, HygraEngine, SoftwareGlaEngine
from repro.hypergraph.hypergraph import Hypergraph
from repro.sim.config import scaled_config
from repro.sim.system import SimulatedSystem

ENGINE_FACTORIES = (
    lambda r: HygraEngine(),
    lambda r: SoftwareGlaEngine(r),
    lambda r: ChGraphEngine(r),
)


def run_everywhere(hypergraph, algorithm_factory):
    config = scaled_config(num_cores=2, llc_kb=2)
    resources = GlaResources.build(hypergraph, config.num_cores)
    results = []
    for factory in ENGINE_FACTORIES:
        engine = factory(resources)
        results.append(
            engine.run(algorithm_factory(), hypergraph, SimulatedSystem(config))
        )
    return results


def test_empty_hypergraph():
    empty = Hypergraph.from_hyperedge_lists([], num_vertices=0)
    for run in run_everywhere(empty, ConnectedComponents):
        assert run.result.size == 0


def test_no_hyperedges_some_vertices():
    hypergraph = Hypergraph.from_hyperedge_lists([], num_vertices=5)
    for run in run_everywhere(hypergraph, ConnectedComponents):
        assert list(run.result) == [0, 1, 2, 3, 4]
    for run in run_everywhere(hypergraph, KCore):
        assert np.all(run.result == 0.0)


def test_single_hyperedge():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1, 2]])
    for run in run_everywhere(hypergraph, lambda: Bfs(source=0)):
        assert list(run.result) == [0.0, 2.0, 2.0]


def test_singleton_hyperedge():
    """A hyperedge with one member connects nothing but must not crash."""
    hypergraph = Hypergraph.from_hyperedge_lists([[3], [0, 1]], num_vertices=4)
    for run in run_everywhere(hypergraph, ConnectedComponents):
        assert run.result[3] != run.result[0]
    for run in run_everywhere(hypergraph, KCore):
        assert run.result[3] == 0.0  # the singleton never connects


def test_bfs_from_isolated_source():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1]], num_vertices=3)
    for run in run_everywhere(hypergraph, lambda: Bfs(source=2)):
        assert run.result[2] == 0.0
        assert np.isinf(run.result[0])


def test_duplicate_hyperedges():
    """Identical hyperedges are legal (weight-heavy OAG edges)."""
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1, 2]] * 4)
    for run in run_everywhere(hypergraph, lambda: PageRank(iterations=2)):
        assert np.all(np.isfinite(run.result))
    results = run_everywhere(hypergraph, lambda: MaximalIndependentSet(seed=1))
    for run in results:
        assert np.array_equal(run.result, results[0].result)


def test_star_hypergraph():
    """One vertex in every hyperedge: the OAG is a clique through the hub."""
    hyperedges = [[0, i] for i in range(1, 30)]
    hypergraph = Hypergraph.from_hyperedge_lists(hyperedges)
    for run in run_everywhere(hypergraph, ConnectedComponents):
        assert np.all(run.result == 0.0)


def test_pagerank_zero_iterations_rejected():
    with pytest.raises(ValueError):
        PageRank(iterations=0)


def test_more_cores_than_elements():
    hypergraph = Hypergraph.from_hyperedge_lists([[0, 1]])
    config = scaled_config(num_cores=16, llc_kb=2)
    resources = GlaResources.build(hypergraph, config.num_cores)
    run = ChGraphEngine(resources).run(
        ConnectedComponents(), hypergraph, SimulatedSystem(config)
    )
    assert list(run.result) == [0.0, 0.0]

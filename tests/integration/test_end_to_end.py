"""End-to-end integration: the full pipeline on a realistic workload.

Exercises generation -> preprocessing -> three engines -> results -> reports
in one flow, asserting the paper's headline qualitative claims hold on a
freshly generated (non-preset) hypergraph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Bfs,
    ChGraphEngine,
    ConnectedComponents,
    GlaResources,
    HygraEngine,
    PageRank,
    SoftwareGlaEngine,
)
from repro.harness.report import render_table
from repro.hypergraph.generators import AffiliationConfig, generate_affiliation_hypergraph
from repro.hypergraph.io import load_hyperedge_list, save_hyperedge_list
from repro.sim import SimulatedSystem, scaled_config


@pytest.fixture(scope="module")
def workload():
    config = AffiliationConfig(
        num_vertices=1280,
        num_hyperedges=1280,
        mean_hyperedge_degree=40.0,
        min_hyperedge_degree=20,
        degree_exponent=3.0,
        num_communities=18,
        overlap_bias=0.99,
        seed=33,
    )
    hypergraph = generate_affiliation_hypergraph(config, name="e2e")
    system_config = scaled_config(num_cores=8, llc_kb=2)
    resources = GlaResources.build(hypergraph, system_config.num_cores)
    return hypergraph, system_config, resources


def run_three(workload, algorithm_factory):
    hypergraph, config, resources = workload
    runs = {}
    for engine in (
        HygraEngine(),
        SoftwareGlaEngine(resources),
        ChGraphEngine(resources),
    ):
        runs[engine.name] = engine.run(
            algorithm_factory(), hypergraph, SimulatedSystem(config)
        )
    return runs


def test_headline_shape_pagerank(workload):
    runs = run_three(workload, lambda: PageRank(iterations=2))
    hygra, gla, chg = runs["Hygra"], runs["GLA"], runs["ChGraph"]
    # Figure 3's three-way shape.
    assert gla.cycles > hygra.cycles, "software GLA must lose to Hygra"
    assert chg.cycles < hygra.cycles, "ChGraph must beat Hygra"
    assert chg.speedup_over(hygra) > 1.5
    # Figure 2's direction.
    assert gla.dram_accesses < hygra.dram_accesses
    assert chg.dram_accesses < hygra.dram_accesses
    # Identical answers everywhere.
    assert np.allclose(gla.result, hygra.result)
    assert np.allclose(chg.result, hygra.result)


def test_headline_shape_sparse_algorithms(workload):
    for factory in (lambda: Bfs(source=1), ConnectedComponents):
        runs = run_three(workload, factory)
        hygra, chg = runs["Hygra"], runs["ChGraph"]
        assert chg.cycles < hygra.cycles
        assert np.allclose(chg.result, hygra.result, equal_nan=True)


def test_io_roundtrip_preserves_results(workload, tmp_path):
    hypergraph, config, _ = workload
    path = tmp_path / "e2e.hgr"
    save_hyperedge_list(hypergraph, path)
    reloaded = load_hyperedge_list(path, num_vertices=hypergraph.num_vertices)
    original = HygraEngine().run(PageRank(iterations=2), hypergraph)
    roundtrip = HygraEngine().run(PageRank(iterations=2), reloaded)
    assert np.allclose(original.result, roundtrip.result)


def test_report_rendering_of_run(workload):
    runs = run_three(workload, lambda: PageRank(iterations=1))
    rows = [
        [name, run.cycles, run.dram_accesses] for name, run in runs.items()
    ]
    text = render_table(["Engine", "Cycles", "DRAM"], rows, title="e2e")
    assert "Hygra" in text and "ChGraph" in text


def test_energy_tracks_dram_reduction(workload):
    hypergraph, config, resources = workload
    hygra_system = SimulatedSystem(config)
    HygraEngine().run(PageRank(iterations=2), hypergraph, hygra_system)
    chg_system = SimulatedSystem(config)
    ChGraphEngine(resources).run(PageRank(iterations=2), hypergraph, chg_system)
    # Fewer DRAM lines -> less DRAM energy.
    assert chg_system.energy().dram_nj < hygra_system.energy().dram_nj

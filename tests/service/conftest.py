"""Fixtures for the simulation-service tests.

``make_service`` starts a real :class:`SimulationService` (its own event
loop in a daemon thread, OS-assigned port) and guarantees drain at
teardown; tests talk to it over actual HTTP via :class:`ServiceClient`.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.service import (
    JobRequest,
    SchedulerConfig,
    ServiceClient,
    ServiceConfig,
    SimulationService,
)

#: The cheapest real workload (also used by tests/harness/test_cli.py).
SMALL = dict(
    engine="Hygra", algorithm="BFS", dataset="FS",
    cores=4, llc_kb=2, pr_iterations=1,
)


def small_request(**overrides) -> JobRequest:
    """A fast-to-simulate request, tweakable per test."""
    return JobRequest.build(**{**SMALL, **overrides})


@pytest.fixture
def make_service():
    """Factory: spin up a service on a free port; drain it on teardown.

    Returns ``(service, client)``; keyword overrides go into
    :class:`ServiceConfig` (``scheduler=`` takes a ``SchedulerConfig``).
    """
    started: list[tuple[SimulationService, threading.Thread]] = []

    def factory(**overrides):
        log = overrides.pop("log", None)
        overrides.setdefault("port", 0)
        overrides.setdefault("scheduler", SchedulerConfig(batch_window=0.02))
        service = SimulationService(ServiceConfig(**overrides), log=log)
        ready = threading.Event()

        def body() -> None:
            async def _main() -> None:
                task = asyncio.create_task(
                    service.run(install_signals=False)
                )
                while service.port is None:
                    await asyncio.sleep(0.005)
                ready.set()
                await task

            asyncio.run(_main())

        thread = threading.Thread(target=body, daemon=True)
        thread.start()
        assert ready.wait(15), "service failed to start"
        started.append((service, thread))
        return service, ServiceClient(port=service.port)

    yield factory
    for service, thread in started:
        service.request_drain()
        thread.join(60)
        assert not thread.is_alive(), "service failed to drain"

"""The service CLI surface: serve/submit/status, --version, exit codes.

``repro submit`` against a live service must print **byte-identical**
output to the same ``repro run`` invocation — that is the subsystem's
headline guarantee, enforced here end to end.
"""

from __future__ import annotations

import socket

import pytest

import repro
from repro.cli import main
from tests.service.conftest import SMALL

WORKLOAD = [
    "--engine", SMALL["engine"],
    "--algorithm", SMALL["algorithm"],
    "--dataset", SMALL["dataset"],
    "--cores", str(SMALL["cores"]),
    "--llc-kb", str(SMALL["llc_kb"]),
    "--pr-iterations", str(SMALL["pr_iterations"]),
]


def free_port() -> int:
    """A port with nothing listening on it."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out == f"repro {repro.__version__}\n"

    def test_fallback_version_matches_pyproject(self):
        """`repro.__version__` falls back to a pinned constant when the
        package is run uninstalled (PYTHONPATH=src); that constant must
        track pyproject.toml."""
        import pathlib
        import tomllib

        pyproject = pathlib.Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        with pyproject.open("rb") as fh:
            declared = tomllib.load(fh)["project"]["version"]
        assert repro._FALLBACK_VERSION == declared


class TestSubmitByteIdentity:
    def test_submit_output_equals_run_output(
        self, make_service, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        _, client = make_service()

        assert main(["run", *WORKLOAD]) == 0
        run_output = capsys.readouterr().out

        assert main([
            "submit", *WORKLOAD, "--port", str(client.port),
            "--wait-timeout", "120",
        ]) == 0
        submit_output = capsys.readouterr().out

        assert submit_output == run_output  # byte-identical, not just close


class TestExitCodes:
    def test_unknown_job_exits_66(self, make_service, capsys):
        _, client = make_service()
        rc = main(["status", "job-404-cafef00d", "--port", str(client.port)])
        assert rc == 66
        assert "JobNotFoundError" in capsys.readouterr().err

    def test_unreachable_service_exits_70(self, capsys):
        rc = main(["status", "--port", str(free_port())])
        assert rc == 70
        assert "ServiceError" in capsys.readouterr().err

    def test_overloaded_service_exits_75(self, make_service, capsys):
        _, client = make_service(max_depth=0)
        rc = main(["submit", *WORKLOAD, "--port", str(client.port)])
        assert rc == 75
        assert "ServiceOverloadedError" in capsys.readouterr().err


class TestStatusOverview:
    def test_overview_renders_health_and_stats(self, make_service, capsys):
        _, client = make_service()
        assert main(["status", "--port", str(client.port)]) == 0
        out = capsys.readouterr().out
        assert repro.__version__ in out
        assert "queue_depth" in out or "depth" in out

    def test_submit_no_wait_then_status(self, make_service, capsys):
        _, client = make_service()
        assert main([
            "submit", *WORKLOAD, "--port", str(client.port), "--no-wait",
        ]) == 0
        out = capsys.readouterr().out
        job_id = next(
            token for token in out.split() if token.startswith("job-")
        )
        client.wait(job_id, timeout=120)
        assert main(["status", job_id, "--port", str(client.port)]) == 0
        assert job_id in capsys.readouterr().out

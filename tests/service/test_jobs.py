"""JobRequest/JobRecord: validation, JSON round trip, content addressing."""

from __future__ import annotations

import pytest

from repro.service import JOB_STATES, JobRecord, JobRequest
from tests.service.conftest import small_request


class TestJobRequestValidation:
    def test_valid_request_passes(self):
        small_request().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"engine": "NoSuchEngine"},
            {"algorithm": "Dijkstra"},
            {"dataset": "nope"},
            {"cores": 0},
            {"llc_kb": -1},
            {"pr_iterations": 0},
            {"cores": 2.5},
            {"profile": 1},
            {"priority": "high"},
        ],
    )
    def test_bad_field_rejected(self, overrides):
        with pytest.raises(ValueError):
            small_request(**overrides).validate()


class TestJobRequestJson:
    def test_round_trip(self):
        request = small_request(priority=3, profile=True)
        assert JobRequest.from_json(request.to_json()) == request

    def test_defaults_fill_in(self):
        request = JobRequest.from_json(
            {"engine": "Hygra", "algorithm": "BFS", "dataset": "FS"}
        )
        assert request.config().num_cores == 16
        assert request.pr_iterations == 2
        assert request.priority == 0

    @pytest.mark.parametrize(
        "obj, match",
        [
            ([], "JSON object"),
            ({"engine": "Hygra", "algorithm": "BFS"}, "missing 'dataset'"),
            (
                {"engine": "Hygra", "algorithm": "BFS", "dataset": "FS",
                 "turbo": True},
                "unknown job request field",
            ),
        ],
    )
    def test_junk_rejected(self, obj, match):
        with pytest.raises(ValueError, match=match):
            JobRequest.from_json(obj)


class TestStoreKey:
    def test_matches_runner_key(self):
        """The service key IS the run_result_key of the equivalent local
        spec — the property both coalescing and the store fast path rest
        on, now for *any* expressible configuration."""
        from repro.harness.datasets import hypergraph_dataset
        from repro.harness.spec import RunSpec
        from repro.sim.config import scaled_config
        from repro.store.keys import run_result_key

        local = RunSpec(
            "Hygra", "BFS", "FS",
            config=scaled_config(num_cores=4, llc_kb=2),
            pr_iterations=1,
        ).normalized()
        expected = run_result_key(local, hypergraph_dataset("FS").content_hash())
        assert small_request().store_key() == expected

    def test_key_ignores_priority(self):
        # Priority affects scheduling order, not the result — requests that
        # differ only in priority must coalesce.
        assert small_request(priority=0).store_key() == \
            small_request(priority=9).store_key()

    def test_key_distinguishes_config_and_profile(self):
        base = small_request().store_key()
        assert small_request(cores=8).store_key() != base
        assert small_request(profile=True).store_key() != base

    def test_key_distinguishes_preprocessing(self):
        # The v4 keys fix the latent aliasing: sweeps and staged runs were
        # previously indistinguishable from default runs.
        base = small_request().store_key()
        assert small_request(w_min=5).store_key() != base
        assert small_request(d_max=8).store_key() != base
        assert small_request(stages=["locality-reorder"]).store_key() != base
        assert small_request(check=True).store_key() != base


class TestJobRecord:
    def test_lifecycle_fields(self):
        record = JobRecord(request=small_request(), key="k")
        assert record.state == JOB_STATES[0] == "queued"
        assert not record.finished
        assert record.latency is None
        record.state = "done"
        record.finished_at = record.submitted_at + 2.5
        assert record.finished
        assert record.latency == pytest.approx(2.5)

    def test_ids_are_unique(self):
        ids = {JobRecord(request=small_request(), key="k").job_id
               for _ in range(50)}
        assert len(ids) == 50

    def test_status_json_hides_result_by_default(self):
        record = JobRecord(request=small_request(), key="k")
        record.result = {"cycles": 1}
        assert "result" not in record.status_json()
        assert record.status_json(include_result=True)["result"] == {"cycles": 1}
        # The payload is pure JSON (travels the HTTP API unchanged).
        import json

        json.dumps(record.status_json(include_result=True))

"""ServiceMetrics: percentiles, hit ratio, snapshot shape."""

from __future__ import annotations

import json

import pytest

from repro.service import ServiceMetrics


class TestPercentiles:
    def test_empty_is_zero(self):
        assert ServiceMetrics().percentile(95) == 0.0

    def test_nearest_rank(self):
        metrics = ServiceMetrics()
        for v in [0.1, 0.2, 0.3, 0.4, 1.0]:
            metrics.observe_latency(v)
        assert metrics.percentile(50) == 0.3
        assert metrics.percentile(95) == 1.0
        assert metrics.percentile(99) == 1.0

    def test_order_independent(self):
        a, b = ServiceMetrics(), ServiceMetrics()
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        for v in values:
            a.observe_latency(v)
        for v in sorted(values):
            b.observe_latency(v)
        assert a.percentile(50) == b.percentile(50) == 3.0

    def test_ring_is_bounded(self):
        metrics = ServiceMetrics(max_latencies=4)
        for v in [100.0, 1.0, 1.0, 1.0, 1.0]:
            metrics.observe_latency(v)
        # The old outlier fell out of the ring.
        assert metrics.percentile(99) == 1.0


class TestStoreHitRatio:
    def test_no_traffic_is_zero(self):
        assert ServiceMetrics().store_hit_ratio == 0.0

    def test_ratio(self):
        metrics = ServiceMetrics()
        metrics.store_hits, metrics.computed = 3, 1
        assert metrics.store_hit_ratio == pytest.approx(0.75)


class TestSnapshot:
    def test_shape_and_json(self):
        metrics = ServiceMetrics()
        metrics.submitted = 8
        metrics.accepted = 1
        metrics.coalesced = 7
        metrics.observe_latency(0.5)
        snap = metrics.snapshot(queue_depth=2, in_flight=1)
        assert snap["queue_depth"] == 2
        assert snap["in_flight"] == 1
        assert snap["coalesced"] == 7
        assert snap["latency"]["count"] == 1
        assert snap["latency"]["p50"] == 0.5
        json.dumps(snap)  # must be servable as-is

    def test_render_line_mentions_gauges(self):
        line = ServiceMetrics().render_line(queue_depth=3, in_flight=2)
        assert "depth=3" in line
        assert "inflight=2" in line
